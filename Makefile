# Convenience targets for the reproduction repo.

.PHONY: install test lint bench bench-smoke bench-pq pq-smoke bench-paper bench-core bench-loadbalance loadbalance-smoke bench-pipeline pipeline-smoke bench-serving serving-smoke bench-filter filter-smoke obs-smoke examples faults-demo clean

# smoke artifacts are throwaway CI outputs — they land in .benchmarks/
# (gitignored), never at the repo root next to the tracked trajectories
SMOKE_DIR := .benchmarks

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

lint:
	ruff check src tests benchmarks examples

# HNSW hot-path benchmark: build + search timings, recall, and the
# speedup vs the previous run recorded in BENCH_hnsw.json (perf trajectory)
bench:
	python benchmarks/bench_hnsw.py

# CI-sized variant: tiny corpus, fails if recall@10 drops below the floor.
# The second leg disables the compiled kernels (CC=/bin/false; fresh TMPDIR
# so the .so cache can't satisfy the load) and must stay green too — the
# pure-python fallback is a supported configuration, not a degraded one.
bench-smoke:
	mkdir -p $(SMOKE_DIR)
	python benchmarks/bench_hnsw.py --tiny --min-recall 0.95 --out $(SMOKE_DIR)/BENCH_hnsw_smoke.json
	TMPDIR=$$(mktemp -d) CC=/bin/false python benchmarks/bench_hnsw.py --tiny --min-recall 0.95 --out $(SMOKE_DIR)/BENCH_hnsw_smoke_nonative.json

# IVF-PQ fast-scan benchmark: ADC scan throughput vs the pre-kernel path,
# recall parity, and the batch amortization curve (trajectory recorded in
# BENCH_pq.json); fails if the scan speedup drops below 2x at equal recall
bench-pq:
	python benchmarks/bench_pq.py --min-speedup 2.0

# CI-sized variant plus the PQ contract tests
pq-smoke:
	mkdir -p $(SMOKE_DIR)
	python benchmarks/bench_pq.py --smoke --min-speedup 1.5 --min-recall 0.25 --out $(SMOKE_DIR)/BENCH_pq_smoke.json
	pytest tests/test_pq.py tests/test_hnsw_native_build.py -q

# replica-selector sweep under a Zipf-skewed workload; fails if the
# least_loaded makespan improvement at the headline replication factor
# drops below 1.5x (trajectory recorded in BENCH_loadbalance.json)
bench-loadbalance:
	python benchmarks/bench_loadbalance.py

# CI-sized variant plus the public-API snapshot test
loadbalance-smoke:
	mkdir -p $(SMOKE_DIR)
	python benchmarks/bench_loadbalance.py --smoke --out $(SMOKE_DIR)/BENCH_loadbalance_smoke.json
	pytest tests/test_public_api.py -q

# credit-window sweep under a Zipf-skewed workload; fails if a finite
# window stops beating eager dispatch on makespan / peak queue depth at
# the headline core count, if eager runs stop being bit-deterministic, if
# any window changes answers, or if dispatch credits leak (trajectory
# recorded in BENCH_pipeline.json)
bench-pipeline:
	python benchmarks/bench_pipeline.py

# CI-sized variant plus the flow-control contract tests
pipeline-smoke:
	mkdir -p $(SMOKE_DIR)
	python benchmarks/bench_pipeline.py --smoke --out $(SMOKE_DIR)/BENCH_pipeline_smoke.json
	pytest tests/test_pipeline_dispatch.py -q

# open-loop serving sweep: latency knee past the capacity point, cache
# on/off tail + makespan improvement at Zipf skew >= 1.1, and bounded-queue
# shedding; fails if serving or cache hits change answers, if the admission
# ledger stops balancing, or if either headline improvement floor is missed
# (trajectory recorded in BENCH_serving.json)
bench-serving:
	python benchmarks/bench_serving.py

# CI-sized variant plus the serving contract tests
serving-smoke:
	mkdir -p $(SMOKE_DIR)
	python benchmarks/bench_serving.py --smoke --out $(SMOKE_DIR)/BENCH_serving_smoke.json
	pytest tests/test_serving.py -q

# filtered-search selectivity x strategy sweep: pre/post recall vs the
# naive post-filter baseline, the auto crossover, and the unfiltered
# bit-identity check with metadata attached; fails if filtered recall
# stops beating the naive baseline at two or more selectivity points, if
# the measured crossover contradicts CROSSOVER_SELECTIVITY, or if
# attaching metadata changes unfiltered answers (trajectory recorded in
# BENCH_filter.json)
bench-filter:
	python benchmarks/bench_filter.py

# CI-sized variant plus the filtering + protocol contract tests
filter-smoke:
	mkdir -p $(SMOKE_DIR)
	python benchmarks/bench_filter.py --smoke --out $(SMOKE_DIR)/BENCH_filter_smoke.json
	pytest tests/test_filtering.py tests/test_searcher_protocol.py -q

# end-to-end observability smoke: gen -> build -> query with every obs
# artifact enabled, then validate the Chrome trace against the trace-event
# schema and the JSONL log against the versioned event schema (unknown
# span/instant names fail), plus the observability contract tests
# (bit-identity with tracing on/off in every execution mode)
obs-smoke:
	mkdir -p $(SMOKE_DIR)/obs
	python -m repro.cli gen SYN_1M --n-points 600 --n-queries 40 --out $(SMOKE_DIR)/obs/corpus
	python -m repro.cli build $(SMOKE_DIR)/obs/corpus/base.fvecs --out $(SMOKE_DIR)/obs/index --cores 8
	python -m repro.cli query $(SMOKE_DIR)/obs/index $(SMOKE_DIR)/obs/corpus/query.fvecs \
		--out $(SMOKE_DIR)/obs/out.ivecs --k 5 --arrival poisson:50000 \
		--trace-out $(SMOKE_DIR)/obs/trace.json \
		--events-out $(SMOKE_DIR)/obs/events.jsonl \
		--metrics-out $(SMOKE_DIR)/obs/metrics.json \
		--explain-top 2
	python -m repro.obs.validate $(SMOKE_DIR)/obs/trace.json $(SMOKE_DIR)/obs/events.jsonl
	pytest tests/test_observability.py -q

# full evaluation-section reproduction (all tables + figures + ablations)
bench-paper:
	pytest benchmarks/ --benchmark-only -s

# just the paper's tables/figures, skipping the ablation extras
bench-core:
	pytest benchmarks/test_table1_datasets.py \
	       benchmarks/test_fig3_scaling.py \
	       benchmarks/test_table2_construction.py \
	       benchmarks/test_fig4_replication.py \
	       benchmarks/test_table3_kdtree_comparison.py \
	       benchmarks/test_fig5_breakdown.py \
	       benchmarks/test_fig6_recall_vs_time.py \
	       --benchmark-only -s

# end-to-end crash + failover scenario; exits non-zero on any violated
# fault-tolerance guarantee, so CI runs it as a smoke job
faults-demo:
	python examples/faults_demo.py

examples:
	python examples/quickstart.py
	python examples/batch_recommender.py
	python examples/image_descriptor_search.py
	python examples/knn_classifier.py
	python examples/cluster_scaling_study.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
