"""Synthetic image-descriptor generators.

Reduced-scale analogues of the public corpora in Table I.  Each generator
reproduces the statistics of the real descriptors that matter to metric
search behaviour:

- **SIFT** (128-d): non-negative, heavy-tailed histogram-of-gradients bins,
  strongly clustered (descriptors of similar patches collide), values in
  [0, 255] when quantized.
- **DEEP** (96-d): CNN features, PCA-whitened then L2-normalized to the unit
  sphere — so all points have norm 1 and L2 distance is a monotone function
  of the angle.
- **GIST** (960-d): global scene descriptors, dense, smooth, mildly
  clustered; the high dimension is what breaks KD-tree pruning in Table III.

All generators draw points from a mixture of concentrated clusters plus a
diffuse background, matching the empirical observation that real descriptor
corpora have strong local intrinsic-dimension structure (which is exactly
what HNSW/VP-trees exploit and what makes uniform-random vectors a *bad*
surrogate).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_positive_int

__all__ = ["sift_like", "deep_like", "gist_like"]


def _clustered_base(
    n: int,
    dim: int,
    n_clusters: int,
    intrinsic_dim: int,
    cluster_scale: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Mixture of low-intrinsic-dimension Gaussian clusters.

    Each cluster lives mostly in a random ``intrinsic_dim``-dimensional
    affine subspace with small full-dimension noise, giving realistic local
    intrinsic dimensionality.
    """
    rng_centers, rng_bases, rng_assign, rng_noise = spawn_rngs(rng, 4)
    centers = rng_centers.normal(0.0, 1.0, size=(n_clusters, dim))
    assign = rng_assign.integers(0, n_clusters, size=n)
    X = np.empty((n, dim), dtype=np.float64)
    for c in range(n_clusters):
        idx = np.where(assign == c)[0]
        if idx.size == 0:
            continue
        basis = rng_bases.normal(0.0, 1.0, size=(intrinsic_dim, dim))
        basis /= np.linalg.norm(basis, axis=1, keepdims=True)
        coeffs = rng_noise.normal(0.0, cluster_scale, size=(idx.size, intrinsic_dim))
        ambient = rng_noise.normal(0.0, 0.05 * cluster_scale, size=(idx.size, dim))
        X[idx] = centers[c] + coeffs @ basis + ambient
    return X


def sift_like(
    n: int, dim: int = 128, n_clusters: int = 64, seed: int = 0, quantize: bool = True
) -> np.ndarray:
    """SIFT-descriptor-like vectors: non-negative, clipped, optionally
    quantized to integers in [0, 255] like the real ANN_SIFT1B corpus."""
    check_positive_int(n, "n")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x51F7]))
    base = _clustered_base(n, dim, n_clusters, intrinsic_dim=min(16, dim), cluster_scale=0.6, rng=rng)
    # SIFT bins are magnitudes: shift/scale into [0, 255] with a heavy lower
    # tail (many near-zero bins), as in real gradient histograms.
    X = np.abs(base) ** 1.5
    X = X / np.percentile(X, 99.5) * 180.0
    np.clip(X, 0.0, 255.0, out=X)
    if quantize:
        X = np.floor(X)
    return np.ascontiguousarray(X, dtype=np.float32)


def deep_like(n: int, dim: int = 96, n_clusters: int = 48, seed: int = 0) -> np.ndarray:
    """DEEP1B-like vectors: clustered CNN features, L2-normalized rows."""
    check_positive_int(n, "n")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xDEE9]))
    X = _clustered_base(n, dim, n_clusters, intrinsic_dim=min(20, dim), cluster_scale=0.5, rng=rng)
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return np.ascontiguousarray(X / norms, dtype=np.float32)


def gist_like(n: int, dim: int = 960, n_clusters: int = 32, seed: int = 0) -> np.ndarray:
    """GIST-like vectors: very high-dimensional, dense, smooth, non-negative."""
    check_positive_int(n, "n")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x6157]))
    X = _clustered_base(n, dim, n_clusters, intrinsic_dim=min(24, dim), cluster_scale=0.4, rng=rng)
    # GIST values are small non-negative energies; squash into [0, ~1].
    X = 1.0 / (1.0 + np.exp(-X)) * 0.8
    return np.ascontiguousarray(X, dtype=np.float32)
