"""Exact brute-force k-NN ground truth.

Recall (§V-D) is defined against exact nearest neighbors.  The public
corpora ship precomputed ground truth; for synthetic analogues we compute it
here.  The kernel is blocked over queries and base vectors so the distance
matrix never exceeds a fixed memory budget, and uses the GEMM-based pairwise
L2 from :mod:`repro.metrics`.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import Metric, get_metric
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["brute_force_knn"]


def brute_force_knn(
    X: np.ndarray,
    Q: np.ndarray,
    k: int,
    metric: str | Metric = "l2",
    block_queries: int = 256,
    block_points: int = 65_536,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact k-NN of each row of ``Q`` among rows of ``X``.

    Returns ``(distances, ids)`` with shape (n_queries, k), closest first.
    Ties are broken by id, matching :func:`repro.utils.heaps.merge_knn`,
    so exact methods can be compared bit-for-bit.
    """
    X = check_matrix(X, "X")
    Q = check_matrix(Q, "Q")
    check_positive_int(k, "k")
    if Q.shape[1] != X.shape[1]:
        raise ValueError(f"dimension mismatch: X is {X.shape[1]}-d, Q is {Q.shape[1]}-d")
    if k > X.shape[0]:
        raise ValueError(f"k={k} exceeds dataset size {X.shape[0]}")
    m = get_metric(metric)

    nq = Q.shape[0]
    out_d = np.full((nq, k), np.inf, dtype=np.float64)
    out_i = np.full((nq, k), -1, dtype=np.int64)

    for q0 in range(0, nq, block_queries):
        q1 = min(q0 + block_queries, nq)
        qblk = Q[q0:q1]
        best_d = np.full((q1 - q0, 0), np.inf)
        best_i = np.full((q1 - q0, 0), -1, dtype=np.int64)
        for p0 in range(0, X.shape[0], block_points):
            p1 = min(p0 + block_points, X.shape[0])
            d = m.pairwise(qblk, X[p0:p1])
            ids = np.arange(p0, p1, dtype=np.int64)[None, :].repeat(q1 - q0, axis=0)
            # merge with running top-k
            cat_d = np.concatenate([best_d, d], axis=1)
            cat_i = np.concatenate([best_i, ids], axis=1)
            kk = min(k, cat_d.shape[1])
            part = np.argpartition(cat_d, kk - 1, axis=1)[:, :kk]
            best_d = np.take_along_axis(cat_d, part, axis=1)
            best_i = np.take_along_axis(cat_i, part, axis=1)
        # final exact sort by (distance, id)
        for r in range(best_d.shape[0]):
            o = np.lexsort((best_i[r], best_d[r]))[:k]
            out_d[q0 + r, : len(o)] = best_d[r, o]
            out_i[q0 + r, : len(o)] = best_i[r, o]
    return out_d, out_i
