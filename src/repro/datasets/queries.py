"""Query-set generation.

The paper generates queries for the SYN datasets "using uniform distribution
in a single cluster with a compactness factor of 0.01" — i.e. all queries
land inside one tight region, which is precisely the workload that creates
the cross-partition load imbalance that Fig. 4 studies.  For descriptor
datasets the query set is held out from the same distribution.

:func:`zipf_queries` generalizes the single-hot-cluster workload to a
*graded* skew: each query targets one of a set of anchor points (typically
partition centroids) drawn with Zipf-distributed rank, so partition
popularity follows 1/rank^s — the heavy-tailed shape real serving traffic
has, and the input the :mod:`repro.loadbalance` benchmark stresses
replica selection with.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix, check_positive_int

__all__ = [
    "cluster_queries",
    "uniform_queries",
    "sample_queries",
    "zipf_query_targets",
    "zipf_queries",
]


def cluster_queries(
    centroid: np.ndarray,
    n_queries: int,
    compactness: float = 0.01,
    domain: float = 100.0,
    seed: int = 0,
) -> np.ndarray:
    """Uniform queries inside a single cluster, per the paper's SYN setup.

    ``compactness`` is the half-width of the uniform box around the cluster
    centroid as a fraction of the domain edge (paper value 0.01).
    """
    check_positive_int(n_queries, "n_queries")
    centroid = np.asarray(centroid, dtype=np.float64).ravel()
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC1]))
    half = compactness * domain
    Q = rng.uniform(centroid - half, centroid + half, size=(n_queries, centroid.shape[0]))
    return np.ascontiguousarray(Q, dtype=np.float32)


def uniform_queries(
    n_queries: int, dim: int, low: float = 0.0, high: float = 100.0, seed: int = 0
) -> np.ndarray:
    """Uniform queries over the whole domain (balanced workload baseline)."""
    check_positive_int(n_queries, "n_queries")
    check_positive_int(dim, "dim")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC2]))
    return np.ascontiguousarray(rng.uniform(low, high, size=(n_queries, dim)), dtype=np.float32)


def sample_queries(
    X: np.ndarray, n_queries: int, noise_scale: float = 0.0, seed: int = 0
) -> np.ndarray:
    """Hold-out-style queries: sampled dataset points with optional jitter.

    This is how the descriptor-corpus query sets behave (queries drawn from
    the same distribution as the base vectors).  With ``noise_scale > 0``
    each sampled point is perturbed by Gaussian noise scaled to that
    multiple of the dataset's per-coordinate std.
    """
    X = check_matrix(X, "X")
    check_positive_int(n_queries, "n_queries")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC3]))
    idx = rng.choice(len(X), size=n_queries, replace=n_queries > len(X))
    Q = X[idx].astype(np.float64)
    if noise_scale > 0:
        Q = Q + rng.normal(0.0, noise_scale * X.std(axis=0, dtype=np.float64), size=Q.shape)
    return np.ascontiguousarray(Q, dtype=np.float32)


def zipf_query_targets(
    n_queries: int, n_targets: int, skew: float, seed: int = 0
) -> np.ndarray:
    """Zipf-distributed target indices: P(target i) ∝ 1/(i+1)^skew.

    ``skew = 0`` degenerates to the uniform distribution; larger exponents
    concentrate mass on the low-index targets (at s = 1.1 over 16 targets,
    target 0 draws ~29% of the queries).  Targets are indexed by *rank* —
    callers decide what rank maps to (the benchmark permutes partition ids
    by seed so the hot partition isn't always partition 0).
    """
    check_positive_int(n_queries, "n_queries")
    check_positive_int(n_targets, "n_targets")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    weights = 1.0 / np.arange(1, n_targets + 1, dtype=np.float64) ** skew
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC4]))
    return rng.choice(n_targets, size=n_queries, p=weights / weights.sum())


def zipf_queries(
    anchors: np.ndarray,
    n_queries: int,
    skew: float = 1.1,
    compactness: float = 0.01,
    scale: float | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Skewed workload: each query lands in a tight box around an anchor
    point whose *rank* is Zipf-distributed (anchor row order = rank order;
    permute the rows to move the hot spot).

    ``anchors`` is typically the fitted system's per-partition centroids,
    so the routing layer sends ~1/rank^s of the batch toward each
    partition.  ``compactness`` is the half-width of the uniform box as a
    fraction of ``scale`` (default: the anchors' largest coordinate
    spread), matching :func:`cluster_queries`' convention.  Returns a
    float32 (n_queries, dim) matrix; also see :func:`zipf_query_targets`
    for the raw rank draw.
    """
    anchors = check_matrix(anchors, "anchors")
    targets = zipf_query_targets(n_queries, len(anchors), skew, seed=seed)
    if scale is None:
        spread = anchors.max(axis=0) - anchors.min(axis=0)
        scale = float(spread.max()) if len(anchors) > 1 and spread.max() > 0 else 1.0
    half = compactness * scale
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC5]))
    jitter = rng.uniform(-half, half, size=(n_queries, anchors.shape[1]))
    return np.ascontiguousarray(anchors[targets].astype(np.float64) + jitter, dtype=np.float32)
