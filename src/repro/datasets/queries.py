"""Query-set generation.

The paper generates queries for the SYN datasets "using uniform distribution
in a single cluster with a compactness factor of 0.01" — i.e. all queries
land inside one tight region, which is precisely the workload that creates
the cross-partition load imbalance that Fig. 4 studies.  For descriptor
datasets the query set is held out from the same distribution.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["cluster_queries", "uniform_queries", "sample_queries"]


def cluster_queries(
    centroid: np.ndarray,
    n_queries: int,
    compactness: float = 0.01,
    domain: float = 100.0,
    seed: int = 0,
) -> np.ndarray:
    """Uniform queries inside a single cluster, per the paper's SYN setup.

    ``compactness`` is the half-width of the uniform box around the cluster
    centroid as a fraction of the domain edge (paper value 0.01).
    """
    check_positive_int(n_queries, "n_queries")
    centroid = np.asarray(centroid, dtype=np.float64).ravel()
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC1]))
    half = compactness * domain
    Q = rng.uniform(centroid - half, centroid + half, size=(n_queries, centroid.shape[0]))
    return np.ascontiguousarray(Q, dtype=np.float32)


def uniform_queries(
    n_queries: int, dim: int, low: float = 0.0, high: float = 100.0, seed: int = 0
) -> np.ndarray:
    """Uniform queries over the whole domain (balanced workload baseline)."""
    check_positive_int(n_queries, "n_queries")
    check_positive_int(dim, "dim")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC2]))
    return np.ascontiguousarray(rng.uniform(low, high, size=(n_queries, dim)), dtype=np.float32)


def sample_queries(
    X: np.ndarray, n_queries: int, noise_scale: float = 0.0, seed: int = 0
) -> np.ndarray:
    """Hold-out-style queries: sampled dataset points with optional jitter.

    This is how the descriptor-corpus query sets behave (queries drawn from
    the same distribution as the base vectors).  With ``noise_scale > 0``
    each sampled point is perturbed by Gaussian noise scaled to that
    multiple of the dataset's per-coordinate std.
    """
    X = check_matrix(X, "X")
    check_positive_int(n_queries, "n_queries")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC3]))
    idx = rng.choice(len(X), size=n_queries, replace=n_queries > len(X))
    Q = X[idx].astype(np.float64)
    if noise_scale > 0:
        Q = Q + rng.normal(0.0, noise_scale * X.std(axis=0, dtype=np.float64), size=Q.shape)
    return np.ascontiguousarray(Q, dtype=np.float32)
