"""Dataset substrate: synthetic analogues of the paper's five datasets.

The paper evaluates on ANN_SIFT1B, DEEP1B, ANN_GIST1M (public descriptor
corpora) and SYN_1M / SYN_10M (MDCGen).  This environment has no network and
no room for billion-point corpora, so this package generates reduced-scale
synthetic analogues that preserve the statistics that matter to the search
algorithms (clusteredness, dimensionality, norm structure), plus the
fvecs/bvecs/ivecs file formats those corpora ship in, and exact brute-force
ground truth for recall measurement.
"""

from repro.datasets.mdcgen import MDCGenConfig, mdcgen
from repro.datasets.descriptors import (
    sift_like,
    deep_like,
    gist_like,
)
from repro.datasets.queries import (
    cluster_queries,
    uniform_queries,
    sample_queries,
    zipf_query_targets,
    zipf_queries,
)
from repro.datasets.ground_truth import brute_force_knn
from repro.datasets.formats import (
    read_fvecs,
    write_fvecs,
    read_ivecs,
    write_ivecs,
    read_bvecs,
    write_bvecs,
)
from repro.datasets.catalog import Dataset, DATASET_CATALOG, load_dataset

__all__ = [
    "MDCGenConfig",
    "mdcgen",
    "sift_like",
    "deep_like",
    "gist_like",
    "cluster_queries",
    "uniform_queries",
    "sample_queries",
    "zipf_query_targets",
    "zipf_queries",
    "brute_force_knn",
    "read_fvecs",
    "write_fvecs",
    "read_ivecs",
    "write_ivecs",
    "read_bvecs",
    "write_bvecs",
    "Dataset",
    "DATASET_CATALOG",
    "load_dataset",
]
