"""Readers and writers for the TEXMEX vector file formats.

ANN_SIFT1B / ANN_GIST1M / DEEP1B ship as ``.fvecs`` (float32), ``.bvecs``
(uint8) and ``.ivecs`` (int32 — used for ground-truth neighbor ids).  Each
record is ``<int32 dim><dim elements>``; every record in a file has the same
dimension.  Supporting these formats means a user with the real corpora can
feed them straight into this library.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "read_fvecs",
    "write_fvecs",
    "read_ivecs",
    "write_ivecs",
    "read_bvecs",
    "write_bvecs",
]


def _read_vecs(path: str | os.PathLike, elem_dtype: np.dtype, limit: int | None) -> np.ndarray:
    raw = np.fromfile(path, dtype=np.uint8)
    if raw.size == 0:
        raise ValueError(f"{path}: empty file")
    dim = int(np.frombuffer(raw[:4].tobytes(), dtype="<i4")[0])
    if dim <= 0:
        raise ValueError(f"{path}: invalid leading dimension {dim}")
    elem_size = np.dtype(elem_dtype).itemsize
    rec_bytes = 4 + dim * elem_size
    if raw.size % rec_bytes != 0:
        raise ValueError(
            f"{path}: file size {raw.size} is not a multiple of record size {rec_bytes}"
        )
    n = raw.size // rec_bytes
    if limit is not None:
        n = min(n, limit)
        raw = raw[: n * rec_bytes]
    recs = raw.reshape(n, rec_bytes)
    dims = recs[:, :4].copy().view("<i4").ravel()
    if not np.all(dims == dim):
        raise ValueError(f"{path}: inconsistent per-record dimensions")
    body = np.ascontiguousarray(recs[:, 4:])
    return body.view(np.dtype(elem_dtype).newbyteorder("<")).reshape(n, dim).astype(elem_dtype)


def _write_vecs(path: str | os.PathLike, X: np.ndarray, elem_dtype: np.dtype) -> None:
    X = np.ascontiguousarray(X, dtype=elem_dtype)
    if X.ndim != 2:
        raise ValueError(f"expected 2-D array, got shape {X.shape}")
    n, dim = X.shape
    elem_size = np.dtype(elem_dtype).itemsize
    out = np.empty((n, 4 + dim * elem_size), dtype=np.uint8)
    out[:, :4] = np.frombuffer(
        np.full(n, dim, dtype="<i4").tobytes(), dtype=np.uint8
    ).reshape(n, 4)
    out[:, 4:] = X.view(np.uint8).reshape(n, dim * elem_size)
    out.tofile(path)


def read_fvecs(path: str | os.PathLike, limit: int | None = None) -> np.ndarray:
    """Read a float32 ``.fvecs`` file into an (n, dim) array."""
    return _read_vecs(path, np.dtype(np.float32), limit)


def write_fvecs(path: str | os.PathLike, X: np.ndarray) -> None:
    _write_vecs(path, X, np.dtype(np.float32))


def read_ivecs(path: str | os.PathLike, limit: int | None = None) -> np.ndarray:
    """Read an int32 ``.ivecs`` file (e.g. ground-truth neighbor ids)."""
    return _read_vecs(path, np.dtype(np.int32), limit)


def write_ivecs(path: str | os.PathLike, X: np.ndarray) -> None:
    _write_vecs(path, X, np.dtype(np.int32))


def read_bvecs(path: str | os.PathLike, limit: int | None = None) -> np.ndarray:
    """Read a uint8 ``.bvecs`` file (the SIFT1B base vectors format)."""
    return _read_vecs(path, np.dtype(np.uint8), limit)


def write_bvecs(path: str | os.PathLike, X: np.ndarray) -> None:
    _write_vecs(path, X, np.dtype(np.uint8))
