"""MDCGen-style multidimensional cluster generator.

The paper's SYN_1M and SYN_10M datasets were produced with MDCGen (Iglesias
et al., 2019): points drawn from a configurable number of clusters, each
cluster using a Gaussian or uniform intra-cluster distribution, plus a set of
uniform outliers.  The paper used 10 clusters, a Gaussian/uniform mix, and
0.5% outliers.  This module reimplements the subset of MDCGen's behaviour the
paper exercises:

- ``n_clusters`` cluster centroids placed with a minimum-separation grid
  scatter so clusters do not collapse onto each other,
- per-cluster distribution alternating Gaussian / uniform (or fixed),
- per-cluster "compactness" controlling intra-cluster spread relative to the
  domain size,
- uniform outliers over the whole domain,
- cluster labels returned for downstream use (query generation localizes
  queries inside one cluster, §V).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["MDCGenConfig", "mdcgen"]


@dataclass(frozen=True)
class MDCGenConfig:
    """Parameters of the synthetic cluster generator.

    Defaults mirror the paper's SYN dataset settings at reduced scale: 10
    clusters, mixed Gaussian/uniform distributions, 0.5% outliers.
    """

    n_points: int = 10_000
    dim: int = 64
    n_clusters: int = 10
    #: fraction of points that are uniform outliers (paper: 5000/1M = 0.005)
    outlier_fraction: float = 0.005
    #: intra-cluster spread as a fraction of the domain edge length
    compactness: float = 0.05
    #: "gaussian", "uniform", or "mixed" (alternate per cluster, as the paper
    #: used both distributions)
    distributions: str = "mixed"
    #: relative cluster weights; None = balanced with ±25% jitter
    weights: tuple[float, ...] | None = None
    #: edge length of the hypercube domain
    domain: float = 100.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.n_points, "n_points")
        check_positive_int(self.dim, "dim")
        check_positive_int(self.n_clusters, "n_clusters")
        check_probability(self.outlier_fraction, "outlier_fraction")
        if self.compactness <= 0:
            raise ValueError(f"compactness must be positive, got {self.compactness}")
        if self.distributions not in ("gaussian", "uniform", "mixed"):
            raise ValueError(f"unknown distributions mode {self.distributions!r}")
        if self.weights is not None and len(self.weights) != self.n_clusters:
            raise ValueError(
                f"weights has {len(self.weights)} entries for {self.n_clusters} clusters"
            )


def _place_centroids(
    n_clusters: int, dim: int, domain: float, min_sep: float, rng: np.random.Generator
) -> np.ndarray:
    """Rejection-sample centroids with pairwise separation >= min_sep.

    Falls back to accepting the best candidate after a bounded number of
    tries so pathological configs (too many clusters for the domain) still
    terminate.
    """
    centroids = np.empty((n_clusters, dim), dtype=np.float64)
    placed = 0
    while placed < n_clusters:
        best, best_d = None, -1.0
        for _ in range(64):
            c = rng.uniform(0.1 * domain, 0.9 * domain, size=dim)
            if placed == 0:
                best = c
                break
            d = np.sqrt(((centroids[:placed] - c) ** 2).sum(axis=1)).min()
            if d >= min_sep:
                best = c
                break
            if d > best_d:
                best, best_d = c, d
        centroids[placed] = best
        placed += 1
    return centroids


def mdcgen(config: MDCGenConfig) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate a clustered dataset.

    Returns ``(X, labels, centroids)`` where ``labels[i]`` is the cluster of
    point ``i`` (``-1`` for outliers).  ``X`` is float32, C-contiguous.
    """
    cfg = config
    rng_centroids, rng_sizes, rng_points, rng_out = spawn_rngs(cfg.seed, 4)

    n_outliers = int(round(cfg.n_points * cfg.outlier_fraction))
    n_clustered = cfg.n_points - n_outliers

    # Cluster sizes from weights (default: balanced with jitter).
    if cfg.weights is not None:
        w = np.asarray(cfg.weights, dtype=np.float64)
    else:
        w = 1.0 + rng_sizes.uniform(-0.25, 0.25, size=cfg.n_clusters)
    w = np.maximum(w, 1e-9)
    w = w / w.sum()
    sizes = np.floor(w * n_clustered).astype(np.int64)
    # distribute the rounding remainder
    for i in range(n_clustered - int(sizes.sum())):
        sizes[i % cfg.n_clusters] += 1

    spread = cfg.compactness * cfg.domain
    centroids = _place_centroids(
        cfg.n_clusters, cfg.dim, cfg.domain, min_sep=4.0 * spread, rng=rng_centroids
    )

    chunks: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    cluster_rngs = spawn_rngs(rng_points, cfg.n_clusters)
    for c in range(cfg.n_clusters):
        n_c = int(sizes[c])
        if n_c == 0:
            continue
        crng = cluster_rngs[c]
        if cfg.distributions == "gaussian" or (cfg.distributions == "mixed" and c % 2 == 0):
            pts = crng.normal(loc=centroids[c], scale=spread, size=(n_c, cfg.dim))
        else:
            half = spread * np.sqrt(3.0)  # match Gaussian variance
            pts = crng.uniform(centroids[c] - half, centroids[c] + half, size=(n_c, cfg.dim))
        chunks.append(pts)
        labels.append(np.full(n_c, c, dtype=np.int64))

    if n_outliers:
        chunks.append(rng_out.uniform(0.0, cfg.domain, size=(n_outliers, cfg.dim)))
        labels.append(np.full(n_outliers, -1, dtype=np.int64))

    X = np.concatenate(chunks).astype(np.float32)
    y = np.concatenate(labels)
    # Shuffle so downstream equi-partitioning does not see cluster order.
    perm = rng_out.permutation(len(X))
    return np.ascontiguousarray(X[perm]), y[perm], centroids.astype(np.float32)
