"""Dataset catalog mirroring Table I at reduced scale.

Each entry knows how to synthesize its base vectors, query set, and exact
ground truth.  Names match the paper; point counts are scaled down by the
``scale`` argument of :func:`load_dataset` (benchmarks use small scales, the
simulated-cluster cost model extrapolates per-core work to paper scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.descriptors import deep_like, gist_like, sift_like
from repro.datasets.ground_truth import brute_force_knn
from repro.datasets.mdcgen import MDCGenConfig, mdcgen
from repro.datasets.queries import cluster_queries, sample_queries

__all__ = ["Dataset", "DatasetSpec", "DATASET_CATALOG", "load_dataset"]


@dataclass
class Dataset:
    """A materialized dataset: base vectors, queries, exact ground truth."""

    name: str
    X: np.ndarray
    Q: np.ndarray
    gt_dists: np.ndarray
    gt_ids: np.ndarray
    #: point count of the paper's original corpus (for reporting)
    paper_n_points: int
    #: dimension (same as the paper's)
    dim: int

    @property
    def n_points(self) -> int:
        return self.X.shape[0]

    @property
    def n_queries(self) -> int:
        return self.Q.shape[0]


@dataclass(frozen=True)
class DatasetSpec:
    name: str
    paper_n_points: int
    dim: int
    paper_n_queries: int
    #: (n_points, n_queries, seed) -> (X, Q)
    generate: Callable[[int, int, int], tuple[np.ndarray, np.ndarray]]


def _gen_sift(n: int, nq: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    X = sift_like(n, seed=seed)
    Q = sample_queries(X, nq, noise_scale=0.05, seed=seed + 1)
    return X, Q


def _gen_deep(n: int, nq: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    X = deep_like(n, seed=seed)
    Q = sample_queries(X, nq, noise_scale=0.05, seed=seed + 1)
    # renormalize queries onto the sphere like real DEEP queries
    norms = np.linalg.norm(Q.astype(np.float64), axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return X, np.ascontiguousarray(Q / norms, dtype=np.float32)


def _gen_gist(n: int, nq: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    X = gist_like(n, seed=seed)
    Q = sample_queries(X, nq, noise_scale=0.05, seed=seed + 1)
    return X, Q


def _gen_syn(dim: int):
    def gen(n: int, nq: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
        outliers = 0.005  # 5000/1M and 50000/10M in the paper
        X, labels, centroids = mdcgen(
            MDCGenConfig(n_points=n, dim=dim, n_clusters=10, outlier_fraction=outliers, seed=seed)
        )
        # paper: queries uniform in a single cluster, compactness 0.01
        Q = cluster_queries(centroids[0], nq, compactness=0.01, seed=seed + 1)
        return X, Q

    return gen


DATASET_CATALOG: dict[str, DatasetSpec] = {
    "ANN_SIFT1B": DatasetSpec("ANN_SIFT1B", 1_000_000_000, 128, 10_000, _gen_sift),
    "DEEP1B": DatasetSpec("DEEP1B", 1_000_000_000, 96, 10_000, _gen_deep),
    "ANN_GIST1M": DatasetSpec("ANN_GIST1M", 1_000_000, 960, 1_000, _gen_gist),
    "SYN_1M": DatasetSpec("SYN_1M", 1_000_000, 512, 10_000, _gen_syn(512)),
    "SYN_10M": DatasetSpec("SYN_10M", 10_000_000, 256, 10_000, _gen_syn(256)),
}


def load_dataset(
    name: str,
    n_points: int = 20_000,
    n_queries: int = 200,
    k: int = 10,
    seed: int = 0,
) -> Dataset:
    """Materialize a reduced-scale analogue of a Table I dataset.

    ``n_points``/``n_queries`` control the reduced scale; ground truth is
    exact brute force over the generated base vectors.
    """
    try:
        spec = DATASET_CATALOG[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_CATALOG)}") from None
    X, Q = spec.generate(n_points, n_queries, seed)
    gt_d, gt_i = brute_force_knn(X, Q, k)
    return Dataset(
        name=name,
        X=X,
        Q=Q,
        gt_dists=gt_d,
        gt_ids=gt_i,
        paper_n_points=spec.paper_n_points,
        dim=spec.dim,
    )
