"""Graph diagnostics for HNSW indexes.

Used by tests (connectivity and degree invariants) and by the ablation
benches (how M changes the graph, which explains the Fig. 6 trade-off).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.hnsw.index import HnswIndex

__all__ = ["graph_stats", "layer_connectivity"]


def graph_stats(index: HnswIndex) -> dict:
    """Per-layer summary: node counts, mean/max out-degree, link symmetry."""
    layers = []
    for lv in range(index.max_level + 1):
        layer = index._links[lv]
        degrees = np.array([len(v) for v in layer.values()], dtype=np.int64)
        asym = 0
        for node, nbrs in layer.items():
            for nb in nbrs:
                if node not in layer.get(nb, ()):
                    asym += 1
        layers.append(
            {
                "level": lv,
                "n_nodes": len(layer),
                "mean_degree": float(degrees.mean()) if len(degrees) else 0.0,
                "max_degree": int(degrees.max()) if len(degrees) else 0,
                "asymmetric_links": asym,
            }
        )
    return {
        "n_points": len(index),
        "max_level": index.max_level,
        "entry_point": index.entry_point,
        "layers": layers,
    }


def layer_connectivity(index: HnswIndex, level: int = 0) -> float:
    """Fraction of the layer reachable from the entry point by BFS.

    Search correctness depends on this being ~1.0 at layer 0: any
    unreachable island can never be returned by a graph search.
    """
    if len(index) == 0:
        return 1.0
    layer = index._links[level]
    if not layer:
        return 0.0
    start = index.entry_point
    if start not in layer:
        start = next(iter(layer))
    seen = {start}
    dq = deque([start])
    while dq:
        u = dq.popleft()
        for v in layer.get(u, ()):
            if v not in seen:
                seen.add(v)
                dq.append(v)
    return len(seen) / len(layer)
