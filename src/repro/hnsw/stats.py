"""Graph diagnostics for HNSW indexes.

Used by tests (connectivity and degree invariants) and by the ablation
benches (how M changes the graph, which explains the Fig. 6 trade-off).
Operates on the flat adjacency arrays of :class:`~repro.hnsw.index.HnswIndex`
(``_nbrs``/``_cnts``; see that module's docstring for the layout).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.hnsw.index import HnswIndex

__all__ = ["graph_stats", "layer_connectivity"]


def graph_stats(index: HnswIndex) -> dict:
    """Per-layer summary: node counts, mean/max out-degree, link symmetry."""
    layers = []
    for lv in range(index.max_level + 1):
        nodes = index.nodes_at_level(lv)
        degrees = index._cnts[lv][nodes]
        adjacency = {
            int(node): index.neighbors(int(node), lv) for node in nodes
        }
        asym = 0
        for node, nbrs in adjacency.items():
            for nb in nbrs:
                if node not in adjacency.get(nb, ()):
                    asym += 1
        layers.append(
            {
                "level": lv,
                "n_nodes": int(len(nodes)),
                "mean_degree": float(degrees.mean()) if len(degrees) else 0.0,
                "max_degree": int(degrees.max()) if len(degrees) else 0,
                "asymmetric_links": asym,
            }
        )
    return {
        "n_points": len(index),
        "max_level": index.max_level,
        "entry_point": index.entry_point,
        "layers": layers,
    }


def layer_connectivity(index: HnswIndex, level: int = 0) -> float:
    """Fraction of the layer reachable from the entry point by BFS.

    Search correctness depends on this being ~1.0 at layer 0: any
    unreachable island can never be returned by a graph search.
    """
    if len(index) == 0:
        return 1.0
    nodes = index.nodes_at_level(level)
    if not len(nodes):
        return 0.0
    start = index.entry_point
    if index.node_level(start) < level:
        start = int(nodes[0])
    nbrs, cnts = index._nbrs[level], index._cnts[level]
    seen = np.zeros(len(index), dtype=bool)
    seen[start] = True
    n_seen = 1
    dq = deque([start])
    while dq:
        u = dq.popleft()
        for v in nbrs[u, : cnts[u]].tolist():
            if not seen[v]:
                seen[v] = True
                n_seen += 1
                dq.append(v)
    return n_seen / len(nodes)
