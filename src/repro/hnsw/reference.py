"""Reference HNSW implementation: the dict-based pre-refactor backend.

This is the original ``HnswIndex`` hot path — per-level ``dict[int,
list[int]]`` adjacency, a Python ``set`` for the visited set, and the
``MinHeap``/``MaxHeap`` wrappers — kept as a test oracle for the flat
array backend in :mod:`repro.hnsw.index`.  The equivalence tests build the
same dataset into both and assert bit-identical distances, ids and
``n_dist_evals``; any hot-path "optimization" that changes a single
comparison shows up as a hard failure there, not as a recall drift.

It shares :mod:`repro.hnsw.kernels` and :mod:`repro.hnsw.select` with the
production backend so the arithmetic is identical by construction; only
the data structures differ.  Deliberately unoptimized and without
serialization (batching exists only as the row-by-row
:class:`~repro.protocols.Searcher` fallback) — use
:class:`~repro.hnsw.index.HnswIndex` for anything but tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hnsw.kernels import fast_kernel_for, fast_self_pairwise_for
from repro.hnsw.params import HnswParams
from repro.hnsw.select import select_heuristic, select_simple
from repro.metrics import Metric, get_metric
from repro.protocols import check_filter_mask
from repro.utils.heaps import MaxHeap, MinHeap
from repro.utils.validation import check_matrix, check_positive_int, check_vector

__all__ = ["ReferenceHnswIndex"]


class ReferenceHnswIndex:
    """Dict-of-lists HNSW graph; the flat backend's ground truth."""

    def __init__(
        self,
        dim: int,
        params: HnswParams | None = None,
        metric: str | Metric = "l2",
        capacity: int = 1024,
    ) -> None:
        check_positive_int(dim, "dim")
        self.dim = dim
        self.params = params or HnswParams()
        self.metric = get_metric(metric)
        self._X = np.empty((max(capacity, 16), dim), dtype=np.float32)
        self._ext_ids: list[int] = []
        self._n = 0
        #: per-level adjacency: _links[level][node] -> list[int]
        self._links: list[dict[int, list[int]]] = []
        self._node_level: list[int] = []
        self._entry: int | None = None
        self._rng = np.random.default_rng(np.random.SeedSequence([self.params.seed, 0x45F]))
        #: monotone distance-evaluation counter
        self.n_dist_evals = 0
        self._fast_kernel = fast_kernel_for(self.metric.name)
        self._fast_self_pairwise = fast_self_pairwise_for(self.metric.name)

    # -- basic introspection ------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def max_level(self) -> int:
        """Top layer index (-1 when empty)."""
        return len(self._links) - 1

    @property
    def entry_point(self) -> int | None:
        return self._entry

    def neighbors(self, node: int, level: int) -> list[int]:
        """Adjacency list of ``node`` at ``level`` (internal ids)."""
        return list(self._links[level].get(node, ()))

    def external_id(self, node: int) -> int:
        return self._ext_ids[node]

    @property
    def points(self) -> np.ndarray:
        """View of the stored points (n, dim)."""
        return self._X[: self._n]

    # -- distance helpers ------------------------------------------------------

    def _dist_one(self, q: np.ndarray, node: int) -> float:
        self.n_dist_evals += 1
        if self._fast_kernel is not None:
            return float(self._fast_kernel(q, self._X[node : node + 1])[0])
        return float(self.metric.one_to_many(q, self._X[node : node + 1])[0])

    def _dist_many(self, q: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        self.n_dist_evals += len(nodes)
        if self._fast_kernel is not None:
            return self._fast_kernel(q, self._X[nodes])
        return self.metric.one_to_many(q, self._X[nodes])

    def _dist_between(self, node: int, others: np.ndarray) -> np.ndarray:
        self.n_dist_evals += len(others)
        if self._fast_kernel is not None:
            return self._fast_kernel(self._X[node], self._X[others])
        return self.metric.one_to_many(self._X[node], self._X[others])

    def _cross_dists(self, ids: np.ndarray) -> np.ndarray:
        self.n_dist_evals += len(ids) * (len(ids) - 1) // 2
        sub = self._X[ids]
        if self._fast_self_pairwise is not None:
            return self._fast_self_pairwise(sub)
        return self.metric.pairwise(sub, sub)

    # -- construction ------------------------------------------------------------

    def _grow(self, need: int) -> None:
        if need <= self._X.shape[0]:
            return
        cap = max(need, self._X.shape[0] * 2)
        newX = np.empty((cap, self.dim), dtype=np.float32)
        newX[: self._n] = self._X[: self._n]
        self._X = newX

    def _sample_level(self) -> int:
        if self.params.flat:
            return 0
        u = self._rng.random()
        return int(-np.log(max(u, 1e-300)) * self.params.level_mult)

    def add(self, vector: np.ndarray, ext_id: int | None = None) -> int:
        """Insert one point; returns its internal id."""
        q = check_vector(vector, "vector", dim=self.dim)
        self._grow(self._n + 1)
        node = self._n
        self._X[node] = q
        self._n += 1
        self._ext_ids.append(int(ext_id) if ext_id is not None else node)

        level = self._sample_level()
        self._node_level.append(level)
        while len(self._links) <= level:
            self._links.append({})
        for lv in range(level + 1):
            self._links[lv].setdefault(node, [])

        if self._entry is None:
            self._entry = node
            return node

        ep = self._entry
        top = self._node_level[ep]
        qf = self._X[node]

        ep_dist = self._dist_one(qf, ep)
        for lv in range(top, level, -1):
            ep, ep_dist = self._greedy_step(qf, ep, ep_dist, lv)

        efc = self.params.ef_construction
        for lv in range(min(top, level), -1, -1):
            w = self._search_layer(qf, [(ep_dist, ep)], efc, lv)
            m = self.params.M0 if lv == 0 else self.params.M
            chosen = self._select(qf, w.sorted_items(), m, lv)
            self._links[lv][node] = [c for _, c in chosen]
            for dist_qc, c in chosen:
                nbrs = self._links[lv].setdefault(c, [])
                nbrs.append(node)
                limit = self.params.M0 if lv == 0 else self.params.M
                if len(nbrs) > limit:
                    self._shrink(c, lv, limit)
            best = min(chosen) if chosen else (ep_dist, ep)
            ep_dist, ep = best

        if level > top:
            self._entry = node
        return node

    def add_items(self, X: np.ndarray, ids: Sequence[int] | None = None) -> None:
        """Bulk insert (row order preserved)."""
        X = check_matrix(X, "X")
        if X.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {X.shape[1]}")
        if ids is not None and len(ids) != X.shape[0]:
            raise ValueError(f"{len(ids)} ids for {X.shape[0]} points")
        for i in range(X.shape[0]):
            self.add(X[i], None if ids is None else ids[i])

    def _shrink(self, node: int, level: int, limit: int) -> None:
        nbrs = np.asarray(self._links[level][node], dtype=np.int64)
        dists = self._dist_between(node, nbrs)
        cands = [(float(d), int(i)) for d, i in zip(dists, nbrs)]
        chosen = self._select(self._X[node], cands, limit, level)
        self._links[level][node] = [c for _, c in chosen]

    def _select(
        self,
        q: np.ndarray,
        candidates: list[tuple[float, int]],
        m: int,
        level: int,
    ) -> list[tuple[float, int]]:
        if not self.params.select_heuristic:
            return select_simple(candidates, m)
        cands = sorted(candidates)
        if self.params.extend_candidates:
            seen = {c for _, c in cands}
            extras: list[int] = []
            links = self._links[level]
            for _, c in list(cands):
                for nb in links.get(c, ()):
                    if nb not in seen:
                        seen.add(nb)
                        extras.append(nb)
            if extras:
                arr = np.asarray(extras, dtype=np.int64)
                for d, i in zip(self._dist_many(q, arr), arr):
                    cands.append((float(d), int(i)))
                cands.sort()
        ids = np.fromiter((c for _, c in cands), dtype=np.int64, count=len(cands))
        cross = self._cross_dists(ids)
        return select_heuristic(cands, m, cross, keep_pruned=self.params.keep_pruned)

    # -- search ------------------------------------------------------------------

    def _greedy_step(
        self, q: np.ndarray, ep: int, ep_dist: float, level: int
    ) -> tuple[int, float]:
        improved = True
        while improved:
            improved = False
            nbrs = self._links[level].get(ep)
            if not nbrs:
                break
            arr = np.asarray(nbrs, dtype=np.int64)
            d = self._dist_many(q, arr)
            j = int(np.argmin(d))
            if d[j] < ep_dist:
                ep, ep_dist = int(arr[j]), float(d[j])
                improved = True
        return ep, ep_dist

    def _search_layer(
        self,
        q: np.ndarray,
        entry: list[tuple[float, int]],
        ef: int,
        level: int,
    ) -> MaxHeap:
        """SEARCH-LAYER (HNSW paper Alg. 2): beam search of width ``ef``."""
        visited = {c for _, c in entry}
        candidates = MinHeap(entry)
        results = MaxHeap(entry)
        links = self._links[level]
        while candidates:
            c_dist, c = candidates.pop()
            if c_dist > results.max_dist() and len(results) >= ef:
                break
            nbrs = links.get(c)
            if not nbrs:
                continue
            fresh = [n for n in nbrs if n not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            arr = np.asarray(fresh, dtype=np.int64)
            dists = self._dist_many(q, arr)
            bound = results.max_dist()
            for d, n in zip(dists, arr):
                d = float(d)
                if len(results) < ef or d < bound:
                    candidates.push(d, int(n))
                    results.push(d, int(n))
                    if len(results) > ef:
                        results.pop()
                    bound = results.max_dist()
        return results

    def _search_layer_filtered(
        self,
        q: np.ndarray,
        entry: list[tuple[float, int]],
        ef: int,
        level: int,
        allowed: np.ndarray,
    ) -> MaxHeap:
        """SEARCH-LAYER over a row mask: filtered results, unfiltered frontier.

        The reference twin of ``HnswIndex._search_layer_filtered`` — masked
        nodes conduct the walk (they stay in the candidate frontier) but
        only ``allowed`` nodes may enter the result heap.
        """
        visited = {c for _, c in entry}
        candidates = MinHeap(entry)
        results = MaxHeap([(d, n) for d, n in entry if allowed[n]])
        links = self._links[level]
        while candidates:
            c_dist, c = candidates.pop()
            full = len(results) >= ef
            bound = results.max_dist() if len(results) else np.inf
            if full and c_dist > bound:
                break
            nbrs = links.get(c)
            if not nbrs:
                continue
            fresh = [n for n in nbrs if n not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            arr = np.asarray(fresh, dtype=np.int64)
            dists = self._dist_many(q, arr)
            for d, n in zip(dists, arr):
                d = float(d)
                if full and d >= bound:
                    continue
                candidates.push(d, int(n))
                if allowed[n]:
                    results.push(d, int(n))
                    if len(results) > ef:
                        results.pop()
                    full = len(results) >= ef
                    bound = results.max_dist()
        return results

    def knn_search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        *,
        filter: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN; returns (distances, external ids), closest first.

        ``filter``: optional boolean mask over insertion-order rows
        (= internal node ids); ``filter=None`` is bit-identical to the
        unfiltered call.
        """
        check_positive_int(k, "k")
        q = check_vector(query, "query", dim=self.dim)
        if self._n == 0:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        mask = None if filter is None else check_filter_mask(filter, self._n)
        ef = max(ef or self.params.ef_search, k)
        ep = self._entry
        ep_dist = self._dist_one(q, ep)
        for lv in range(self.max_level, 0, -1):
            ep, ep_dist = self._greedy_step(q, ep, ep_dist, lv)
        if mask is None:
            w = self._search_layer(q, [(ep_dist, ep)], ef, 0)
        else:
            w = self._search_layer_filtered(q, [(ep_dist, ep)], ef, 0, mask)
        pairs = w.sorted_items()[:k]
        d = np.array([p[0] for p in pairs], dtype=np.float64)
        ids = np.array([self._ext_ids[p[1]] for p in pairs], dtype=np.int64)
        return d, ids

    def knn_search_batch(
        self,
        Q: np.ndarray,
        k: int,
        ef: int | None = None,
        *,
        filter: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Padded (n_queries, k) batch search (the :class:`~repro.protocols.Searcher`
        contract); each row is exactly ``knn_search(Q[i], k, ef, filter=...)``."""
        from repro.protocols import batch_from_single

        Q = check_matrix(Q, "Q")
        if Q.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {Q.shape[1]}")
        return batch_from_single(
            lambda q, kk, **kw: self.knn_search(q, kk, ef=ef, **kw),
            Q,
            k,
            filter=filter,
        )
