"""The HNSW index: construction and search, on flat array storage.

Follows Malkov & Yashunin's Algorithms 1 (INSERT), 2 (SEARCH-LAYER),
4 (SELECT-NEIGHBORS-HEURISTIC) and 5 (K-NN-SEARCH).  Distance evaluations
are counted in ``self.n_dist_evals`` (monotone counter) so callers — the
simulated workers — can charge exact virtual time for the work an operation
performed:

    before = index.n_dist_evals
    dists, ids = index.knn_search(q, k)
    evals = index.n_dist_evals - before

Storage layout (the perf-critical part; see docs/performance.md):

- points are one float32 matrix ``_X`` of shape (capacity, dim);
- adjacency is CSR-with-fixed-stride: per level, an int32 matrix
  ``_nbrs[lv]`` of shape (capacity, limit+1) plus an int32 count vector
  ``_cnts[lv]``, where ``limit`` is M0 on layer 0 and M above.  A node's
  neighbor list is the slice ``_nbrs[lv][node, :_cnts[lv][node]]`` — no
  dict lookups, no list objects, and the +1 slot holds the transient
  over-full list between a link append and the ``_shrink`` that follows;
- the visited set of SEARCH-LAYER is an epoch-stamped int64 array
  ``_visit_stamp``: a node is visited iff its stamp equals the current
  search's epoch, so "clearing" the set is one integer increment instead
  of allocating a fresh ``set`` per search (int64 so the stamp can never
  wrap back onto a live epoch);
- membership of a node in layer ``lv`` is simply ``_node_level[node] >= lv``.

The traversal loops run on plain :mod:`heapq` lists of ``(dist, id)``
tuples — the same tuple ordering as :class:`~repro.utils.heaps.MinHeap` /
``MaxHeap``, so pop order and tie-breaking are unchanged — and convert each
kernel result once with ``.tolist()`` instead of calling ``float()``/
``int()`` per element.  The dict-based pre-refactor implementation survives
as :class:`~repro.hnsw.reference.ReferenceHnswIndex`, and the equivalence
tests pin this backend to it bit for bit (same distances, same ids, same
``n_dist_evals``).
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heapify, heappop, heappush, heapreplace
from typing import Sequence

import numpy as np

from repro.hnsw.kernels import (
    buffered_cross_row_for,
    buffered_kernel_for,
    fast_cross_row_for,
    fast_kernel_for,
    fast_self_pairwise_for,
    fast_self_row_for,
)
from repro.hnsw.native import native_build_for, native_search_layer_for
from repro.hnsw.params import HnswParams
from repro.hnsw.select import select_heuristic, select_heuristic_rows, select_simple
from repro.metrics import Metric, get_metric
from repro.protocols import check_filter_mask
from repro.utils.validation import check_matrix, check_positive_int, check_vector

__all__ = ["HnswIndex"]

#: number of int64 fields in the saved ``meta`` array (full param set);
#: legacy files carry only the first 6 (see ``load``)
_META_LEN = 10


class HnswIndex:
    """Hierarchical navigable small-world graph over a point matrix.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    params:
        :class:`HnswParams` (M, ef_construction, ...).
    metric:
        Metric name or instance; any dissimilarity works (HNSW does not
        need the triangle inequality).
    capacity:
        Initial number of point slots; the buffers double on demand, so
        passing the final size up front avoids regrow copies during a
        bulk build.
    """

    def __init__(
        self,
        dim: int,
        params: HnswParams | None = None,
        metric: str | Metric = "l2",
        capacity: int = 1024,
    ) -> None:
        check_positive_int(dim, "dim")
        self.dim = dim
        self.params = params or HnswParams()
        self.metric = get_metric(metric)
        cap = max(capacity, 16)
        self._X = np.empty((cap, dim), dtype=np.float32)
        self._ext = np.empty(cap, dtype=np.int64)
        self._node_level = np.empty(cap, dtype=np.int32)
        self._visit_stamp = np.zeros(cap, dtype=np.int64)
        self._visit_epoch = 0
        self._n = 0
        #: per-level adjacency: _nbrs[lv] is (capacity, limit+1) int32,
        #: _cnts[lv] is (capacity,) int32; see the module docstring
        self._nbrs: list[np.ndarray] = []
        self._cnts: list[np.ndarray] = []
        self._entry: int | None = None
        self._rng = np.random.default_rng(np.random.SeedSequence([self.params.seed, 0x45F]))
        #: monotone distance-evaluation counter
        self.n_dist_evals = 0
        #: monotone link-shrink counter (one per over-full list re-selection)
        self.n_shrink_ops = 0
        # Fast float32 kernels for the metrics whose formula we can inline;
        # avoids the generic path's float64 conversion copy on every call,
        # which dominates build time (profiling-driven, per the HPC guides).
        self._fast_kernel = fast_kernel_for(self.metric.name)
        self._fast_self_pairwise = fast_self_pairwise_for(self.metric.name)
        self._fast_self_row = fast_self_row_for(self.metric.name)
        self._fast_cross_row = fast_cross_row_for(self.metric.name)
        # allocation-free traversal kernel; degree cap bounds the row count
        self._buf_kernel = buffered_kernel_for(
            self.metric.name, dim, self.params.M0 + 1
        )
        self._buf_cross_row = buffered_cross_row_for(
            self.metric.name, dim, self.params.M0 + 1
        )
        # Compiled SEARCH-LAYER (see _hotpath.c): enabled only after a
        # runtime self-check proves the C distance kernel bit-identical to
        # the numpy kernels for this metric/dim; otherwise None and every
        # traversal stays on the python path below.
        self._native = native_search_layer_for(self.metric.name, dim)
        self._native_sqrt = 1 if self.metric.name == "l2" else 0
        self._native_scratch: tuple | None = None
        # Compiled INSERT (greedy descent + beam search + selection +
        # shrink in one C call per batch): additionally requires the
        # cdist-compatible double kernel to pass its self-check, and
        # candidate extension off (that path walks python-side sets).
        self._native_build = (
            native_build_for(self.metric.name, dim)
            if not self.params.extend_candidates
            else None
        )
        self._native_build_scratch: dict | None = None
        # Incremental shrink cache (see _shrink): per level, node ->
        # (ids, dists, kept_flags, kept_rows, kept_positions) describing the
        # last selection over that node's neighbor list.  Valid only when
        # selection depends on nothing but the candidate list itself and the
        # metric admits bit-identical single-row pairwise extension.
        self._shrink_caching = (
            self.params.select_heuristic
            and not self.params.extend_candidates
            and self._fast_cross_row is not None
        )
        self._shrink_cache: list[dict[int, tuple]] = []
        self._shrink_cache_cap: list[int] = []

    # -- basic introspection ------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def max_level(self) -> int:
        """Top layer index (-1 when empty)."""
        return len(self._nbrs) - 1

    @property
    def entry_point(self) -> int | None:
        return self._entry

    @property
    def native_search_active(self) -> bool:
        """True when the compiled SEARCH-LAYER passed its bit-identity gate."""
        return self._native is not None

    @property
    def native_build_active(self) -> bool:
        """True when the compiled INSERT path passed its bit-identity gates."""
        return self._native_build is not None

    def neighbors(self, node: int, level: int) -> list[int]:
        """Adjacency list of ``node`` at ``level`` (internal ids)."""
        if int(self._node_level[node]) < level:
            return []
        cnt = int(self._cnts[level][node])
        return self._nbrs[level][node, :cnt].tolist()

    def nodes_at_level(self, level: int) -> np.ndarray:
        """Internal ids of the nodes present on ``level`` (ascending)."""
        return np.flatnonzero(self._node_level[: self._n] >= level)

    def node_level(self, node: int) -> int:
        """Top layer ``node`` appears on."""
        return int(self._node_level[node])

    def external_id(self, node: int) -> int:
        return int(self._ext[node])

    def vector(self, node: int) -> np.ndarray:
        return self._X[node]

    @property
    def points(self) -> np.ndarray:
        """View of the stored points (n, dim)."""
        return self._X[: self._n]

    # -- distance helpers ------------------------------------------------------

    def _dist_one(self, q: np.ndarray, node: int) -> float:
        self.n_dist_evals += 1
        if self._fast_kernel is not None:
            return float(self._fast_kernel(q, self._X[node : node + 1])[0])
        return float(self.metric.one_to_many(q, self._X[node : node + 1])[0])

    def _dist_many(self, q: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        self.n_dist_evals += len(nodes)
        if self._fast_kernel is not None:
            return self._fast_kernel(q, self._X[nodes])
        return self.metric.one_to_many(q, self._X[nodes])

    # -- construction ------------------------------------------------------------

    def _grow(self, need: int) -> None:
        cap = self._X.shape[0]
        if need <= cap:
            return
        cap = max(need, cap * 2)
        n = self._n
        for name in ("_X", "_ext", "_node_level"):
            old = getattr(self, name)
            new = np.empty((cap,) + old.shape[1:], dtype=old.dtype)
            new[:n] = old[:n]
            setattr(self, name, new)
        # stamps start at 0; epochs start at 1, so new slots read unvisited
        stamp = np.zeros(cap, dtype=np.int64)
        stamp[:n] = self._visit_stamp[:n]
        self._visit_stamp = stamp
        for lv in range(len(self._nbrs)):
            nbrs = np.empty((cap, self._nbrs[lv].shape[1]), dtype=np.int32)
            nbrs[:n] = self._nbrs[lv][:n]
            cnts = np.zeros(cap, dtype=np.int32)
            cnts[:n] = self._cnts[lv][:n]
            self._nbrs[lv], self._cnts[lv] = nbrs, cnts

    def _ensure_level(self, level: int) -> None:
        cap = self._X.shape[0]
        while len(self._nbrs) <= level:
            limit = self.params.M0 if len(self._nbrs) == 0 else self.params.M
            self._nbrs.append(np.empty((cap, limit + 1), dtype=np.int32))
            self._cnts.append(np.zeros(cap, dtype=np.int32))
            self._shrink_cache.append({})
            # bound each level's cache memory (entries are O(limit^2) floats)
            self._shrink_cache_cap.append(max(1024, (1 << 28) // (8 * (limit + 1) ** 2)))

    def _sample_level(self) -> int:
        if self.params.flat:
            return 0  # plain NSW: everything lives on one layer
        u = self._rng.random()
        # skiplist-style exponential promotion, mL = 1/ln(M)
        return int(-np.log(max(u, 1e-300)) * self.params.level_mult)

    def add(self, vector: np.ndarray, ext_id: int | None = None) -> int:
        """Insert one point; returns its internal id."""
        q = check_vector(vector, "vector", dim=self.dim)
        if self._native_build is not None:
            node = self._n
            self._grow(node + 1)
            self._add_items_native(q[np.newaxis, :], None if ext_id is None else [ext_id])
            return node
        return self._add_prepared(q, ext_id)

    def _add_prepared(self, q: np.ndarray, ext_id: int | None) -> int:
        """INSERT (paper Alg. 1) for an already-validated float32 vector."""
        self._grow(self._n + 1)
        node = self._n
        self._X[node] = q
        self._n += 1
        self._ext[node] = int(ext_id) if ext_id is not None else node

        level = self._sample_level()
        self._node_level[node] = level
        self._ensure_level(level)

        if self._entry is None:
            self._entry = node
            return node

        ep = self._entry
        top = int(self._node_level[ep])
        qf = self._X[node]

        # phase 1: greedy descent through layers above the insert level
        ep_dist = self._dist_one(qf, ep)
        for lv in range(top, level, -1):
            ep, ep_dist = self._greedy_step(qf, ep, ep_dist, lv)

        # phase 2: beam search + connect on layers min(top, level)..0
        efc = self.params.ef_construction
        for lv in range(min(top, level), -1, -1):
            w = self._search_layer(qf, [(ep_dist, ep)], efc, lv)
            limit = self.params.M0 if lv == 0 else self.params.M
            chosen = self._select(qf, w, limit, lv)
            nbrs, cnts = self._nbrs[lv], self._cnts[lv]
            if chosen:
                nbrs[node, : len(chosen)] = [c for _, c in chosen]
            cnts[node] = len(chosen)
            for dist_qc, c in chosen:
                cc = int(cnts[c])
                nbrs[c, cc] = node
                cc += 1
                cnts[c] = cc
                if cc > limit:
                    self._shrink(c, lv, limit, dist_qc)
            best = min(chosen) if chosen else (ep_dist, ep)
            ep_dist, ep = best

        if level > top:
            self._entry = node
        return node

    def add_items(self, X: np.ndarray, ids: Sequence[int] | None = None) -> None:
        """Bulk insert (row order preserved).

        ``check_matrix`` validates the whole matrix once; the per-row
        ``check_vector`` of :meth:`add` (dtype check + contiguity copy per
        row) is skipped entirely.
        """
        X = check_matrix(X, "X")
        if X.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {X.shape[1]}")
        if ids is not None and len(ids) != X.shape[0]:
            raise ValueError(f"{len(ids)} ids for {X.shape[0]} points")
        self._grow(self._n + X.shape[0])
        if self._native_build is not None:
            self._add_items_native(X, ids)
            return
        for i in range(X.shape[0]):
            self._add_prepared(X[i], None if ids is None else ids[i])

    def _add_items_native(self, X: np.ndarray, ids: Sequence[int] | None) -> None:
        """Bulk INSERT via the compiled batch helper (bit-identical by contract).

        The python side stays the single source of truth: it stores the
        points, samples every level (one RNG draw per point, in insert
        order — exactly the draws the sequential path would make), sizes
        the per-level adjacency, and hands the C helper raw buffer
        addresses; the helper returns the updated entry point, visit
        epoch, and the logical eval/shrink counts.
        """
        n0 = self._n
        n_new = X.shape[0]
        if n_new == 0:
            return
        self._X[n0 : n0 + n_new] = X
        if ids is None:
            self._ext[n0 : n0 + n_new] = np.arange(n0, n0 + n_new)
        else:
            self._ext[n0 : n0 + n_new] = [int(i) for i in ids]
        levels = np.array([self._sample_level() for _ in range(n_new)], dtype=np.int32)
        self._node_level[n0 : n0 + n_new] = levels
        self._n = n0 + n_new
        self._ensure_level(int(levels.max()))

        lib = self._native_build
        nbrs_ptrs = np.array([a.ctypes.data for a in self._nbrs], dtype=np.int64)
        strides = np.array([a.shape[1] for a in self._nbrs], dtype=np.int64)
        cnts_ptrs = np.array([a.ctypes.data for a in self._cnts], dtype=np.int64)
        sc = self._build_scratch(self._n)
        epoch_io = np.array([self._visit_epoch], dtype=np.int64)
        entry_io = np.array([-1 if self._entry is None else self._entry], dtype=np.int64)
        evals_out = np.zeros(1, dtype=np.int64)
        shrinks_out = np.zeros(1, dtype=np.int64)
        lib.hnsw_insert_batch(
            self._X.ctypes.data,
            self._node_level.ctypes.data,
            n0,
            n_new,
            levels.ctypes.data,
            nbrs_ptrs.ctypes.data,
            strides.ctypes.data,
            cnts_ptrs.ctypes.data,
            self.params.M,
            self.params.M0,
            self.params.ef_construction,
            1 if self.params.select_heuristic else 0,
            1 if self.params.keep_pruned else 0,
            self._native_sqrt,
            self._visit_stamp.ctypes.data,
            epoch_io.ctypes.data,
            entry_io.ctypes.data,
            sc["cd"].ctypes.data,
            sc["ci"].ctypes.data,
            sc["rd"].ctypes.data,
            sc["ri"].ctypes.data,
            sc["rows"].ctypes.data,
            sc["maxn"],
            sc["flags"].ctypes.data,
            sc["tmp_d"].ctypes.data,
            sc["tmp_i"].ctypes.data,
            sc["ch_d"].ctypes.data,
            sc["ch_i"].ctypes.data,
            sc["sh_d"].ctypes.data,
            sc["sh_i"].ctypes.data,
            evals_out.ctypes.data,
            shrinks_out.ctypes.data,
        )
        self._visit_epoch = int(epoch_io[0])
        self._entry = int(entry_io[0])
        self.n_dist_evals += int(evals_out[0])
        self.n_shrink_ops += int(shrinks_out[0])

    def _build_scratch(self, need_n: int) -> dict:
        """Reusable scratch for the compiled INSERT batch.

        The search heaps must fit every possible push (every point plus
        the entry pair); selection scratch is bounded by the beam width
        and the largest over-full list (``max(M, M0) + 1``).
        """
        deg = max(self.params.M, self.params.M0)
        maxn = max(self.params.ef_construction, deg + 2)
        need = need_n + 16
        sc = self._native_build_scratch
        if sc is None or len(sc["cd"]) < need:
            sc = {
                "cd": np.empty(need, dtype=np.float64),
                "ci": np.empty(need, dtype=np.int32),
                "rd": np.empty(need, dtype=np.float64),
                "ri": np.empty(need, dtype=np.int32),
                "rows": np.empty((deg + 1) * maxn, dtype=np.float64),
                "flags": np.empty(maxn, dtype=np.uint8),
                "tmp_d": np.empty(maxn, dtype=np.float64),
                "tmp_i": np.empty(maxn, dtype=np.int32),
                "ch_d": np.empty(deg + 1, dtype=np.float64),
                "ch_i": np.empty(deg + 1, dtype=np.int32),
                "sh_d": np.empty(deg + 1, dtype=np.float64),
                "sh_i": np.empty(deg + 1, dtype=np.int32),
                "maxn": maxn,
            }
            self._native_build_scratch = sc
        return sc

    def _shrink(self, node: int, level: int, limit: int, d_nx: float | None = None) -> None:
        """Re-select ``node``'s neighbor list down to ``limit`` links.

        ``d_nx`` is the already-computed distance between ``node`` and the
        link just appended (the inserting point), when the caller has it;
        for the kernels the cache supports it is bit-identical to
        recomputing (the einsum/cdist formulas are symmetric in their
        arguments and row-independent).

        A shrink fires on every link append past ``limit`` — ~M0 times per
        insert once the graph saturates — and each one re-runs selection
        over ``limit + 1`` candidates of which ``limit`` were already
        selected last time.  When selection depends only on the candidate
        list (heuristic on, no candidate extension) and the metric admits
        bit-identical single-pair recomputation (cdist-backed
        l2/sqeuclidean), the previous round's decisions are provably
        reusable: dropping non-kept candidates removes no comparison
        source, so every keep/discard decision before the new link's
        sorted position — and, if the new link is discarded or dominates
        no kept neighbor, after it too — is unchanged.  The cached path
        (:meth:`_shrink_fast`) therefore tests only the new link and
        re-derives the result from the stored flags, falling back to a
        full re-selection on any cascade.

        ``n_dist_evals`` is a *logical* counter: both paths charge exactly
        what the reference implementation computes (``cnt`` query distances
        plus the ``cnt``-candidate cross matrix), so virtual-time
        accounting is bit-identical regardless of which physical path ran.
        """
        cnt = int(self._cnts[level][node])
        row = self._nbrs[level][node]
        self.n_shrink_ops += 1
        if self._shrink_caching:
            self.n_dist_evals += cnt + cnt * (cnt - 1) // 2
            cache = self._shrink_cache[level]
            entry = cache.get(node)
            if (
                entry is not None
                and d_nx is not None
                and len(entry[1]) + 1 == cnt
                and self._shrink_fast(node, level, limit, row, entry, cache, d_nx)
            ):
                return
            self._shrink_full(node, level, limit, row, cnt, cache)
            return
        nbrs = row[:cnt]
        self.n_dist_evals += cnt
        if self._fast_kernel is not None:
            dists = self._fast_kernel(self._X[node], self._X[nbrs])
        else:
            dists = self.metric.one_to_many(self._X[node], self._X[nbrs])
        cands = list(zip(dists.tolist(), nbrs.tolist()))
        chosen = self._select(self._X[node], cands, limit, level)
        for j, (_, c) in enumerate(chosen):
            row[j] = c
        self._cnts[level][node] = len(chosen)

    def _shrink_full(
        self,
        node: int,
        level: int,
        limit: int,
        row: np.ndarray,
        cnt: int,
        cache: dict[int, tuple],
    ) -> None:
        """Full re-selection over ``node``'s list, recording a cache entry.

        Decision-identical to ``select_heuristic`` over the sorted
        candidates with the full pairwise matrix (the reference path); on
        top of the result it records each surviving candidate's
        keep/discard flag, which is the whole state :meth:`_shrink_fast`
        needs — cached pairwise rows are never re-read, because the only
        fresh comparisons a one-link update needs involve the new link
        itself and are recomputed exactly.
        """
        X = self._X
        nbrs_ids = row[:cnt]
        d32 = self._fast_kernel(X[node], X[nbrs_ids])
        # sorting (dist, id) tuples == lexsort with dist primary, id tie-break
        cands = sorted(zip(d32.tolist(), nbrs_ids.tolist()))
        dlist = [t[0] for t in cands]
        ilist_s = [t[1] for t in cands]
        ids_s = np.array(ilist_s, dtype=np.int32)
        cross = self._fast_self_pairwise(X[ids_s])
        flags_all = [False] * cnt
        # dom_all[i]: id of the first kept candidate dominating a discarded
        # candidate i (None for kept ones) — lets _shrink_fast tell which
        # discards might flip when that dominator is itself discarded
        dom_all: list[int | None] = [None] * cnt
        kept_positions: list[int] = []
        kept_rows: list[tuple[list[float], int]] = []
        discarded_positions: list[int] = []
        kcount = 0
        for i in range(cnt):
            if kcount >= limit:
                break
            di = dlist[i]
            hit = None
            for r, rid in kept_rows:
                if r[i] <= di:
                    hit = rid
                    break
            if hit is None:
                flags_all[i] = True
                kept_positions.append(i)
                kept_rows.append((cross[i].tolist(), ilist_s[i]))
                kcount += 1
            else:
                dom_all[i] = hit
                discarded_positions.append(i)
        if self.params.keep_pruned and kcount < limit and discarded_positions:
            result_pos = sorted(
                kept_positions + discarded_positions[: limit - kcount]
            )
        else:
            result_pos = kept_positions
        ids_n = ids_s[result_pos]
        m_out = len(ids_n)
        row[:m_out] = ids_n
        self._cnts[level][node] = m_out
        if len(cache) >= self._shrink_cache_cap[level]:
            cache.pop(next(iter(cache)))
        cache[node] = (
            ids_n,
            [(dlist[i], ilist_s[i]) for i in result_pos],
            [flags_all[i] for i in result_pos],
            [dom_all[i] for i in result_pos],
            kcount,
        )

    def _shrink_fast(
        self,
        node: int,
        level: int,
        limit: int,
        row: np.ndarray,
        entry: tuple,
        cache: dict[int, tuple],
        d_x: float,
    ) -> bool:
        """Incremental shrink: fold one appended link into the cached state.

        When the new link is kept and dominates previously-kept neighbors,
        those victims flip to discarded (with the new link recorded as
        their dominator) — sound as long as no *discarded* candidate
        depended on a victim as its first dominator, because a discard is
        justified by any still-kept dominator and pair distances never
        change.  Only when such a dependent discard exists can decisions
        genuinely cascade; then the entry is invalidated and the caller
        re-runs the full path (returns False).

        The result of the previous selection always has exactly ``limit``
        entries here (``keep_pruned`` backfills to the cap), so folding in
        one link means dropping exactly one position: the positionally
        last kept one when the kept count overflows ``limit`` (selection
        breaks at the cap), else the last non-kept one (backfill quota
        shrinks by one).
        """
        ids, pairs, flags, dom, kcount = entry
        k = len(pairs)
        x = int(row[k])
        X = self._X
        p = bisect_left(pairs, (d_x, x))
        # distances x -> cached candidates; bit-identical to the rows/cols
        # the full pairwise matrix would hold for these pairs
        cv = self._buf_cross_row(X, X[x : x + 1], ids).tolist()
        x_kept = True
        x_dom = None
        for pos in range(p):
            if flags[pos] and cv[pos] <= d_x:
                x_kept = False
                x_dom = pairs[pos][1]
                break
        if x_kept:
            victims = [
                pos for pos in range(p, k) if flags[pos] and cv[pos] <= pairs[pos][0]
            ]
            if victims:
                vids = {pairs[pos][1] for pos in victims}
                for pos in range(victims[0] + 1, k):
                    if not flags[pos] and dom[pos] in vids:
                        # a discard justified only by a victim may flip:
                        # genuine cascade — recompute from scratch
                        del cache[node]
                        return False
                for pos in victims:
                    flags[pos] = False
                    dom[pos] = x
                kcount -= len(victims)
            kcount += 1
        pairs.insert(p, (d_x, x))
        flags.insert(p, x_kept)
        dom.insert(p, x_dom)
        if not self.params.keep_pruned:
            ids2 = np.empty(k + 1, dtype=np.int32)
            ids2[:p] = ids[:p]
            ids2[p] = x
            ids2[p + 1 :] = ids[p:]
            keep_idx = [i for i, f in enumerate(flags) if f][:limit]
            ids_n = ids2[keep_idx]
            m_out = len(ids_n)
            row[:m_out] = ids_n
            self._cnts[level][node] = m_out
            cache[node] = (
                ids_n,
                [pairs[i] for i in keep_idx],
                [True] * m_out,
                [None] * m_out,
                m_out,
            )
            return True
        if kcount > limit:
            q = k  # kept count overflows: all k+1 are kept, drop the last
            kcount -= 1
        else:
            q = k
            while flags[q]:
                q -= 1
        del pairs[q]
        del flags[q]
        del dom[q]
        if q == p:
            # the dropped position is the new link itself: the stored ids
            # (and the row prefix, which still holds them) are unchanged
            self._cnts[level][node] = k
            cache[node] = (ids, pairs, flags, dom, kcount)
            return True
        # ids with x spliced in at p and position q removed, in one copy
        ids3 = np.empty(k, dtype=np.int32)
        if q > p:
            ids3[:p] = ids[:p]
            ids3[p] = x
            ids3[p + 1 : q] = ids[p : q - 1]
            ids3[q:] = ids[q:]
        else:
            ids3[:q] = ids[:q]
            ids3[q : p - 1] = ids[q + 1 : p]
            ids3[p - 1] = x
            ids3[p:] = ids[p:]
        row[:k] = ids3
        self._cnts[level][node] = k
        cache[node] = (ids3, pairs, flags, dom, kcount)
        return True

    def _select(
        self,
        q: np.ndarray,
        candidates: list[tuple[float, int]],
        m: int,
        level: int,
    ) -> list[tuple[float, int]]:
        if not self.params.select_heuristic:
            return select_simple(candidates, m)
        cands = sorted(candidates)
        if self.params.extend_candidates:
            seen = {c for _, c in cands}
            extras: list[int] = []
            nbrs, cnts = self._nbrs[level], self._cnts[level]
            for _, c in list(cands):
                for nb in nbrs[c, : cnts[c]].tolist():
                    if nb not in seen:
                        seen.add(nb)
                        extras.append(nb)
            if extras:
                arr = np.asarray(extras, dtype=np.int64)
                for d, i in zip(self._dist_many(q, arr).tolist(), extras):
                    cands.append((d, i))
                cands.sort()
        ids = np.array([c for _, c in cands], dtype=np.int64)
        n = len(ids)
        self.n_dist_evals += n * (n - 1) // 2
        sub = self._X[ids]
        row_kernel = self._fast_self_row
        if row_kernel is not None and n >= 64:
            # Large candidate sets (the per-insert ef_construction beam)
            # keep only ~M of n rows: compute just those, lazily.  The row
            # kernel is bit-identical to the matrix row, and virtual time
            # was already charged for the full n^2/2 above.
            return select_heuristic_rows(
                cands,
                m,
                lambda i: row_kernel(sub, i),
                keep_pruned=self.params.keep_pruned,
            )
        if self._fast_self_pairwise is not None:
            cross = self._fast_self_pairwise(sub)
        else:
            cross = self.metric.pairwise(sub, sub)
        return select_heuristic(cands, m, cross, keep_pruned=self.params.keep_pruned)

    # -- search ------------------------------------------------------------------

    def _greedy_step(
        self, q: np.ndarray, ep: int, ep_dist: float, level: int
    ) -> tuple[int, float]:
        """Greedy search with beam 1 on one layer (upper-layer descent)."""
        nbrs, cnts = self._nbrs[level], self._cnts[level]
        X = self._X
        buf = self._buf_kernel
        kernel = self._fast_kernel
        one_to_many = self.metric.one_to_many
        n_evals = 0
        while True:
            cnt = cnts[ep]
            if not cnt:
                break
            nb = nbrs[ep, :cnt]
            if buf is not None:
                d = buf(X, nb, q)
            elif kernel is not None:
                d = kernel(q, X[nb])
            else:
                d = one_to_many(q, X[nb])
            n_evals += int(cnt)
            j = int(np.argmin(d))
            if d[j] < ep_dist:
                ep, ep_dist = int(nb[j]), float(d[j])
            else:
                break
        self.n_dist_evals += n_evals
        return ep, ep_dist

    def _search_layer(
        self,
        q: np.ndarray,
        entry: list[tuple[float, int]],
        ef: int,
        level: int,
    ) -> list[tuple[float, int]]:
        """SEARCH-LAYER (HNSW paper Alg. 2): beam search of width ``ef``.

        Returns the result set as (distance, id) pairs sorted closest
        first.  The candidate frontier and the bounded result set are raw
        ``heapq`` lists with the exact tuple ordering of the pre-refactor
        ``MinHeap``/``MaxHeap``; the visited set is the epoch-stamped array.
        """
        if self._native is not None:
            return self._search_layer_native(q, entry, ef, level)
        nbrs, cnts = self._nbrs[level], self._cnts[level]
        X = self._X
        stamp = self._visit_stamp
        self._visit_epoch += 1
        epoch = self._visit_epoch
        buf = self._buf_kernel
        kernel = self._fast_kernel
        one_to_many = self.metric.one_to_many
        for _, c in entry:
            stamp[c] = epoch
        candidates = list(entry)
        heapify(candidates)
        results = [(-d, n) for d, n in entry]
        heapify(results)
        nres = len(results)
        n_evals = 0
        while candidates:
            c_dist, c = heappop(candidates)
            bound = -results[0][0]
            full = nres >= ef
            if full and c_dist > bound:
                break
            cnt = cnts[c]
            if not cnt:
                continue
            nb = nbrs[c, :cnt]
            fresh = nb[stamp[nb] != epoch]
            if not fresh.size:
                continue
            stamp[fresh] = epoch
            if buf is not None:
                dists = buf(X, fresh, q)
            elif kernel is not None:
                dists = kernel(q, X[fresh])
            else:
                dists = one_to_many(q, X[fresh])
            n_evals += fresh.size
            if full:
                # ``bound`` only tightens while the set stays full, so
                # dropping >= bound up front skips exactly the candidates
                # the per-item check below would reject anyway.
                keep = dists < bound
                dlist = dists[keep].tolist()
                nlist = fresh[keep].tolist()
            else:
                dlist = dists.tolist()
                nlist = fresh.tolist()
            for d, n in zip(dlist, nlist):
                if nres < ef:
                    # push + conditional pop == heapreplace when full: the
                    # pushed item always exceeds the max-heap root here
                    heappush(candidates, (d, n))
                    heappush(results, (-d, n))
                    nres += 1
                    bound = -results[0][0]
                elif d < bound:
                    heappush(candidates, (d, n))
                    heapreplace(results, (-d, n))
                    bound = -results[0][0]
        self.n_dist_evals += n_evals
        return sorted([(-d, n) for d, n in results])

    def _search_layer_native(
        self,
        q: np.ndarray,
        entry: list[tuple[float, int]],
        ef: int,
        level: int,
    ) -> list[tuple[float, int]]:
        """SEARCH-LAYER via the compiled helper; bit-identical by contract.

        Same loop as :meth:`_search_layer` (frontier min-heap, bounded
        result max-heap, epoch stamps, strict bound tests), executed in C
        on the index's flat buffers.  The scratch heaps are sized so every
        possible push fits (``n`` fresh nodes + the entry set) and are
        reused across calls.
        """
        nbrs, cnts = self._nbrs[level], self._cnts[level]
        self._visit_epoch += 1
        n_in = len(entry)
        need = self._n + n_in + 8
        scratch = self._native_scratch
        if scratch is None or len(scratch[0]) < need:
            scratch = (
                np.empty(need, dtype=np.float64),
                np.empty(need, dtype=np.int32),
                np.empty(need, dtype=np.float64),
                np.empty(need, dtype=np.int32),
                np.empty(1, dtype=np.int64),
            )
            self._native_scratch = scratch
        cd, ci, rd, ri, ev = scratch
        in_d = np.array([p[0] for p in entry], dtype=np.float64)
        in_i = np.array([p[1] for p in entry], dtype=np.int32)
        m = self._native.hnsw_search_layer(
            self._X.ctypes.data,
            self.dim,
            nbrs.ctypes.data,
            nbrs.shape[1],
            cnts.ctypes.data,
            self._visit_stamp.ctypes.data,
            self._visit_epoch,
            q.ctypes.data,
            in_d.ctypes.data,
            in_i.ctypes.data,
            n_in,
            ef,
            self._native_sqrt,
            cd.ctypes.data,
            ci.ctypes.data,
            rd.ctypes.data,
            ri.ctypes.data,
            ev.ctypes.data,
        )
        self.n_dist_evals += int(ev[0])
        return list(zip(rd[:m].tolist(), ri[:m].tolist()))

    def knn_search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        *,
        filter: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN; returns (distances, external ids), closest first.

        ``filter``: optional boolean mask over insertion-order rows (which
        equal internal node ids); only unmasked rows may appear in the
        result, but masked rows still conduct the traversal — see
        :meth:`_search_layer_filtered`.  ``filter=None`` is bit-identical
        to the unfiltered call.
        """
        check_positive_int(k, "k")
        q = check_vector(query, "query", dim=self.dim)
        if self._n == 0:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        ef = max(ef or self.params.ef_search, k)
        if filter is None:
            return self._search_prepared(q, k, ef)
        return self._search_prepared_filtered(
            q, k, ef, check_filter_mask(filter, self._n)
        )

    def _search_prepared(self, q: np.ndarray, k: int, ef: int) -> tuple[np.ndarray, np.ndarray]:
        """K-NN-SEARCH (paper Alg. 5) for a validated query and effective ef."""
        ep = self._entry
        ep_dist = self._dist_one(q, ep)
        for lv in range(self.max_level, 0, -1):
            ep, ep_dist = self._greedy_step(q, ep, ep_dist, lv)
        pairs = self._search_layer(q, [(ep_dist, ep)], ef, 0)[:k]
        d = np.array([p[0] for p in pairs], dtype=np.float64)
        ids = np.array([self._ext[p[1]] for p in pairs], dtype=np.int64)
        return d, ids

    def _search_prepared_filtered(
        self, q: np.ndarray, k: int, ef: int, allowed: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """K-NN-SEARCH restricted to ``allowed`` rows.

        The upper-layer greedy descent is unfiltered (it only picks the
        layer-0 entry point, which need not match); the layer-0 beam runs
        the filtered SEARCH-LAYER variant.
        """
        ep = self._entry
        ep_dist = self._dist_one(q, ep)
        for lv in range(self.max_level, 0, -1):
            ep, ep_dist = self._greedy_step(q, ep, ep_dist, lv)
        pairs = self._search_layer_filtered(q, [(ep_dist, ep)], ef, 0, allowed)[:k]
        d = np.array([p[0] for p in pairs], dtype=np.float64)
        ids = np.array([self._ext[p[1]] for p in pairs], dtype=np.int64)
        return d, ids

    def _search_layer_filtered(
        self,
        q: np.ndarray,
        entry: list[tuple[float, int]],
        ef: int,
        level: int,
        allowed: np.ndarray,
    ) -> list[tuple[float, int]]:
        """SEARCH-LAYER over a row mask: filtered results, unfiltered frontier.

        Non-matching nodes are evaluated and expanded exactly like the
        plain beam — they enter the candidate frontier and conduct the
        walk — but only ``allowed`` nodes may enter the bounded result
        set.  Pruning non-matching nodes from the frontier instead would
        disconnect the traversal whenever the matching rows don't form a
        connected subgraph; keeping them preserves the full graph's
        connectivity at the cost of extra evaluations (which
        ``n_dist_evals`` charges normally).  Until ``ef`` matching nodes
        are found the result bound is infinite, so no expansion is cut
        short early.  Always the python path — the compiled SEARCH-LAYER
        has no mask support.
        """
        nbrs, cnts = self._nbrs[level], self._cnts[level]
        X = self._X
        stamp = self._visit_stamp
        self._visit_epoch += 1
        epoch = self._visit_epoch
        buf = self._buf_kernel
        kernel = self._fast_kernel
        one_to_many = self.metric.one_to_many
        for _, c in entry:
            stamp[c] = epoch
        candidates = list(entry)
        heapify(candidates)
        results = [(-d, n) for d, n in entry if allowed[n]]
        heapify(results)
        nres = len(results)
        n_evals = 0
        while candidates:
            c_dist, c = heappop(candidates)
            full = nres >= ef
            bound = -results[0][0] if nres else np.inf
            if full and c_dist > bound:
                break
            cnt = cnts[c]
            if not cnt:
                continue
            nb = nbrs[c, :cnt]
            fresh = nb[stamp[nb] != epoch]
            if not fresh.size:
                continue
            stamp[fresh] = epoch
            if buf is not None:
                dists = buf(X, fresh, q)
            elif kernel is not None:
                dists = kernel(q, X[fresh])
            else:
                dists = one_to_many(q, X[fresh])
            n_evals += fresh.size
            for d, n in zip(dists.tolist(), fresh.tolist()):
                if full and d >= bound:
                    continue
                heappush(candidates, (d, n))
                if allowed[n]:
                    if nres < ef:
                        heappush(results, (-d, n))
                        nres += 1
                        full = nres >= ef
                    else:
                        heapreplace(results, (-d, n))
                    bound = -results[0][0]
        self.n_dist_evals += n_evals
        return sorted([(-d, n) for d, n in results])

    def knn_search_batch(
        self,
        Q: np.ndarray,
        k: int,
        ef: int | None = None,
        *,
        filter: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN for a whole query matrix.

        Returns ``(D, I)`` of shape (n_queries, k): row ``i`` holds the
        results for ``Q[i]`` closest first, padded with ``inf`` / ``-1``
        when fewer than ``k`` points exist — always ``float64`` distances
        and ``int64`` ids (the pinned batch-surface dtype contract).
        Each row's traversal — and therefore its results and its
        ``n_dist_evals`` charge — is identical to a
        ``knn_search(Q[i], k, ef, filter=...)`` call; batching only
        amortizes the per-call validation and Python dispatch, which is
        what the cluster workers exploit (see ``core/worker.py``).
        """
        check_positive_int(k, "k")
        Q = check_matrix(Q, "Q")
        if Q.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {Q.shape[1]}")
        nq = Q.shape[0]
        D = np.full((nq, k), np.inf, dtype=np.float64)
        I = np.full((nq, k), -1, dtype=np.int64)
        if self._n == 0:
            return D, I
        ef_eff = max(ef or self.params.ef_search, k)
        mask = None if filter is None else check_filter_mask(filter, self._n)
        for i in range(nq):
            if mask is None:
                d, ids = self._search_prepared(Q[i], k, ef_eff)
            else:
                d, ids = self._search_prepared_filtered(Q[i], k, ef_eff, mask)
            D[i, : len(d)] = d
            I[i, : len(ids)] = ids
        return D, I

    # -- serialization --------------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist to an ``.npz`` file (points, links, levels, params).

        The ``meta`` record carries the full parameter set — including
        ``M0``, ``extend_candidates``, ``keep_pruned`` and ``flat`` — so a
        reloaded index shrinks and selects exactly like the saved one.
        """
        flat_links: list[np.ndarray] = []
        link_index: list[tuple[int, int, int]] = []  # (level, node, count)
        for lv in range(len(self._nbrs)):
            cnts = self._cnts[lv]
            nbrs = self._nbrs[lv]
            for node in self.nodes_at_level(lv).tolist():
                cnt = int(cnts[node])
                link_index.append((lv, node, cnt))
                flat_links.append(nbrs[node, :cnt].astype(np.int64))
        np.savez_compressed(
            path,
            X=self._X[: self._n],
            ext_ids=self._ext[: self._n],
            node_level=self._node_level[: self._n].astype(np.int64),
            entry=np.asarray([-1 if self._entry is None else self._entry]),
            link_index=np.asarray(link_index, dtype=np.int64).reshape(-1, 3),
            links=np.concatenate(flat_links) if flat_links else np.empty(0, dtype=np.int64),
            meta=np.asarray(
                [
                    self.dim,
                    self.params.M,
                    self.params.ef_construction,
                    self.params.ef_search,
                    int(self.params.select_heuristic),
                    self.params.seed,
                    self.params.M0,
                    int(self.params.extend_candidates),
                    int(self.params.keep_pruned),
                    int(self.params.flat),
                ],
                dtype=np.int64,
            ),
        )

    @classmethod
    def load(cls, path: str, metric: str | Metric = "l2") -> "HnswIndex":
        data = np.load(path)
        meta = data["meta"]
        kwargs = dict(
            M=int(meta[1]),
            ef_construction=int(meta[2]),
            ef_search=int(meta[3]),
            select_heuristic=bool(meta[4]),
            seed=int(meta[5]),
        )
        if len(meta) >= _META_LEN:
            kwargs.update(
                M0=int(meta[6]),
                extend_candidates=bool(meta[7]),
                keep_pruned=bool(meta[8]),
                flat=bool(meta[9]),
            )
        # else: legacy 6-field file — fall back to the params defaults
        params = HnswParams(**kwargs)
        n = len(data["X"])
        idx = cls(dim=int(meta[0]), params=params, metric=metric, capacity=n)
        idx._X[:n] = data["X"]
        idx._n = n
        idx._ext[:n] = data["ext_ids"]
        idx._node_level[:n] = data["node_level"]
        entry = int(data["entry"][0])
        idx._entry = None if entry < 0 else entry
        levels = data["node_level"]
        idx._ensure_level(int(levels.max()) if len(levels) else -1)
        pos = 0
        links = data["links"]
        for lv, node, count in data["link_index"].tolist():
            idx._nbrs[lv][node, :count] = links[pos : pos + count]
            idx._cnts[lv][node] = count
            pos += count
        return idx
