/* Compiled hot path for the HNSW beam search (SEARCH-LAYER, paper Alg. 2).
 *
 * The python implementation pays ~6-8 interpreter/numpy dispatches per
 * expanded node; this helper runs the whole beam-search loop in C using
 * the index's flat buffers directly (point matrix, adjacency rows, link
 * counts, epoch-stamped visited array) and two array-backed binary heaps.
 *
 * Bit-identity contract
 * ---------------------
 * Results must match the python path bit for bit, which means distances
 * must match numpy's float32 ``einsum("ij,ij->i", diff, diff)`` (plus
 * float32 sqrt for l2) exactly.  einsum's float32 reduction is NOT plain
 * sequential addition: on the build this repo targets it is a fixed
 * 4-lane SIMD reduction tree.  ``l2sq32`` below reproduces the exact
 * rounding sequence for dim == 32 (reverse-engineered empirically and
 * pinned by ``selfcheck``); the python side enables this helper only
 * after verifying bit-equality against einsum on random data at index
 * construction, so on any platform where the tree differs the helper is
 * simply not used.  Compile with -ffp-contract=off: a fused
 * multiply-add would change the rounding and fail the self-check.
 *
 * Heap note: all (distance, id) pairs are distinct (a node is visited at
 * most once per call), so the pop order of any correct binary heap is
 * the total order on (d, id) — the heap layout itself need not match
 * python's heapq.
 */

#include <math.h>
#include <stdint.h>

typedef int64_t i64;

/* float32 squared euclidean distance, dim 32, einsum-compatible rounding:
 * per lane l: y = s[l] + (s[4+l] + (s[8+l] + s[12+l]))
 *             R = s[16+l] + (s[20+l] + (s[24+l] + (s[28+l] + y)))
 * total: (R0 + R1) + (R2 + R3)
 */
static inline float l2sq32(const float *restrict a, const float *restrict b)
{
    float s[32];
    for (int k = 0; k < 32; k++) {
        float d = a[k] - b[k];
        s[k] = d * d;
    }
    float R[4];
    for (int l = 0; l < 4; l++) {
        float y = s[l] + (s[4 + l] + (s[8 + l] + s[12 + l]));
        R[l] = s[16 + l] + (s[20 + l] + (s[24 + l] + (s[28 + l] + y)));
    }
    return (R[0] + R[1]) + (R[2] + R[3]);
}

/* candidates: min-heap on (d, id); results: max-heap on (d, id) with the
 * tie rule of python's (-d, id) min-heap (equal d -> smaller id on top). */

static inline int pair_lt(double d1, int32_t i1, double d2, int32_t i2)
{
    return d1 < d2 || (d1 == d2 && i1 < i2);
}

static inline int pair_gt(double d1, int32_t i1, double d2, int32_t i2)
{
    return d1 > d2 || (d1 == d2 && i1 < i2);
}

static void minh_push(double *hd, int32_t *hi, i64 *n, double d, int32_t id)
{
    i64 i = (*n)++;
    while (i > 0) {
        i64 p = (i - 1) >> 1;
        if (pair_lt(d, id, hd[p], hi[p])) {
            hd[i] = hd[p];
            hi[i] = hi[p];
            i = p;
        } else {
            break;
        }
    }
    hd[i] = d;
    hi[i] = id;
}

static void minh_pop(double *hd, int32_t *hi, i64 *n)
{
    i64 m = --(*n);
    double d = hd[m];
    int32_t id = hi[m];
    i64 i = 0;
    for (;;) {
        i64 c = 2 * i + 1;
        if (c >= m)
            break;
        if (c + 1 < m && pair_lt(hd[c + 1], hi[c + 1], hd[c], hi[c]))
            c++;
        if (pair_lt(hd[c], hi[c], d, id)) {
            hd[i] = hd[c];
            hi[i] = hi[c];
            i = c;
        } else {
            break;
        }
    }
    if (m > 0) {
        hd[i] = d;
        hi[i] = id;
    }
}

static void maxh_push(double *hd, int32_t *hi, i64 *n, double d, int32_t id)
{
    i64 i = (*n)++;
    while (i > 0) {
        i64 p = (i - 1) >> 1;
        if (pair_gt(d, id, hd[p], hi[p])) {
            hd[i] = hd[p];
            hi[i] = hi[p];
            i = p;
        } else {
            break;
        }
    }
    hd[i] = d;
    hi[i] = id;
}

static void maxh_sift_down(double *hd, int32_t *hi, i64 m, double d, int32_t id)
{
    i64 i = 0;
    for (;;) {
        i64 c = 2 * i + 1;
        if (c >= m)
            break;
        if (c + 1 < m && pair_gt(hd[c + 1], hi[c + 1], hd[c], hi[c]))
            c++;
        if (pair_gt(hd[c], hi[c], d, id)) {
            hd[i] = hd[c];
            hi[i] = hi[c];
            i = c;
        } else {
            break;
        }
    }
    hd[i] = d;
    hi[i] = id;
}

/* Beam search of width ef on one layer.  Writes the result set, sorted
 * ascending by (d, id), into (rd, ri) and returns its length.  cd/ci and
 * rd/ri are caller-provided scratch with room for every push (bounded by
 * n_points + n_in).  *evals_out receives the distance-evaluation count. */
i64 hnsw_search_layer(const float *X, i64 dim, const int32_t *nbrs,
                      i64 row_stride, const int32_t *cnts, i64 *stamp,
                      i64 epoch, const float *q, const double *in_d,
                      const int32_t *in_i, i64 n_in, i64 ef, int32_t do_sqrt,
                      double *cd, int32_t *ci, double *rd, int32_t *ri,
                      i64 *evals_out)
{
    (void)dim; /* l2sq32 is dim-32 only; the python side gates on this */
    i64 nc = 0, nr = 0, evals = 0;
    for (i64 t = 0; t < n_in; t++) {
        stamp[in_i[t]] = epoch;
        minh_push(cd, ci, &nc, in_d[t], in_i[t]);
        maxh_push(rd, ri, &nr, in_d[t], in_i[t]);
    }
    while (nc) {
        double c_dist = cd[0];
        int32_t c = ci[0];
        if (nr >= ef && c_dist > rd[0])
            break;
        minh_pop(cd, ci, &nc);
        const int32_t *row = nbrs + (i64)c * row_stride;
        i64 cnt = cnts[c];
        for (i64 j = 0; j < cnt; j++) {
            int32_t nb = row[j];
            if (stamp[nb] == epoch)
                continue;
            stamp[nb] = epoch;
            float d32 = l2sq32(X + (i64)nb * 32, q);
            if (do_sqrt)
                d32 = sqrtf(d32);
            evals++;
            double d = (double)d32;
            if (nr < ef) {
                minh_push(cd, ci, &nc, d, nb);
                maxh_push(rd, ri, &nr, d, nb);
            } else if (d < rd[0]) {
                minh_push(cd, ci, &nc, d, nb);
                maxh_sift_down(rd, ri, nr, d, nb);
            }
        }
    }
    /* heapsort: repeatedly pop the max into the freed tail slot */
    for (i64 m = nr; m > 1;) {
        double d = rd[0];
        int32_t id = ri[0];
        m--;
        maxh_sift_down(rd, ri, m, rd[m], ri[m]);
        rd[m] = d;
        ri[m] = id;
    }
    /* the max-heap tie rule (smaller id = "greater") leaves runs of equal
     * d in descending id; python's sorted() wants ascending -> reverse */
    for (i64 i = 0; i < nr;) {
        i64 j = i + 1;
        while (j < nr && rd[j] == rd[i])
            j++;
        for (i64 a = i, b = j - 1; a < b; a++, b--) {
            int32_t t = ri[a];
            ri[a] = ri[b];
            ri[b] = t;
        }
        i = j;
    }
    *evals_out = evals;
    return nr;
}

/* self-check helper: batch dim-32 distances for bit-comparison vs numpy */
void l2sq32_batch(const float *A, const float *B, i64 n, int32_t do_sqrt,
                  float *out)
{
    for (i64 i = 0; i < n; i++) {
        float v = l2sq32(A + i * 32, B + i * 32);
        out[i] = do_sqrt ? sqrtf(v) : v;
    }
}

/* ====================================================================
 * Native insert path (INSERT, paper Alg. 1): greedy descent, beam
 * search, neighbor selection (SELECT-NEIGHBORS, simple or Alg. 4
 * heuristic) and link shrinking, batched over many points per call.
 *
 * Second bit-identity contract: the python selection/shrink paths
 * compute pairwise candidate distances through scipy's cdist on the
 * float32 point rows, which accumulates (double(a)-double(b))^2
 * sequentially in double and (for l2) takes the sqrt in double.
 * ``l2d32`` reproduces that exactly (pinned by ``l2d32_batch`` against
 * cdist at load time), so keep/discard decisions match the python
 * heuristic bit for bit.  Query->candidate distances stay on the
 * float32 einsum kernel (``l2sq32``), exactly like the python side.
 * ==================================================================== */

/* double-accumulation dim-32 distance, cdist-compatible rounding */
static inline double l2d32(const float *restrict a, const float *restrict b,
                           int32_t do_sqrt)
{
    double acc = 0.0;
    for (int k = 0; k < 32; k++) {
        double d = (double)a[k] - (double)b[k];
        acc += d * d;
    }
    return do_sqrt ? sqrt(acc) : acc;
}

/* self-check helper: batch cdist-style distances for bit-comparison */
void l2d32_batch(const float *A, const float *B, i64 n, int32_t do_sqrt,
                 double *out)
{
    for (i64 i = 0; i < n; i++)
        out[i] = l2d32(A + i * 32, B + i * 32, do_sqrt);
}

/* SELECT-NEIGHBORS over n candidates pre-sorted ascending by (d, id).
 * Mirrors select.py: simple selection takes the closest m; the
 * heuristic keeps a candidate iff no already-kept candidate is at
 * least as close to it as the query is (r[i] <= d_i), stops once m
 * are kept, and with keep_pruned backfills the first examined
 * discards.  The output (ascending by (d, id), like the python
 * position-order merge) goes to (out_d, out_i); returns its length.
 *
 * ``rows`` is scratch for up to m kept rows of lazily-computed
 * pairwise distances (only positions after the row's owner are ever
 * read, matching the lazy row kernel); ``flags`` marks kept
 * positions. */
static i64 select_links(const float *X, const double *cand_d,
                        const int32_t *cand_i, i64 n, i64 m,
                        int32_t heuristic, int32_t keep_pruned,
                        int32_t do_sqrt, double *rows, i64 row_stride,
                        uint8_t *flags, double *out_d, int32_t *out_i)
{
    if (!heuristic) {
        i64 take = n < m ? n : m;
        for (i64 i = 0; i < take; i++) {
            out_d[i] = cand_d[i];
            out_i[i] = cand_i[i];
        }
        return take;
    }
    i64 kept = 0, examined = n;
    for (i64 i = 0; i < n; i++) {
        if (kept >= m) {
            examined = i;
            break;
        }
        double di = cand_d[i];
        int hit = 0;
        for (i64 r = 0; r < kept; r++) {
            if (rows[r * row_stride + i] <= di) {
                hit = 1;
                break;
            }
        }
        if (hit) {
            flags[i] = 0;
            continue;
        }
        flags[i] = 1;
        const float *xi = X + (i64)cand_i[i] * 32;
        for (i64 j = i + 1; j < n; j++)
            rows[kept * row_stride + j] =
                l2d32(xi, X + (i64)cand_i[j] * 32, do_sqrt);
        kept++;
    }
    i64 backfill = (keep_pruned && kept < m) ? m - kept : 0;
    i64 n_out = 0;
    for (i64 i = 0; i < examined; i++) {
        if (flags[i]) {
            out_d[n_out] = cand_d[i];
            out_i[n_out++] = cand_i[i];
        } else if (backfill > 0) {
            out_d[n_out] = cand_d[i];
            out_i[n_out++] = cand_i[i];
            backfill--;
        }
    }
    return n_out;
}

/* Re-select node c's over-full neighbor list down to ``limit`` links
 * (python _shrink).  Charges the same logical eval count as the
 * python paths: cnt query distances plus, under the heuristic, the
 * cnt-candidate cross matrix. */
static void shrink_node(const float *X, int32_t *nrow, int32_t *cnts, i64 c,
                        i64 limit, int32_t heuristic, int32_t keep_pruned,
                        int32_t do_sqrt, double *tmp_d, int32_t *tmp_i,
                        double *rows, i64 row_stride, uint8_t *flags,
                        double *out_d, int32_t *out_i, i64 *evals,
                        i64 *shrinks)
{
    i64 cnt = cnts[c];
    const float *xc = X + c * 32;
    for (i64 j = 0; j < cnt; j++) {
        float d32 = l2sq32(xc, X + (i64)nrow[j] * 32);
        if (do_sqrt)
            d32 = sqrtf(d32);
        tmp_d[j] = (double)d32;
        tmp_i[j] = nrow[j];
    }
    *evals += heuristic ? cnt + cnt * (cnt - 1) / 2 : cnt;
    /* insertion sort ascending by (d, id) == python sorted() on tuples */
    for (i64 j = 1; j < cnt; j++) {
        double d = tmp_d[j];
        int32_t id = tmp_i[j];
        i64 p = j - 1;
        while (p >= 0 && pair_lt(d, id, tmp_d[p], tmp_i[p])) {
            tmp_d[p + 1] = tmp_d[p];
            tmp_i[p + 1] = tmp_i[p];
            p--;
        }
        tmp_d[p + 1] = d;
        tmp_i[p + 1] = id;
    }
    i64 m_out = select_links(X, tmp_d, tmp_i, cnt, limit, heuristic,
                             keep_pruned, do_sqrt, rows, row_stride, flags,
                             out_d, out_i);
    for (i64 j = 0; j < m_out; j++)
        nrow[j] = out_i[j];
    cnts[c] = (int32_t)m_out;
    (*shrinks)++;
}

/* Greedy search with beam 1 on one layer (upper-layer descent). */
static void greedy_step(const float *X, const int32_t *nbrs, i64 stride,
                        const int32_t *cnts, const float *q, int32_t do_sqrt,
                        i64 *ep_io, double *epd_io, i64 *evals)
{
    i64 ep = *ep_io;
    double epd = *epd_io;
    for (;;) {
        i64 cnt = cnts[ep];
        if (!cnt)
            break;
        const int32_t *row = nbrs + ep * stride;
        float best = 0.0f;
        i64 bj = -1;
        for (i64 j = 0; j < cnt; j++) {
            float d = l2sq32(X + (i64)row[j] * 32, q);
            if (do_sqrt)
                d = sqrtf(d);
            if (bj < 0 || d < best) { /* strict < == np.argmin first-index */
                best = d;
                bj = j;
            }
        }
        *evals += cnt;
        if ((double)best < epd) {
            ep = row[bj];
            epd = (double)best;
        } else {
            break;
        }
    }
    *ep_io = ep;
    *epd_io = epd;
}

/* Batched INSERT: points n_start..n_start+n_new-1 already stored in X
 * with their sampled levels in new_levels (and node_level), adjacency
 * arrays already sized for the final level.  nbrs_ptrs/cnts_ptrs hold
 * the per-level array addresses (the arrays live in numpy).  All
 * scratch is caller-provided: cd/ci/rd/ri are the search heaps,
 * rows/flags and the tmp/ch/sh pairs serve selection and shrinking.  epoch,
 * entry, eval and shrink counters are passed by reference so the
 * python side stays the single source of truth between calls. */
i64 hnsw_insert_batch(const float *X, const int32_t *node_level, i64 n_start,
                      i64 n_new, const int32_t *new_levels,
                      const i64 *nbrs_ptrs, const i64 *strides,
                      const i64 *cnts_ptrs, i64 M, i64 M0, i64 efc,
                      int32_t heuristic, int32_t keep_pruned, int32_t do_sqrt,
                      i64 *stamp, i64 *epoch_io, i64 *entry_io, double *cd,
                      int32_t *ci, double *rd, int32_t *ri, double *rows,
                      i64 row_stride, uint8_t *flags, double *tmp_d,
                      int32_t *tmp_i, double *ch_d, int32_t *ch_i,
                      double *sh_d, int32_t *sh_i, i64 *evals_out,
                      i64 *shrinks_out)
{
    i64 epoch = *epoch_io, entry = *entry_io, evals = 0, shrinks = 0;
    for (i64 p = 0; p < n_new; p++) {
        i64 node = n_start + p;
        i64 level = new_levels[p];
        if (entry < 0) {
            entry = node;
            continue;
        }
        const float *q = X + node * 32;
        i64 ep = entry;
        i64 top = node_level[ep];
        float d0 = l2sq32(q, X + ep * 32);
        if (do_sqrt)
            d0 = sqrtf(d0);
        evals++;
        double epd = (double)d0;

        /* phase 1: greedy descent through layers above the insert level */
        for (i64 lv = top; lv > level; lv--)
            greedy_step(X, (const int32_t *)(intptr_t)nbrs_ptrs[lv],
                        strides[lv], (const int32_t *)(intptr_t)cnts_ptrs[lv],
                        q, do_sqrt, &ep, &epd, &evals);

        /* phase 2: beam search + connect on layers min(top, level)..0 */
        i64 start = top < level ? top : level;
        for (i64 lv = start; lv >= 0; lv--) {
            int32_t *nbrs = (int32_t *)(intptr_t)nbrs_ptrs[lv];
            int32_t *cnts = (int32_t *)(intptr_t)cnts_ptrs[lv];
            i64 stride = strides[lv];
            i64 limit = lv == 0 ? M0 : M;
            epoch++;
            double in_d = epd;
            int32_t in_i = (int32_t)ep;
            i64 ev = 0;
            i64 nres = hnsw_search_layer(X, 32, nbrs, stride, cnts, stamp,
                                         epoch, q, &in_d, &in_i, 1, efc,
                                         do_sqrt, cd, ci, rd, ri, &ev);
            evals += ev;
            if (heuristic) /* the python _select charge for the cross matrix */
                evals += nres * (nres - 1) / 2;
            i64 nch = select_links(X, rd, ri, nres, limit, heuristic,
                                   keep_pruned, do_sqrt, rows, row_stride,
                                   flags, ch_d, ch_i);
            for (i64 t = 0; t < nch; t++)
                nbrs[node * stride + t] = ch_i[t];
            cnts[node] = (int32_t)nch;
            for (i64 t = 0; t < nch; t++) {
                i64 c = ch_i[t];
                i64 cc = cnts[c];
                nbrs[c * stride + cc] = (int32_t)node;
                cnts[c] = (int32_t)(cc + 1);
                if (cc + 1 > limit)
                    shrink_node(X, nbrs + c * stride, cnts, c, limit,
                                heuristic, keep_pruned, do_sqrt, tmp_d, tmp_i,
                                rows, row_stride, flags, sh_d, sh_i, &evals,
                                &shrinks);
            }
            if (nch) { /* python: best = min(chosen) (chosen is sorted) */
                epd = ch_d[0];
                ep = ch_i[0];
            }
        }
        if (level > top)
            entry = node;
    }
    *epoch_io = epoch;
    *entry_io = entry;
    *evals_out = evals;
    *shrinks_out = shrinks;
    return n_new;
}
