/* Compiled hot path for the HNSW beam search (SEARCH-LAYER, paper Alg. 2).
 *
 * The python implementation pays ~6-8 interpreter/numpy dispatches per
 * expanded node; this helper runs the whole beam-search loop in C using
 * the index's flat buffers directly (point matrix, adjacency rows, link
 * counts, epoch-stamped visited array) and two array-backed binary heaps.
 *
 * Bit-identity contract
 * ---------------------
 * Results must match the python path bit for bit, which means distances
 * must match numpy's float32 ``einsum("ij,ij->i", diff, diff)`` (plus
 * float32 sqrt for l2) exactly.  einsum's float32 reduction is NOT plain
 * sequential addition: on the build this repo targets it is a fixed
 * 4-lane SIMD reduction tree.  ``l2sq32`` below reproduces the exact
 * rounding sequence for dim == 32 (reverse-engineered empirically and
 * pinned by ``selfcheck``); the python side enables this helper only
 * after verifying bit-equality against einsum on random data at index
 * construction, so on any platform where the tree differs the helper is
 * simply not used.  Compile with -ffp-contract=off: a fused
 * multiply-add would change the rounding and fail the self-check.
 *
 * Heap note: all (distance, id) pairs are distinct (a node is visited at
 * most once per call), so the pop order of any correct binary heap is
 * the total order on (d, id) — the heap layout itself need not match
 * python's heapq.
 */

#include <math.h>
#include <stdint.h>

typedef int64_t i64;

/* float32 squared euclidean distance, dim 32, einsum-compatible rounding:
 * per lane l: y = s[l] + (s[4+l] + (s[8+l] + s[12+l]))
 *             R = s[16+l] + (s[20+l] + (s[24+l] + (s[28+l] + y)))
 * total: (R0 + R1) + (R2 + R3)
 */
static inline float l2sq32(const float *restrict a, const float *restrict b)
{
    float s[32];
    for (int k = 0; k < 32; k++) {
        float d = a[k] - b[k];
        s[k] = d * d;
    }
    float R[4];
    for (int l = 0; l < 4; l++) {
        float y = s[l] + (s[4 + l] + (s[8 + l] + s[12 + l]));
        R[l] = s[16 + l] + (s[20 + l] + (s[24 + l] + (s[28 + l] + y)));
    }
    return (R[0] + R[1]) + (R[2] + R[3]);
}

/* candidates: min-heap on (d, id); results: max-heap on (d, id) with the
 * tie rule of python's (-d, id) min-heap (equal d -> smaller id on top). */

static inline int pair_lt(double d1, int32_t i1, double d2, int32_t i2)
{
    return d1 < d2 || (d1 == d2 && i1 < i2);
}

static inline int pair_gt(double d1, int32_t i1, double d2, int32_t i2)
{
    return d1 > d2 || (d1 == d2 && i1 < i2);
}

static void minh_push(double *hd, int32_t *hi, i64 *n, double d, int32_t id)
{
    i64 i = (*n)++;
    while (i > 0) {
        i64 p = (i - 1) >> 1;
        if (pair_lt(d, id, hd[p], hi[p])) {
            hd[i] = hd[p];
            hi[i] = hi[p];
            i = p;
        } else {
            break;
        }
    }
    hd[i] = d;
    hi[i] = id;
}

static void minh_pop(double *hd, int32_t *hi, i64 *n)
{
    i64 m = --(*n);
    double d = hd[m];
    int32_t id = hi[m];
    i64 i = 0;
    for (;;) {
        i64 c = 2 * i + 1;
        if (c >= m)
            break;
        if (c + 1 < m && pair_lt(hd[c + 1], hi[c + 1], hd[c], hi[c]))
            c++;
        if (pair_lt(hd[c], hi[c], d, id)) {
            hd[i] = hd[c];
            hi[i] = hi[c];
            i = c;
        } else {
            break;
        }
    }
    if (m > 0) {
        hd[i] = d;
        hi[i] = id;
    }
}

static void maxh_push(double *hd, int32_t *hi, i64 *n, double d, int32_t id)
{
    i64 i = (*n)++;
    while (i > 0) {
        i64 p = (i - 1) >> 1;
        if (pair_gt(d, id, hd[p], hi[p])) {
            hd[i] = hd[p];
            hi[i] = hi[p];
            i = p;
        } else {
            break;
        }
    }
    hd[i] = d;
    hi[i] = id;
}

static void maxh_sift_down(double *hd, int32_t *hi, i64 m, double d, int32_t id)
{
    i64 i = 0;
    for (;;) {
        i64 c = 2 * i + 1;
        if (c >= m)
            break;
        if (c + 1 < m && pair_gt(hd[c + 1], hi[c + 1], hd[c], hi[c]))
            c++;
        if (pair_gt(hd[c], hi[c], d, id)) {
            hd[i] = hd[c];
            hi[i] = hi[c];
            i = c;
        } else {
            break;
        }
    }
    hd[i] = d;
    hi[i] = id;
}

/* Beam search of width ef on one layer.  Writes the result set, sorted
 * ascending by (d, id), into (rd, ri) and returns its length.  cd/ci and
 * rd/ri are caller-provided scratch with room for every push (bounded by
 * n_points + n_in).  *evals_out receives the distance-evaluation count. */
i64 hnsw_search_layer(const float *X, i64 dim, const int32_t *nbrs,
                      i64 row_stride, const int32_t *cnts, i64 *stamp,
                      i64 epoch, const float *q, const double *in_d,
                      const int32_t *in_i, i64 n_in, i64 ef, int32_t do_sqrt,
                      double *cd, int32_t *ci, double *rd, int32_t *ri,
                      i64 *evals_out)
{
    (void)dim; /* l2sq32 is dim-32 only; the python side gates on this */
    i64 nc = 0, nr = 0, evals = 0;
    for (i64 t = 0; t < n_in; t++) {
        stamp[in_i[t]] = epoch;
        minh_push(cd, ci, &nc, in_d[t], in_i[t]);
        maxh_push(rd, ri, &nr, in_d[t], in_i[t]);
    }
    while (nc) {
        double c_dist = cd[0];
        int32_t c = ci[0];
        if (nr >= ef && c_dist > rd[0])
            break;
        minh_pop(cd, ci, &nc);
        const int32_t *row = nbrs + (i64)c * row_stride;
        i64 cnt = cnts[c];
        for (i64 j = 0; j < cnt; j++) {
            int32_t nb = row[j];
            if (stamp[nb] == epoch)
                continue;
            stamp[nb] = epoch;
            float d32 = l2sq32(X + (i64)nb * 32, q);
            if (do_sqrt)
                d32 = sqrtf(d32);
            evals++;
            double d = (double)d32;
            if (nr < ef) {
                minh_push(cd, ci, &nc, d, nb);
                maxh_push(rd, ri, &nr, d, nb);
            } else if (d < rd[0]) {
                minh_push(cd, ci, &nc, d, nb);
                maxh_sift_down(rd, ri, nr, d, nb);
            }
        }
    }
    /* heapsort: repeatedly pop the max into the freed tail slot */
    for (i64 m = nr; m > 1;) {
        double d = rd[0];
        int32_t id = ri[0];
        m--;
        maxh_sift_down(rd, ri, m, rd[m], ri[m]);
        rd[m] = d;
        ri[m] = id;
    }
    /* the max-heap tie rule (smaller id = "greater") leaves runs of equal
     * d in descending id; python's sorted() wants ascending -> reverse */
    for (i64 i = 0; i < nr;) {
        i64 j = i + 1;
        while (j < nr && rd[j] == rd[i])
            j++;
        for (i64 a = i, b = j - 1; a < b; a++, b--) {
            int32_t t = ri[a];
            ri[a] = ri[b];
            ri[b] = t;
        }
        i = j;
    }
    *evals_out = evals;
    return nr;
}

/* self-check helper: batch dim-32 distances for bit-comparison vs numpy */
void l2sq32_batch(const float *A, const float *B, i64 n, int32_t do_sqrt,
                  float *out)
{
    for (i64 i = 0; i < n; i++) {
        float v = l2sq32(A + i * 32, B + i * 32);
        out[i] = do_sqrt ? sqrtf(v) : v;
    }
}
