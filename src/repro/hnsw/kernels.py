"""Fast float32 distance kernels for the HNSW hot path.

The generic :class:`~repro.metrics.base.Metric` implementations convert to
float64 on every call; inside a graph traversal that conversion copy
dominates (profiling-driven, per the HPC guides).  For the metrics whose
formula we can inline — ``l2``, ``sqeuclidean``, ``ip``, and ``cosine`` —
these kernels operate directly on the index's float32 point buffer.

Shared by :class:`~repro.hnsw.index.HnswIndex` (the flat production
backend) and :class:`~repro.hnsw.reference.ReferenceHnswIndex` (the
dict-based test oracle), so the two backends are bit-identical by
construction: same kernel, same summation order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fast_kernel_for", "fast_self_pairwise_for"]

_EPS32 = np.float32(1e-30)

try:  # scipy's cdist fast path, minus the per-call validation wrapper
    from scipy.spatial._distance_pybind import (
        cdist_euclidean as _cdist_euclidean,
        cdist_sqeuclidean as _cdist_sqeuclidean,
    )
except ImportError:  # pragma: no cover - older/newer scipy layout
    from scipy.spatial.distance import cdist as _cdist

    def _cdist_euclidean(a, b):
        return _cdist(a, b)

    def _cdist_sqeuclidean(a, b):
        return _cdist(a, b, "sqeuclidean")

try:  # np.einsum minus its argument-parsing wrapper; same C routine
    from numpy._core._multiarray_umath import c_einsum as _einsum
except ImportError:  # pragma: no cover - older numpy layout
    _einsum = np.einsum


def _l2sq_f32(q: np.ndarray, sub: np.ndarray) -> np.ndarray:
    diff = sub - q
    return np.einsum("ij,ij->i", diff, diff)


def _l2_f32(q: np.ndarray, sub: np.ndarray) -> np.ndarray:
    return np.sqrt(_l2sq_f32(q, sub))


def _ip_f32(q: np.ndarray, sub: np.ndarray) -> np.ndarray:
    return -(sub @ q)


def _cosine_f32(q: np.ndarray, sub: np.ndarray) -> np.ndarray:
    nq = np.sqrt(q @ q) + _EPS32
    ns = np.sqrt(np.einsum("ij,ij->i", sub, sub)) + _EPS32
    return 1.0 - (sub @ q) / (ns * nq)


def _l2_pairwise_f32(A: np.ndarray) -> np.ndarray:
    return _cdist_euclidean(A, A)


def _l2sq_pairwise_f32(A: np.ndarray) -> np.ndarray:
    return _cdist_sqeuclidean(A, A)


def _ip_pairwise_f32(A: np.ndarray) -> np.ndarray:
    return -(A @ A.T)


def _cosine_pairwise_f32(A: np.ndarray) -> np.ndarray:
    n = np.sqrt(np.einsum("ij,ij->i", A, A)) + _EPS32
    return 1.0 - (A @ A.T) / np.outer(n, n)


def _l2_row_f32(A: np.ndarray, i: int) -> list[float]:
    return _cdist_euclidean(A[i : i + 1], A)[0].tolist()


def _l2sq_row_f32(A: np.ndarray, i: int) -> list[float]:
    return _cdist_sqeuclidean(A[i : i + 1], A)[0].tolist()


def _l2_cross_row_f32(a: np.ndarray, B: np.ndarray) -> np.ndarray:
    return _cdist_euclidean(a, B)[0]


def _l2sq_cross_row_f32(a: np.ndarray, B: np.ndarray) -> np.ndarray:
    return _cdist_sqeuclidean(a, B)[0]


class _L2Buffered:
    """Allocation-free l2 kernel over index rows (traversal hot path).

    ``__call__(X, rows, q)`` returns ``dist(q, X[r])`` for each row id in
    ``rows`` — bit-identical to ``_l2_f32(q, X[rows])``, but gathering,
    subtracting, squaring and rooting into preallocated buffers, which
    removes four array allocations and the ``np.einsum`` parsing wrapper
    per call.  The result is a view into an internal buffer: consume it
    before the next call.
    """

    __slots__ = ("_sub", "_diff", "_out", "_sq")

    def __init__(self, dim: int, maxn: int, sq: bool = False) -> None:
        self._sub = np.empty((maxn, dim), dtype=np.float32)
        self._diff = np.empty((maxn, dim), dtype=np.float32)
        self._out = np.empty(maxn, dtype=np.float32)
        self._sq = sq

    def __call__(self, X: np.ndarray, rows: np.ndarray, q: np.ndarray) -> np.ndarray:
        n = len(rows)
        sub = self._sub[:n]
        X.take(rows, axis=0, out=sub, mode="clip")
        diff = self._diff[:n]
        np.subtract(sub, q, out=diff)
        out = self._out[:n]
        _einsum("ij,ij->i", diff, diff, out=out)
        return out if self._sq else np.sqrt(out, out=out)


class _IpBuffered:
    """Allocation-free negative-inner-product kernel; see ``_L2Buffered``."""

    __slots__ = ("_sub", "_out")

    def __init__(self, dim: int, maxn: int) -> None:
        self._sub = np.empty((maxn, dim), dtype=np.float32)
        self._out = np.empty(maxn, dtype=np.float32)

    def __call__(self, X: np.ndarray, rows: np.ndarray, q: np.ndarray) -> np.ndarray:
        n = len(rows)
        sub = self._sub[:n]
        X.take(rows, axis=0, out=sub, mode="clip")
        out = self._out[:n]
        np.matmul(sub, q, out=out)
        return np.negative(out, out=out)


class _CrossRowBuffered:
    """Buffered variant of the cross-row kernel (see ``fast_cross_row_for``).

    ``__call__(X, a, ids)`` gathers ``X[ids]`` into a preallocated buffer
    and returns the cdist row ``a`` vs those rows — entry-for-entry
    bit-identical to ``fast_cross_row_for(...)(a, X[ids])``, without the
    fancy-index allocation per call.
    """

    __slots__ = ("_sub", "_fn")

    def __init__(self, dim: int, maxn: int, sq: bool = False) -> None:
        self._sub = np.empty((maxn, dim), dtype=np.float32)
        self._fn = _cdist_sqeuclidean if sq else _cdist_euclidean

    def __call__(self, X: np.ndarray, a: np.ndarray, ids: np.ndarray) -> np.ndarray:
        n = len(ids)
        sub = self._sub[:n]
        X.take(ids, axis=0, out=sub, mode="clip")
        return self._fn(a, sub)[0]


def buffered_cross_row_for(metric_name: str, dim: int, maxn: int):
    """Stateful ``(X, a, ids) -> float64 row`` kernel, or None.

    Same bit-identity contract as :func:`fast_cross_row_for`; only the
    cdist-backed metrics qualify.
    """
    if metric_name == "l2":
        return _CrossRowBuffered(dim, maxn)
    if metric_name == "sqeuclidean":
        return _CrossRowBuffered(dim, maxn, sq=True)
    return None


def buffered_kernel_for(metric_name: str, dim: int, maxn: int):
    """Stateful ``(X, rows, q) -> dists`` kernel reusing buffers, or None.

    Bit-identical to ``fast_kernel_for(metric_name)(q, X[rows])`` — the
    equivalence tests pin this — but allocation-free.  ``maxn`` bounds the
    row-set size (the index passes its degree cap).
    """
    if metric_name == "l2":
        return _L2Buffered(dim, maxn)
    if metric_name == "sqeuclidean":
        return _L2Buffered(dim, maxn, sq=True)
    if metric_name == "ip":
        return _IpBuffered(dim, maxn)
    return None


_ONE_TO_MANY = {
    "l2": _l2_f32,
    "sqeuclidean": _l2sq_f32,
    "ip": _ip_f32,
    "cosine": _cosine_f32,
}

_SELF_PAIRWISE = {
    "l2": _l2_pairwise_f32,
    "sqeuclidean": _l2sq_pairwise_f32,
    "ip": _ip_pairwise_f32,
    "cosine": _cosine_pairwise_f32,
}

# Row kernels exist only where a single row is guaranteed bit-identical to
# the corresponding row of the full pairwise matrix.  That holds for cdist
# (each entry is an independent pair computation) but NOT for the
# BLAS-backed ip/cosine pairwise, where a matrix-vector product may
# accumulate in a different order than the matrix-matrix product.
_SELF_ROW = {
    "l2": _l2_row_f32,
    "sqeuclidean": _l2sq_row_f32,
}

_CROSS_ROW = {
    "l2": _l2_cross_row_f32,
    "sqeuclidean": _l2sq_cross_row_f32,
}


def fast_kernel_for(metric_name: str):
    """float32 one-to-many kernel ``(q, sub) -> dists``, or None."""
    return _ONE_TO_MANY.get(metric_name)


def fast_self_pairwise_for(metric_name: str):
    """float32 self-pairwise kernel ``A -> (n, n) dists``, or None."""
    return _SELF_PAIRWISE.get(metric_name)


def fast_self_row_for(metric_name: str):
    """float32 pairwise row kernel ``(A, i) -> list``, or None.

    Bit-identical to ``fast_self_pairwise_for(...)(A)[i].tolist()``; lets
    neighbor selection skip the n² matrix when only a few rows are kept.
    """
    return _SELF_ROW.get(metric_name)


def fast_cross_row_for(metric_name: str):
    """Kernel ``(a (1, d), B (n, d)) -> float64 (n,)``, or None.

    Each entry is bit-identical to the corresponding entry of the full
    self-pairwise matrix over ``a`` stacked with ``B`` — the property the
    incremental shrink cache relies on to extend cached pairwise rows by
    one column.  Only cdist-backed metrics qualify (see ``_SELF_ROW``).
    """
    return _CROSS_ROW.get(metric_name)
