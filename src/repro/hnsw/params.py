"""HNSW hyper-parameters.

``M`` is the knob the paper sweeps in Fig. 6 ({8, 16, 32, 64}, default 16):
more links per node means better recall, more memory, and slower search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["HnswParams"]


@dataclass(frozen=True)
class HnswParams:
    """Construction and search parameters for one HNSW index."""

    #: number of links per node on layers >= 1 (paper's M; Fig. 6 sweeps this)
    M: int = 16
    #: beam width during construction
    ef_construction: int = 100
    #: default beam width during search (callers may override per query)
    ef_search: int = 50
    #: use the diversity neighbor-selection heuristic (HNSW paper Alg. 4);
    #: False falls back to naive closest-M selection
    select_heuristic: bool = True
    #: extend candidate set with neighbors-of-candidates in the heuristic
    extend_candidates: bool = False
    #: add pruned connections back if a node ends under-linked
    keep_pruned: bool = True
    #: build a single-layer NSW graph instead of the hierarchy (the
    #: predecessor structure, Malkov et al. 2014).  Search then starts from
    #: the fixed entry point on layer 0: O(log^2 n) hops vs HNSW's
    #: O(log n) — the ablation benchmarks measure exactly that gap.
    flat: bool = False
    #: RNG seed for level sampling
    seed: int = 0
    #: max links on layer 0; None = the standard 2*M (normalized to an
    #: explicit int in ``__post_init__`` so it serializes round-trip)
    M0: int | None = None

    def __post_init__(self) -> None:
        if self.M < 2:
            raise ValueError(f"M must be >= 2, got {self.M}")
        if self.ef_construction < 1:
            raise ValueError(f"ef_construction must be >= 1, got {self.ef_construction}")
        if self.ef_search < 1:
            raise ValueError(f"ef_search must be >= 1, got {self.ef_search}")
        if self.M0 is None:
            object.__setattr__(self, "M0", 2 * self.M)
        elif self.M0 < 2:
            raise ValueError(f"M0 must be >= 2, got {self.M0}")

    @property
    def level_mult(self) -> float:
        """Level-sampling multiplier mL = 1/ln(M) (paper's recommended value)."""
        return 1.0 / math.log(self.M)
