"""ctypes loader for the compiled SEARCH-LAYER hot path (``_hotpath.c``).

The helper is an *optional* accelerator with a strict bit-identity
contract: it is enabled only when

- a C compiler is available and the shared object builds (compiled once
  per source hash into a per-user temp dir, reused across processes),
- the metric is cdist-backed l2/sqeuclidean and the dimensionality is
  one the C distance kernel reproduces exactly (currently 32, the
  paper's descriptor width), and
- a runtime self-check confirms the C kernel matches numpy's float32
  einsum/sqrt bit for bit on this machine.

On any failure the index silently stays on the pure-python traversal,
which is always correct — the helper changes wall-clock time only,
never results or ``n_dist_evals``.  Set ``REPRO_HNSW_NO_NATIVE=1`` to
force the python path (the equivalence tests use this to cover both).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np

__all__ = ["native_search_layer_for"]

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_hotpath.c")

#: dims the C distance kernel replicates einsum's reduction tree for
_NATIVE_DIMS = (32,)

_lib = None
_lib_state = "unloaded"  # unloaded -> ready | failed (sticky per process)
_checked: dict[int, bool] = {}


def _load():
    global _lib, _lib_state
    if _lib_state != "unloaded":
        return _lib
    _lib_state = "failed"
    if os.environ.get("REPRO_HNSW_NO_NATIVE"):
        return None
    if not os.path.exists(_SRC):
        return None
    cc = os.environ.get("CC") or shutil.which("gcc") or shutil.which("cc")
    if cc is None:
        return None
    with open(_SRC, "rb") as fh:
        src = fh.read()
    tag = hashlib.sha256(src).hexdigest()[:16]
    cache = os.path.join(tempfile.gettempdir(), f"repro-hnsw-{os.getuid()}")
    so = os.path.join(cache, f"_hotpath-{tag}.so")
    if not os.path.exists(so):
        tmp = f"{so}.{os.getpid()}.tmp"
        try:
            os.makedirs(cache, exist_ok=True)
            # -ffp-contract=off: a fused multiply-add would change float32
            # rounding and break bit-identity with the numpy kernels
            subprocess.run(
                [cc, "-O2", "-ffp-contract=off", "-shared", "-fPIC", _SRC, "-o", tmp, "-lm"],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp, so)
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        lib = ctypes.CDLL(so)
    except OSError:
        return None
    p = ctypes.c_void_p
    i64 = ctypes.c_int64
    i32 = ctypes.c_int32
    lib.hnsw_search_layer.restype = i64
    lib.hnsw_search_layer.argtypes = [
        p,  # X
        i64,  # dim
        p,  # nbrs
        i64,  # row_stride
        p,  # cnts
        p,  # stamp
        i64,  # epoch
        p,  # q
        p,  # in_d
        p,  # in_i
        i64,  # n_in
        i64,  # ef
        i32,  # do_sqrt
        p,  # cd
        p,  # ci
        p,  # rd
        p,  # ri
        p,  # evals_out
    ]
    lib.l2sq32_batch.restype = None
    lib.l2sq32_batch.argtypes = [p, p, i64, i32, p]
    _lib = lib
    _lib_state = "ready"
    return lib


def _selfcheck(lib, do_sqrt: int) -> bool:
    """Compare the C distance kernel against numpy, bit for bit."""
    hit = _checked.get(do_sqrt)
    if hit is not None:
        return hit
    rng = np.random.default_rng(0xC0FFEE)
    n = 512
    A = rng.normal(0, 10, size=(n, 32)).astype(np.float32)
    B = rng.normal(0, 10, size=(n, 32)).astype(np.float32)
    diff = A - B
    ref = np.einsum("ij,ij->i", diff, diff)
    if do_sqrt:
        ref = np.sqrt(ref)
    out = np.empty(n, dtype=np.float32)
    lib.l2sq32_batch(A.ctypes.data, B.ctypes.data, n, do_sqrt, out.ctypes.data)
    ok = bool(np.array_equal(ref.view(np.int32), out.view(np.int32)))
    _checked[do_sqrt] = ok
    return ok


def native_search_layer_for(metric_name: str, dim: int):
    """The compiled library if it can serve (metric, dim) bit-exactly, else None."""
    if dim not in _NATIVE_DIMS or metric_name not in ("l2", "sqeuclidean"):
        return None
    lib = _load()
    if lib is None:
        return None
    if not _selfcheck(lib, 1 if metric_name == "l2" else 0):
        return None
    return lib
