"""ctypes loader for the compiled HNSW hot paths (``_hotpath.c``).

Two helpers live in the shared object: the SEARCH-LAYER beam search
(used by queries and by construction) and the full INSERT batch (greedy
descent, beam search, neighbor selection, link shrinking).  Both are
*optional* accelerators with a strict bit-identity contract: a helper
is enabled only when

- a C compiler is available and the shared object builds (compiled once
  per source hash into a per-user temp dir, reused across processes),
- the metric is cdist-backed l2/sqeuclidean and the dimensionality is
  one the C distance kernels reproduce exactly (currently 32, the
  paper's descriptor width), and
- runtime self-checks confirm the C kernels match the numpy kernels bit
  for bit on this machine: the float32 einsum/sqrt query kernel for
  search, plus scipy's cdist double-accumulation kernel (which the
  python selection/shrink paths use for candidate-pairwise distances)
  for the insert path.

On any failure the index silently stays on the pure-python paths, which
are always correct — the helpers change wall-clock time only, never
results or ``n_dist_evals``.  Set ``REPRO_HNSW_NO_NATIVE=1`` to force
the python paths (the equivalence tests use this to cover both).
"""

from __future__ import annotations

import ctypes
import os

import numpy as np

from repro.utils.cbuild import compile_and_load

__all__ = ["native_search_layer_for", "native_build_for"]

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_hotpath.c")

#: dims the C distance kernel replicates einsum's reduction tree for
_NATIVE_DIMS = (32,)

_lib = None
_lib_state = "unloaded"  # unloaded -> ready | failed (sticky per process)
_checked: dict[int, bool] = {}
_checked_cdist: dict[int, bool] = {}


def _load():
    global _lib, _lib_state
    if _lib_state != "unloaded":
        return _lib
    _lib_state = "failed"
    if os.environ.get("REPRO_HNSW_NO_NATIVE"):
        return None
    lib = compile_and_load(_SRC, "repro-hnsw")
    if lib is None:
        return None
    p = ctypes.c_void_p
    i64 = ctypes.c_int64
    i32 = ctypes.c_int32
    lib.hnsw_search_layer.restype = i64
    lib.hnsw_search_layer.argtypes = [
        p,  # X
        i64,  # dim
        p,  # nbrs
        i64,  # row_stride
        p,  # cnts
        p,  # stamp
        i64,  # epoch
        p,  # q
        p,  # in_d
        p,  # in_i
        i64,  # n_in
        i64,  # ef
        i32,  # do_sqrt
        p,  # cd
        p,  # ci
        p,  # rd
        p,  # ri
        p,  # evals_out
    ]
    lib.l2sq32_batch.restype = None
    lib.l2sq32_batch.argtypes = [p, p, i64, i32, p]
    lib.l2d32_batch.restype = None
    lib.l2d32_batch.argtypes = [p, p, i64, i32, p]
    lib.hnsw_insert_batch.restype = i64
    lib.hnsw_insert_batch.argtypes = [
        p,  # X
        p,  # node_level
        i64,  # n_start
        i64,  # n_new
        p,  # new_levels
        p,  # nbrs_ptrs
        p,  # strides
        p,  # cnts_ptrs
        i64,  # M
        i64,  # M0
        i64,  # efc
        i32,  # heuristic
        i32,  # keep_pruned
        i32,  # do_sqrt
        p,  # stamp
        p,  # epoch_io
        p,  # entry_io
        p,  # cd
        p,  # ci
        p,  # rd
        p,  # ri
        p,  # rows
        i64,  # row_stride
        p,  # flags
        p,  # tmp_d
        p,  # tmp_i
        p,  # ch_d
        p,  # ch_i
        p,  # sh_d
        p,  # sh_i
        p,  # evals_out
        p,  # shrinks_out
    ]
    _lib = lib
    _lib_state = "ready"
    return lib


def _selfcheck(lib, do_sqrt: int) -> bool:
    """Compare the C distance kernel against numpy, bit for bit."""
    hit = _checked.get(do_sqrt)
    if hit is not None:
        return hit
    rng = np.random.default_rng(0xC0FFEE)
    n = 512
    A = rng.normal(0, 10, size=(n, 32)).astype(np.float32)
    B = rng.normal(0, 10, size=(n, 32)).astype(np.float32)
    diff = A - B
    ref = np.einsum("ij,ij->i", diff, diff)
    if do_sqrt:
        ref = np.sqrt(ref)
    out = np.empty(n, dtype=np.float32)
    lib.l2sq32_batch(A.ctypes.data, B.ctypes.data, n, do_sqrt, out.ctypes.data)
    ok = bool(np.array_equal(ref.view(np.int32), out.view(np.int32)))
    _checked[do_sqrt] = ok
    return ok


def _selfcheck_cdist(lib, do_sqrt: int) -> bool:
    """Compare the C double-accumulation kernel against scipy cdist, bit for bit."""
    hit = _checked_cdist.get(do_sqrt)
    if hit is not None:
        return hit
    from repro.hnsw.kernels import _cdist_euclidean, _cdist_sqeuclidean

    rng = np.random.default_rng(0xD15C)
    n = 512
    A = rng.normal(0, 10, size=(n, 32)).astype(np.float32)
    B = rng.normal(0, 10, size=(n, 32)).astype(np.float32)
    cdist = _cdist_euclidean if do_sqrt else _cdist_sqeuclidean
    ref = np.ascontiguousarray(np.diagonal(cdist(A, B)))
    out = np.empty(n, dtype=np.float64)
    lib.l2d32_batch(A.ctypes.data, B.ctypes.data, n, do_sqrt, out.ctypes.data)
    ok = bool(np.array_equal(ref.view(np.int64), out.view(np.int64)))
    _checked_cdist[do_sqrt] = ok
    return ok


def native_search_layer_for(metric_name: str, dim: int):
    """The compiled library if it can serve (metric, dim) bit-exactly, else None."""
    if dim not in _NATIVE_DIMS or metric_name not in ("l2", "sqeuclidean"):
        return None
    lib = _load()
    if lib is None:
        return None
    if not _selfcheck(lib, 1 if metric_name == "l2" else 0):
        return None
    return lib


def native_build_for(metric_name: str, dim: int):
    """The compiled library if the INSERT path can serve (metric, dim) bit-exactly.

    On top of the search-layer gate this requires the cdist-compatible
    double kernel (selection/shrink pairwise distances) to pass its own
    bit-identity self-check.
    """
    lib = native_search_layer_for(metric_name, dim)
    if lib is None:
        return None
    if not _selfcheck_cdist(lib, 1 if metric_name == "l2" else 0):
        return None
    return lib
