"""Neighbor-selection strategies for HNSW construction.

Two strategies from the HNSW paper:

- ``select_simple``: keep the M closest candidates (paper Alg. 3).
- ``select_heuristic``: the diversity heuristic (paper Alg. 4) — a candidate
  is kept only if it is closer to the inserted point than to every
  already-kept neighbor.  This spreads links across directions, which is
  what preserves graph navigability on clustered data; without it recall
  collapses on datasets with strong cluster structure (exactly the
  descriptor corpora used here).

Selection runs ~30 times per insert (every link-overflow ``_shrink``
re-selects), so the loop shape matters.  The paper's formulation tracks,
for every remaining candidate, its distance to the nearest kept neighbor;
here the test is flipped into an early-exit scan — candidate ``i`` is kept
iff no already-kept row ``r`` has ``r[i] <= dist(q, i)`` — which examines
exactly the comparisons the min-tracking version's decisions depend on and
not one more.  The scan runs on plain Python floats (one ``tolist`` per
*kept* row), and the pairwise matrix is consumed row-by-row, which is what
lets callers hand in lazily-computed rows (``select_heuristic_rows``)
instead of materializing the full n² matrix for n candidates when only a
handful are ever kept.  Decision-identical to Algorithm 4 by construction;
the flat-vs-reference equivalence tests pin it bit for bit.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["select_simple", "select_heuristic", "select_heuristic_rows"]


def select_simple(
    candidates: list[tuple[float, int]], m: int
) -> list[tuple[float, int]]:
    """Closest-``m`` selection.  ``candidates`` are (distance, id) pairs."""
    return sorted(candidates)[:m]


def select_heuristic_rows(
    candidates: list[tuple[float, int]],
    m: int,
    row_for: Callable[[int], list[float]],
    keep_pruned: bool = True,
) -> list[tuple[float, int]]:
    """Diversity-aware selection (HNSW paper, Algorithm 4).

    ``candidates`` must be sorted ascending by distance-to-query.
    ``row_for(i)`` returns candidate ``i``'s distances to all candidates
    (same order), and is only called for candidates that are *kept* — the
    row is what later candidates are tested against.  A candidate is kept
    iff it is closer to the query than to every already-kept candidate; if
    ``keep_pruned``, discarded candidates backfill the result up to ``m``.
    """
    result: list[tuple[float, int]] = []
    discarded: list[tuple[float, int]] = []
    kept_rows: list[list[float]] = []
    add_result = result.append
    add_discarded = discarded.append
    add_row = kept_rows.append
    kept = 0
    for i, pair in enumerate(candidates):
        if kept >= m:
            break
        di = pair[0]
        for row in kept_rows:
            if row[i] <= di:
                add_discarded(pair)
                break
        else:
            add_result(pair)
            add_row(row_for(i))
            kept += 1
    if keep_pruned and len(result) < m and discarded:
        result.extend(discarded[: m - len(result)])
        result.sort()
    return result


def select_heuristic(
    candidates: list[tuple[float, int]],
    m: int,
    cross: np.ndarray,
    keep_pruned: bool = True,
) -> list[tuple[float, int]]:
    """:func:`select_heuristic_rows` over a precomputed distance matrix.

    ``cross[i, j]`` is the distance between candidates ``i`` and ``j`` (in
    the same order as ``candidates``).
    """
    n = len(candidates)
    if cross.shape != (n, n):
        raise ValueError(f"cross matrix shape {cross.shape} does not match {n} candidates")
    return select_heuristic_rows(
        candidates, m, lambda i: cross[i].tolist(), keep_pruned=keep_pruned
    )
