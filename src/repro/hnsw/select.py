"""Neighbor-selection strategies for HNSW construction.

Two strategies from the HNSW paper:

- ``select_simple``: keep the M closest candidates (paper Alg. 3).
- ``select_heuristic``: the diversity heuristic (paper Alg. 4) — a candidate
  is kept only if it is closer to the inserted point than to every
  already-kept neighbor.  This spreads links across directions, which is
  what preserves graph navigability on clustered data; without it recall
  collapses on datasets with strong cluster structure (exactly the
  descriptor corpora used here).

The heuristic takes a precomputed candidate-to-candidate distance matrix
rather than a distance callback: selection runs ~50k times per build, and
one vectorized pairwise evaluation per call is an order of magnitude faster
than the per-comparison kernel calls it replaces (profiling-driven; see the
build benchmarks).
"""

from __future__ import annotations

import numpy as np

__all__ = ["select_simple", "select_heuristic"]


def select_simple(
    candidates: list[tuple[float, int]], m: int
) -> list[tuple[float, int]]:
    """Closest-``m`` selection.  ``candidates`` are (distance, id) pairs."""
    return sorted(candidates)[:m]


def select_heuristic(
    candidates: list[tuple[float, int]],
    m: int,
    cross: np.ndarray,
    keep_pruned: bool = True,
) -> list[tuple[float, int]]:
    """Diversity-aware selection (HNSW paper, Algorithm 4).

    ``candidates`` must be sorted ascending by distance-to-query.
    ``cross[i, j]`` is the distance between candidates ``i`` and ``j`` (in
    the same order as ``candidates``).  A candidate is kept iff it is closer
    to the query than to every already-kept candidate; if ``keep_pruned``,
    discarded candidates backfill the result up to ``m``.
    """
    n = len(candidates)
    if cross.shape != (n, n):
        raise ValueError(f"cross matrix shape {cross.shape} does not match {n} candidates")
    # min_to_kept[i] = min distance from candidate i to any kept candidate;
    # maintained incrementally with one vectorized np.minimum per kept
    # neighbor instead of a reduction per candidate (hot path: this function
    # runs once per link overflow, ~n_points * M times per build).
    min_to_kept = np.full(n, np.inf)
    result: list[tuple[float, int]] = []
    discarded: list[tuple[float, int]] = []
    for i, (dist_q, cand) in enumerate(candidates):
        if len(result) >= m:
            break
        if not result or dist_q < min_to_kept[i]:
            result.append((dist_q, cand))
            np.minimum(min_to_kept, cross[i], out=min_to_kept)
        else:
            discarded.append((dist_q, cand))
    if keep_pruned and len(result) < m and discarded:
        result.extend(discarded[: m - len(result)])
        result.sort()
    return result
