"""Hierarchical Navigable Small World graphs (Malkov & Yashunin, TPAMI 2018).

A from-scratch implementation of the paper's local index: a multi-layer
proximity graph where layer 0 holds every point and each higher layer is an
exponentially-thinned navigable small-world graph.  Search greedily descends
from the sparse top layer; construction inserts points with a beam search of
width ``ef_construction`` and connects them with either simple closest-M
selection or the diversity heuristic (Algorithm 4 of the HNSW paper).

Every index operation counts its distance evaluations (``n_dist_evals``),
which is what the simulated cluster charges virtual time for.
"""

from repro.hnsw.params import HnswParams
from repro.hnsw.index import HnswIndex
from repro.hnsw.reference import ReferenceHnswIndex
from repro.hnsw.stats import graph_stats, layer_connectivity

__all__ = [
    "HnswParams",
    "HnswIndex",
    "ReferenceHnswIndex",
    "graph_stats",
    "layer_connectivity",
]
