"""Trace and metrics exporters: Chrome trace-event JSON and JSONL events.

Two artifact formats share one source of truth (a
:class:`~repro.obs.trace.TraceRecorder` plus the finished
:class:`~repro.runtime.report.SearchReport`):

- :func:`write_chrome_trace` — the Chrome trace-event format
  (``{"traceEvents": [...]}``), loadable directly in Perfetto / ``chrome://
  tracing``.  One thread track per simulated proc, complete (``X``) events
  for spans, instant (``i``) events for markers, counter (``C``) tracks for
  queue depth and in-flight queries, and flow arrows (``s``/``f``) linking
  each master-side ``task_send`` to the worker-side ``queue`` span that
  received it.  Virtual seconds are exported as microseconds (the format's
  native unit).
- :func:`write_events_jsonl` — a schema-versioned JSONL structured event
  log (:data:`EVENTS_SCHEMA`): a header line, then one JSON object per
  span/instant/counter-sample/query record.  The per-query records fold the
  serving-layer :class:`~repro.serving.slo.ServingTimeline`
  (arrival/dispatch/complete, NaN → null for shed queries) and the
  ``LoadTracker`` queue-depth timeline into the same schema, so downstream
  tooling needs exactly one parser.

Both validators return error lists (empty = valid) and treat an unknown
span/instant name as an error — the CI vocabulary drift guard.
"""

from __future__ import annotations

import json
import math
from collections import defaultdict

__all__ = [
    "EVENTS_SCHEMA",
    "INSTANT_NAMES",
    "SPAN_NAMES",
    "chrome_trace",
    "events_lines",
    "validate_chrome_trace",
    "validate_events",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_json",
]

#: schema version stamped on the JSONL event log header
EVENTS_SCHEMA = "repro.obs.events/v1"

#: the complete span vocabulary — exporters and CI reject anything else
SPAN_NAMES = frozenset(
    {
        "route",  # VP-tree partition routing at a coordinator
        "dispatch",  # task send path (selector pick + credit charge + send)
        "credit_wait",  # coordinator stalled waiting for a dispatch credit
        "queue",  # task sat in a worker rank's mailbox before pickup
        "search",  # local HNSW search on a worker thread
        "reduce",  # result merge at the coordinator / worker-side accumulate
        "drain",  # shutdown/drain phases
        "retry",  # FT harness re-sent a timed-out task to the same core
        "failover",  # FT harness moved a timed-out task to a replica
    }
)

#: the complete instant (zero-width marker) vocabulary
INSTANT_NAMES = frozenset(
    {
        "arrive",  # open-loop query arrival at the serving coordinator
        "admit",  # admission queue began service for a query
        "cache_probe",  # result-cache lookup (attrs: hit=True/False)
        "task_send",  # a task message left the coordinator
        "task_settle",  # a task's result (or credit ack) settled
        "suspect_core",  # FT harness marked a core as suspected dead
        "complete",  # all of a query's tasks settled; answer finalized
    }
)

_US = 1e6  # virtual seconds -> trace-event microseconds


def _span_query_ids(attrs):
    if not attrs:
        return ()
    qid = attrs.get("query_id")
    if qid is not None:
        return (qid,)
    return tuple(attrs.get("query_ids") or ())


def _finite(x) -> bool:
    return x is not None and not math.isnan(x)


# --------------------------------------------------------------------------
# Chrome trace-event export
# --------------------------------------------------------------------------


def _flow_events(recorder) -> list:
    """Pair master ``task_send`` instants with worker ``queue`` spans.

    Nothing rides the wire, so pairing is positional: the k-th send for a
    ``(query_id, partition)`` key binds to the k-th worker-side receive for
    the same key in virtual-time order.  Retries/failovers produce extra
    sends *and* extra receives for the key, so attempts line up.
    """
    sends = defaultdict(list)  # (qid, partition) -> [(ts, pid)]
    for inst in recorder.instants:
        if inst.name != "task_send":
            continue
        part = (inst.attrs or {}).get("partition")
        for qid in _span_query_ids(inst.attrs):
            sends[(qid, part)].append((inst.ts, inst.pid))
    recvs = defaultdict(list)
    for span in recorder.spans:
        if span.name != "queue":
            continue
        part = (span.attrs or {}).get("partition")
        for qid in _span_query_ids(span.attrs):
            recvs[(qid, part)].append((span.start, span.pid))
    events = []
    flow_id = 0
    for key, out in sorted(sends.items(), key=lambda kv: (str(kv[0][0]), str(kv[0][1]))):
        inbound = sorted(recvs.get(key, []))
        for (s_ts, s_pid), (r_ts, r_pid) in zip(sorted(out), inbound):
            flow_id += 1
            common = {"cat": "task", "name": "task", "id": flow_id}
            events.append(
                {"ph": "s", "pid": 0, "tid": s_pid, "ts": s_ts * _US, **common}
            )
            events.append(
                {"ph": "f", "bp": "e", "pid": 0, "tid": r_pid, "ts": r_ts * _US, **common}
            )
    return events


def _counter_events(recorder, report) -> list:
    """Counter (``C``) tracks: queue depth + in-flight serving queries."""
    events = []
    timeline = getattr(report, "queue_depth_timeline", None) if report is not None else None
    if timeline is not None and len(timeline):
        for t, depth in timeline:
            events.append(
                {
                    "ph": "C",
                    "name": "queue_depth",
                    "pid": 0,
                    "tid": 0,
                    "ts": float(t) * _US,
                    "args": {"tasks": float(depth)},
                }
            )
    arrivals = getattr(report, "arrival_times", None) if report is not None else None
    completes = getattr(report, "complete_times", None) if report is not None else None
    if arrivals is not None and completes is not None:
        deltas = [(float(t), 1) for t in arrivals if _finite(t)]
        deltas += [(float(t), -1) for t in completes if _finite(t)]
        level = 0
        for t, d in sorted(deltas):
            level += d
            events.append(
                {
                    "ph": "C",
                    "name": "inflight_queries",
                    "pid": 0,
                    "tid": 0,
                    "ts": t * _US,
                    "args": {"queries": level},
                }
            )
    for name, ts, value in recorder.counter_samples:
        events.append(
            {
                "ph": "C",
                "name": name,
                "pid": 0,
                "tid": 0,
                "ts": float(ts) * _US,
                "args": {"value": float(value)},
            }
        )
    return events


def chrome_trace(recorder, report=None) -> dict:
    """Build the Chrome trace-event JSON object for a recorded run."""
    events = [
        {"ph": "M", "name": "process_name", "pid": 0, "args": {"name": "repro-sim"}}
    ]
    for pid in sorted(recorder.procs):
        name, node = recorder.procs[pid]
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": pid,
                "args": {"name": f"{name} (node {node})"},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": 0,
                "tid": pid,
                "args": {"sort_index": pid},
            }
        )
    max_end = 0.0
    for s in recorder.spans:
        end = s.end if s.end is not None else s.start
        max_end = max(max_end, end)
    for s in recorder.spans:
        # a crashed proc can die inside a span; clamp open spans to run end
        end = s.end if s.end is not None else max_end
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": "span",
                "pid": 0,
                "tid": s.pid,
                "ts": s.start * _US,
                "dur": (end - s.start) * _US,
                "args": dict(s.attrs) if s.attrs else {},
            }
        )
    for i in recorder.instants:
        events.append(
            {
                "ph": "i",
                "name": i.name,
                "cat": "instant",
                "s": "t",
                "pid": 0,
                "tid": i.pid,
                "ts": i.ts * _US,
                "args": dict(i.attrs) if i.attrs else {},
            }
        )
    events.extend(_counter_events(recorder, report))
    events.extend(_flow_events(recorder))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": EVENTS_SCHEMA, "source": "repro.obs"},
    }


def write_chrome_trace(path: str, recorder, report=None) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(recorder, report), fh)


# --------------------------------------------------------------------------
# JSONL structured event log
# --------------------------------------------------------------------------


def events_lines(recorder, report=None) -> list[str]:
    """Render the schema-versioned JSONL event log as a list of lines."""
    header = {
        "type": "header",
        "schema": EVENTS_SCHEMA,
        "procs": {
            str(pid): {"name": name, "node": node}
            for pid, (name, node) in sorted(recorder.procs.items())
        },
    }
    lines = [json.dumps(header)]
    for s in recorder.spans:
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "id": s.id,
                    "pid": s.pid,
                    "name": s.name,
                    "start": s.start,
                    "end": s.end,
                    "parent": s.parent,
                    "attrs": s.attrs,
                }
            )
        )
    for i in recorder.instants:
        lines.append(
            json.dumps(
                {"type": "instant", "pid": i.pid, "name": i.name, "ts": i.ts, "attrs": i.attrs}
            )
        )
    timeline = getattr(report, "queue_depth_timeline", None) if report is not None else None
    if timeline is not None and len(timeline):
        for t, depth in timeline:
            lines.append(
                json.dumps(
                    {"type": "counter", "name": "queue_depth", "ts": float(t),
                     "value": float(depth)}
                )
            )
    for name, ts, value in recorder.counter_samples:
        lines.append(
            json.dumps({"type": "counter", "name": name, "ts": float(ts),
                        "value": float(value)})
        )
    arrivals = getattr(report, "arrival_times", None) if report is not None else None
    if arrivals is not None:
        dispatches = report.dispatch_times
        completes = report.complete_times
        for qid in range(len(arrivals)):
            lines.append(
                json.dumps(
                    {
                        "type": "query",
                        "id": qid,
                        "arrival": float(arrivals[qid]) if _finite(arrivals[qid]) else None,
                        "dispatch": float(dispatches[qid]) if _finite(dispatches[qid]) else None,
                        "complete": float(completes[qid]) if _finite(completes[qid]) else None,
                    }
                )
            )
    return lines


def write_events_jsonl(path: str, recorder, report=None) -> None:
    with open(path, "w") as fh:
        fh.write("\n".join(events_lines(recorder, report)) + "\n")


def write_metrics_json(path: str, metrics: dict) -> None:
    with open(path, "w") as fh:
        json.dump(metrics, fh, indent=2, sort_keys=True)


# --------------------------------------------------------------------------
# Validators (CI schema + vocabulary drift guards)
# --------------------------------------------------------------------------

_PHASES = frozenset({"M", "X", "i", "C", "s", "f", "b", "e"})


def validate_chrome_trace(obj) -> list[str]:
    """Validate a Chrome trace-event JSON object; return a list of errors."""
    errors: list[str] = []
    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        return ["top level must be an object with a traceEvents list"]
    for n, ev in enumerate(obj["traceEvents"]):
        where = f"traceEvents[{n}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph in ("X", "i", "C", "s", "f"):
            if not isinstance(ev.get("name"), str):
                errors.append(f"{where}: missing name")
                continue
            for field in ("ts", "pid", "tid"):
                if not isinstance(ev.get(field), (int, float)):
                    errors.append(f"{where}: missing numeric {field}")
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                errors.append(f"{where}: X event needs dur >= 0")
            if ev["name"] not in SPAN_NAMES:
                errors.append(f"{where}: unknown span name {ev['name']!r}")
        elif ph == "i":
            if ev["name"] not in INSTANT_NAMES:
                errors.append(f"{where}: unknown instant name {ev['name']!r}")
        elif ph in ("s", "f"):
            if "id" not in ev:
                errors.append(f"{where}: flow event needs an id")
    return errors


_EVENT_TYPES = frozenset({"header", "span", "instant", "counter", "query"})


def validate_events(lines) -> list[str]:
    """Validate JSONL event-log lines; return a list of errors."""
    errors: list[str] = []
    records = []
    for n, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append((n, json.loads(line)))
        except json.JSONDecodeError as exc:
            errors.append(f"line {n + 1}: invalid JSON ({exc})")
    if not records:
        return errors + ["empty event log"]
    first = records[0][1]
    if first.get("type") != "header" or first.get("schema") != EVENTS_SCHEMA:
        errors.append(
            f"line 1: expected a header with schema {EVENTS_SCHEMA!r}, got {first!r:.80}"
        )
    for n, rec in records[1:]:
        where = f"line {n + 1}"
        rtype = rec.get("type")
        if rtype not in _EVENT_TYPES:
            errors.append(f"{where}: unknown event type {rtype!r}")
        elif rtype == "span":
            if rec.get("name") not in SPAN_NAMES:
                errors.append(f"{where}: unknown span name {rec.get('name')!r}")
            if not isinstance(rec.get("start"), (int, float)):
                errors.append(f"{where}: span needs a numeric start")
        elif rtype == "instant":
            if rec.get("name") not in INSTANT_NAMES:
                errors.append(f"{where}: unknown instant name {rec.get('name')!r}")
        elif rtype == "counter":
            if not isinstance(rec.get("value"), (int, float)):
                errors.append(f"{where}: counter needs a numeric value")
        elif rtype == "query":
            if not isinstance(rec.get("id"), int):
                errors.append(f"{where}: query record needs an integer id")
    return errors
