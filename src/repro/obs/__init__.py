"""Unified observability layer: metrics registry, per-query distributed
traces, and Perfetto/JSONL exporters.

This package is deliberately dependency-light (stdlib only) and imports no
other ``repro`` module, so every layer of the system — the simulation
engine, the coordinator, serving, load balancing — can depend on it without
cycles.  See ``docs/observability.md``.
"""

from repro.obs.explain import render_explain, slowest_queries
from repro.obs.export import (
    EVENTS_SCHEMA,
    INSTANT_NAMES,
    SPAN_NAMES,
    chrome_trace,
    events_lines,
    validate_chrome_trace,
    validate_events,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_json,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import InstantRecord, SpanRecord, TraceRecorder

__all__ = [
    "EVENTS_SCHEMA",
    "INSTANT_NAMES",
    "SPAN_NAMES",
    "Counter",
    "Gauge",
    "Histogram",
    "InstantRecord",
    "MetricsRegistry",
    "SpanRecord",
    "TraceRecorder",
    "chrome_trace",
    "events_lines",
    "render_explain",
    "slowest_queries",
    "validate_chrome_trace",
    "validate_events",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_json",
]
