"""Per-query distributed trace recorder.

A :class:`TraceRecorder` collects *spans* (named virtual-time intervals on
one proc, with intra-proc parent links), *instants* (zero-width markers),
and *counter samples* across every proc of a simulation run.  It is pure
bookkeeping: recording appends to python lists and never touches the
engine's clocks, scheduling, or randomness, so a traced run is bit-identical
to an untraced one — the zero-virtual-time invariant the observability
tests pin.

Cross-proc causality (master ``task_send`` → worker ``queue``/``search``)
is *not* carried on the wire — messages stay byte-identical with tracing on
or off.  The exporters pair the k-th ``task_send`` instant for a
``(query_id, partition)`` with the k-th worker-side span for the same key
in virtual-time order, which also handles fault-tolerant retries (attempt
k pairs with delivery k).  See :mod:`repro.obs.export`.
"""

from __future__ import annotations

__all__ = ["InstantRecord", "SpanRecord", "TraceRecorder"]


class SpanRecord:
    """One named virtual-time interval on one proc."""

    __slots__ = ("id", "pid", "name", "start", "end", "parent", "attrs")

    def __init__(self, id, pid, name, start, end=None, parent=None, attrs=None):  # noqa: A002
        self.id = id
        self.pid = pid
        self.name = name
        self.start = start
        self.end = end
        self.parent = parent
        self.attrs = attrs


class InstantRecord:
    """One zero-width marker on one proc."""

    __slots__ = ("pid", "name", "ts", "attrs")

    def __init__(self, pid, name, ts, attrs=None):
        self.pid = pid
        self.name = name
        self.ts = ts
        self.attrs = attrs


def _clean(attrs: dict | None) -> dict | None:
    if not attrs:
        return None
    out = {k: v for k, v in attrs.items() if v is not None}
    return out or None


class TraceRecorder:
    """Append-only store of spans/instants/counter samples for one run."""

    __slots__ = ("spans", "instants", "counter_samples", "procs", "_stacks", "_next_id")

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        #: (name, virtual_ts, value) samples for counter tracks
        self.counter_samples: list[tuple] = []
        #: pid -> (proc name, node)
        self.procs: dict[int, tuple] = {}
        self._stacks: dict[int, list[SpanRecord]] = {}
        self._next_id = 1

    # -- topology ---------------------------------------------------------

    def register_proc(self, pid: int, name: str, node: int) -> None:
        self.procs[pid] = (name, node)

    # -- spans ------------------------------------------------------------

    def begin_span(self, pid: int, name: str, ts: float, attrs: dict | None = None) -> SpanRecord:
        stack = self._stacks.setdefault(pid, [])
        parent = stack[-1].id if stack else None
        span = SpanRecord(self._next_id, pid, name, ts, None, parent, _clean(attrs))
        self._next_id += 1
        self.spans.append(span)
        stack.append(span)
        return span

    def end_span(self, pid: int, ts: float) -> None:
        stack = self._stacks.get(pid)
        if stack:
            stack.pop().end = ts

    def complete_span(
        self, pid: int, name: str, start: float, end: float, attrs: dict | None = None
    ) -> SpanRecord:
        """Record an already-closed span (e.g. a stall measured after the
        fact); parented under the proc's currently-open span, if any."""
        stack = self._stacks.get(pid)
        parent = stack[-1].id if stack else None
        span = SpanRecord(self._next_id, pid, name, start, end, parent, _clean(attrs))
        self._next_id += 1
        self.spans.append(span)
        return span

    # -- instants / counters ---------------------------------------------

    def instant(self, pid: int, name: str, ts: float, attrs: dict | None = None) -> None:
        self.instants.append(InstantRecord(pid, name, ts, _clean(attrs)))

    def counter(self, name: str, ts: float, value: float) -> None:
        self.counter_samples.append((name, ts, value))

    # -- queries ----------------------------------------------------------

    def span_names(self) -> set:
        return {s.name for s in self.spans}

    def instant_names(self) -> set:
        return {i.name for i in self.instants}

    def events_for_query(self, query_id: int) -> tuple[list, list]:
        """All (spans, instants) tagged with ``query_id`` — directly via a
        ``query_id`` attr or via membership in a batch's ``query_ids``."""

        def tagged(attrs):
            if not attrs:
                return False
            if attrs.get("query_id") == query_id:
                return True
            ids = attrs.get("query_ids")
            return ids is not None and query_id in ids

        return (
            [s for s in self.spans if tagged(s.attrs)],
            [i for i in self.instants if tagged(i.attrs)],
        )
