"""Slow-query drill-down: render the worst queries' span trees.

``repro query --explain-top N`` prints, for the N queries with the largest
end-to-end latency, every recorded span and instant tagged with that query
id as an indented tree (intra-proc parent links give the nesting), plus a
queue-vs-service attribution: under open-loop serving the split comes from
the serving timeline (dispatch − arrival vs complete − dispatch); in
closed-loop runs it is the sum of worker ``queue`` spans vs worker
``search`` spans for the query.
"""

from __future__ import annotations

import math

__all__ = ["render_explain", "slowest_queries"]


def slowest_queries(report, n: int) -> list[int]:
    """Ids of the ``n`` highest-latency queries (finite latencies only)."""
    lats = report.query_latencies
    if lats is None or n <= 0:
        return []
    ranked = [
        (float(lat), qid)
        for qid, lat in enumerate(lats)
        if lat is not None and not math.isnan(lat)
    ]
    ranked.sort(key=lambda pair: (-pair[0], pair[1]))
    return [qid for _, qid in ranked[:n]]


def _queue_service_split(report, recorder, qid: int) -> tuple[float, float]:
    arrivals = report.arrival_times
    if arrivals is not None and not math.isnan(arrivals[qid]):
        dispatch = report.dispatch_times[qid]
        complete = report.complete_times[qid]
        if not math.isnan(dispatch) and not math.isnan(complete):
            return (
                float(dispatch - arrivals[qid]),
                float(complete - dispatch),
            )
    spans, _ = recorder.events_for_query(qid)
    queue = sum(
        (s.end or s.start) - s.start for s in spans if s.name == "queue"
    )
    service = sum(
        (s.end or s.start) - s.start for s in spans if s.name == "search"
    )
    return float(queue), float(service)


def _fmt_attrs(attrs, skip=("query_id", "query_ids")) -> str:
    if not attrs:
        return ""
    shown = {k: v for k, v in attrs.items() if k not in skip}
    if not shown:
        return ""
    return "  [" + ", ".join(f"{k}={v}" for k, v in sorted(shown.items())) + "]"


def _render_query(report, recorder, qid: int, lines: list[str]) -> None:
    lats = report.query_latencies
    lat = float(lats[qid]) if lats is not None else float("nan")
    queue_s, service_s = _queue_service_split(report, recorder, qid)
    lines.append(
        f"query {qid}: latency {lat * 1e3:.3f} ms "
        f"(queue {queue_s * 1e3:.3f} ms, service {service_s * 1e3:.3f} ms)"
    )
    spans, instants = recorder.events_for_query(qid)
    selected = {s.id for s in spans}
    depth_of = {}

    def depth(span):
        if span.id in depth_of:
            return depth_of[span.id]
        d = 0
        parent = span.parent
        if parent in selected:
            parent_span = next(s for s in spans if s.id == parent)
            d = depth(parent_span) + 1
        depth_of[span.id] = d
        return d

    events = [("span", s.start, s) for s in spans]
    events += [("instant", i.ts, i) for i in instants]
    for kind, ts, ev in sorted(events, key=lambda e: (e[1], 0 if e[0] == "span" else 1)):
        proc = recorder.procs.get(ev.pid, (f"pid{ev.pid}", "?"))[0]
        if kind == "span":
            indent = "  " * (depth(ev) + 1)
            dur = ((ev.end if ev.end is not None else ev.start) - ev.start) * 1e3
            lines.append(
                f"{indent}{ev.name:<12} {dur:9.3f} ms  @{ts * 1e3:10.3f} ms"
                f"  on {proc}{_fmt_attrs(ev.attrs)}"
            )
        else:
            lines.append(
                f"  * {ev.name:<12}              @{ts * 1e3:10.3f} ms"
                f"  on {proc}{_fmt_attrs(ev.attrs)}"
            )


def render_explain(report, n: int) -> str:
    """Render the drill-down for the ``n`` slowest queries of a run."""
    recorder = report.trace
    if recorder is None:
        return "explain: no trace recorded (run with --trace-out/--explain-top)"
    worst = slowest_queries(report, n)
    if not worst:
        return "explain: no per-query latencies recorded"
    lines = [f"slowest {len(worst)} of {report.n_queries} queries:"]
    for qid in worst:
        _render_query(report, recorder, qid, lines)
    return "\n".join(lines)
