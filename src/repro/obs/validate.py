"""Artifact validator CLI: ``python -m repro.obs.validate FILE [FILE ...]``.

``*.json`` files are checked against the Chrome trace-event schema,
``*.jsonl`` files against the versioned JSONL event schema
(:data:`repro.obs.export.EVENTS_SCHEMA`).  Unknown span or instant names
are errors — this is the CI vocabulary drift guard.  Exits non-zero if any
file fails.
"""

from __future__ import annotations

import json
import sys

from repro.obs.export import validate_chrome_trace, validate_events

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.obs.validate TRACE.json EVENTS.jsonl ...")
        return 2
    failed = False
    for path in paths:
        if path.endswith(".jsonl"):
            with open(path) as fh:
                errors = validate_events(fh.readlines())
        else:
            with open(path) as fh:
                try:
                    obj = json.load(fh)
                except json.JSONDecodeError as exc:
                    obj, errors = None, [f"invalid JSON: {exc}"]
            if obj is not None:
                errors = validate_chrome_trace(obj)
        if errors:
            failed = True
            print(f"{path}: INVALID ({len(errors)} error(s))")
            for err in errors[:20]:
                print(f"  - {err}")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
