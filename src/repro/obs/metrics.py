"""Metrics registry: counters, gauges, and histograms with label sets.

One :class:`MetricsRegistry` per run is the single instrument seam of the
system: the simulation engine, the coordinator parts, the load tracker, and
the serving layer all register their counters here instead of keeping
scattered one-off attributes.  :class:`~repro.runtime.report.SearchReport`
scalar fields are thin reads of the same registry (see
``repro.core.coordinator.report.MasterReport``), so nothing is counted
twice and everything lands in one exportable dump.

Instruments are identified by ``(name, sorted(labels))``; asking for the
same name+labels twice returns the same object.  Recording is plain python
attribute arithmetic on the simulated (virtual-clock-free) side — it costs
zero virtual time by construction and never touches the engine's clocks or
randomness, so enabling metrics cannot perturb a run.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: default histogram bucket upper bounds (seconds-ish exponential ladder)
DEFAULT_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0,
)


class Counter:
    """A monotonically-growing count (float-valued so time totals fit)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level; ``merge`` keeps the max (peak semantics)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def track_max(self, value) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary stats."""

    __slots__ = ("name", "labels", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, labels: tuple, buckets=DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # last = +inf overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        for i, bound in enumerate(self.bounds):
            if v <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {
                ("+inf" if i == len(self.bounds) else repr(self.bounds[i])): c
                for i, c in enumerate(self.counts)
                if c
            },
        }


def _key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


def _render_key(name: str, labels: tuple) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _json_scalar(v):
    # numpy scalars (int64 counts, float64 times) must not leak into dumps
    if hasattr(v, "item"):
        return v.item()
    return v


class MetricsRegistry:
    """A namespace of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create; instruments are
    shared by identity so e.g. ``AdmissionQueue`` and ``MasterReport`` can
    read and write the *same* counter when handed the same registry.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- instruments ------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, key[1])
        return inst

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, key[1])
        return inst

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, **labels) -> Histogram:
        key = _key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(name, key[1], buckets)
        return inst

    # -- reads ------------------------------------------------------------

    def value(self, name: str, **labels):
        """Current value of a counter or gauge (0 if never touched)."""
        key = _key(name, labels)
        inst = self._counters.get(key) or self._gauges.get(key)
        return inst.value if inst is not None else 0

    # -- aggregation ------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry: counters add, gauges take the
        max (peaks), histograms pool their buckets."""
        for key, c in other._counters.items():
            self._counters.setdefault(key, Counter(c.name, key[1])).value += c.value
        for key, g in other._gauges.items():
            self._gauges.setdefault(key, Gauge(g.name, key[1])).track_max(g.value)
        for key, h in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms[key] = Histogram(h.name, key[1], h.bounds)
            if mine.bounds == h.bounds:
                for i, c in enumerate(h.counts):
                    mine.counts[i] += c
            else:  # incompatible ladders: keep summary stats only
                for i, c in enumerate(h.counts):
                    mine.counts[-1] += c
            mine.count += h.count
            mine.total += h.total
            mine.min = min(mine.min, h.min)
            mine.max = max(mine.max, h.max)

    def dump(self) -> dict:
        """JSON-safe snapshot: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` with ``name{label=value,...}`` keys."""
        return {
            "counters": {
                _render_key(c.name, c.labels): _json_scalar(c.value)
                for c in self._counters.values()
            },
            "gauges": {
                _render_key(g.name, g.labels): _json_scalar(g.value)
                for g in self._gauges.values()
            },
            "histograms": {
                _render_key(h.name, h.labels): h.summary()
                for h in self._histograms.values()
            },
        }
