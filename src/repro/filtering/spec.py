"""Filter predicates: the wire- and CLI-portable :class:`FilterSpec`.

A filtered query carries a conjunction of small, attribute-level
predicates — ``attr == v``, ``attr in {…}``, ``lo <= attr <= hi`` — down
the dispatch path to the workers, which evaluate them against the
per-partition attribute columns (:class:`~repro.filtering.MetadataStore`
slices shipped at build time).  The spec is deliberately tiny: frozen,
hashable, JSON round-trippable (the task messages and the ``--filter``
CLI flag both carry the dict form), and evaluated vectorized over a
whole attribute column at once.

Shorthand grammar accepted by :meth:`FilterSpec.parse` (the ``--filter``
flag syntax; space-free so it survives shells unquoted)::

    tier=3          attr == 3           (eq)
    tier=1,2,5      attr in {1, 2, 5}   (in)
    tier=10..20     10 <= attr <= 20    (range, inclusive)

A JSON object string (``{"attr": ..., "op": ..., "value": ...}``) is
also accepted anywhere the shorthand is.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

__all__ = ["FilterSpec", "FilterSpecError", "clauses_from_wire", "clauses_to_wire"]

_OPS = ("eq", "in", "range")


class FilterSpecError(ValueError):
    """Raised for malformed predicates (bad op, bad shorthand, bad JSON)."""


@dataclass(frozen=True)
class FilterSpec:
    """One attribute predicate: ``attr <op> value``.

    ``op`` is ``"eq"`` (value: int), ``"in"`` (value: sorted tuple of
    ints), or ``"range"`` (value: ``(lo, hi)`` inclusive).  Instances are
    frozen and hashable so they can key caches and ride in frozen
    configs; :meth:`to_dict`/:meth:`from_dict` are the JSON wire form.
    """

    attr: str
    op: str
    value: int | tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.attr or not isinstance(self.attr, str):
            raise FilterSpecError(f"filter attr must be a non-empty string, got {self.attr!r}")
        if self.op not in _OPS:
            raise FilterSpecError(f"filter op must be one of {_OPS}, got {self.op!r}")
        if self.op == "eq":
            object.__setattr__(self, "value", int(self.value))
        elif self.op == "in":
            vals = tuple(sorted(int(v) for v in self.value))
            if not vals:
                raise FilterSpecError("'in' filter needs at least one value")
            object.__setattr__(self, "value", vals)
        else:  # range
            lo, hi = self.value
            if int(lo) > int(hi):
                raise FilterSpecError(f"empty range [{lo}, {hi}]")
            object.__setattr__(self, "value", (int(lo), int(hi)))

    # -- evaluation ---------------------------------------------------------

    def matches(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask over an attribute column (vectorized)."""
        values = np.asarray(values)
        if self.op == "eq":
            return values == self.value
        if self.op == "in":
            return np.isin(values, np.asarray(self.value))
        lo, hi = self.value
        return (values >= lo) & (values <= hi)

    # -- wire / CLI forms ---------------------------------------------------

    def to_dict(self) -> dict:
        value = self.value if self.op == "eq" else list(self.value)
        return {"attr": self.attr, "op": self.op, "value": value}

    @classmethod
    def from_dict(cls, d: dict) -> FilterSpec:
        try:
            return cls(attr=d["attr"], op=d["op"], value=d["value"])
        except (KeyError, TypeError) as exc:
            raise FilterSpecError(f"malformed filter dict {d!r}: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, s: str) -> FilterSpec:
        try:
            return cls.from_dict(json.loads(s))
        except json.JSONDecodeError as exc:
            raise FilterSpecError(f"bad filter JSON {s!r}: {exc}") from exc

    @classmethod
    def parse(cls, text: str) -> FilterSpec:
        """A spec from the CLI shorthand (or a JSON object string)."""
        text = text.strip()
        if text.startswith("{"):
            return cls.from_json(text)
        if "=" not in text:
            raise FilterSpecError(
                f"bad filter {text!r}: expected attr=V, attr=V1,V2,... or attr=LO..HI"
            )
        attr, _, rhs = text.partition("=")
        attr, rhs = attr.strip(), rhs.strip()
        try:
            if ".." in rhs:
                lo, _, hi = rhs.partition("..")
                return cls(attr=attr, op="range", value=(int(lo), int(hi)))
            if "," in rhs:
                vals = tuple(int(v) for v in rhs.split(",") if v.strip())
                return cls(attr=attr, op="in", value=vals)
            return cls(attr=attr, op="eq", value=int(rhs))
        except ValueError as exc:
            if isinstance(exc, FilterSpecError):
                raise
            raise FilterSpecError(f"bad filter {text!r}: {exc}") from exc


def clauses_to_wire(clauses) -> list[dict]:
    """The JSON-able task-message payload for a predicate conjunction."""
    return [c.to_dict() for c in clauses]


def clauses_from_wire(payload) -> tuple[FilterSpec, ...]:
    """Reconstruct the conjunction a task message carried."""
    return tuple(FilterSpec.from_dict(d) for d in payload)
