"""Filtered & multi-tenant search: predicates, metadata, strategy crossover.

The pieces, in query order:

1. :class:`MetadataStore` — int/categorical attribute columns attached
   at build time and sliced per partition for the workers;
2. :class:`FilterSpec` — one frozen, JSON-portable predicate
   (``eq`` / ``in`` / ``range``); a query carries a conjunction of them
   down the wire in its task messages;
3. :func:`mask_for` — a worker turns the conjunction plus its
   partition's attribute slice into a row mask;
4. :func:`choose_strategy` — the selectivity crossover that picks
   brute-force-over-matches (``pre``) vs filtered HNSW traversal
   (``post``) per task.

Tenant isolation is the degenerate case: ``tenant=t`` is sugar for the
clause ``FilterSpec("tenant", "eq", t)``, plus tenant-namespaced result
cache keys and per-tenant admission/served accounting in
``repro.serving``.  See ``docs/filtering.md``.
"""

from repro.filtering.spec import (
    FilterSpec,
    FilterSpecError,
    clauses_from_wire,
    clauses_to_wire,
)
from repro.filtering.store import MetadataStore, mask_for, selectivity
from repro.filtering.strategy import (
    CROSSOVER_SELECTIVITY,
    STRATEGIES,
    choose_strategy,
)

__all__ = [
    "CROSSOVER_SELECTIVITY",
    "FilterSpec",
    "FilterSpecError",
    "MetadataStore",
    "STRATEGIES",
    "choose_strategy",
    "clauses_from_wire",
    "clauses_to_wire",
    "mask_for",
    "selectivity",
]
