"""Per-vector attribute storage: the :class:`MetadataStore`.

Attributes are integer/categorical columns aligned with the dataset's
row order (global ids): ``store.column("tenant")[gid]`` is row ``gid``'s
tenant.  ``fit(X, metadata=...)`` attaches one of these at build time;
the builder slices each column by the partition's global ids so every
worker holds exactly its rows' attributes
(:attr:`~repro.core.partition.Partition.attrs`) and can evaluate pushed-
down predicates locally without seeing the rest of the dataset.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MetadataStore", "mask_for", "selectivity"]


def mask_for(attrs: dict[str, np.ndarray], clauses, n_rows: int) -> np.ndarray:
    """Row mask for a predicate conjunction over attribute columns.

    ``attrs`` maps attribute name -> per-row values; rows missing an
    attribute column match nothing (a filter on an unknown attribute
    selects the empty set, it does not error — workers must not crash on
    a stale predicate).
    """
    mask = np.ones(n_rows, dtype=bool)
    for clause in clauses:
        col = (attrs or {}).get(clause.attr)
        if col is None:
            mask[:] = False
            break
        mask &= clause.matches(col)
    return mask


def selectivity(mask: np.ndarray) -> float:
    """Matching fraction of a row mask (0.0 on an empty store)."""
    n = len(mask)
    return float(np.count_nonzero(mask)) / n if n else 0.0


class MetadataStore:
    """Columnar int/categorical attributes aligned with dataset row order.

    The build-time entry point for filtered search: construct one over
    the corpus (``MetadataStore({"tenant": t, "tier": q})``), hand it to
    ``DistributedANN.fit(X, metadata=store)``, and filtered queries can
    then predicate on any column.  Columns are int64 arrays of length
    ``n_rows``; :meth:`slice_rows` produces the per-partition views the
    builder ships to workers.
    """

    def __init__(self, columns: dict[str, np.ndarray] | None = None) -> None:
        self._columns: dict[str, np.ndarray] = {}
        for name, values in (columns or {}).items():
            self.add_column(name, values)

    def __len__(self) -> int:
        return next(iter(self._columns.values())).shape[0] if self._columns else 0

    @property
    def n_rows(self) -> int:
        return len(self)

    @property
    def names(self) -> list[str]:
        return sorted(self._columns)

    def add_column(self, name: str, values: np.ndarray) -> None:
        """Attach one attribute column (cast to int64, length-checked)."""
        col = np.asarray(values)
        if col.ndim != 1:
            raise ValueError(f"attribute column {name!r} must be 1-d, got shape {col.shape}")
        if not np.issubdtype(col.dtype, np.integer):
            if not np.issubdtype(col.dtype, np.number):
                raise ValueError(
                    f"attribute column {name!r} must be int/categorical codes, got {col.dtype}"
                )
            col = col.astype(np.int64)
        col = np.ascontiguousarray(col, dtype=np.int64)
        if self._columns and len(col) != len(self):
            raise ValueError(
                f"attribute column {name!r} has {len(col)} rows, store has {len(self)}"
            )
        self._columns[name] = col

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no attribute column {name!r}; available: {self.names}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def slice_rows(self, row_ids: np.ndarray) -> dict[str, np.ndarray]:
        """Per-partition attribute views: every column sliced by global ids."""
        row_ids = np.asarray(row_ids)
        return {name: col[row_ids].copy() for name, col in self._columns.items()}

    def mask(self, clauses) -> np.ndarray:
        """Global row mask for a predicate conjunction."""
        return mask_for(self._columns, clauses, len(self))

    def selectivity(self, clauses) -> float:
        """Matching fraction of the whole corpus for a conjunction."""
        return selectivity(self.mask(clauses))

    @property
    def nbytes(self) -> int:
        return int(sum(col.nbytes for col in self._columns.values()))
