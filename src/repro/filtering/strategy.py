"""Pre- vs post-filter execution and the selectivity crossover.

Two ways to answer "k-NN among the matching rows":

- **pre** — brute-force scan of exactly the matching rows.  Exact by
  construction; cost is linear in the match count, so it wins when the
  predicate is highly selective (few matches).
- **post** — filtered HNSW traversal: the graph walk expands through
  *all* neighbors (non-matching nodes stay in the candidate frontier, so
  the graph's connectivity survives arbitrarily unfriendly predicates)
  but only matching nodes may enter the result set.  Cost tracks the
  ordinary beam search, so it wins when most rows match.

``auto`` picks per (task, partition): brute force when the partition's
matching fraction falls below :data:`CROSSOVER_SELECTIVITY` (or the
match count can't even fill ``k`` — the scan is then both exact and
cheaper than any traversal), filtered traversal otherwise.
"""

from __future__ import annotations

__all__ = ["CROSSOVER_SELECTIVITY", "STRATEGIES", "choose_strategy"]

#: matching-fraction threshold of the auto crossover: below this,
#: brute-forcing the matches costs less than walking the graph past
#: non-matching nodes (see BENCH_filter.json for the measured sweep)
CROSSOVER_SELECTIVITY = 0.10

#: legal values of ``SystemConfig.filter_strategy`` / ``--filter-strategy``
STRATEGIES = ("auto", "pre", "post")


def choose_strategy(strategy: str, n_match: int, n_rows: int, k: int) -> str:
    """Resolve ``auto`` to ``pre``/``post`` for one partition's task."""
    if strategy != "auto":
        return strategy
    if n_rows == 0 or n_match <= k:
        return "pre"
    return "pre" if (n_match / n_rows) < CROSSOVER_SELECTIVITY else "post"
