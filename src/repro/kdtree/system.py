"""The complete KD-tree baseline system (Table III's comparator).

A PANDA-style exact distributed k-NN pipeline assembled from the same
simulated-cluster scaffolding as the main system:

- fit: distributed KD partitioning (coordinate-median splits), then one
  real serial KD-tree per partition;
- query: adaptive two-phase exact search — pilot probe of the containing
  cell for an upper bound, then exact cell routing with that radius —
  which is the standard way to make a distributed KD search exact.

The comparison against VP+HNSW is apples-to-apples: identical network and
cost models, identical master/worker machinery; only the partitioning
geometry, the router, and the local searcher differ.  In high dimensions
the KD cells' exact routing fans out to nearly every partition and the
exact local searches scan most of each partition — the two effects that
produce the ≳10X gap the paper reports.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.config import SystemConfig
from repro.core.partition import NodeStore, Partition
from repro.core.replication import Workgroups
from repro.kdtree.distributed import distributed_build_kd
from repro.kdtree.router import KDPartitionRouter
from repro.kdtree.tree import KDTree
from repro.runtime import ClusterRuntime, MasterWorkerStrategy
from repro.simmpi.comm import Comm
from repro.simmpi.costmodel import CostModel
from repro.simmpi.engine import Simulation
from repro.utils.validation import check_matrix

__all__ = ["KDExactSearcher", "KDBaselineSystem"]


class KDExactSearcher:
    """Exact local search over a partition's serial KD-tree."""

    def __init__(self, cost: CostModel, work_scale: float = 1.0) -> None:
        self.cost = cost
        self.work_scale = work_scale

    def search(self, partition: Partition, query: np.ndarray, k: int):
        tree = partition.index
        if tree is None:
            raise ValueError(f"partition {partition.partition_id} has no KD-tree")
        before = tree.n_dist_evals
        d, local_ids = tree.knn_search(query, k)
        evals = tree.n_dist_evals - before
        ids = partition.ids[local_ids]
        return d, ids, self.cost.distance_cost(evals, tree.X.shape[1]) * self.work_scale

    def build_seconds(self, partition: Partition) -> float:
        n = partition.n_points
        if n == 0:
            return 0.0
        return self.cost.compare_cost(int(n * max(np.log2(n), 1.0))) * self.work_scale


class KDBaselineSystem:
    """Distributed exact KD-tree k-NN search (the PANDA stand-in).

    Accepts the same :class:`SystemConfig`; routing is forced to the
    adaptive two-phase exact mode with two-sided results (exact search
    requires the pilot radius back at the master).  ``work_scale``
    multiplies local search costs for paper-scale modeled comparisons.
    """

    def __init__(self, config: SystemConfig, leaf_size: int = 64, work_scale: float = 1.0):
        self.config = replace(config, routing="adaptive", one_sided=False)
        self.leaf_size = leaf_size
        self.work_scale = work_scale
        self._router: KDPartitionRouter | None = None
        self._partitions: dict[int, Partition] | None = None
        self._node_stores: dict[int, NodeStore] | None = None
        self._workgroups: Workgroups | None = None
        self._dim: int | None = None
        self.build_seconds: float = 0.0

    def fit(self, X: np.ndarray) -> float:
        """Build the distributed KD index; returns the virtual build time."""
        X = check_matrix(X, "X")
        self._dim = X.shape[1]
        cfg = self.config
        P = cfg.n_cores
        if len(X) < P:
            raise ValueError(f"dataset has {len(X)} points for {P} partitions")

        sim = Simulation(network=cfg.network, cost=cfg.cost)
        rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, 0xD7]))
        perm = rng.permutation(len(X))
        chunks = np.array_split(perm, P)
        searcher_cost = KDExactSearcher(cfg.cost, self.work_scale)
        world: Comm

        def program_factory(rank):
            def program(ctx):
                res = yield from distributed_build_kd(
                    ctx, world, X[np.sort(chunks[rank])], np.sort(chunks[rank])
                )
                tree = KDTree(res.points, leaf_size=self.leaf_size, metric=cfg.metric)
                part = Partition(rank, res.points, res.ids, index=tree)
                yield from ctx.compute(searcher_cost.build_seconds(part), kind="build_kd")
                paths = yield from world.gather(ctx, res.path, root=0)
                return part, paths

            return program

        pids = [
            sim.add_proc(program_factory(r), node=cfg.node_of_core(r), name=f"kdbuild{r}")
            for r in range(P)
        ]
        world = Comm(sim, pids, "kdbuild")
        out = sim.run()

        self._partitions = {r: out.results[pids[r]][0] for r in range(P)}
        if P > 1:
            self._router = KDPartitionRouter.from_paths(out.results[pids[0]][1])
        else:
            from repro.kdtree.router import KDRouteNode

            self._router = KDPartitionRouter(KDRouteNode(partition=0), 1)
        self._workgroups = Workgroups(P, 1)  # the baseline has no replication
        self._node_stores = {n: NodeStore(n) for n in range(cfg.n_nodes)}
        for r in range(P):
            self._node_stores[cfg.node_of_core(r)].add(self._partitions[r])
        self.build_seconds = out.makespan
        return out.makespan

    def query(self, Q: np.ndarray, k: int | None = None):
        """Exact batch k-NN; returns (D, I, SearchReport)."""
        if self._router is None:
            raise RuntimeError("call fit(X) before querying")
        Q = check_matrix(Q, "Q")
        if Q.shape[1] != self._dim:
            raise ValueError(f"queries are {Q.shape[1]}-d, index is {self._dim}-d")
        k = k or self.config.k
        searcher = KDExactSearcher(self.config.cost, self.work_scale)
        runtime = ClusterRuntime(self.config)
        return runtime.run_search(
            MasterWorkerStrategy(),
            self._router,
            self._workgroups,
            self._node_stores,
            searcher,
            Q,
            k,
        )
