"""Axis-aligned partition routing for the KD baseline master."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import heapq

from repro.utils.validation import check_positive_int, check_vector

__all__ = ["KDRouteNode", "KDPartitionRouter"]


@dataclass
class KDRouteNode:
    axis: int = -1
    threshold: float = 0.0
    left: "KDRouteNode | None" = None
    right: "KDRouteNode | None" = None
    partition: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.partition >= 0


class KDPartitionRouter:
    """KD-tree skeleton mapping queries to partition ids (exact routing)."""

    def __init__(self, root: KDRouteNode, n_partitions: int):
        self.root = root
        self.n_partitions = n_partitions
        #: coordinate compares only — no full distance evaluations; kept for
        #: interface parity with PartitionRouter (the master charges this)
        self.n_dist_evals = 0

    @classmethod
    def from_paths(
        cls, paths: list[list[tuple[int, float, bool]]]
    ) -> "KDPartitionRouter":
        """Assemble from per-rank (axis, threshold, went_left) paths, the
        same mechanism as the VP router."""
        n = len(paths)

        def rec(members: list[int], depth: int) -> KDRouteNode:
            if len(members) == 1:
                return KDRouteNode(partition=members[0])
            lefts = [r for r in members if paths[r][depth][2]]
            rights = [r for r in members if not paths[r][depth][2]]
            axis, threshold, _ = paths[lefts[0]][depth]
            return KDRouteNode(
                axis=int(axis),
                threshold=float(threshold),
                left=rec(lefts, depth + 1),
                right=rec(rights, depth + 1),
            )

        return cls(rec(list(range(n)), 0), n)

    @classmethod
    def from_kdtree(cls, tree) -> "KDPartitionRouter":
        counter = [0]

        def rec(node) -> KDRouteNode:
            if node.is_leaf:
                pid = counter[0]
                counter[0] += 1
                return KDRouteNode(partition=pid)
            return KDRouteNode(
                axis=node.axis,
                threshold=node.threshold,
                left=rec(node.left),
                right=rec(node.right),
            )

        root = rec(tree.root)
        return cls(root, counter[0])

    def route_exact(self, query: np.ndarray, tau: float) -> list[int]:
        """All partitions whose cell intersects the L2 ball of radius tau."""
        q = check_vector(query, "query")
        if tau < 0:
            raise ValueError(f"tau must be non-negative, got {tau}")
        out: list[int] = []

        def rec(node: KDRouteNode) -> None:
            if node.is_leaf:
                out.append(node.partition)
                return
            delta = float(q[node.axis]) - node.threshold
            if delta - tau <= 0:
                rec(node.left)
            if delta + tau > 0:
                rec(node.right)

        rec(self.root)
        return out

    def route_approx(self, query: np.ndarray, n_probe: int = 1) -> list[int]:
        """Best-first multi-probe by axis-margin penalty (mirror of the VP
        router's mode, so both routers drive the same master program)."""
        q = check_vector(query, "query")
        check_positive_int(n_probe, "n_probe")
        out: list[int] = []
        seq = 0
        heap: list[tuple[float, int, KDRouteNode]] = [(0.0, seq, self.root)]
        while heap and len(out) < n_probe:
            penalty, _, node = heapq.heappop(heap)
            while not node.is_leaf:
                delta = float(q[node.axis]) - node.threshold
                near, far = (
                    (node.left, node.right) if delta <= 0 else (node.right, node.left)
                )
                seq += 1
                heapq.heappush(heap, (penalty + abs(delta), seq, far))
                node = near
            out.append(node.partition)
        return out

    def route_nearest(self, query: np.ndarray) -> int:
        """The single partition whose cell contains the query."""
        q = check_vector(query, "query")
        node = self.root
        while not node.is_leaf:
            node = node.left if float(q[node.axis]) <= node.threshold else node.right
        return node.partition

    def partitions(self) -> list[int]:
        out: list[int] = []

        def rec(node: KDRouteNode) -> None:
            if node.is_leaf:
                out.append(node.partition)
            else:
                rec(node.left)
                rec(node.right)

        rec(self.root)
        return out
