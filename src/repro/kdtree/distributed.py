"""PANDA-style distributed KD-tree construction.

Mirrors :func:`repro.vptree.distributed.distributed_build` with coordinate
splits instead of vantage-point balls: at each level the group agrees on
the widest-spread axis (via allreduce of local min/max), finds the exact
global coordinate median with the distributed selection algorithm, shuffles
with alltoallv, and recurses on split communicators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simmpi.comm import Comm
from repro.simmpi.engine import Context
from repro.vptree.distributed import _chunks_for, _split_inside
from repro.vptree.median import distributed_select

__all__ = ["DistributedKDBuildResult", "distributed_build_kd"]


@dataclass
class DistributedKDBuildResult:
    """One rank's outcome of the distributed KD partitioning."""

    points: np.ndarray
    ids: np.ndarray
    #: root-to-leaf path: (axis, threshold, went_left)
    path: list[tuple[int, float, bool]] = field(default_factory=list)


def distributed_build_kd(
    ctx: Context,
    world: Comm,
    local_points: np.ndarray,
    local_ids: np.ndarray,
):
    """Run PANDA's coarse-level construction on the calling rank.

    Generator; every rank of ``world`` must run it.  Returns this rank's
    :class:`DistributedKDBuildResult`.
    """
    X = np.ascontiguousarray(local_points, dtype=np.float32)
    ids = np.asarray(local_ids, dtype=np.int64)
    if len(X) != len(ids):
        raise ValueError(f"{len(X)} points but {len(ids)} ids")
    comm = world
    path: list[tuple[int, float, bool]] = []

    while comm.size > 1:
        my_rank = comm.rank(ctx)
        # agree on the globally widest-spread axis
        if len(X):
            lo, hi = X.min(axis=0), X.max(axis=0)
        else:
            lo = np.full(X.shape[1], np.inf, dtype=np.float32)
            hi = np.full(X.shape[1], -np.inf, dtype=np.float32)
        bounds = yield from comm.allreduce(
            ctx,
            (lo, hi),
            op=lambda pairs: (
                np.minimum.reduce([p[0] for p in pairs]),
                np.maximum.reduce([p[1] for p in pairs]),
            ),
        )
        yield from ctx.compute(ctx.cost.compare_cost(2 * len(X)), kind="build_split")
        axis = int(np.argmax(bounds[1] - bounds[0]))

        values = X[:, axis].astype(np.float64) if len(X) else np.empty(0)
        n_left_ranks = (comm.size + 1) // 2
        total = yield from comm.allreduce(ctx, len(X), op=sum)
        k_global = max(1, min(total - 1, round(total * n_left_ranks / comm.size)))
        threshold = yield from distributed_select(ctx, comm, values, k_global)
        inside = yield from _split_inside(ctx, comm, values, threshold, k_global)

        left_ranks = list(range(n_left_ranks))
        right_ranks = list(range(n_left_ranks, comm.size))
        send: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for mask, dests in ((inside, left_ranks), (~inside, right_ranks)):
            pts, pid = X[mask], ids[mask]
            for j, (a, b) in enumerate(_chunks_for(len(pts), len(dests), my_rank)):
                if b > a:
                    send[dests[j]] = (pts[a:b], pid[a:b])
        yield from ctx.compute(ctx.cost.copy_cost(X.nbytes + ids.nbytes), kind="build_shuffle")
        inbox = yield from comm.alltoallv(ctx, send)

        went_left = my_rank < n_left_ranks
        if inbox:
            X = np.ascontiguousarray(np.concatenate([p for p, _ in inbox.values()]))
            ids = np.concatenate([i for _, i in inbox.values()])
        else:
            X = np.empty((0, X.shape[1]), dtype=np.float32)
            ids = np.empty(0, dtype=np.int64)
        path.append((axis, float(threshold), went_left))
        comm = yield from comm.split(ctx, color=0 if went_left else 1, key=my_rank)

    return DistributedKDBuildResult(points=X, ids=ids, path=path)
