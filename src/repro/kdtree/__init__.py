"""KD-trees: the exact baseline (PANDA, Patwary et al., IPDPS 2016).

Table III compares the paper's VP+HNSW system against "a completely k-d
tree-based solution" — a distributed KD-tree whose partitions are searched
exactly.  This package provides:

- :class:`~repro.kdtree.tree.KDTree` — serial bucket-leaf KD-tree with
  exact bounded k-NN search (median split on the widest-spread dimension,
  SIMD-style vectorized bucket scans);
- :class:`~repro.kdtree.router.KDPartitionRouter` — axis-aligned partition
  routing for the master;
- :func:`~repro.kdtree.distributed.distributed_build_kd` — PANDA-style
  distributed construction mirroring the VP version (coordinate-median
  splits, alltoallv shuffles, recursive communicator halving).

The known failure mode this baseline demonstrates: in high dimensions the
query ball intersects nearly every axis-aligned cell, so exact search must
visit most partitions/leaves — "the number of tree-nodes and hence
processors visited by the k-NN search routine explodes" (paper §II).
"""

from repro.kdtree.tree import KDTree
from repro.kdtree.router import KDPartitionRouter, KDRouteNode
from repro.kdtree.distributed import distributed_build_kd
from repro.kdtree.system import KDBaselineSystem, KDExactSearcher

__all__ = [
    "KDTree",
    "KDPartitionRouter",
    "KDRouteNode",
    "distributed_build_kd",
    "KDBaselineSystem",
    "KDExactSearcher",
]
