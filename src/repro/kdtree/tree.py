"""Serial bucket-leaf KD-tree with exact k-NN search.

Splits on the widest-spread coordinate at the median (PANDA's strategy),
keeps points in leaf buckets scanned with vectorized distance kernels (the
stand-in for PANDA's SIMD buckets), and prunes with the classic
axis-distance bound.  Only correct for L2/Linf-style coordinate metrics —
which is the point the paper makes about KD-trees being metric-specific,
and why only ``l2`` and ``linf`` are accepted here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics import Metric, get_metric
from repro.utils.heaps import KnnBuffer
from repro.utils.validation import check_matrix, check_positive_int, check_vector

__all__ = ["KDTree", "KDNode"]

_SUPPORTED = ("l2", "linf")


@dataclass
class KDNode:
    axis: int = -1
    threshold: float = 0.0
    left: "KDNode | None" = None
    right: "KDNode | None" = None
    ids: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.ids is not None


class KDTree:
    """Exact k-NN index over a point matrix with axis-aligned splits."""

    def __init__(
        self,
        X: np.ndarray,
        leaf_size: int = 32,
        metric: str | Metric = "l2",
    ) -> None:
        self.X = check_matrix(X, "X")
        self.metric = get_metric(metric)
        if self.metric.name not in _SUPPORTED:
            raise ValueError(
                f"KD-tree pruning supports {_SUPPORTED}, not {self.metric.name!r} "
                "(KD-trees are coordinate-metric specific — see paper §III-B)"
            )
        check_positive_int(leaf_size, "leaf_size")
        self.leaf_size = leaf_size
        self.n_dist_evals = 0
        self.root = self._build(np.arange(len(self.X), dtype=np.int64))

    def _build(self, ids: np.ndarray) -> KDNode:
        if len(ids) <= self.leaf_size:
            return KDNode(ids=ids)
        sub = self.X[ids]
        spreads = sub.max(axis=0) - sub.min(axis=0)
        axis = int(np.argmax(spreads))
        values = sub[:, axis]
        threshold = float(np.median(values))
        inside = values <= threshold
        if inside.all() or not inside.any():
            order = np.argsort(values, kind="stable")
            half = len(ids) // 2
            inside = np.zeros(len(ids), dtype=bool)
            inside[order[:half]] = True
            threshold = float(values[order[half - 1]])
        return KDNode(
            axis=axis,
            threshold=threshold,
            left=self._build(ids[inside]),
            right=self._build(ids[~inside]),
        )

    def knn_search(
        self, query: np.ndarray, k: int, *, filter: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact k-NN; returns (distances, ids) closest first.

        ``filter``: optional boolean mask over insertion-order rows (= row
        indices of ``X``, which are also the returned ids); results stay
        exact over the matching subset via the shared overfetch fallback.
        """
        check_positive_int(k, "k")
        q = check_vector(query, "query", dim=self.X.shape[1])
        if filter is not None:
            from repro.protocols import filtered_overfetch

            n = len(self.X)
            return filtered_overfetch(
                lambda qq, kk: self.knn_search(qq, kk),
                n,
                np.arange(n, dtype=np.int64),
                q,
                k,
                filter,
            )
        buf = KnnBuffer(k)
        self._search(self.root, q, buf)
        return buf.result()

    def knn_search_batch(
        self, Q: np.ndarray, k: int, *, filter: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Padded (n_queries, k) batch search (the :class:`~repro.protocols.Searcher`
        contract); each row is exactly ``knn_search(Q[i], k, filter=...)``."""
        from repro.protocols import batch_from_single

        return batch_from_single(
            self.knn_search, check_matrix(Q, "Q"), k, filter=filter
        )

    def _search(self, node: KDNode, q: np.ndarray, buf: KnnBuffer) -> None:
        if node.is_leaf:
            if len(node.ids):
                d = self.metric.one_to_many(q, self.X[node.ids])
                self.n_dist_evals += len(node.ids)
                buf.offer_many(d, node.ids)
            return
        delta = float(q[node.axis]) - node.threshold
        first, second = (node.left, node.right) if delta <= 0 else (node.right, node.left)
        self._search(first, q, buf)
        # the other half-space is reachable iff the axis distance to the
        # splitting hyperplane is below the current pruning radius
        if abs(delta) <= buf.tau:
            self._search(second, q, buf)

    def leaves(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []

        def rec(node: KDNode) -> None:
            if node.is_leaf:
                out.append(node.ids)
            else:
                rec(node.left)
                rec(node.right)

        rec(self.root)
        return out

    def depth(self) -> int:
        def rec(node: KDNode) -> int:
            return 0 if node.is_leaf else 1 + max(rec(node.left), rec(node.right))

        return rec(self.root)
