"""Minkowski-family metrics with blocked, cache-friendly kernels.

The L2 pairwise kernel uses the ``|a-b|^2 = |a|^2 - 2 a.b + |b|^2`` expansion
so the dominant cost is a single GEMM — the same trick every production ANN
library (FAISS, hnswlib) uses for batch distance evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import Metric, register_metric

__all__ = [
    "EuclideanMetric",
    "SquaredEuclidean",
    "ManhattanMetric",
    "ChebyshevMetric",
]


def _l2sq_one_to_many(q: np.ndarray, X: np.ndarray) -> np.ndarray:
    diff = X - q[np.newaxis, :]
    # einsum avoids materializing diff**2
    return np.einsum("ij,ij->i", diff, diff)


def _l2sq_pairwise(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    a2 = np.einsum("ij,ij->i", A, A)[:, None]
    b2 = np.einsum("ij,ij->i", B, B)[None, :]
    d = a2 + b2 - 2.0 * (A @ B.T)
    np.maximum(d, 0.0, out=d)  # clamp tiny negatives from cancellation
    return d


@register_metric
class EuclideanMetric(Metric):
    """L2 norm — the metric used in all of the paper's experiments."""

    name = "l2"
    is_true_metric = True

    def pair(self, a: np.ndarray, b: np.ndarray) -> float:
        diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
        return float(np.sqrt(diff @ diff))

    def one_to_many(self, q: np.ndarray, X: np.ndarray) -> np.ndarray:
        return np.sqrt(_l2sq_one_to_many(np.asarray(q, np.float64), np.asarray(X, np.float64)))

    def pairwise(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        return np.sqrt(_l2sq_pairwise(np.asarray(A, np.float64), np.asarray(B, np.float64)))


@register_metric
class SquaredEuclidean(Metric):
    """Squared L2.  Monotone with L2 so k-NN *rankings* agree, but it is not
    a true metric (triangle inequality fails) — the VP-tree refuses it."""

    name = "sqeuclidean"
    is_true_metric = False

    def pair(self, a: np.ndarray, b: np.ndarray) -> float:
        diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
        return float(diff @ diff)

    def one_to_many(self, q: np.ndarray, X: np.ndarray) -> np.ndarray:
        return _l2sq_one_to_many(np.asarray(q, np.float64), np.asarray(X, np.float64))

    def pairwise(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        return _l2sq_pairwise(np.asarray(A, np.float64), np.asarray(B, np.float64))


@register_metric
class ManhattanMetric(Metric):
    """L1 norm.  Included because the paper motivates VP-trees as
    metric-agnostic (Yianilos shows KD-trees degrade off L2/Linf)."""

    name = "l1"
    is_true_metric = True

    def pair(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(np.abs(np.asarray(a, np.float64) - np.asarray(b, np.float64)).sum())

    def one_to_many(self, q: np.ndarray, X: np.ndarray) -> np.ndarray:
        return np.abs(np.asarray(X, np.float64) - np.asarray(q, np.float64)[None, :]).sum(axis=1)


@register_metric
class ChebyshevMetric(Metric):
    """L-infinity norm."""

    name = "linf"
    is_true_metric = True

    def pair(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(np.abs(np.asarray(a, np.float64) - np.asarray(b, np.float64)).max())

    def one_to_many(self, q: np.ndarray, X: np.ndarray) -> np.ndarray:
        return np.abs(np.asarray(X, np.float64) - np.asarray(q, np.float64)[None, :]).max(axis=1)
