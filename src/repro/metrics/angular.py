"""Angular dissimilarities (cosine, inner product).

DEEP1B descriptors are unit-normalized CNN features; cosine distance on them
coincides with a monotone transform of L2.  These are not true metrics, so
they are only legal for HNSW local indexes, not for VP-tree routing.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import Metric, register_metric

__all__ = ["CosineDistance", "InnerProductDissimilarity"]

_EPS = 1e-30


@register_metric
class CosineDistance(Metric):
    """1 - cos(a, b).  Range [0, 2]."""

    name = "cosine"
    is_true_metric = False

    def pair(self, a: np.ndarray, b: np.ndarray) -> float:
        a = np.asarray(a, np.float64)
        b = np.asarray(b, np.float64)
        na = np.sqrt(a @ a) + _EPS
        nb = np.sqrt(b @ b) + _EPS
        return float(1.0 - (a @ b) / (na * nb))

    def one_to_many(self, q: np.ndarray, X: np.ndarray) -> np.ndarray:
        q = np.asarray(q, np.float64)
        X = np.asarray(X, np.float64)
        nq = np.sqrt(q @ q) + _EPS
        nx = np.sqrt(np.einsum("ij,ij->i", X, X)) + _EPS
        return 1.0 - (X @ q) / (nx * nq)

    def pairwise(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        A = np.asarray(A, np.float64)
        B = np.asarray(B, np.float64)
        na = np.sqrt(np.einsum("ij,ij->i", A, A)) + _EPS
        nb = np.sqrt(np.einsum("ij,ij->i", B, B)) + _EPS
        return 1.0 - (A @ B.T) / np.outer(na, nb)


@register_metric
class InnerProductDissimilarity(Metric):
    """Negative inner product, for maximum-inner-product search."""

    name = "ip"
    is_true_metric = False

    def pair(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(-(np.asarray(a, np.float64) @ np.asarray(b, np.float64)))

    def one_to_many(self, q: np.ndarray, X: np.ndarray) -> np.ndarray:
        return -(np.asarray(X, np.float64) @ np.asarray(q, np.float64))

    def pairwise(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        return -(np.asarray(A, np.float64) @ np.asarray(B, np.float64).T)
