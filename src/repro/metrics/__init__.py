"""Distance metrics for metric-space search.

The VP-tree requires a true metric (triangle inequality); HNSW works with any
dissimilarity.  All metrics expose three vectorized entry points:

- ``pair(a, b)``        — scalar distance between two vectors,
- ``one_to_many(q, X)`` — distances from one query to every row of ``X``,
- ``pairwise(A, B)``    — full distance matrix (used by ground truth).

Use :func:`get_metric` to resolve a metric by name.
"""

from repro.metrics.base import Metric, get_metric, register_metric, available_metrics
from repro.metrics.lp import (
    EuclideanMetric,
    SquaredEuclidean,
    ManhattanMetric,
    ChebyshevMetric,
)
from repro.metrics.angular import CosineDistance, InnerProductDissimilarity

__all__ = [
    "Metric",
    "get_metric",
    "register_metric",
    "available_metrics",
    "EuclideanMetric",
    "SquaredEuclidean",
    "ManhattanMetric",
    "ChebyshevMetric",
    "CosineDistance",
    "InnerProductDissimilarity",
]
