"""Metric protocol and registry."""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Metric", "register_metric", "get_metric", "available_metrics"]


class Metric(abc.ABC):
    """A dissimilarity on R^d.

    ``is_true_metric`` declares whether the triangle inequality holds — the
    VP-tree's pruning rule is only valid for true metrics, and the tree
    constructor enforces this flag.
    """

    #: registry name; subclasses set this
    name: str = ""
    #: whether the triangle inequality holds
    is_true_metric: bool = True

    @abc.abstractmethod
    def pair(self, a: np.ndarray, b: np.ndarray) -> float:
        """Distance between two 1-D vectors."""

    @abc.abstractmethod
    def one_to_many(self, q: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Distances from ``q`` (1-D) to each row of ``X`` (2-D)."""

    def pairwise(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """(len(A), len(B)) distance matrix.  Default: row loop over
        :meth:`one_to_many`; subclasses override with a blocked kernel."""
        out = np.empty((A.shape[0], B.shape[0]), dtype=np.float64)
        for i in range(A.shape[0]):
            out[i] = self.one_to_many(A[i], B)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, type[Metric]] = {}


def register_metric(cls: type[Metric]) -> type[Metric]:
    """Class decorator adding a metric to the by-name registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty .name")
    if cls.name in _REGISTRY:
        raise ValueError(f"metric name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_metric(name: str | Metric) -> Metric:
    """Resolve a metric instance from a name (or pass an instance through)."""
    if isinstance(name, Metric):
        return name
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown metric {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_metrics() -> list[str]:
    return sorted(_REGISTRY)
