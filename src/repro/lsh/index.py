"""Multi-table E2LSH-style index (p-stable projections, Datar et al. 2004).

Each of ``n_tables`` hash tables hashes a vector with ``n_bits`` concatenated
scalar quantizers ``h(x) = floor((a.x + b) / w)`` (a ~ N(0, I), b ~ U[0, w)).
Near points collide in at least one table with high probability; a query
scans the union of its buckets and ranks candidates by true distance.

The classic trade-offs this makes measurable:

- more tables  -> higher recall, more memory, more candidates scanned;
- wider ``w``  -> bigger buckets (recall up, selectivity down);
- LSH needs far more candidates than a proximity graph for the same
  recall on clustered data — the empirical reason the paper's generation
  of systems moved to graphs.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import get_metric
from repro.utils.validation import check_matrix, check_positive_int, check_vector

__all__ = ["LSHIndex"]


class LSHIndex:
    """Random-projection LSH for L2 k-NN.

    Parameters
    ----------
    n_tables:
        Independent hash tables (L).
    n_bits:
        Concatenated hashes per table (K) — selectivity knob.
    bucket_width:
        Quantizer width ``w`` relative to the data's typical scale; fit()
        multiplies it by the mean per-coordinate std of the data so the
        default works across datasets.
    """

    def __init__(
        self,
        n_tables: int = 8,
        n_bits: int = 12,
        bucket_width: float = 4.0,
        seed: int = 0,
    ) -> None:
        check_positive_int(n_tables, "n_tables")
        check_positive_int(n_bits, "n_bits")
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self.n_tables = n_tables
        self.n_bits = n_bits
        self.bucket_width = bucket_width
        self.seed = seed
        self._metric = get_metric("l2")
        self._X: np.ndarray | None = None
        self._ids: np.ndarray | None = None
        self._proj: np.ndarray | None = None  # (L, K, dim)
        self._offsets: np.ndarray | None = None  # (L, K)
        self._w: float = 1.0
        self._tables: list[dict[bytes, list[int]]] = []
        self.n_dist_evals = 0

    def __len__(self) -> int:
        return 0 if self._X is None else len(self._X)

    def _hash(self, X: np.ndarray) -> np.ndarray:
        """(n, L, K) integer hash matrix."""
        # projections: (L*K, dim) @ (dim, n) -> reshape
        flat = self._proj.reshape(-1, self._proj.shape[2])
        h = (X @ flat.T).reshape(len(X), self.n_tables, self.n_bits)
        h = np.floor((h + self._offsets[None, :, :]) / self._w).astype(np.int64)
        return h

    def fit(self, X: np.ndarray, ids: np.ndarray | None = None) -> "LSHIndex":
        X = check_matrix(X, "X")
        self._X = X
        self._ids = (
            np.arange(len(X), dtype=np.int64) if ids is None else np.asarray(ids, np.int64)
        )
        if len(self._ids) != len(X):
            raise ValueError(f"{len(self._ids)} ids for {len(X)} points")
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 0x15A]))
        dim = X.shape[1]
        scale = float(np.mean(X.std(axis=0, dtype=np.float64))) or 1.0
        self._w = self.bucket_width * scale
        self._proj = rng.standard_normal((self.n_tables, self.n_bits, dim)).astype(np.float32)
        self._offsets = rng.uniform(0, self._w, size=(self.n_tables, self.n_bits)).astype(
            np.float32
        )
        hashes = self._hash(X)
        self._tables = []
        for t in range(self.n_tables):
            table: dict[bytes, list[int]] = {}
            keys = np.ascontiguousarray(hashes[:, t, :])
            for row in range(len(X)):
                key = keys[row].tobytes()
                table.setdefault(key, []).append(row)
            self._tables.append(table)
        return self

    def candidates(self, query: np.ndarray) -> np.ndarray:
        """Union of the query's buckets across tables (internal rows)."""
        if self._X is None:
            raise RuntimeError("fit before searching")
        q = check_vector(query, "query", dim=self._X.shape[1])
        h = self._hash(q[np.newaxis, :])[0]
        rows: set[int] = set()
        for t in range(self.n_tables):
            rows.update(self._tables[t].get(h[t].tobytes(), ()))
        return np.fromiter(rows, dtype=np.int64, count=len(rows))

    def knn_search(
        self, query: np.ndarray, k: int, *, filter: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN: rank the colliding candidates by true L2.

        ``filter``: optional boolean mask over insertion-order rows;
        bucket candidates are internal rows, so masked rows are dropped
        before ranking (native pre-ranking filter, no overfetch needed).
        """
        check_positive_int(k, "k")
        cand = self.candidates(query)
        if filter is not None:
            from repro.protocols import check_filter_mask

            mask = check_filter_mask(filter, len(self))
            cand = cand[mask[cand]]
        if len(cand) == 0:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        q = np.asarray(query, dtype=np.float32).ravel()
        d = self._metric.one_to_many(q, self._X[cand])
        self.n_dist_evals += len(cand)
        order = np.lexsort((self._ids[cand], d))[:k]
        return np.asarray(d[order], dtype=np.float64), self._ids[cand][order]

    def knn_search_batch(
        self, Q: np.ndarray, k: int, *, filter: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Padded (n_queries, k) batch search (the :class:`~repro.protocols.Searcher`
        contract); each row is exactly ``knn_search(Q[i], k, filter=...)``."""
        from repro.protocols import batch_from_single

        return batch_from_single(
            self.knn_search, check_matrix(Q, "Q"), k, filter=filter
        )

    def selectivity(self, queries: np.ndarray) -> float:
        """Mean fraction of the dataset scanned per query."""
        queries = check_matrix(queries, "queries")
        fracs = [len(self.candidates(q)) / max(len(self), 1) for q in queries]
        return float(np.mean(fracs))
