"""Locality-sensitive hashing: the third approximate-ANN family of §II.

The paper's related work lists three approximate approaches: LSH [9],
product quantization [10], and proximity graphs [11] (its choice).  With
:mod:`repro.pq` covering quantization and :mod:`repro.hnsw` the graphs,
this package completes the set with a classic multi-table random-projection
LSH index, so the three families can be compared head-to-head inside the
same harness (``benchmarks/test_ablation_index_families.py``).
"""

from repro.lsh.index import LSHIndex

__all__ = ["LSHIndex"]
