"""Fast-scan ADC kernels: transposed-code layout + blocked scan.

The classic IVFADC inner loop gathers ``table[m, codes[i, m]]`` per
(vector, subspace) pair through numpy fancy indexing — one strided
gather per probed list, plus a fresh distance table per list.  The
fast-scan layout (André's thesis, PAPERS.md) transposes each inverted
list's codes once at build time to ``(n_subspaces, n_codes)`` so the
scan walks contiguous code bytes subspace by subspace while the active
256-entry lookup table stays in L1, and the per-query table is built
once and reused across every probed list (and across the batched
queries probing the same list).

``adc_scan`` dispatches to the compiled kernel (``_pqscan.c``) when it
loaded and passed its self-check, else to the vectorized numpy
fallback; both accumulate sequentially in subspace order, so the two
paths are bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.pq.native import native_adc_scan

__all__ = ["adc_scan", "transpose_codes"]


def transpose_codes(codes: np.ndarray) -> np.ndarray:
    """(n, n_subspaces) codes -> contiguous (n_subspaces, n) uint8 scan layout."""
    return np.ascontiguousarray(np.asarray(codes, dtype=np.uint8).T)


def _adc_scan_numpy(table: np.ndarray, codes_t: np.ndarray) -> np.ndarray:
    """Vectorized fallback: one contiguous gather + add per subspace."""
    acc = table[0][codes_t[0]]
    for m in range(1, codes_t.shape[0]):
        acc += table[m][codes_t[m]]
    return acc


def adc_scan(table: np.ndarray, codes_t: np.ndarray) -> np.ndarray:
    """ADC distances for one query table over one transposed code list.

    ``table`` is the (n_subspaces, n_centroids) float64 table from
    :meth:`~repro.pq.quantizer.ProductQuantizer.adc_table`; ``codes_t``
    a ``transpose_codes`` layout.  Returns float64 distances of length
    ``codes_t.shape[1]``.
    """
    m_sub, n = codes_t.shape
    lib = native_adc_scan()
    if lib is None or n == 0:
        return _adc_scan_numpy(table, codes_t)
    out = np.empty(n, dtype=np.float64)
    lib.pq_adc_scan(
        table.ctypes.data,
        table.shape[1],
        codes_t.ctypes.data,
        m_sub,
        n,
        out.ctypes.data,
    )
    return out
