/* Compiled fast-scan ADC kernel for IVF-PQ inverted lists.
 *
 * Layout (André's thesis, "Exploiting Modern Hardware for
 * High-Dimensional Nearest Neighbor Search"): the per-query distance
 * table is (n_subspaces, n_centroids) float64, row-major, so one
 * subspace's lookup table is contiguous; the list codes are stored
 * TRANSPOSED as (n_subspaces, n_codes) uint8, so the inner scan loop
 * walks contiguous code bytes while the active lookup table stays in
 * L1.  Codes are processed in blocks whose accumulators also fit in
 * L1, giving one pass over the code bytes per subspace per block.
 *
 * Accumulation is plain sequential double addition in subspace order
 * (m = 0, 1, ...), the same order as the numpy fallback in
 * ``kernels.py`` — the two paths are bit-identical, which the loader's
 * self-check pins at load time.
 */

#include <stdint.h>

typedef int64_t i64;

#define BLOCK 256

/* out[i] = sum_m table[m, codes_t[m, i]] for i in [0, n_codes) */
void pq_adc_scan(const double *table, i64 n_cent, const uint8_t *codes_t,
                 i64 m_sub, i64 n, double *out)
{
    double acc[BLOCK];
    for (i64 start = 0; start < n; start += BLOCK) {
        i64 len = n - start < BLOCK ? n - start : BLOCK;
        const uint8_t *c0 = codes_t + start;
        for (i64 i = 0; i < len; i++)
            acc[i] = table[c0[i]];
        for (i64 m = 1; m < m_sub; m++) {
            const uint8_t *cm = codes_t + m * n + start;
            const double *tm = table + m * n_cent;
            for (i64 i = 0; i < len; i++)
                acc[i] += tm[cm[i]];
        }
        for (i64 i = 0; i < len; i++)
            out[start + i] = acc[i];
    }
}
