"""Product quantization and IVF-PQ: the compressed-index comparators.

The paper's related-work section (§II) contrasts its uncompressed
distributed index with single-node *compressed* billion-scale indexes
(IVF + PQ codebooks [13], polysemous codes [14], GRIP [15]) and claims
(§V-F) that "compression methods ... cannot achieve near perfect recalls"
— recall plateaus as the quantization error floors the distance estimates.
This package implements that comparator class from scratch so the claim
can be measured:

- :class:`~repro.pq.quantizer.ProductQuantizer` — splits vectors into M
  sub-vectors, trains one k-means codebook per subspace, encodes vectors
  as M uint8 codes, and evaluates asymmetric distances (ADC) with
  per-query lookup tables.
- :class:`~repro.pq.ivfpq.IVFPQIndex` — inverted-file index over a coarse
  k-means quantizer with PQ-encoded residual-free lists; query = probe the
  ``n_probe`` nearest cells and rank by ADC.
"""

from repro.pq.quantizer import ProductQuantizer
from repro.pq.ivfpq import IVFPQIndex

__all__ = ["ProductQuantizer", "IVFPQIndex"]
