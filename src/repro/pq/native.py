"""ctypes loader for the compiled fast-scan ADC kernel (``_pqscan.c``).

Same optional-accelerator pattern as :mod:`repro.hnsw.native`: the
kernel is compiled on demand (cached per source hash), and enabled only
after a runtime self-check proves it bit-identical to the numpy
fallback scan in :mod:`repro.pq.kernels` — both accumulate table
entries sequentially in subspace order, so any mismatch means a broken
toolchain and the kernel is simply not used.  Set
``REPRO_PQ_NO_NATIVE=1`` to force the numpy path.
"""

from __future__ import annotations

import ctypes
import os

import numpy as np

from repro.utils.cbuild import compile_and_load

__all__ = ["native_adc_scan"]

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_pqscan.c")

_lib = None
_lib_state = "unloaded"  # unloaded -> ready | failed (sticky per process)


def _load():
    global _lib, _lib_state
    if _lib_state != "unloaded":
        return _lib
    _lib_state = "failed"
    if os.environ.get("REPRO_PQ_NO_NATIVE"):
        return None
    lib = compile_and_load(_SRC, "repro-pq")
    if lib is None:
        return None
    p = ctypes.c_void_p
    i64 = ctypes.c_int64
    lib.pq_adc_scan.restype = None
    lib.pq_adc_scan.argtypes = [p, i64, p, i64, i64, p]
    _lib = lib
    _lib_state = "ready"
    return lib


def _selfcheck(lib) -> bool:
    """Compare the C scan against the numpy fallback, bit for bit."""
    from repro.pq.kernels import _adc_scan_numpy

    rng = np.random.default_rng(0xADC)
    m_sub, n_cent, n = 8, 256, 1000
    table = rng.normal(0, 10, size=(m_sub, n_cent))
    codes_t = rng.integers(0, n_cent, size=(m_sub, n), dtype=np.uint8)
    ref = _adc_scan_numpy(table, codes_t)
    out = np.empty(n, dtype=np.float64)
    lib.pq_adc_scan(
        table.ctypes.data, n_cent, codes_t.ctypes.data, m_sub, n, out.ctypes.data
    )
    return bool(np.array_equal(ref.view(np.int64), out.view(np.int64)))


_scan_checked: bool | None = None


def native_adc_scan():
    """The compiled library if it passed the bit-identity gate, else None."""
    global _scan_checked
    lib = _load()
    if lib is None:
        return None
    if _scan_checked is None:
        _scan_checked = _selfcheck(lib)
    return lib if _scan_checked else None
