"""Product quantizer (Jégou, Douze & Schmid, TPAMI 2011).

A vector x in R^d is split into ``n_subspaces`` contiguous sub-vectors;
each subspace has a k-means codebook of ``n_centroids`` (<= 256 so codes
are uint8).  Encoding maps x to its per-subspace nearest centroids;
asymmetric distance computation (ADC) estimates ||q - x||^2 as the sum of
precomputed (query-subvector -> centroid) table entries — one table lookup
per subspace per database code.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import KMeans
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["ProductQuantizer"]


class ProductQuantizer:
    """Train/encode/decode/ADC for product quantization.

    Parameters
    ----------
    n_subspaces:
        M — number of sub-vectors (must divide the dimension).
    n_centroids:
        k* — codebook size per subspace (<= 256).
    """

    def __init__(self, n_subspaces: int = 8, n_centroids: int = 256, seed: int = 0):
        check_positive_int(n_subspaces, "n_subspaces")
        check_positive_int(n_centroids, "n_centroids")
        if n_centroids > 256:
            raise ValueError(f"n_centroids must be <= 256 for uint8 codes, got {n_centroids}")
        self.n_subspaces = n_subspaces
        self.n_centroids = n_centroids
        self.seed = seed
        #: (n_subspaces, n_centroids, sub_dim) after fit
        self.codebooks: np.ndarray | None = None
        self.dim: int | None = None

    @property
    def sub_dim(self) -> int:
        if self.dim is None:
            raise RuntimeError("fit before accessing sub_dim")
        return self.dim // self.n_subspaces

    def _check_fitted(self) -> None:
        if self.codebooks is None:
            raise RuntimeError("ProductQuantizer must be fit before use")

    def fit(self, X: np.ndarray) -> "ProductQuantizer":
        X = check_matrix(X, "X")
        if X.shape[1] % self.n_subspaces != 0:
            raise ValueError(
                f"dim {X.shape[1]} not divisible by n_subspaces {self.n_subspaces}"
            )
        if X.shape[0] < self.n_centroids:
            raise ValueError(
                f"{X.shape[0]} training points < {self.n_centroids} centroids"
            )
        self.dim = X.shape[1]
        sd = self.sub_dim
        books = np.empty((self.n_subspaces, self.n_centroids, sd), dtype=np.float32)
        for m in range(self.n_subspaces):
            km = KMeans(self.n_centroids, max_iter=25, seed=self.seed + m)
            km.fit(X[:, m * sd : (m + 1) * sd])
            books[m] = km.centroids.astype(np.float32)
        self.codebooks = books
        return self

    def encode(self, X: np.ndarray) -> np.ndarray:
        """(n, n_subspaces) uint8 codes."""
        self._check_fitted()
        X = check_matrix(X, "X")
        if X.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {X.shape[1]}")
        sd = self.sub_dim
        codes = np.empty((X.shape[0], self.n_subspaces), dtype=np.uint8)
        for m in range(self.n_subspaces):
            sub = X[:, m * sd : (m + 1) * sd].astype(np.float64)
            book = self.codebooks[m].astype(np.float64)
            d = (
                np.einsum("ij,ij->i", sub, sub)[:, None]
                - 2.0 * sub @ book.T
                + np.einsum("ij,ij->i", book, book)[None, :]
            )
            codes[:, m] = np.argmin(d, axis=1).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct (approximate) vectors from codes."""
        self._check_fitted()
        codes = np.asarray(codes)
        out = np.empty((codes.shape[0], self.dim), dtype=np.float32)
        sd = self.sub_dim
        for m in range(self.n_subspaces):
            out[:, m * sd : (m + 1) * sd] = self.codebooks[m][codes[:, m]]
        return out

    def adc_table(self, query: np.ndarray) -> np.ndarray:
        """(n_subspaces, n_centroids) table of squared sub-distances."""
        self._check_fitted()
        q = np.asarray(query, dtype=np.float64).ravel()
        if q.shape[0] != self.dim:
            raise ValueError(f"query dim {q.shape[0]} != {self.dim}")
        sd = self.sub_dim
        table = np.empty((self.n_subspaces, self.n_centroids), dtype=np.float64)
        for m in range(self.n_subspaces):
            diff = self.codebooks[m].astype(np.float64) - q[m * sd : (m + 1) * sd]
            table[m] = np.einsum("ij,ij->i", diff, diff)
        return table

    def adc_distances(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Estimated squared L2 distances from ``query`` to coded vectors."""
        from repro.pq.kernels import adc_scan, transpose_codes

        return adc_scan(self.adc_table(query), transpose_codes(codes))

    def quantization_error(self, X: np.ndarray) -> float:
        """Mean squared reconstruction error — the recall-plateau floor."""
        X = check_matrix(X, "X")
        rec = self.decode(self.encode(X))
        return float(((X - rec) ** 2).sum(axis=1).mean())

    @property
    def bits_per_vector(self) -> int:
        return self.n_subspaces * 8

    def compression_ratio(self) -> float:
        """float32 bytes per vector / code bytes per vector."""
        self._check_fitted()
        return (self.dim * 4) / self.n_subspaces
