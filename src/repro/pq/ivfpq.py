"""IVF-PQ: inverted-file index with product-quantized lists.

The canonical single-node compressed billion-scale design (FAISS's
IVFADC; the paper's refs [13][14] are elaborations of it): a coarse
k-means quantizer partitions the space into cells; each vector's PQ code
is stored in its cell's inverted list; a query probes the ``n_probe``
nearest cells and ranks their codes by asymmetric distance.  Optionally a
re-rank step rescoring the top candidates with full-precision vectors
(GRIP's second layer, ref [15]) is supported via ``keep_vectors=True``.

ADC uses the fast-scan layer (:mod:`repro.pq.kernels`): each list's
codes are stored transposed at build time, the per-query distance table
is built once and reused across every probed list, and
:meth:`IVFPQIndex.knn_search_batch` additionally groups the scans of a
batch by cell so a list's code bytes are walked back-to-back for every
query probing it.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import KMeans
from repro.pq.kernels import adc_scan, transpose_codes
from repro.pq.quantizer import ProductQuantizer
from repro.utils.validation import check_matrix, check_positive_int, check_vector

__all__ = ["IVFPQIndex"]


class IVFPQIndex:
    """Compressed approximate k-NN index.

    Parameters
    ----------
    n_cells:
        Coarse quantizer size (inverted lists).
    n_subspaces / n_centroids:
        PQ configuration for the stored codes.
    keep_vectors:
        Keep full-precision vectors for exact re-ranking (GRIP-style
        two-layer search); costs the memory the compression saved, so it
        is off by default.
    n_probe:
        Cells probed per query.
    rerank:
        Top ADC candidates rescored with true distances per query
        (requires ``keep_vectors=True``); 0 disables re-ranking.
    """

    def __init__(
        self,
        n_cells: int = 64,
        n_subspaces: int = 8,
        n_centroids: int = 256,
        keep_vectors: bool = False,
        seed: int = 0,
        n_probe: int = 4,
        rerank: int = 0,
    ):
        check_positive_int(n_cells, "n_cells")
        check_positive_int(n_probe, "n_probe")
        if rerank < 0:
            raise ValueError(f"rerank must be >= 0, got {rerank}")
        self.n_cells = n_cells
        self.pq = ProductQuantizer(n_subspaces, n_centroids, seed=seed)
        self.keep_vectors = keep_vectors
        self.seed = seed
        self.n_probe = n_probe
        self.rerank = rerank
        self._coarse: KMeans | None = None
        self._lists_codes: list[np.ndarray] = []
        self._lists_codes_t: list[np.ndarray] = []
        self._lists_ids: list[np.ndarray] = []
        self._X: np.ndarray | None = None
        self.n_dist_evals = 0

    def __len__(self) -> int:
        return sum(len(ids) for ids in self._lists_ids)

    def fit(self, X: np.ndarray, ids: np.ndarray | None = None) -> "IVFPQIndex":
        """Train coarse quantizer + PQ and build the inverted lists."""
        X = check_matrix(X, "X")
        ids = np.arange(len(X), dtype=np.int64) if ids is None else np.asarray(ids, np.int64)
        if len(ids) != len(X):
            raise ValueError(f"{len(ids)} ids for {len(X)} points")
        self._coarse = KMeans(min(self.n_cells, len(X)), max_iter=25, seed=self.seed).fit(X)
        self.n_cells = self._coarse.k
        self.pq.fit(X)
        assign = self._coarse.predict(X)
        codes = self.pq.encode(X)
        self._lists_codes = [codes[assign == c] for c in range(self.n_cells)]
        # transposed fast-scan layout, built once (see repro.pq.kernels)
        self._lists_codes_t = [transpose_codes(lc) for lc in self._lists_codes]
        self._lists_ids = [ids[assign == c] for c in range(self.n_cells)]
        # insertion-order rows per list, for filter-mask lookups
        self._lists_rows = [np.flatnonzero(assign == c) for c in range(self.n_cells)]
        self._X = X if self.keep_vectors else None
        self._id_to_row = (
            {int(g): r for r, g in enumerate(ids)} if self.keep_vectors else None
        )
        return self

    def _route(self, qf: np.ndarray) -> np.ndarray:
        """Cells to probe for a float64 query, nearest coarse centroid first."""
        cd = ((self._coarse.centroids - qf) ** 2).sum(axis=1)
        self.n_dist_evals += len(cd)
        return np.argsort(cd)[: min(self.n_probe, self.n_cells)]

    def _finalize(
        self, qf: np.ndarray, all_d: list[np.ndarray], all_i: list[np.ndarray], k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Rank scanned fragments; optionally re-rank the top with true distances."""
        if not all_d:
            return np.empty(0), np.empty(0, dtype=np.int64)
        d = np.concatenate(all_d)
        ids = np.concatenate(all_i)
        order = np.lexsort((ids, d))
        if self.rerank > 0:
            if self._X is None:
                raise ValueError("rerank requires keep_vectors=True")
            top = order[: max(self.rerank, k)]
            rows = np.array([self._id_to_row[int(g)] for g in ids[top]])
            true_d = np.sqrt(((self._X[rows].astype(np.float64) - qf) ** 2).sum(axis=1))
            self.n_dist_evals += len(rows)
            sub = np.lexsort((ids[top], true_d))[:k]
            return true_d[sub], ids[top][sub]
        order = order[:k]
        return np.sqrt(d[order]), ids[order]

    def knn_search(
        self, query: np.ndarray, k: int, *, filter: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN by ADC over the probed cells.

        ``rerank > 0`` (constructor knob) rescores that many top ADC
        candidates with true distances (requires ``keep_vectors=True``);
        distances returned are then exact for the reranked prefix.

        ``filter``: optional boolean mask over insertion-order rows; each
        probed list is still fast-scanned whole (the transposed layout is
        all-or-nothing), then masked rows are dropped before ranking.
        """
        if self._coarse is None:
            raise RuntimeError("fit before searching")
        check_positive_int(k, "k")
        q = check_vector(query, "query", dim=self.pq.dim)
        mask = None
        if filter is not None:
            from repro.protocols import check_filter_mask

            mask = check_filter_mask(filter, len(self))
        qf = q.astype(np.float64)
        probe = self._route(qf)
        # one table build per query, reused across every probed list
        table = self.pq.adc_table(q)
        all_d: list[np.ndarray] = []
        all_i: list[np.ndarray] = []
        for c in probe:
            ct = self._lists_codes_t[c]
            n = ct.shape[1]
            if n == 0:
                continue
            d = adc_scan(table, ct)
            # ADC cost: one lookup-sum per code (the amortized table build
            # is charged through the coarse routing above)
            self.n_dist_evals += n
            gids = self._lists_ids[c]
            if mask is not None:
                keep = mask[self._lists_rows[c]]
                d, gids = d[keep], gids[keep]
            if len(d):
                all_d.append(d)
                all_i.append(gids)
        return self._finalize(qf, all_d, all_i, k)

    def knn_search_batch(
        self, Q: np.ndarray, k: int, *, filter: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Padded (n_queries, k) batch search (the :class:`~repro.protocols.Searcher`
        contract); each row is exactly ``knn_search(Q[i], k)``.

        Scans are grouped by cell across the batch: every query's table
        is applied to a list's transposed codes back-to-back, so the
        code bytes are read from cache instead of memory for all but
        the first query probing a list.  Per-query results (fragment
        order, ranking, eval charges) are identical to the single-query
        path.
        """
        if self._coarse is None:
            raise RuntimeError("fit before searching")
        check_positive_int(k, "k")
        Q = check_matrix(Q, "Q")
        if Q.shape[1] != self.pq.dim:
            raise ValueError(f"expected dim {self.pq.dim}, got {Q.shape[1]}")
        if filter is not None:
            # filtered rows break the cell-grouped scan sharing; fall back
            # to the row-by-row path (identical per-row results)
            from repro.protocols import batch_from_single

            return batch_from_single(self.knn_search, Q, k, filter=filter)
        nq = Q.shape[0]
        qfs = [Q[i].astype(np.float64) for i in range(nq)]
        probes = [self._route(qfs[i]) for i in range(nq)]
        tables = [self.pq.adc_table(Q[i]) for i in range(nq)]
        by_cell: dict[int, list[tuple[int, int]]] = {}
        for i, probe in enumerate(probes):
            for pos, c in enumerate(probe.tolist()):
                by_cell.setdefault(c, []).append((i, pos))
        frags: list[dict[int, np.ndarray]] = [{} for _ in range(nq)]
        for c in sorted(by_cell):
            ct = self._lists_codes_t[c]
            n = ct.shape[1]
            if n == 0:
                continue
            for i, pos in by_cell[c]:
                frags[i][pos] = adc_scan(tables[i], ct)
                self.n_dist_evals += n
        D = np.full((nq, k), np.inf, dtype=np.float64)
        ids_out = np.full((nq, k), -1, dtype=np.int64)
        for i in range(nq):
            all_d = [frags[i][pos] for pos in range(len(probes[i])) if pos in frags[i]]
            all_i = [
                self._lists_ids[c]
                for pos, c in enumerate(probes[i].tolist())
                if pos in frags[i]
            ]
            d, gids = self._finalize(qfs[i], all_d, all_i, k)
            D[i, : len(d)] = d
            ids_out[i, : len(gids)] = gids
        return D, ids_out
