"""IVF-PQ: inverted-file index with product-quantized lists.

The canonical single-node compressed billion-scale design (FAISS's
IVFADC; the paper's refs [13][14] are elaborations of it): a coarse
k-means quantizer partitions the space into cells; each vector's PQ code
is stored in its cell's inverted list; a query probes the ``n_probe``
nearest cells and ranks their codes by asymmetric distance.  Optionally a
re-rank step rescoring the top candidates with full-precision vectors
(GRIP's second layer, ref [15]) is supported via ``keep_vectors=True``.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.cluster import KMeans
from repro.pq.quantizer import ProductQuantizer
from repro.utils.validation import check_matrix, check_positive_int, check_vector

__all__ = ["IVFPQIndex"]


class IVFPQIndex:
    """Compressed approximate k-NN index.

    Parameters
    ----------
    n_cells:
        Coarse quantizer size (inverted lists).
    n_subspaces / n_centroids:
        PQ configuration for the stored codes.
    keep_vectors:
        Keep full-precision vectors for exact re-ranking (GRIP-style
        two-layer search); costs the memory the compression saved, so it
        is off by default.
    n_probe:
        Cells probed per query.
    rerank:
        Top ADC candidates rescored with true distances per query
        (requires ``keep_vectors=True``); 0 disables re-ranking.
    """

    def __init__(
        self,
        n_cells: int = 64,
        n_subspaces: int = 8,
        n_centroids: int = 256,
        keep_vectors: bool = False,
        seed: int = 0,
        n_probe: int = 4,
        rerank: int = 0,
    ):
        check_positive_int(n_cells, "n_cells")
        check_positive_int(n_probe, "n_probe")
        if rerank < 0:
            raise ValueError(f"rerank must be >= 0, got {rerank}")
        self.n_cells = n_cells
        self.pq = ProductQuantizer(n_subspaces, n_centroids, seed=seed)
        self.keep_vectors = keep_vectors
        self.seed = seed
        self.n_probe = n_probe
        self.rerank = rerank
        self._coarse: KMeans | None = None
        self._lists_codes: list[np.ndarray] = []
        self._lists_ids: list[np.ndarray] = []
        self._X: np.ndarray | None = None
        self.n_dist_evals = 0

    def __len__(self) -> int:
        return sum(len(ids) for ids in self._lists_ids)

    def fit(self, X: np.ndarray, ids: np.ndarray | None = None) -> "IVFPQIndex":
        """Train coarse quantizer + PQ and build the inverted lists."""
        X = check_matrix(X, "X")
        ids = np.arange(len(X), dtype=np.int64) if ids is None else np.asarray(ids, np.int64)
        if len(ids) != len(X):
            raise ValueError(f"{len(ids)} ids for {len(X)} points")
        self._coarse = KMeans(min(self.n_cells, len(X)), max_iter=25, seed=self.seed).fit(X)
        self.n_cells = self._coarse.k
        self.pq.fit(X)
        assign = self._coarse.predict(X)
        codes = self.pq.encode(X)
        self._lists_codes = [codes[assign == c] for c in range(self.n_cells)]
        self._lists_ids = [ids[assign == c] for c in range(self.n_cells)]
        self._X = X if self.keep_vectors else None
        self._id_to_row = (
            {int(g): r for r, g in enumerate(ids)} if self.keep_vectors else None
        )
        return self

    def knn_search(
        self,
        query: np.ndarray,
        k: int,
        n_probe: int | None = None,
        rerank: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN by ADC over the probed cells.

        ``rerank > 0`` rescores that many top ADC candidates with true
        distances (requires ``keep_vectors=True``); distances returned are
        then exact for the reranked prefix.

        .. deprecated::
            Passing ``n_probe`` / ``rerank`` per call diverges from the
            uniform :class:`~repro.protocols.Searcher` signature; set them
            on the constructor instead.  Per-call values still win but
            emit a :class:`DeprecationWarning`.
        """
        if n_probe is not None or rerank is not None:
            warnings.warn(
                "passing n_probe/rerank to IVFPQIndex.knn_search is deprecated; "
                "set them on the IVFPQIndex constructor instead",
                DeprecationWarning,
                stacklevel=2,
            )
        n_probe = self.n_probe if n_probe is None else n_probe
        rerank = self.rerank if rerank is None else rerank
        if self._coarse is None:
            raise RuntimeError("fit before searching")
        check_positive_int(k, "k")
        q = check_vector(query, "query", dim=self.pq.dim)
        qf = q.astype(np.float64)
        cd = ((self._coarse.centroids - qf) ** 2).sum(axis=1)
        self.n_dist_evals += len(cd)
        probe = np.argsort(cd)[: min(n_probe, self.n_cells)]

        all_d: list[np.ndarray] = []
        all_i: list[np.ndarray] = []
        for c in probe:
            codes = self._lists_codes[c]
            if len(codes) == 0:
                continue
            d = self.pq.adc_distances(q, codes)
            # ADC cost: one table build (n_centroids x n_subspaces evals on
            # sub_dim) amortized + a lookup-sum per code
            self.n_dist_evals += len(codes)
            all_d.append(d)
            all_i.append(self._lists_ids[c])
        if not all_d:
            return np.empty(0), np.empty(0, dtype=np.int64)
        d = np.concatenate(all_d)
        ids = np.concatenate(all_i)
        order = np.lexsort((ids, d))

        if rerank > 0:
            if self._X is None:
                raise ValueError("rerank requires keep_vectors=True")
            top = order[: max(rerank, k)]
            rows = np.array([self._id_to_row[int(g)] for g in ids[top]])
            true_d = np.sqrt(((self._X[rows].astype(np.float64) - qf) ** 2).sum(axis=1))
            self.n_dist_evals += len(rows)
            sub = np.lexsort((ids[top], true_d))[:k]
            return true_d[sub], ids[top][sub]

        order = order[:k]
        return np.sqrt(d[order]), ids[order]

    def knn_search_batch(self, Q: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Padded (n_queries, k) batch search (the :class:`~repro.protocols.Searcher`
        contract); each row is exactly ``knn_search(Q[i], k)``."""
        from repro.protocols import batch_from_single

        return batch_from_single(self.knn_search, check_matrix(Q, "Q"), k)
