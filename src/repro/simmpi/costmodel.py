"""Computation cost model: converts operation counts to virtual seconds.

Inside the simulation, algorithmic work executes for real (so results and
recall are genuine) but *virtual time* is charged from operation counts via
this model.  The anchor rate is the cost of one distance evaluation, the
dominant kernel of every index in the system; the defaults approximate one
2.5 GHz Haswell core with SIMD (the paper's CPU).  ``calibrate_cost_model``
re-derives the rate from a real NumPy micro-benchmark on the host, which is
useful when you want simulated times to track this machine instead of the
paper's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.simmpi.errors import SimConfigError

__all__ = ["CostModel", "calibrate_cost_model"]


@dataclass(frozen=True)
class CostModel:
    """Virtual-time rates for the kernels the system executes."""

    #: seconds per float multiply-add pair (distance inner loop); one Haswell
    #: core with AVX2 FMA sustains ~2e10 madds/s on this kernel in practice.
    sec_per_madd: float = 5.0e-11
    #: fixed per-distance-call overhead (pointer chase, loop setup)
    sec_per_dist_call: float = 2.0e-8
    #: seconds per byte memory copy (partition shuffles, result packing)
    sec_per_byte_copy: float = 1.0e-10
    #: per-element comparison cost (median selection, heap ops)
    sec_per_cmp: float = 1.0e-9
    #: fixed cost charged per HNSW insert besides its distance evaluations
    sec_per_graph_update: float = 2.0e-7

    def __post_init__(self) -> None:
        for name in (
            "sec_per_madd",
            "sec_per_dist_call",
            "sec_per_byte_copy",
            "sec_per_cmp",
            "sec_per_graph_update",
        ):
            if getattr(self, name) <= 0:
                raise SimConfigError(f"{name} must be positive")

    # -- kernel costs -----------------------------------------------------

    def distance_cost(self, n_evals: int, dim: int) -> float:
        """Virtual time of ``n_evals`` distance evaluations in ``dim`` dims."""
        return n_evals * (dim * self.sec_per_madd + self.sec_per_dist_call)

    def copy_cost(self, nbytes: int) -> float:
        return nbytes * self.sec_per_byte_copy

    def compare_cost(self, n_cmp: int) -> float:
        return n_cmp * self.sec_per_cmp

    def graph_update_cost(self, n_updates: int) -> float:
        return n_updates * self.sec_per_graph_update

    # -- composite estimates (used by the modeled local searcher) ----------

    def hnsw_search_cost(self, n_points: int, dim: int, ef: int, m: int) -> float:
        """Expected cost of one HNSW k-NN search on an ``n_points`` index.

        The HNSW search touches ~``ef * M`` neighbors per bottom-layer hop
        and O(log n) hops through the upper layers; empirically the number
        of distance evaluations is close to ``ef * M * log2(n) / 4`` on
        clustered data, which this estimate uses.  Scale-mode simulations
        charge this when the partition is too large to index for real.
        """
        if n_points <= 1:
            return self.sec_per_dist_call
        import math

        n_evals = max(ef * m * math.log2(n_points) / 4.0, ef)
        return self.distance_cost(int(n_evals), dim)

    def hnsw_build_cost(self, n_points: int, dim: int, ef_construction: int, m: int) -> float:
        """Expected cost of building an HNSW index: one insert is roughly
        one search at ``ef_construction`` plus graph updates."""
        per_insert = self.hnsw_search_cost(n_points, dim, ef_construction, m)
        return n_points * per_insert + self.graph_update_cost(n_points * m)


def calibrate_cost_model(dim: int = 128, n: int = 20_000, repeats: int = 3) -> CostModel:
    """Measure this host's distance-evaluation rate and derive a CostModel.

    Times the GEMM-free one-to-many squared-L2 kernel (the shape HNSW uses:
    one query against a neighbor list) and sets ``sec_per_madd`` from the
    best of ``repeats`` runs.  Other rates are scaled proportionally from
    the defaults.
    """
    rng = np.random.default_rng(0)
    X = rng.standard_normal((n, dim)).astype(np.float32)
    q = rng.standard_normal(dim).astype(np.float32)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        diff = X - q
        _ = np.einsum("ij,ij->i", diff, diff)
        best = min(best, time.perf_counter() - t0)
    sec_per_madd = best / (n * dim)
    default = CostModel()
    ratio = sec_per_madd / default.sec_per_madd
    return replace(
        default,
        sec_per_madd=sec_per_madd,
        sec_per_dist_call=default.sec_per_dist_call * ratio,
        sec_per_byte_copy=default.sec_per_byte_copy * ratio,
        sec_per_cmp=default.sec_per_cmp * ratio,
        sec_per_graph_update=default.sec_per_graph_update * ratio,
    )
