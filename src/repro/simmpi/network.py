"""Network timing model.

All communication times in the simulation come from a latency/bandwidth
(Hockney alpha-beta) model with separate intra-node and inter-node
parameters, plus analytic models of the standard collective algorithms
(binomial-tree broadcast/reduce, dissemination barrier, pairwise-exchange
all-to-all).  The defaults, ``ARIES_LIKE``, approximate the paper's Cray
Aries interconnect; ``ETHERNET_LIKE`` is provided for sensitivity studies
(ablation benches run both to show the conclusions do not hinge on the
fabric constants).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simmpi.errors import SimConfigError

__all__ = ["NetworkModel", "ARIES_LIKE", "ETHERNET_LIKE", "XC40_AT_SCALE"]


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta network parameters (seconds, bytes/second)."""

    #: per-message latency between nodes
    inter_latency: float = 1.3e-6
    #: per-message latency within a node (shared-memory transport)
    intra_latency: float = 0.4e-6
    #: point-to-point bandwidth between nodes
    inter_bandwidth: float = 10.0e9
    #: point-to-point bandwidth within a node
    intra_bandwidth: float = 40.0e9
    #: CPU-side per-message software overhead (matching, packing)
    sw_overhead: float = 0.3e-6
    #: extra latency of a one-sided atomic (NIC-side fetch-op)
    rma_latency: float = 1.8e-6
    #: cost of one MPI_Test poll that finds nothing
    poll_cost: float = 0.05e-6
    #: straggler/OS-jitter penalty added to every collective, in seconds per
    #: log2(P).  At thousands of ranks, real collectives pay amplified
    #: per-rank jitter (Hoefler et al.'s OS-noise amplification); this term
    #: is what makes tree-construction time grow with P as Table II shows.
    #: Zero by default; XC40_AT_SCALE enables it.
    straggler_coeff: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "inter_latency",
            "intra_latency",
            "inter_bandwidth",
            "intra_bandwidth",
            "sw_overhead",
            "rma_latency",
            "poll_cost",
        ):
            if getattr(self, name) <= 0:
                raise SimConfigError(f"{name} must be positive")
        if self.straggler_coeff < 0:
            raise SimConfigError("straggler_coeff must be non-negative")

    def _straggler(self, p: int) -> float:
        if p <= 1 or self.straggler_coeff == 0.0:
            return 0.0
        return self.straggler_coeff * math.log2(p)

    # -- point-to-point ---------------------------------------------------

    def p2p_time(
        self,
        nbytes: int,
        same_node: bool,
        *,
        latency_factor: float = 1.0,
        bandwidth_factor: float = 1.0,
    ) -> float:
        """One-way transfer time for an eager point-to-point message.

        The optional factors scale this one transfer's alpha-beta
        parameters — the hook :class:`~repro.faults.FaultInjector` uses to
        model persistently degraded links without mutating the model.
        """
        if same_node:
            return (
                self.intra_latency * latency_factor
                + nbytes / (self.intra_bandwidth * bandwidth_factor)
            )
        return (
            self.inter_latency * latency_factor
            + nbytes / (self.inter_bandwidth * bandwidth_factor)
        )

    def send_overhead(self) -> float:
        """CPU time the sender spends initiating a non-blocking send."""
        return self.sw_overhead

    def recv_overhead(self) -> float:
        """CPU time the receiver spends completing a matched receive."""
        return self.sw_overhead

    # -- one-sided --------------------------------------------------------

    def rma_accumulate_time(self, nbytes: int, same_node: bool) -> float:
        """Round-trip time of one ``MPI_Get_accumulate``.

        One-sided atomics complete on the NIC without target CPU
        involvement; the *origin* pays roughly one latency plus wire time,
        and crucially the *target* pays nothing — that asymmetry is exactly
        why the paper's one-sided result path removes the master-side
        bottleneck.
        """
        base = self.intra_latency if same_node else self.rma_latency
        bw = self.intra_bandwidth if same_node else self.inter_bandwidth
        return base + nbytes / bw

    # -- collectives ------------------------------------------------------

    def barrier_time(self, p: int) -> float:
        """Dissemination barrier: ceil(log2 p) rounds of latency."""
        if p <= 1:
            return 0.0
        return math.ceil(math.log2(p)) * self.inter_latency + self._straggler(p)

    def bcast_time(self, p: int, nbytes: int) -> float:
        """Binomial-tree broadcast."""
        if p <= 1:
            return 0.0
        rounds = math.ceil(math.log2(p))
        return rounds * (self.inter_latency + nbytes / self.inter_bandwidth) + self._straggler(p)

    def reduce_time(self, p: int, nbytes: int) -> float:
        """Binomial-tree reduction (same α-β shape as bcast)."""
        return self.bcast_time(p, nbytes)

    def allreduce_time(self, p: int, nbytes: int) -> float:
        """Reduce + broadcast (the classic non-pipelined bound)."""
        return 2.0 * self.bcast_time(p, nbytes)

    def gather_time(self, p: int, nbytes_per_rank: int) -> float:
        """Binomial gather: log p rounds, doubling data per round."""
        if p <= 1:
            return 0.0
        rounds = math.ceil(math.log2(p))
        # total data funneled to the root is (p-1) * nbytes_per_rank
        return (
            rounds * self.inter_latency
            + (p - 1) * nbytes_per_rank / self.inter_bandwidth
            + self._straggler(p)
        )

    def alltoallv_time(self, p: int, max_send_bytes: int, total_bytes: int) -> float:
        """Pairwise-exchange all-to-all: p-1 rounds.

        ``max_send_bytes`` is the largest per-rank outgoing volume (the
        straggler determines the finish time), ``total_bytes`` the global
        volume (bisection-limited term).
        """
        if p <= 1:
            return 0.0
        latency_term = (p - 1) * self.inter_latency
        wire_term = max(max_send_bytes, total_bytes / max(p, 1)) / self.inter_bandwidth
        return latency_term + wire_term + self._straggler(p)


#: Cray-Aries-like constants (the paper's fabric).
ARIES_LIKE = NetworkModel()

#: Aries constants plus the at-scale straggler term, calibrated so that the
#: per-level collective overhead of the distributed tree construction
#: matches the growth Table II implies (VP phase ~3.9 min at 256 cores to
#: ~10.4 min at 8192: with ~15 collectives per tree level the coefficient
#: works out to ~0.25 s per log2(P) per collective).
XC40_AT_SCALE = NetworkModel(straggler_coeff=0.25)

#: Commodity 10GbE-like constants for fabric-sensitivity ablations.
ETHERNET_LIKE = NetworkModel(
    inter_latency=25e-6,
    intra_latency=0.5e-6,
    inter_bandwidth=1.1e9,
    intra_bandwidth=30.0e9,
    sw_overhead=2.0e-6,
    rma_latency=30e-6,
    poll_cost=0.1e-6,
)
