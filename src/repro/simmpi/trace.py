"""Per-proc timing statistics and span-level phase tracing.

These feed Fig. 5 (search-time breakdown): every proc accumulates where its
virtual time went — computation by kind, send/receive overheads, blocked
communication waits, polls, and RMA — and the eval layer aggregates them
across ranks.

On top of the low-level counters sits a *span* layer: proc code opens named
spans (``with ctx.span("route"): ...``) around the logical phases of the
search pipeline, and every strategy emits the same phase vocabulary
(:data:`PHASES`), so the eval layer and the CLI can render one uniform
per-phase breakdown regardless of which dispatch strategy ran the batch.
Spans measure elapsed virtual intervals — they include any communication
blocking inside the phase — and recording one costs zero virtual time, so
tracing never perturbs the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PHASES", "ProcStats", "aggregate_stats", "aggregate_spans"]

#: The uniform phase vocabulary every dispatch strategy emits:
#:
#: - ``route``    — query-to-partition routing through the tree skeleton,
#: - ``dispatch`` — task fan-out to worker nodes,
#: - ``search``   — local index searches on the workers,
#: - ``reduce``   — result merging (two-sided recv+merge, or the worker-side
#:   RMA accumulate in one-sided mode),
#: - ``drain``    — shutdown: End-of-Queries broadcast, barriers, and
#:   thread-completion collection.
PHASES = ("route", "dispatch", "search", "reduce", "drain")


@dataclass
class ProcStats:
    """Where one proc's virtual time went, plus traffic counters."""

    name: str = ""
    #: computation seconds by kind (e.g. "search", "build", "route")
    compute: dict[str, float] = field(default_factory=dict)
    #: CPU time spent initiating sends
    send_time: float = 0.0
    #: CPU time spent completing receives
    recv_time: float = 0.0
    #: virtual time spent blocked waiting for messages/collectives
    comm_wait: float = 0.0
    #: time burnt in MPI_Test-style polls
    poll_time: float = 0.0
    #: origin-side time of one-sided operations
    rma_time: float = 0.0
    msgs_sent: int = 0
    bytes_sent: int = 0
    rma_ops: int = 0
    #: elapsed virtual seconds inside named spans (see :data:`PHASES`)
    span_time: dict[str, float] = field(default_factory=dict)
    #: number of spans recorded per name
    span_counts: dict[str, int] = field(default_factory=dict)

    def add_compute(self, kind: str, seconds: float) -> None:
        self.compute[kind] = self.compute.get(kind, 0.0) + seconds

    def add_span(self, name: str, seconds: float) -> None:
        self.span_time[name] = self.span_time.get(name, 0.0) + seconds
        self.span_counts[name] = self.span_counts.get(name, 0) + 1

    @property
    def compute_total(self) -> float:
        return sum(self.compute.values())

    @property
    def comm_total(self) -> float:
        """All communication-attributable time (overheads + waits + polls +
        one-sided)."""
        return self.send_time + self.recv_time + self.comm_wait + self.poll_time + self.rma_time

    @property
    def busy_total(self) -> float:
        return self.compute_total + self.comm_total


def aggregate_stats(stats: list[ProcStats]) -> dict[str, float]:
    """Sum a set of proc stats into one breakdown dict (seconds)."""
    out = {
        "compute": 0.0,
        "send": 0.0,
        "recv": 0.0,
        "wait": 0.0,
        "poll": 0.0,
        "rma": 0.0,
    }
    for s in stats:
        out["compute"] += s.compute_total
        out["send"] += s.send_time
        out["recv"] += s.recv_time
        out["wait"] += s.comm_wait
        out["poll"] += s.poll_time
        out["rma"] += s.rma_time
    return out


def aggregate_spans(stats: list[ProcStats]) -> dict[str, float]:
    """Sum span times across procs into one phase breakdown (seconds).

    Every name in :data:`PHASES` is always present (0.0 when no proc
    recorded it); extra custom span names pass through untouched.
    """
    out = {p: 0.0 for p in PHASES}
    for s in stats:
        for name, seconds in s.span_time.items():
            out[name] = out.get(name, 0.0) + seconds
    return out
