"""Per-proc timing statistics.

These feed Fig. 5 (search-time breakdown): every proc accumulates where its
virtual time went — computation by kind, send/receive overheads, blocked
communication waits, polls, and RMA — and the eval layer aggregates them
across ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ProcStats", "aggregate_stats"]


@dataclass
class ProcStats:
    """Where one proc's virtual time went, plus traffic counters."""

    name: str = ""
    #: computation seconds by kind (e.g. "search", "build", "route")
    compute: dict[str, float] = field(default_factory=dict)
    #: CPU time spent initiating sends
    send_time: float = 0.0
    #: CPU time spent completing receives
    recv_time: float = 0.0
    #: virtual time spent blocked waiting for messages/collectives
    comm_wait: float = 0.0
    #: time burnt in MPI_Test-style polls
    poll_time: float = 0.0
    #: origin-side time of one-sided operations
    rma_time: float = 0.0
    msgs_sent: int = 0
    bytes_sent: int = 0
    rma_ops: int = 0

    def add_compute(self, kind: str, seconds: float) -> None:
        self.compute[kind] = self.compute.get(kind, 0.0) + seconds

    @property
    def compute_total(self) -> float:
        return sum(self.compute.values())

    @property
    def comm_total(self) -> float:
        """All communication-attributable time (overheads + waits + polls +
        one-sided)."""
        return self.send_time + self.recv_time + self.comm_wait + self.poll_time + self.rma_time

    @property
    def busy_total(self) -> float:
        return self.compute_total + self.comm_total


def aggregate_stats(stats: list[ProcStats]) -> dict[str, float]:
    """Sum a set of proc stats into one breakdown dict (seconds)."""
    out = {
        "compute": 0.0,
        "send": 0.0,
        "recv": 0.0,
        "wait": 0.0,
        "poll": 0.0,
        "rma": 0.0,
    }
    for s in stats:
        out["compute"] += s.compute_total
        out["send"] += s.send_time
        out["recv"] += s.recv_time
        out["wait"] += s.comm_wait
        out["poll"] += s.poll_time
        out["rma"] += s.rma_time
    return out
