"""Exception types raised by the simulated MPI runtime."""

from __future__ import annotations

__all__ = ["SimError", "DeadlockError", "ProcError", "SimConfigError"]


class SimError(RuntimeError):
    """Base class for simulation-runtime failures."""


class ProcError(SimError):
    """A proc's Python code raised an exception.

    Carries the simulation context — *which rank died at what virtual
    time* is the first thing one needs to debug a distributed algorithm —
    as typed attributes, not just message text, so tooling and tests can
    dispatch on them.  The original exception is chained as ``__cause__``.
    """

    def __init__(
        self,
        message: str,
        *,
        proc_name: str = "",
        pid: int = -1,
        node: int = -1,
        virtual_time: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.proc_name = proc_name
        self.pid = pid
        self.node = node
        self.virtual_time = virtual_time


class DeadlockError(SimError):
    """All unfinished procs are blocked and no event can wake any of them.

    The message lists every blocked proc and what it is waiting on; this is
    the simulated analogue of an MPI job hanging on an unmatched receive.
    """


class SimConfigError(SimError, ValueError):
    """Invalid simulation configuration (topology, cost model, group)."""
