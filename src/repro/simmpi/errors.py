"""Exception types raised by the simulated MPI runtime."""

from __future__ import annotations

__all__ = ["SimError", "DeadlockError", "SimConfigError"]


class SimError(RuntimeError):
    """Base class for simulation-runtime failures."""


class DeadlockError(SimError):
    """All unfinished procs are blocked and no event can wake any of them.

    The message lists every blocked proc and what it is waiting on; this is
    the simulated analogue of an MPI job hanging on an unmatched receive.
    """


class SimConfigError(SimError, ValueError):
    """Invalid simulation configuration (topology, cost model, group)."""
