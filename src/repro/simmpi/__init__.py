"""Simulated MPI runtime (discrete-event simulation).

This package stands in for Cray MPICH on the paper's XC40: it lets the
paper's algorithms (Algorithms 1-5) run unchanged, with thousands of
simulated ranks, on a machine with two cores and no MPI library.

Design
------
- Each simulated process ("proc") is a Python generator.  Every timed action
  (compute, send, receive, collective, RMA op) is a *syscall*: the generator
  yields a request object and the engine resumes it with the result.
- The engine keeps one virtual clock per proc and always runs the runnable
  proc with the smallest clock, which keeps message causality consistent.
- Point-to-point messages go through mailboxes with MPI tag/source matching
  semantics (including ``ANY_SOURCE`` / ``ANY_TAG``).  Multiple procs may
  share one mailbox — that is how the paper's OpenMP worker threads pulling
  queries from their node's MPI process are modelled.
- Collectives are timed analytically (tree/pairwise algorithms) instead of
  being decomposed into O(P log P) simulated messages, so 8192-rank runs
  stay cheap.
- One-sided RMA windows implement ``Win_lock`` (shared) +
  ``Get_accumulate`` with a user combiner, exactly the primitive of Fig. 2.
- Real computation (HNSW searches, median selection...) executes for real
  inside proc code; its *virtual duration* is charged through the
  :class:`~repro.simmpi.costmodel.CostModel` from operation counts, so the
  simulated timings scale the way the paper's hardware does.
"""

from repro.simmpi.errors import SimError, DeadlockError, ProcError, SimConfigError
from repro.simmpi.topology import ClusterTopology
from repro.simmpi.network import NetworkModel, ARIES_LIKE, ETHERNET_LIKE, XC40_AT_SCALE
from repro.simmpi.costmodel import CostModel, calibrate_cost_model
from repro.simmpi.engine import (
    Simulation,
    SimulationResult,
    Context,
    Request,
    ANY_SOURCE,
    ANY_TAG,
    WAIT_TIMED_OUT,
)
from repro.simmpi.comm import Comm
from repro.simmpi.rma import Window
from repro.simmpi.trace import PHASES, ProcStats, aggregate_stats, aggregate_spans

__all__ = [
    "PHASES",
    "ProcStats",
    "aggregate_stats",
    "aggregate_spans",
    "SimError",
    "DeadlockError",
    "ProcError",
    "SimConfigError",
    "ClusterTopology",
    "NetworkModel",
    "ARIES_LIKE",
    "ETHERNET_LIKE",
    "XC40_AT_SCALE",
    "CostModel",
    "calibrate_cost_model",
    "Simulation",
    "SimulationResult",
    "Context",
    "Request",
    "Comm",
    "Window",
    "ANY_SOURCE",
    "ANY_TAG",
    "WAIT_TIMED_OUT",
]
