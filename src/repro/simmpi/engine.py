"""Discrete-event engine: procs, mailboxes, requests, events, scheduler.

A *proc* is one simulated execution context — an MPI rank or one OpenMP
thread inside a rank.  Proc code is a generator function taking a
:class:`Context`; every timed interaction is performed with ``yield from``
on a Context/Comm helper, which ultimately yields a syscall object that the
engine services.

Scheduling rule: always resume the runnable proc with the smallest virtual
clock (ties broken by an insertion sequence number).  Because every syscall
returns control to the scheduler, a proc never "runs ahead" and sends a
message into another proc's past — which keeps tag/source matching causally
consistent and the whole simulation deterministic for a fixed seed.

Blocking primitives:

- ``wait(request)``     — block until a posted receive matches,
- ``wait_any(waitables)`` — block until any of several requests/events
  completes (this is how worker threads wait for "a query *or* the
  terminate flag", replacing the paper's MPI_Test busy-poll loop with an
  equivalent that does not need millions of simulated poll iterations),
- ``test(request)``     — non-blocking completion check; charges the
  network model's poll cost so code that *does* poll pays for it,
- collectives and RMA — see :mod:`repro.simmpi.comm` / :mod:`~repro.simmpi.rma`.

``wait_any`` additionally takes an optional virtual-time ``timeout``; a
wait that times out resumes with ``(WAIT_TIMED_OUT, None)`` at exactly the
deadline — the primitive fault-tolerant dispatch builds retries on.

Fault injection: constructed with a :class:`~repro.faults.FaultInjector`,
the engine perturbs the fabric per the injector's spec — procs on a
crashed node stop executing at the crash instant (state ``crashed``, not
``done``), messages to a crashed node are lost, per-link faults drop /
duplicate / delay sends, and slow nodes scale their compute charges.  All
perturbations advance virtual time through the normal cost paths and are
logged in :attr:`SimulationResult.fault_events`.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator

import numpy as np

from repro.simmpi.costmodel import CostModel
from repro.simmpi.errors import DeadlockError, ProcError, SimConfigError, SimError
from repro.simmpi.network import NetworkModel
from repro.simmpi.trace import ProcStats

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "WAIT_TIMED_OUT",
    "Context",
    "Event",
    "Mailbox",
    "Request",
    "Simulation",
    "SimulationResult",
    "payload_nbytes",
]

ANY_SOURCE = -1
ANY_TAG = -1

#: index returned by ``wait_any(..., timeout=...)`` when the wait timed out
WAIT_TIMED_OUT = -1


def _tag_matches(pattern, tag) -> bool:
    """Tag matching with wildcard support inside tuple tags.

    The comm layer namespaces user tags as ``(comm_id, user_tag)``; a
    receive for "any tag on this comm" uses ``(comm_id, ANY_TAG)``, so
    tuple patterns are compared elementwise with ``ANY_TAG`` as a
    per-element wildcard.
    """
    if pattern == ANY_TAG:
        return True
    if isinstance(pattern, tuple) and isinstance(tag, tuple) and len(pattern) == len(tag):
        return all(p == ANY_TAG or p == t for p, t in zip(pattern, tag))
    return pattern == tag


_RUNNABLE = "runnable"
_BLOCKED = "blocked"
_DONE = "done"
_CRASHED = "crashed"


def payload_nbytes(obj: Any) -> int:
    """Estimate the wire size of a message payload.

    NumPy arrays report their true buffer size; containers recurse; other
    scalars get a small fixed pickle-ish overhead.  Callers that know the
    exact size pass ``nbytes`` explicitly instead.
    """
    if obj is None:
        return 8
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 96
    if isinstance(obj, (bytes, bytearray)):
        return len(obj) + 32
    if isinstance(obj, (tuple, list)):
        return 16 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 32 + sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if isinstance(obj, str):
        return len(obj) + 40
    return 32


# --------------------------------------------------------------------------
# Syscall objects (internal protocol between proc generators and the engine)
# --------------------------------------------------------------------------


@dataclass
class _Compute:
    seconds: float
    kind: str = "compute"


@dataclass
class _SendMsg:
    mailbox: "Mailbox"
    source: int
    tag: int
    payload: Any
    nbytes: int
    same_node: bool


@dataclass
class _RecvPost:
    mailbox: "Mailbox"
    source: int
    tag: int


@dataclass
class _Wait:
    request: "Request"


@dataclass
class _WaitAny:
    waitables: list
    timeout: float | None = None


@dataclass
class _Test:
    request: "Request"


@dataclass
class _Cancel:
    request: "Request"


@dataclass
class _EventSet:
    event: "Event"


@dataclass
class _CollectiveCall:
    key: tuple
    members: tuple
    data: Any
    #: complete(arrivals: {pid: (clock, data)}) -> {pid: (finish_time, result)}
    complete: Callable[[dict], dict]


@dataclass
class _RmaOp:
    seconds: float
    apply: Callable[[], Any]
    nbytes: int


# --------------------------------------------------------------------------
# Waitables
# --------------------------------------------------------------------------


class Request:
    """Handle for a posted non-blocking receive (or internal completion)."""

    __slots__ = (
        "done",
        "completion_time",
        "payload",
        "source",
        "tag",
        "cancelled",
        "arrival",
        "_mailbox",
        "_match_source",
        "_match_tag",
        "_waiter",
        "post_time",
    )

    def __init__(self, mailbox: "Mailbox", source: int, tag: int, post_time: float):
        self.done = False
        self.cancelled = False
        self.completion_time = float("inf")
        self.payload: Any = None
        self.source: int | None = None
        self.tag: int | None = None
        #: wire arrival time of the matched message (None until done) — lets
        #: receivers attribute mailbox queueing delay without wire changes
        self.arrival: float | None = None
        self._mailbox = mailbox
        self._match_source = source
        self._match_tag = tag
        self._waiter: _Proc | None = None
        self.post_time = post_time

    def _matches(self, source: int, tag) -> bool:
        if self._match_source not in (ANY_SOURCE, source):
            return False
        return _tag_matches(self._match_tag, tag)

    def _complete(self, msg: "_Message") -> None:
        self.done = True
        self.completion_time = max(self.post_time, msg.arrival)
        self.payload = msg.payload
        self.source = msg.source
        self.tag = msg.tag
        self.arrival = msg.arrival


class Event:
    """A one-shot condition flag (simulated condition variable).

    Models the shared "Done" flag of Algorithm 4: one thread sets it, every
    thread blocked in ``wait_any`` on it wakes at the set time.
    """

    __slots__ = ("done", "set_time", "_waiters")

    def __init__(self) -> None:
        self.done = False
        self.set_time = float("inf")
        self._waiters: list[_Proc] = []


@dataclass
class _Message:
    arrival: float
    seq: int
    source: int
    tag: int
    payload: Any
    nbytes: int


class Mailbox:
    """A message queue with MPI matching semantics.

    One mailbox per MPI rank; worker threads of one rank share their rank's
    mailbox, which is what gives the paper's dynamic intra-node work
    pulling.

    ``node`` records which compute node the mailbox lives on (None when
    unknown); the fault injector uses it to resolve the (src, dst) link of
    a send and to drop messages addressed to a crashed node.
    """

    __slots__ = ("name", "node", "_queue", "_pending")

    def __init__(self, name: str = "", node: int | None = None) -> None:
        self.name = name
        self.node = node
        self._queue: deque[_Message] = deque()
        self._pending: list[Request] = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mailbox({self.name!r}, queued={len(self._queue)})"


# --------------------------------------------------------------------------
# Proc & context
# --------------------------------------------------------------------------


class _Proc:
    __slots__ = (
        "pid",
        "name",
        "node",
        "gen",
        "mailbox",
        "clock",
        "state",
        "sendval",
        "result",
        "stats",
        "heap_token",
        "timeout_token",
        "_block_start",
        "_wait_entries",
        "_wait_is_any",
    )

    def __init__(self, pid: int, name: str, node: int, mailbox: Mailbox):
        self.pid = pid
        self.name = name
        self.node = node
        self.mailbox = mailbox
        self.gen: Generator | None = None
        self.clock = 0.0
        self.state = _RUNNABLE
        self.sendval: Any = None
        self.result: Any = None
        self.stats = ProcStats(name=name)
        self.heap_token = 0
        self.timeout_token: int | None = None
        self._block_start = 0.0
        self._wait_entries: list = []
        self._wait_is_any = False


class _SpanScope:
    """Context manager recording one named tracing span on a proc.

    Measures the elapsed *virtual* interval between entry and exit — which
    includes any communication blocking inside the block — and charges no
    virtual time itself, so tracing never perturbs the simulation.  Usable
    inside proc generators (``with`` works across ``yield from``).

    When the simulation carries a :class:`~repro.obs.trace.TraceRecorder`,
    the span is mirrored into it (with attributes and parent links); the
    per-proc :class:`~repro.simmpi.trace.ProcStats` accounting is identical
    with or without a recorder.
    """

    __slots__ = ("_proc", "name", "start", "_recorder", "_attrs")

    def __init__(self, proc: _Proc, name: str, recorder=None, attrs: dict | None = None):
        self._proc = proc
        self.name = name
        self.start = proc.clock
        self._recorder = recorder
        self._attrs = attrs

    def __enter__(self) -> "_SpanScope":
        if self._recorder is not None:
            self._recorder.begin_span(self._proc.pid, self.name, self._proc.clock, self._attrs)
        return self

    def __exit__(self, *exc) -> bool:
        self._proc.stats.add_span(self.name, self._proc.clock - self.start)
        if self._recorder is not None:
            self._recorder.end_span(self._proc.pid, self._proc.clock)
        return False


class Context:
    """Per-proc API surface handed to proc generator functions."""

    def __init__(self, sim: "Simulation", proc: _Proc):
        self._sim = sim
        self._proc = proc

    # -- identity ----------------------------------------------------------

    @property
    def pid(self) -> int:
        return self._proc.pid

    @property
    def name(self) -> str:
        return self._proc.name

    @property
    def node(self) -> int:
        return self._proc.node

    @property
    def mailbox(self) -> "Mailbox":
        """This proc's own mailbox (shared with siblings if so created)."""
        return self._proc.mailbox

    @property
    def now(self) -> float:
        """Current virtual time of this proc."""
        return self._proc.clock

    @property
    def cost(self) -> CostModel:
        return self._sim.cost

    @property
    def network(self) -> NetworkModel:
        return self._sim.network

    # -- computation -------------------------------------------------------

    def compute(self, seconds: float, kind: str = "compute"):
        """Charge ``seconds`` of virtual computation time."""
        if seconds < 0:
            raise SimError(f"negative compute time {seconds}")
        yield _Compute(float(seconds), kind)

    def charge_distances(self, n_evals: int, dim: int, kind: str = "compute"):
        """Charge the cost-model time of ``n_evals`` distance evaluations."""
        yield _Compute(self._sim.cost.distance_cost(int(n_evals), int(dim)), kind)

    # -- tracing -------------------------------------------------------------

    def span(self, name: str, **attrs) -> _SpanScope:
        """Open a named tracing span: ``with ctx.span("route"): ...``.

        The elapsed virtual interval lands in this proc's
        :attr:`~repro.simmpi.trace.ProcStats.span_time`; see
        :data:`~repro.simmpi.trace.PHASES` for the standard names.  Keyword
        ``attrs`` (e.g. ``query_id=qid``) are attached to the span in the
        distributed trace when one is being recorded; they never affect the
        ProcStats aggregate.
        """
        return _SpanScope(self._proc, name, self._sim.recorder, attrs or None)

    @property
    def trace_active(self) -> bool:
        """True when a distributed-trace recorder is attached to the run.

        Hot paths use this to skip building attribute dicts when nobody is
        listening.
        """
        return self._sim.recorder is not None

    def trace_instant(self, name: str, **attrs) -> None:
        """Record a zero-width trace marker (no-op without a recorder).

        A plain method, not a syscall: it charges no virtual time and never
        yields, so call sites need no ``yield from``.
        """
        recorder = self._sim.recorder
        if recorder is not None:
            recorder.instant(self._proc.pid, name, self._proc.clock, attrs or None)

    def trace_complete(self, name: str, start: float, end: float, **attrs) -> None:
        """Record an already-elapsed interval (e.g. a measured stall) in the
        distributed trace only — never in ProcStats (no-op without a
        recorder; charges no virtual time)."""
        recorder = self._sim.recorder
        if recorder is not None:
            recorder.complete_span(self._proc.pid, name, start, end, attrs or None)

    # -- events --------------------------------------------------------------

    def make_event(self) -> Event:
        return Event()

    def set_event(self, event: Event):
        yield _EventSet(event)

    # -- low-level messaging (Comm builds on these) -------------------------

    def post_recv(self, mailbox: Mailbox, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Post a non-blocking receive; resumes with a :class:`Request`."""
        req = yield _RecvPost(mailbox, source, tag)
        return req

    def send_to_mailbox(
        self,
        mailbox: Mailbox,
        payload: Any,
        *,
        source: int,
        tag: int,
        nbytes: int | None,
        same_node: bool,
    ):
        if nbytes is None:
            nbytes = payload_nbytes(payload)
        yield _SendMsg(mailbox, source, tag, payload, int(nbytes), same_node)

    def wait(self, request: Request):
        """Block until ``request`` completes; resumes with its payload."""
        payload = yield _Wait(request)
        return payload

    def wait_any(self, waitables: list, timeout: float | None = None):
        """Block until any request/event completes; resumes with
        ``(index, payload)`` (payload is None for events).

        With a ``timeout`` (virtual seconds), resumes with
        ``(WAIT_TIMED_OUT, None)`` at the deadline if nothing completed
        first; the waitables stay registered with their mailboxes, so a
        timed-out receive can be waited on again or cancelled.
        """
        if timeout is not None and timeout < 0:
            raise SimError(f"negative wait_any timeout {timeout}")
        result = yield _WaitAny(list(waitables), timeout)
        return result

    def test(self, request: Request):
        """Non-blocking completion probe; charges the poll cost."""
        done = yield _Test(request)
        return done

    def cancel(self, request: Request):
        yield _Cancel(request)

    def collective(self, key: tuple, members: tuple, data: Any, complete: Callable):
        result = yield _CollectiveCall(key, members, data, complete)
        return result

    def rma(self, seconds: float, apply: Callable[[], Any], nbytes: int):
        result = yield _RmaOp(float(seconds), apply, int(nbytes))
        return result


# --------------------------------------------------------------------------
# Simulation
# --------------------------------------------------------------------------


@dataclass
class SimulationResult:
    """Outcome of a completed simulation run."""

    #: virtual makespan: max final clock over all procs
    makespan: float
    #: per-proc final clocks, keyed by pid
    clocks: dict[int, float]
    #: per-proc return values (StopIteration values), keyed by pid
    results: dict[int, Any]
    #: per-proc stats, keyed by pid
    stats: dict[int, ProcStats]
    #: total number of engine events processed
    n_events: int
    #: pids of procs killed by an injected crash (empty without faults)
    crashed_pids: tuple[int, ...] = ()
    #: fault-injection event log, in virtual-time order (empty without faults)
    fault_events: tuple = ()

    def stats_by_name(self, prefix: str) -> list[ProcStats]:
        return [s for s in self.stats.values() if s.name.startswith(prefix)]


class Simulation:
    """Owns procs, mailboxes, the event loop, and the timing models."""

    def __init__(
        self,
        network: NetworkModel | None = None,
        cost: CostModel | None = None,
        max_events: int = 200_000_000,
        faults=None,
        recorder=None,
        metrics=None,
    ) -> None:
        self.network = network or NetworkModel()
        self.cost = cost or CostModel()
        self.max_events = max_events
        #: optional :class:`~repro.faults.FaultInjector` (duck-typed to
        #: avoid a package cycle); None = perfect fabric
        self.faults = faults
        #: optional :class:`~repro.obs.trace.TraceRecorder`; recording is
        #: pure bookkeeping (no clock/randomness effects), so attaching one
        #: is bit-identity-neutral
        self.recorder = recorder
        #: optional :class:`~repro.obs.metrics.MetricsRegistry`, filled with
        #: engine-level totals (events, messages, bytes) at the end of run()
        self.metrics = metrics
        self._procs: list[_Proc] = []
        self._runq: list[tuple[float, int, int]] = []
        self._seq = itertools.count()
        self._collectives: dict[tuple, dict] = {}
        self._started = False

    # -- construction --------------------------------------------------------

    def new_mailbox(self, name: str = "", node: int | None = None) -> Mailbox:
        return Mailbox(name, node)

    def add_proc(
        self,
        program: Callable[..., Generator],
        *args: Any,
        node: int = 0,
        name: str = "",
        mailbox: Mailbox | None = None,
    ) -> int:
        """Register a proc.  ``program(ctx, *args)`` must be a generator
        function.  Returns the pid."""
        if self._started:
            raise SimError("cannot add procs after run() started")
        pid = len(self._procs)
        proc = _Proc(pid, name or f"proc{pid}", node, mailbox or Mailbox(f"mb{pid}", node))
        ctx = Context(self, proc)
        gen = program(ctx, *args)
        if not hasattr(gen, "send"):
            raise SimConfigError(
                f"program {program!r} did not return a generator; "
                "proc bodies must be generator functions (use `yield from ctx...`)"
            )
        proc.gen = gen
        self._procs.append(proc)
        if self.recorder is not None:
            self.recorder.register_proc(pid, proc.name, node)
        return pid

    def mailbox_of(self, pid: int) -> Mailbox:
        return self._procs[pid].mailbox

    def node_of(self, pid: int) -> int:
        return self._procs[pid].node

    # -- event loop ------------------------------------------------------------

    def run(self) -> SimulationResult:
        if self._started:
            raise SimError("Simulation.run() may only be called once")
        self._started = True
        for proc in self._procs:
            self._push(proc)
        crash_schedule: list[tuple[int, float]] = []
        if self.faults is not None:
            # crashes are first-class engine events: one marker per crash,
            # with a negative pid, popped at exactly the crash instant
            crash_schedule = self.faults.crash_schedule()
            for i, (_, at) in enumerate(crash_schedule):
                heapq.heappush(self._runq, (at, next(self._seq), -(i + 1)))
        n_events = 0
        while self._runq:
            clock, token, pid = heapq.heappop(self._runq)
            if pid < 0:
                node, at = crash_schedule[-pid - 1]
                self._enact_crash(node, at)
                continue
            proc = self._procs[pid]
            if proc.state == _BLOCKED and token == proc.timeout_token:
                n_events += 1
                self._fire_timeout(proc, clock)
                continue
            if proc.state != _RUNNABLE or token != proc.heap_token:
                continue  # stale heap entry
            n_events += 1
            if n_events > self.max_events:
                raise SimError(
                    f"exceeded max_events={self.max_events}; "
                    "likely a busy-poll loop — use wait/wait_any instead of test loops"
                )
            self._step(proc)
        unfinished = [p for p in self._procs if p.state not in (_DONE, _CRASHED)]
        if unfinished:
            desc = ", ".join(f"{p.name}(pid={p.pid}, state={p.state})" for p in unfinished[:10])
            raise DeadlockError(
                f"{len(unfinished)} proc(s) blocked forever: {desc}"
            )
        result = SimulationResult(
            makespan=max((p.clock for p in self._procs), default=0.0),
            clocks={p.pid: p.clock for p in self._procs},
            results={p.pid: p.result for p in self._procs},
            stats={p.pid: p.stats for p in self._procs},
            n_events=n_events,
            crashed_pids=tuple(p.pid for p in self._procs if p.state == _CRASHED),
            fault_events=tuple(self.faults.events) if self.faults is not None else (),
        )
        if self.metrics is not None:
            # filled once at the end — the event loop itself never touches
            # the registry, so metrics cannot perturb the hot path
            self.metrics.counter("sim.events").value += n_events
            self.metrics.counter("sim.msgs_sent").value += sum(
                s.msgs_sent for s in result.stats.values()
            )
            self.metrics.counter("sim.bytes_sent").value += sum(
                s.bytes_sent for s in result.stats.values()
            )
            self.metrics.counter("sim.rma_ops").value += sum(
                s.rma_ops for s in result.stats.values()
            )
            self.metrics.gauge("sim.makespan_seconds").set(result.makespan)
        return result

    # -- internals ---------------------------------------------------------------

    def _push(self, proc: _Proc) -> None:
        proc.state = _RUNNABLE
        proc.heap_token = next(self._seq)
        heapq.heappush(self._runq, (proc.clock, proc.heap_token, proc.pid))

    def _block(self, proc: _Proc) -> None:
        proc.state = _BLOCKED
        proc._block_start = proc.clock

    def _unblock(self, proc: _Proc, at_time: float) -> None:
        proc.timeout_token = None  # a pending wait deadline no longer applies
        new_clock = max(proc.clock, at_time)
        proc.stats.comm_wait += new_clock - proc._block_start
        proc.clock = new_clock
        self._push(proc)

    def _fire_timeout(self, proc: _Proc, deadline: float) -> None:
        """A ``wait_any`` deadline passed with nothing completed."""
        entries = proc._wait_entries
        proc._wait_entries = []
        for w in entries:
            # leave requests posted on their mailboxes (the caller may wait
            # again or cancel); only detach this proc as the waiter
            if isinstance(w, Request):
                w._waiter = None
            elif isinstance(w, Event) and proc in w._waiters:
                w._waiters.remove(proc)
        proc.sendval = (WAIT_TIMED_OUT, None)
        self._unblock(proc, deadline)

    # -- fault enactment ---------------------------------------------------------

    def _enact_crash(self, node: int, at: float) -> None:
        """Fail-stop crash of ``node``: every proc on it dies at time ``at``."""
        self.faults.record("crash", at, node=node)
        for proc in self._procs:
            if proc.node == node and proc.state not in (_DONE, _CRASHED):
                self._kill(proc, at)

    def _kill(self, proc: _Proc, at: float) -> None:
        # withdraw every posted receive and wait registration — a dead rank
        # must never consume a message or wake from an event
        for req in list(proc.mailbox._pending):
            if req._waiter is proc:
                proc.mailbox._pending.remove(req)
        for w in proc._wait_entries:
            if isinstance(w, Request):
                w._waiter = None
                if w in w._mailbox._pending:
                    w._mailbox._pending.remove(w)
            elif isinstance(w, Event) and proc in w._waiters:
                w._waiters.remove(proc)
        proc._wait_entries = []
        proc.timeout_token = None
        proc.state = _CRASHED
        proc.clock = max(proc.clock, at)
        try:
            proc.gen.close()
        except Exception:
            pass  # cleanup code in the dying proc must not sink the engine

    def _step(self, proc: _Proc) -> None:
        """Advance one syscall of ``proc``'s generator."""
        try:
            syscall = proc.gen.send(proc.sendval)
        except StopIteration as stop:
            proc.state = _DONE
            proc.result = stop.value
            return
        except SimError:
            raise
        except Exception as exc:
            # annotate failures with simulation context — "which rank died
            # at what virtual time" is the first thing one needs to debug a
            # distributed algorithm
            raise ProcError(
                f"proc {proc.name!r} (pid={proc.pid}, node={proc.node}) raised "
                f"{type(exc).__name__} at virtual t={proc.clock:.6f}: {exc}",
                proc_name=proc.name,
                pid=proc.pid,
                node=proc.node,
                virtual_time=proc.clock,
            ) from exc
        proc.sendval = None
        self._dispatch(proc, syscall)

    def _dispatch(self, proc: _Proc, sc: Any) -> None:
        if isinstance(sc, _Compute):
            seconds = sc.seconds
            if self.faults is not None:
                seconds *= self.faults.compute_factor(proc.node)
            proc.clock += seconds
            proc.stats.add_compute(sc.kind, seconds)
            self._push(proc)
        elif isinstance(sc, _SendMsg):
            self._do_send(proc, sc)
        elif isinstance(sc, _RecvPost):
            proc.sendval = self._do_recv_post(proc, sc)
            self._push(proc)
        elif isinstance(sc, _Wait):
            self._do_wait(proc, sc.request)
        elif isinstance(sc, _WaitAny):
            self._do_wait_any(proc, sc.waitables, sc.timeout)
        elif isinstance(sc, _Test):
            proc.clock += self.network.poll_cost
            proc.stats.poll_time += self.network.poll_cost
            proc.sendval = sc.request.done and not sc.request.cancelled
            if sc.request.done:
                proc.clock = max(proc.clock, sc.request.completion_time)
            self._push(proc)
        elif isinstance(sc, _Cancel):
            req = sc.request
            req.cancelled = True
            if not req.done and req in req._mailbox._pending:
                req._mailbox._pending.remove(req)
            self._push(proc)
        elif isinstance(sc, _EventSet):
            ev = sc.event
            if not ev.done:
                ev.done = True
                ev.set_time = proc.clock
                waiters, ev._waiters = ev._waiters, []
                for waiter in waiters:
                    self._finish_wait_any(waiter, ev, None)
            self._push(proc)
        elif isinstance(sc, _CollectiveCall):
            self._do_collective(proc, sc)
        elif isinstance(sc, _RmaOp):
            proc.clock += sc.seconds
            proc.stats.rma_time += sc.seconds
            proc.stats.rma_ops += 1
            proc.stats.bytes_sent += sc.nbytes
            proc.sendval = sc.apply()
            self._push(proc)
        else:
            raise SimError(f"proc {proc.name} yielded unknown syscall {sc!r}")

    # -- messaging ----------------------------------------------------------------

    def _do_send(self, proc: _Proc, sc: _SendMsg) -> None:
        overhead = self.network.send_overhead()
        proc.clock += overhead
        proc.stats.send_time += overhead
        proc.stats.msgs_sent += 1
        proc.stats.bytes_sent += sc.nbytes
        if self.faults is None:
            transfers = [self.network.p2p_time(sc.nbytes, sc.same_node)]
        else:
            # the sender is always charged its overhead above — a dropped
            # message costs the origin the same CPU time as a delivered one
            transfers = self.faults.transfer_times(
                proc.node, sc.mailbox.node, sc.nbytes, sc.same_node, self.network, proc.clock
            )
        for wire in transfers:
            arrival = proc.clock + wire
            if self.faults is not None and self.faults.node_down(sc.mailbox.node, arrival):
                self.faults.record(
                    "msg_lost_node_down", arrival, src=proc.node, dst=sc.mailbox.node, tag=sc.tag
                )
                continue
            msg = _Message(arrival, next(self._seq), sc.source, sc.tag, sc.payload, sc.nbytes)
            self._deliver(sc.mailbox, msg)
        self._push(proc)

    def _deliver(self, mailbox: Mailbox, msg: _Message) -> None:
        for req in mailbox._pending:
            if req._matches(msg.source, msg.tag):
                mailbox._pending.remove(req)
                req._complete(msg)
                if req._waiter is not None:
                    self._finish_wait_any(req._waiter, req, msg.payload)
                return
        mailbox._queue.append(msg)

    def _do_recv_post(self, proc: _Proc, sc: _RecvPost) -> Request:
        req = Request(sc.mailbox, sc.source, sc.tag, proc.clock)
        best_idx, best = -1, None
        for idx, msg in enumerate(sc.mailbox._queue):
            if req._matches(msg.source, msg.tag):
                if best is None or (msg.arrival, msg.seq) < (best.arrival, best.seq):
                    best_idx, best = idx, msg
        if best is not None:
            del sc.mailbox._queue[best_idx]
            req._complete(best)
        else:
            sc.mailbox._pending.append(req)
        return req

    def _do_wait(self, proc: _Proc, req: Request) -> None:
        if req.cancelled:
            raise SimError(f"proc {proc.name} waiting on a cancelled request")
        if req.done:
            proc.clock = max(proc.clock, req.completion_time) + self.network.recv_overhead()
            proc.stats.recv_time += self.network.recv_overhead()
            proc.sendval = req.payload
            self._push(proc)
        else:
            req._waiter = proc
            proc._wait_entries = [req]
            proc._wait_is_any = False
            self._block(proc)

    def _do_wait_any(self, proc: _Proc, waitables: list, timeout: float | None = None) -> None:
        # immediate completion?
        for idx, w in enumerate(waitables):
            if isinstance(w, Request) and w.done and not w.cancelled:
                proc.clock = max(proc.clock, w.completion_time) + self.network.recv_overhead()
                proc.stats.recv_time += self.network.recv_overhead()
                proc.sendval = (idx, w.payload)
                self._push(proc)
                return
            if isinstance(w, Event) and w.done:
                proc.clock = max(proc.clock, w.set_time)
                proc.sendval = (idx, None)
                self._push(proc)
                return
        # none ready: register on all
        proc._wait_entries = list(waitables)
        proc._wait_is_any = True
        for w in waitables:
            if isinstance(w, Request):
                w._waiter = proc
            elif isinstance(w, Event):
                w._waiters.append(proc)
            else:
                raise SimError(f"unsupported waitable {w!r}")
        self._block(proc)
        if timeout is not None:
            # arm a deadline: a heap entry keyed to timeout_token; completion
            # of any waitable clears the token, making the entry inert
            proc.timeout_token = next(self._seq)
            heapq.heappush(self._runq, (proc.clock + timeout, proc.timeout_token, proc.pid))

    def _finish_wait_any(self, proc: _Proc, fired: Any, payload: Any) -> None:
        """A registered waitable fired while ``proc`` was blocked."""
        if proc.state != _BLOCKED:
            return
        entries = proc._wait_entries
        proc._wait_entries = []
        idx = next(i for i, w in enumerate(entries) if w is fired)
        # unregister from the others
        for w in entries:
            if w is fired:
                continue
            if isinstance(w, Request):
                w._waiter = None
            elif isinstance(w, Event) and proc in w._waiters:
                w._waiters.remove(proc)
        if isinstance(fired, Request):
            at = fired.completion_time + self.network.recv_overhead()
            proc.stats.recv_time += self.network.recv_overhead()
        else:
            at = fired.set_time
        # wait_any always returns (index, payload) — even for one waitable —
        # so a timeout sentinel (-1, None) stays distinguishable; plain
        # wait() returns the bare payload
        proc.sendval = (idx, payload) if proc._wait_is_any else payload
        self._unblock(proc, at)

    # -- collectives -----------------------------------------------------------------

    def _do_collective(self, proc: _Proc, sc: _CollectiveCall) -> None:
        rec = self._collectives.get(sc.key)
        if rec is None:
            rec = {"members": sc.members, "arrived": {}, "complete": sc.complete}
            self._collectives[sc.key] = rec
        if rec["members"] != sc.members:
            raise SimError(
                f"collective {sc.key} member mismatch: {rec['members']} vs {sc.members}"
            )
        rec["arrived"][proc.pid] = (proc.clock, sc.data)
        self._block(proc)
        if len(rec["arrived"]) == len(rec["members"]):
            del self._collectives[sc.key]
            outcomes = rec["complete"](rec["arrived"])
            for pid, (finish, result) in outcomes.items():
                member = self._procs[pid]
                member.sendval = result
                self._unblock(member, finish)
