"""MPI-style communicator over the simulated engine.

Mirrors the subset of the MPI API the paper's algorithms use:
``isend/irecv/test/wait`` point-to-point (Algs 3-4), ``bcast`` (vantage
point broadcast), ``allreduce``/``gather`` (distributed statistics),
``alltoallv`` (the partition shuffle of Alg 2), ``barrier``, and ``split``
(halving the process group at each VP-tree level).

All methods are generator functions: proc code calls them with
``yield from``, passing its :class:`~repro.simmpi.engine.Context` first.
Tags are namespaced per-communicator so concurrent communicators sharing
mailboxes never cross-match.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Sequence

from repro.simmpi.engine import (
    ANY_SOURCE,
    ANY_TAG,
    Context,
    Mailbox,
    Request,
    Simulation,
    payload_nbytes,
)
from repro.simmpi.errors import SimConfigError, SimError

__all__ = ["Comm"]

_comm_ids = itertools.count(1)


class Comm:
    """A group of procs with ranks 0..size-1 and collective operations."""

    def __init__(self, sim: Simulation, pids: Sequence[int], name: str = "comm"):
        if len(pids) == 0:
            raise SimConfigError("a communicator needs at least one member")
        if len(set(pids)) != len(pids):
            raise SimConfigError("duplicate pids in communicator")
        self._sim = sim
        self._pids = list(pids)
        self._rank_of = {pid: r for r, pid in enumerate(self._pids)}
        self._coll_seq: dict[int, int] = {pid: 0 for pid in self._pids}
        self._id = next(_comm_ids)
        self.name = name

    # -- identity ------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._pids)

    def rank(self, ctx: Context) -> int:
        """The calling proc's rank in this communicator."""
        try:
            return self._rank_of[ctx.pid]
        except KeyError:
            raise SimError(f"proc {ctx.name} (pid={ctx.pid}) is not in comm {self.name}") from None

    def pid_of_rank(self, rank: int) -> int:
        return self._pids[rank]

    def mailbox_of_rank(self, rank: int) -> Mailbox:
        return self._sim.mailbox_of(self._pids[rank])

    def _same_node(self, ctx: Context, dest_rank: int) -> bool:
        return ctx.node == self._sim.node_of(self._pids[dest_rank])

    def _tag(self, user_tag) -> tuple:
        return (self._id, user_tag)

    # -- point-to-point --------------------------------------------------------

    def send(self, ctx: Context, dest: int, payload: Any, tag=0, nbytes: int | None = None):
        """Eager (buffered) send — the simulated equivalent of MPI_Isend
        whose buffer can be reused immediately.  Charges sender overhead."""
        yield from ctx.send_to_mailbox(
            self.mailbox_of_rank(dest),
            payload,
            source=self.rank(ctx),
            tag=self._tag(tag),
            nbytes=nbytes,
            same_node=self._same_node(ctx, dest),
        )

    # The engine's sends are always non-blocking eager sends, so isend is
    # literally send; both names exist so algorithm code reads like the paper.
    isend = send

    def irecv(self, ctx: Context, source: int = ANY_SOURCE, tag=ANY_TAG):
        """Post a non-blocking receive; returns a Request."""
        req = yield from ctx.post_recv(
            self._sim.mailbox_of(ctx.pid), source=source, tag=self._tag(tag)
        )
        return req

    def recv(self, ctx: Context, source: int = ANY_SOURCE, tag=ANY_TAG):
        """Blocking receive; returns ``(payload, source_rank, user_tag)``."""
        req = yield from self.irecv(ctx, source, tag)
        payload = yield from ctx.wait(req)
        return payload, req.source, req.tag[1]

    def wait(self, ctx: Context, req: Request):
        payload = yield from ctx.wait(req)
        return payload

    def test(self, ctx: Context, req: Request):
        done = yield from ctx.test(req)
        return done

    # -- collectives -------------------------------------------------------------

    def _coll_key(self, ctx: Context, op: str) -> tuple:
        # Per-proc call counter on this comm: members entering collectives in
        # the same program order produce identical keys.  The op name is part
        # of the key so mismatched call sequences surface as a DeadlockError
        # instead of silently pairing a bcast with a barrier.
        seq = self._coll_seq[ctx.pid]
        self._coll_seq[ctx.pid] = seq + 1
        return (self._id, seq, op)

    def _members(self) -> tuple:
        return tuple(self._pids)

    def barrier(self, ctx: Context):
        net, pids = self._sim.network, self._pids

        def complete(arrived: dict) -> dict:
            finish = max(c for c, _ in arrived.values()) + net.barrier_time(len(pids))
            return {pid: (finish, None) for pid in arrived}

        yield from ctx.collective(self._coll_key(ctx, "barrier"), self._members(), None, complete)

    def bcast(self, ctx: Context, data: Any, root: int = 0):
        """Broadcast ``data`` from ``root``; every rank returns the value."""
        net, pids = self._sim.network, self._pids
        root_pid = pids[root]

        def complete(arrived: dict) -> dict:
            payload = arrived[root_pid][1]
            finish = max(c for c, _ in arrived.values()) + net.bcast_time(
                len(pids), payload_nbytes(payload)
            )
            return {pid: (finish, payload) for pid in arrived}

        result = yield from ctx.collective(
            self._coll_key(ctx, "bcast"), self._members(), data, complete
        )
        return result

    def gather(self, ctx: Context, data: Any, root: int = 0):
        """Gather; root returns the rank-ordered list, others return None."""
        net, pids = self._sim.network, self._pids
        root_pid = pids[root]

        def complete(arrived: dict) -> dict:
            values = [arrived[pid][1] for pid in pids]
            per_rank = max(payload_nbytes(v) for v in values)
            tmax = max(c for c, _ in arrived.values())
            root_finish = tmax + net.gather_time(len(pids), per_rank)
            nonroot_finish = tmax + net.sw_overhead
            out = {}
            for pid in arrived:
                if pid == root_pid:
                    out[pid] = (root_finish, values)
                else:
                    out[pid] = (nonroot_finish, None)
            return out

        result = yield from ctx.collective(
            self._coll_key(ctx, "gather"), self._members(), data, complete
        )
        return result

    def scatter(self, ctx: Context, data: Any, root: int = 0):
        """Scatter a rank-ordered list from ``root``; each rank returns its
        element.  ``data`` is ignored on non-roots (pass None)."""
        net, pids = self._sim.network, self._pids
        root_pid = pids[root]

        def complete(arrived: dict) -> dict:
            values = arrived[root_pid][1]
            if values is None or len(values) != len(pids):
                raise SimError(
                    "scatter root must supply one value per rank "
                    f"({0 if values is None else len(values)} for {len(pids)})"
                )
            nbytes = max(payload_nbytes(v) for v in values)
            finish = max(c for c, _ in arrived.values()) + net.bcast_time(
                len(pids), nbytes
            )
            return {
                pid: (finish, values[self._rank_of[pid]]) for pid in arrived
            }

        result = yield from ctx.collective(
            self._coll_key(ctx, "scatter"), self._members(), data, complete
        )
        return result

    def allgather(self, ctx: Context, data: Any):
        net, pids = self._sim.network, self._pids

        def complete(arrived: dict) -> dict:
            values = [arrived[pid][1] for pid in pids]
            per_rank = max(payload_nbytes(v) for v in values)
            finish = max(c for c, _ in arrived.values()) + net.gather_time(
                len(pids), per_rank
            ) + net.bcast_time(len(pids), per_rank * len(pids))
            return {pid: (finish, list(values)) for pid in arrived}

        result = yield from ctx.collective(
            self._coll_key(ctx, "allgather"), self._members(), data, complete
        )
        return result

    def reduce(self, ctx: Context, data: Any, op: Callable[[list], Any], root: int = 0):
        """Reduce with a Python combiner ``op(list_by_rank) -> value``."""
        net, pids = self._sim.network, self._pids
        root_pid = pids[root]

        def complete(arrived: dict) -> dict:
            values = [arrived[pid][1] for pid in pids]
            combined = op(values)
            nbytes = max(payload_nbytes(v) for v in values)
            tmax = max(c for c, _ in arrived.values())
            out = {}
            for pid in arrived:
                if pid == root_pid:
                    out[pid] = (tmax + net.reduce_time(len(pids), nbytes), combined)
                else:
                    out[pid] = (tmax + net.sw_overhead, None)
            return out

        result = yield from ctx.collective(
            self._coll_key(ctx, "reduce"), self._members(), data, complete
        )
        return result

    def allreduce(self, ctx: Context, data: Any, op: Callable[[list], Any]):
        net, pids = self._sim.network, self._pids

        def complete(arrived: dict) -> dict:
            values = [arrived[pid][1] for pid in pids]
            combined = op(values)
            nbytes = max(payload_nbytes(v) for v in values)
            finish = max(c for c, _ in arrived.values()) + net.allreduce_time(
                len(pids), nbytes
            )
            return {pid: (finish, combined) for pid in arrived}

        result = yield from ctx.collective(
            self._coll_key(ctx, "allreduce"), self._members(), data, complete
        )
        return result

    def alltoallv(self, ctx: Context, send: dict[int, Any]):
        """Personalized all-to-all: ``send`` maps dest rank → payload.

        Returns a dict mapping source rank → payload (only sources that sent
        to this rank appear).  This is the partition-shuffle primitive of
        Algorithm 2 (MPI_Alltoallv).
        """
        net, pids = self._sim.network, self._pids
        my_rank = self.rank(ctx)
        for dest in send:
            if not 0 <= dest < len(pids):
                raise SimError(f"alltoallv dest rank {dest} out of range (size {len(pids)})")

        def complete(arrived: dict) -> dict:
            # arrived: pid -> (clock, {dest_rank: payload})
            inbound: dict[int, dict[int, Any]] = {r: {} for r in range(len(pids))}
            send_bytes = []
            total = 0
            for pid, (_, outbox) in arrived.items():
                src_rank = self._rank_of[pid]
                me = 0
                for dest_rank, payload in outbox.items():
                    nb = payload_nbytes(payload)
                    inbound[dest_rank][src_rank] = payload
                    me += nb
                    total += nb
                send_bytes.append(me)
            finish = max(c for c, _ in arrived.values()) + net.alltoallv_time(
                len(pids), max(send_bytes, default=0), total
            )
            return {pid: (finish, inbound[self._rank_of[pid]]) for pid in arrived}

        result = yield from ctx.collective(
            self._coll_key(ctx, "alltoallv"), self._members(), dict(send), complete
        )
        return result

    def split(self, ctx: Context, color: int, key: int = 0):
        """Partition this communicator into sub-communicators by color.

        Every member must call; members with the same color land in the same
        new Comm, ranked by (key, old rank).  This is how Algorithm 2 halves
        the process group at each VP-tree level.
        """
        net, pids = self._sim.network, self._pids
        sim = self._sim

        def complete(arrived: dict) -> dict:
            groups: dict[int, list[tuple[int, int, int]]] = {}
            for pid, (_, (col, k)) in arrived.items():
                groups.setdefault(col, []).append((k, self._rank_of[pid], pid))
            comms: dict[int, Comm] = {}
            for col, members in groups.items():
                members.sort()
                comms[col] = Comm(
                    sim, [pid for _, _, pid in members], name=f"{self.name}/c{col}"
                )
            finish_base = max(c for c, _ in arrived.values()) + net.barrier_time(len(pids))
            out = {}
            for pid, (_, (col, _k)) in arrived.items():
                out[pid] = (finish_base, comms[col])
            return out

        result = yield from ctx.collective(
            self._coll_key(ctx, "split"), self._members(), (int(color), int(key)), complete
        )
        return result
