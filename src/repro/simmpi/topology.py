"""Cluster topology: ranks, nodes, cores.

The paper's machine is a Cray XC40: 24 cores per node (two 12-core Haswell
sockets), 128 GB per node.  The topology object maps MPI ranks to compute
nodes so the network model can distinguish intra-node (shared memory) from
inter-node (Aries) transfers, and so the core layer can co-locate one worker
process plus its OpenMP threads per node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simmpi.errors import SimConfigError

__all__ = ["ClusterTopology"]


@dataclass(frozen=True)
class ClusterTopology:
    """Rank → node placement for a homogeneous cluster.

    Ranks are packed onto nodes in blocks: ranks ``[0, cores_per_node)`` on
    node 0, etc.  ``node_memory_bytes`` lets the core layer check that
    replicated partitions still fit in node memory (the stated cost of the
    paper's load-balancing optimisation).
    """

    n_ranks: int
    cores_per_node: int = 24
    node_memory_bytes: int = 128 * 2**30

    def __post_init__(self) -> None:
        if self.n_ranks <= 0:
            raise SimConfigError(f"n_ranks must be positive, got {self.n_ranks}")
        if self.cores_per_node <= 0:
            raise SimConfigError(
                f"cores_per_node must be positive, got {self.cores_per_node}"
            )

    @property
    def n_nodes(self) -> int:
        return -(-self.n_ranks // self.cores_per_node)

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.n_ranks:
            raise SimConfigError(f"rank {rank} out of range [0, {self.n_ranks})")
        return rank // self.cores_per_node

    def ranks_on_node(self, node: int) -> range:
        if not 0 <= node < self.n_nodes:
            raise SimConfigError(f"node {node} out of range [0, {self.n_nodes})")
        lo = node * self.cores_per_node
        return range(lo, min(lo + self.cores_per_node, self.n_ranks))

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)
