"""One-sided RMA window (Fig. 2 of the paper).

The master exposes a results buffer; workers push their local k-NN results
with atomic read-modify-write operations (``MPI_Get_accumulate`` under
``MPI_Win_lock`` in shared mode) without any master-side receive.  In the
simulation the window is a Python-side buffer with a per-slot combiner; the
*origin* proc is charged the NIC round-trip from the network model and the
*target* is charged nothing — which is exactly the asymmetry that removes
the master-side bottleneck the paper observed in its baseline.

Epochs are modelled explicitly: origins must hold a (shared) lock epoch to
issue accumulates, mirroring MPI's passive-target synchronisation rules;
violating the discipline raises instead of silently "working", so algorithm
code keeps the same shape it would have with real MPI.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.simmpi.engine import Context, payload_nbytes
from repro.simmpi.errors import SimError

__all__ = ["Window"]


class Window:
    """A remotely-accumulatable buffer owned by one proc.

    ``slots`` is any indexable store (list / dict / numpy array rows);
    ``combine(old, update) -> new`` is the accumulate operation — for the
    paper's use case it merges a worker's local k-NN list into the global
    k-NN list for that query id.
    """

    def __init__(
        self,
        owner_pid: int,
        owner_node: int,
        slots: Any,
        combine: Callable[[Any, Any], Any],
        name: str = "win",
    ) -> None:
        self.owner_pid = owner_pid
        self.owner_node = owner_node
        self._slots = slots
        self._combine = combine
        self.name = name
        self._lock_holders: set[int] = set()
        self.accum_count = 0

    # -- epochs ---------------------------------------------------------------

    def lock_shared(self, ctx: Context):
        """Begin a passive-target shared access epoch (MPI_Win_lock)."""
        if ctx.pid in self._lock_holders:
            raise SimError(f"proc {ctx.name} already holds a lock epoch on {self.name}")
        self._lock_holders.add(ctx.pid)
        # lock acquisition is one NIC round-trip
        yield from ctx.compute(ctx.network.rma_latency, kind="rma_sync")

    def unlock(self, ctx: Context):
        """End the access epoch (MPI_Win_unlock); flushes pending ops."""
        if ctx.pid not in self._lock_holders:
            raise SimError(f"proc {ctx.name} does not hold a lock epoch on {self.name}")
        self._lock_holders.discard(ctx.pid)
        yield from ctx.compute(ctx.network.rma_latency, kind="rma_sync")

    # -- one-sided ops ----------------------------------------------------------

    def get_accumulate(self, ctx: Context, index: Any, update: Any, nbytes: int | None = None):
        """Atomic remote read-combine-write of one slot.

        Returns the *previous* slot value (the "get" part), as
        ``MPI_Get_accumulate`` does.  The origin pays one RMA round-trip;
        the window owner pays nothing.
        """
        if ctx.pid not in self._lock_holders:
            raise SimError(
                f"proc {ctx.name} must hold a lock epoch on {self.name} before accumulating"
            )
        if nbytes is None:
            nbytes = payload_nbytes(update)
        same_node = ctx.node == self.owner_node
        seconds = ctx.network.rma_accumulate_time(nbytes, same_node)
        win = self

        def apply() -> Any:
            old = win._slots[index]
            win._slots[index] = win._combine(old, update)
            win.accum_count += 1
            return old

        old = yield from ctx.rma(seconds, apply, nbytes)
        return old

    def put(self, ctx: Context, index: Any, value: Any, nbytes: int | None = None):
        """One-sided overwrite of a slot (MPI_Put).  Not atomic with respect
        to concurrent accumulates — same semantics as MPI."""
        if ctx.pid not in self._lock_holders:
            raise SimError(
                f"proc {ctx.name} must hold a lock epoch on {self.name} before put"
            )
        if nbytes is None:
            nbytes = payload_nbytes(value)
        same_node = ctx.node == self.owner_node
        seconds = ctx.network.rma_accumulate_time(nbytes, same_node)
        win = self

        def apply() -> None:
            win._slots[index] = value

        yield from ctx.rma(seconds, apply, nbytes)

    def get(self, ctx: Context, index: Any):
        """One-sided read of a slot (MPI_Get)."""
        if ctx.pid not in self._lock_holders:
            raise SimError(
                f"proc {ctx.name} must hold a lock epoch on {self.name} before get"
            )
        win = self

        def apply() -> Any:
            return win._slots[index]

        # charge for the returned payload's wire size (estimated up front
        # from the current slot contents)
        nbytes = payload_nbytes(self._slots[index])
        same_node = ctx.node == self.owner_node
        seconds = ctx.network.rma_accumulate_time(nbytes, same_node)
        value = yield from ctx.rma(seconds, apply, nbytes)
        return value

    # -- owner-side access ---------------------------------------------------------

    def read(self, ctx: Context, index: Any) -> Any:
        """Owner-local read of a slot (no network cost; plain memory)."""
        if ctx.pid != self.owner_pid:
            raise SimError(f"only the owner may read {self.name} locally")
        return self._slots[index]

    def snapshot(self) -> Any:
        """Direct post-run access to the buffer (for result extraction)."""
        return self._slots
