"""The FaultInjector: enacts a FaultSpec inside the simulation engine.

The engine consults the injector at three points — when a proc charges
compute time (slow nodes), when a message is sent (per-link drop /
duplication / delay / degradation, and loss at a crashed destination), and
at each scheduled crash instant (the engine pushes one event-queue marker
per crash and calls back to kill the node's procs).  Every perturbation is
recorded as a :class:`FaultEvent` with its virtual time, so a run's fault
history lands in the :class:`~repro.simmpi.engine.SimulationResult` trace
alongside the per-proc stats.

All randomness comes from one ``random.Random(spec.seed)``; since the
engine itself is deterministic, the full faulted run is reproducible
bit-for-bit for a fixed (inputs, config, spec) triple.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from random import Random
from typing import TYPE_CHECKING

from repro.faults.spec import ANY_NODE, FaultSpec, LinkFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.network import NetworkModel

__all__ = ["FaultEvent", "FaultInjector"]


@dataclass(frozen=True)
class FaultEvent:
    """One enacted perturbation: what happened, when, and to whom."""

    time: float
    kind: str  # "crash" | "msg_drop" | "msg_dup" | "msg_delay" | "msg_lost_node_down"
    detail: dict = field(default_factory=dict)


class FaultInjector:
    """Runtime state of one FaultSpec: RNG, crash table, event log."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._rng = Random(spec.seed)
        self._crash_at = {c.node: c.at for c in spec.crashes}
        self._slow = {s.node: s.factor for s in spec.slow_nodes}
        self.events: list[FaultEvent] = []

    # -- trace ---------------------------------------------------------------

    def record(self, kind: str, time: float, **detail) -> None:
        self.events.append(FaultEvent(time=float(time), kind=kind, detail=detail))

    # -- crashes -------------------------------------------------------------

    def crash_schedule(self) -> list[tuple[int, float]]:
        """(node, time) pairs in time order, for the engine's event queue."""
        return sorted(((c.node, c.at) for c in self.spec.crashes), key=lambda x: x[1])

    def node_down(self, node: int | None, at: float) -> bool:
        """Is ``node`` crashed as of virtual time ``at``?"""
        if node is None:
            return False
        t = self._crash_at.get(node)
        return t is not None and at >= t

    # -- slow nodes ----------------------------------------------------------

    def compute_factor(self, node: int) -> float:
        return self._slow.get(node, 1.0)

    # -- links ---------------------------------------------------------------

    def _match_link(self, src: int, dst: int | None) -> LinkFault | None:
        for ln in self.spec.links:
            if ln.src not in (ANY_NODE, src):
                continue
            if dst is None:
                if ln.dst != ANY_NODE:
                    continue
            elif ln.dst not in (ANY_NODE, dst):
                continue
            return ln
        return None

    def transfer_times(
        self,
        src: int,
        dst: int | None,
        nbytes: int,
        same_node: bool,
        network: "NetworkModel",
        now: float,
    ) -> list[float]:
        """Wire times (after the sender's clock) of each delivered copy.

        ``[]`` means the message was dropped; two entries mean it was
        duplicated.  The clean-fabric result is ``[p2p_time(...)]``.
        """
        fault = self._match_link(src, dst)
        if fault is None:
            return [network.p2p_time(nbytes, same_node)]
        if fault.drop_prob > 0 and self._rng.random() < fault.drop_prob:
            self.record("msg_drop", now, src=src, dst=dst, nbytes=nbytes)
            return []
        t = network.p2p_time(
            nbytes,
            same_node,
            latency_factor=fault.latency_factor,
            bandwidth_factor=fault.bandwidth_factor,
        )
        if fault.delay_prob > 0 and self._rng.random() < fault.delay_prob:
            self.record(
                "msg_delay", now, src=src, dst=dst, extra_seconds=fault.delay_seconds
            )
            t += fault.delay_seconds
        if fault.dup_prob > 0 and self._rng.random() < fault.dup_prob:
            self.record("msg_dup", now, src=src, dst=dst, nbytes=nbytes)
            return [t, t]
        return [t]
