"""Fault injection and fault-tolerance policy (``repro.faults``).

The simulated fabric is perfect by default: no message is ever lost, no
rank ever dies.  This package turns it into a robustness testbed:

- :class:`~repro.faults.spec.FaultSpec` declares a failure scenario —
  fail-stop rank crashes at virtual times, per-link message drop /
  duplication / extra delay probabilities and persistent link
  degradation, and persistently slow nodes.  Specs round-trip through
  JSON (``repro query --faults spec.json`` replays one against any
  experiment).
- :class:`~repro.faults.injector.FaultInjector` enacts a spec inside the
  :class:`~repro.simmpi.engine.Simulation`, advancing the virtual clock
  realistically and logging every perturbation as a
  :class:`~repro.faults.injector.FaultEvent`.
- :class:`~repro.faults.spec.FaultPolicy` configures the fault-*tolerant*
  dispatch path (cost-model-derived timeouts, bounded retry with
  exponential backoff, replica failover, graceful degradation); see
  ``fault_tolerant_master_program`` in :mod:`repro.core.master`.

See the "Fault model" section of ``docs/simulation.md`` for semantics.
"""

from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.spec import (
    ANY_NODE,
    FaultPolicy,
    FaultSpec,
    LinkFault,
    RankCrash,
    SlowNode,
)

__all__ = [
    "ANY_NODE",
    "FaultEvent",
    "FaultInjector",
    "FaultPolicy",
    "FaultSpec",
    "LinkFault",
    "RankCrash",
    "SlowNode",
]
