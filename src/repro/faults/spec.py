"""Declarative fault specifications.

A :class:`FaultSpec` describes *what goes wrong* in the simulated fabric —
rank crashes at virtual times, lossy or degraded links, persistently slow
nodes — independently of any experiment, so the same spec can replay the
same failure scenario against any configuration (the CLI's ``--faults``
flag loads one from JSON).  A :class:`FaultPolicy` describes how the
*system* responds: dispatch timeouts, retry/backoff bounds, replica
failover, and shutdown behaviour.  Keeping the two separate means a fault
scenario and a tolerance policy can be swept independently.

All fields are plain numbers so specs round-trip through JSON losslessly;
``FaultSpec.seed`` makes every probabilistic perturbation reproducible.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.simmpi.errors import SimConfigError

__all__ = ["ANY_NODE", "RankCrash", "LinkFault", "SlowNode", "FaultSpec", "FaultPolicy"]

#: wildcard for LinkFault endpoints ("any node")
ANY_NODE = -1


@dataclass(frozen=True)
class RankCrash:
    """Node ``node`` fails permanently at virtual time ``at`` (seconds).

    Every proc on the node — all its simulated worker threads — stops
    executing at ``at``; messages arriving at the node after ``at`` are
    lost.  Crashes are fail-stop: a crashed node never comes back.
    """

    node: int
    at: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise SimConfigError(f"crash node must be >= 0, got {self.node}")
        if self.at < 0:
            raise SimConfigError(f"crash time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class LinkFault:
    """Perturbations on messages from ``src`` node to ``dst`` node.

    ``src``/``dst`` are node ids or :data:`ANY_NODE`; the first matching
    LinkFault in the spec applies to a message.  Probabilities are per
    message and independent; ``latency_factor``/``bandwidth_factor``
    persistently degrade the link's alpha-beta parameters (a flaky or
    congested route) on top of the probabilistic faults.
    """

    src: int = ANY_NODE
    dst: int = ANY_NODE
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    #: extra seconds added when a delay fires
    delay_seconds: float = 0.0
    #: multiplier on the link's latency (>= 1 slows it down)
    latency_factor: float = 1.0
    #: multiplier on the link's bandwidth (< 1 slows it down)
    bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "delay_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise SimConfigError(f"{name} must be in [0, 1], got {p}")
        if self.delay_seconds < 0:
            raise SimConfigError(f"delay_seconds must be >= 0, got {self.delay_seconds}")
        if self.latency_factor <= 0 or self.bandwidth_factor <= 0:
            raise SimConfigError("latency_factor and bandwidth_factor must be positive")


@dataclass(frozen=True)
class SlowNode:
    """Node ``node`` computes ``factor`` times slower than nominal
    (thermal throttling, a co-scheduled job, a failing DIMM...)."""

    node: int
    factor: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise SimConfigError(f"slow node must be >= 0, got {self.node}")
        if self.factor < 1.0:
            raise SimConfigError(f"slow-node factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class FaultSpec:
    """One complete failure scenario for the simulated fabric."""

    crashes: tuple[RankCrash, ...] = ()
    links: tuple[LinkFault, ...] = ()
    slow_nodes: tuple[SlowNode, ...] = ()
    #: seed of the injector's RNG — fixes every drop/dup/delay decision
    seed: int = 0

    def __post_init__(self) -> None:
        # tolerate lists from JSON / hand-written dicts
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "slow_nodes", tuple(self.slow_nodes))
        seen = set()
        for c in self.crashes:
            if c.node in seen:
                raise SimConfigError(f"node {c.node} crashes more than once")
            seen.add(c.node)

    # -- (de)serialisation --------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        return cls(
            crashes=tuple(RankCrash(**c) for c in d.get("crashes", ())),
            links=tuple(LinkFault(**ln) for ln in d.get("links", ())),
            slow_nodes=tuple(SlowNode(**s) for s in d.get("slow_nodes", ())),
            seed=int(d.get("seed", 0)),
        )

    def to_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    @classmethod
    def from_json(cls, path: str) -> "FaultSpec":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


@dataclass(frozen=True)
class FaultPolicy:
    """How the dispatch layer tolerates faults (timeouts, retries, failover).

    The per-attempt timeout is ``task_timeout`` when given, else derived
    from the cost model: ``timeout_multiplier`` times the expected
    per-task virtual seconds (local search + network round trip), floored
    at ``min_timeout``.  The multiplier absorbs queueing behind other
    tasks on a busy node; a spurious timeout only costs duplicate work —
    results are deduplicated per (query, partition) — never correctness.
    """

    #: explicit per-attempt timeout in virtual seconds; None = derive
    task_timeout: float | None = None
    #: safety factor over the cost-model estimate of one task
    timeout_multiplier: float = 50.0
    #: floor for the derived timeout
    min_timeout: float = 1e-4
    #: exponential backoff base applied to the timeout per retry
    backoff: float = 2.0
    #: maximum dispatch attempts per (query, partition) task
    max_attempts: int = 4
    #: timeouts charged against one core before it is suspected dead
    suspect_after: int = 2
    #: End-of-Queries rebroadcast rounds during shutdown
    drain_rounds: int = 3
    #: per-round drain wait; None = derived from the task timeout
    drain_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise SimConfigError(f"task_timeout must be positive, got {self.task_timeout}")
        if self.timeout_multiplier <= 0:
            raise SimConfigError("timeout_multiplier must be positive")
        if self.min_timeout <= 0:
            raise SimConfigError("min_timeout must be positive")
        if self.backoff < 1.0:
            raise SimConfigError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_attempts < 1:
            raise SimConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.suspect_after < 1:
            raise SimConfigError(f"suspect_after must be >= 1, got {self.suspect_after}")
        if self.drain_rounds < 1:
            raise SimConfigError(f"drain_rounds must be >= 1, got {self.drain_rounds}")
        if self.drain_timeout is not None and self.drain_timeout <= 0:
            raise SimConfigError(f"drain_timeout must be positive, got {self.drain_timeout}")
