"""Bounded heaps and k-NN result buffers.

The hot inner loops of HNSW and the tree searches all maintain "the k best
candidates so far".  Python's :mod:`heapq` is a min-heap of tuples; here we
wrap it in small classes with an explicit bound so call sites read like the
pseudocode in the paper, and add :func:`merge_knn`, the reduction the master
process applies when combining local k-NN results from several partitions.

Note: the flattened HNSW hot path (`repro.hnsw.index` and its compiled
search layer in ``_hotpath.c``) bypasses these wrappers for speed, using
raw :mod:`heapq` — and, natively, hand-rolled C heaps — over the same
``(dist, id)`` tuples with the same lexicographic ordering and tie-breaks,
so pop order is identical either way (see docs/performance.md).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

import numpy as np

__all__ = ["MinHeap", "MaxHeap", "KnnBuffer", "merge_knn"]


class MinHeap:
    """A (distance, id) min-heap: ``pop()`` returns the *closest* entry.

    Used for the expanding candidate frontier in greedy graph search.
    """

    __slots__ = ("_heap",)

    def __init__(self, items: Iterable[tuple[float, int]] | None = None) -> None:
        self._heap: list[tuple[float, int]] = list(items) if items else []
        heapq.heapify(self._heap)

    def push(self, dist: float, ident: int) -> None:
        heapq.heappush(self._heap, (dist, ident))

    def pop(self) -> tuple[float, int]:
        return heapq.heappop(self._heap)

    def peek(self) -> tuple[float, int]:
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[tuple[float, int]]:
        return iter(self._heap)


class MaxHeap:
    """A (distance, id) max-heap: ``pop()`` returns the *farthest* entry.

    Implemented by negating distances internally.  Used for the dynamic
    result list in graph search ("W" in the HNSW paper), where the farthest
    element is evicted when the list exceeds ``ef``.
    """

    __slots__ = ("_heap",)

    def __init__(self, items: Iterable[tuple[float, int]] | None = None) -> None:
        self._heap: list[tuple[float, int]] = (
            [(-d, i) for d, i in items] if items else []
        )
        heapq.heapify(self._heap)

    def push(self, dist: float, ident: int) -> None:
        heapq.heappush(self._heap, (-dist, ident))

    def pop(self) -> tuple[float, int]:
        d, i = heapq.heappop(self._heap)
        return -d, i

    def peek(self) -> tuple[float, int]:
        d, i = self._heap[0]
        return -d, i

    def max_dist(self) -> float:
        """Distance of the farthest entry (``inf`` when empty)."""
        return -self._heap[0][0] if self._heap else float("inf")

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def items(self) -> list[tuple[float, int]]:
        """All (distance, id) pairs, unordered."""
        return [(-d, i) for d, i in self._heap]

    def sorted_items(self) -> list[tuple[float, int]]:
        """All (distance, id) pairs, closest first."""
        return sorted(self.items())


class KnnBuffer:
    """Bounded buffer of the ``k`` closest (distance, id) pairs seen so far.

    This is the object every search routine threads through its traversal:
    ``offer()`` either absorbs a candidate or rejects it, and ``tau`` (the
    current kth-nearest distance) is what drives pruning in the VP- and
    KD-tree searches.
    """

    __slots__ = ("k", "_heap")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._heap = MaxHeap()

    @property
    def tau(self) -> float:
        """Current pruning radius: kth-nearest distance, or ``inf`` if fewer
        than ``k`` candidates have been seen."""
        if len(self._heap) < self.k:
            return float("inf")
        return self._heap.max_dist()

    def offer(self, dist: float, ident: int) -> bool:
        """Consider one candidate; return True if it entered the buffer."""
        if len(self._heap) < self.k:
            self._heap.push(dist, ident)
            return True
        if dist < self._heap.max_dist():
            self._heap.pop()
            self._heap.push(dist, ident)
            return True
        return False

    def offer_many(self, dists: np.ndarray, idents: np.ndarray) -> None:
        """Vectorized bulk offer.

        Pre-filters with the current ``tau`` so that already-hopeless
        candidates never touch the heap; the survivors are offered in
        ascending-distance order, which tightens ``tau`` as early as
        possible.
        """
        dists = np.asarray(dists, dtype=np.float64)
        idents = np.asarray(idents)
        mask = dists < self.tau
        if len(self._heap) < self.k:
            mask[:] = True
        d, ii = dists[mask], idents[mask]
        order = np.argsort(d, kind="stable")
        for j in order:
            self.offer(float(d[j]), int(ii[j]))

    def __len__(self) -> int:
        return len(self._heap)

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (distances, ids) sorted closest-first."""
        pairs = self._heap.sorted_items()
        if not pairs:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        d = np.array([p[0] for p in pairs], dtype=np.float64)
        i = np.array([p[1] for p in pairs], dtype=np.int64)
        return d, i


def merge_knn(
    results: Iterable[tuple[np.ndarray, np.ndarray]], k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Merge several local k-NN results into a global top-k.

    This is the reduction the master performs (Alg. 3 line "Update q's final
    results") and also the combine operation realised remotely by
    ``MPI_Get_accumulate`` in the one-sided path.  Each input is a
    (distances, ids) pair sorted or not; ties are broken by id for
    determinism.  Duplicate ids (possible when replicated partitions answer
    the same query) are collapsed to their best distance.
    """
    all_d: list[np.ndarray] = []
    all_i: list[np.ndarray] = []
    for d, i in results:
        if len(d):
            all_d.append(np.asarray(d, dtype=np.float64))
            all_i.append(np.asarray(i, dtype=np.int64))
    if not all_d:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
    d = np.concatenate(all_d)
    i = np.concatenate(all_i)
    # Collapse duplicate ids to the minimum distance.
    order = np.lexsort((d, i))
    d, i = d[order], i[order]
    first = np.ones(len(i), dtype=bool)
    first[1:] = i[1:] != i[:-1]
    d, i = d[first], i[first]
    # Global top-k, distance-then-id order.
    order = np.lexsort((i, d))[:k]
    return d[order], i[order]
