"""Shared build-and-load plumbing for the optional C accelerators.

Each accelerator package (``repro.hnsw``, ``repro.pq``) ships a single
C source file compiled on demand with whatever compiler the host has —
there is no build step at install time and no hard dependency on one
existing.  The shared object is cached per source hash in a per-user
temp dir, so the compile cost is paid once per machine, not per
process; a compile or load failure simply returns ``None`` and the
caller stays on its pure-python path.

Compilation always passes ``-ffp-contract=off``: every kernel in this
repo carries a bit-identity contract against a numpy/scipy reference,
and a fused multiply-add would change the rounding.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

__all__ = ["compile_and_load"]


def compile_and_load(src_path: str, cache_prefix: str) -> ctypes.CDLL | None:
    """Compile ``src_path`` to a cached shared object and load it.

    Returns the ``ctypes.CDLL`` (argtypes left to the caller) or
    ``None`` when no compiler exists, the compile fails, or the object
    cannot be loaded.
    """
    if not os.path.exists(src_path):
        return None
    cc = os.environ.get("CC") or shutil.which("gcc") or shutil.which("cc")
    if cc is None:
        return None
    with open(src_path, "rb") as fh:
        src = fh.read()
    tag = hashlib.sha256(src).hexdigest()[:16]
    cache = os.path.join(tempfile.gettempdir(), f"{cache_prefix}-{os.getuid()}")
    stem = os.path.splitext(os.path.basename(src_path))[0]
    so = os.path.join(cache, f"{stem}-{tag}.so")
    if not os.path.exists(so):
        tmp = f"{so}.{os.getpid()}.tmp"
        try:
            os.makedirs(cache, exist_ok=True)
            subprocess.run(
                [cc, "-O2", "-ffp-contract=off", "-shared", "-fPIC", src_path, "-o", tmp, "-lm"],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp, so)
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        return ctypes.CDLL(so)
    except OSError:
        return None
