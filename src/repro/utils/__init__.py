"""Shared low-level utilities: bounded heaps, RNG fan-out, validation."""

from repro.utils.heaps import KnnBuffer, MaxHeap, MinHeap, merge_knn
from repro.utils.rng import spawn_rngs, rng_for
from repro.utils.validation import (
    check_positive_int,
    check_matrix,
    check_vector,
    check_probability,
)

__all__ = [
    "KnnBuffer",
    "MaxHeap",
    "MinHeap",
    "merge_knn",
    "spawn_rngs",
    "rng_for",
    "check_positive_int",
    "check_matrix",
    "check_vector",
    "check_probability",
]
