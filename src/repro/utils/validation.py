"""Argument validation helpers shared across the public API surface."""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive_int",
    "check_matrix",
    "check_vector",
    "check_probability",
]


def check_positive_int(value: int, name: str) -> int:
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_matrix(x: np.ndarray, name: str, dtype=np.float32) -> np.ndarray:
    """Coerce to a C-contiguous 2-D float array; reject empties and NaNs."""
    x = np.ascontiguousarray(x, dtype=dtype)
    if x.ndim != 2:
        raise ValueError(f"{name} must be 2-D (n_points, dim), got shape {x.shape}")
    if x.shape[0] == 0 or x.shape[1] == 0:
        raise ValueError(f"{name} must be non-empty, got shape {x.shape}")
    if not np.all(np.isfinite(x)):
        raise ValueError(f"{name} contains non-finite values")
    return x


def check_vector(q: np.ndarray, name: str, dim: int | None = None, dtype=np.float32) -> np.ndarray:
    q = np.ascontiguousarray(q, dtype=dtype)
    if q.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {q.shape}")
    if dim is not None and q.shape[0] != dim:
        raise ValueError(f"{name} has dimension {q.shape[0]}, expected {dim}")
    if not np.all(np.isfinite(q)):
        raise ValueError(f"{name} contains non-finite values")
    return q


def check_probability(p: float, name: str) -> float:
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {p}")
    return p
