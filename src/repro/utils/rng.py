"""Deterministic RNG fan-out.

Every stochastic component (dataset generation, HNSW level sampling, vantage
point candidate sampling, simulated network jitter) takes a
:class:`numpy.random.Generator`.  These helpers derive independent
per-component / per-rank streams from one seed so a fixed seed reproduces an
entire distributed run bit-for-bit, which the determinism tests rely on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_rngs", "rng_for"]


def spawn_rngs(seed: int | np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed."""
    if isinstance(seed, np.random.Generator):
        seq = seed.spawn(n)
        return list(seq)
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in ss.spawn(n)]


def rng_for(seed: int, *path: int | str) -> np.random.Generator:
    """A generator keyed by a hierarchical path, e.g. ``rng_for(seed, "rank", 3)``.

    String path components are folded into integers so that distinct
    component names yield distinct streams regardless of rank numbering.
    """
    key = [seed]
    for p in path:
        if isinstance(p, str):
            key.append(int.from_bytes(p.encode()[:8].ljust(8, b"\0"), "little") & 0x7FFFFFFF)
        else:
            key.append(int(p) & 0x7FFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(key))
