"""Worker-side search routine (paper Algorithm 4).

One compute node runs ``threads_per_node`` thread procs sharing the node's
mailbox.  Each thread loops: wait for a message *or* the node's shared
terminate event; on a task, search the named partition replica with the
local searcher, charge the search's virtual seconds, and return the result
either by one-sided ``Get_accumulate`` into the master's window or by a
point-to-point result message.  The first thread to consume the
"End of Queries" message sets the shared event; the others wake, cancel
their outstanding receives, and exit — the same protocol as the paper's
shared ``Done`` flag, without simulating millions of ``MPI_Test`` polls.

Because all threads of a node pull from one mailbox, dynamic intra-node
load balancing (§IV-B: "we do not strongly couple a process core with the
data partition") falls out of the message matching.
"""

from __future__ import annotations

from repro.core.messages import (
    TAG_CREDIT,
    TAG_RESULT,
    TAG_THREAD_DONE,
    batch_result_nbytes,
    credit_nbytes,
    make_batch_result,
    make_credit,
    make_result,
    result_nbytes,
)
from repro.core.partition import NodeStore
from repro.core.searcher import LocalSearcher, generic_search_batch
from repro.simmpi.engine import ANY_SOURCE, ANY_TAG, Context, Event, Mailbox
from repro.simmpi.rma import Window

__all__ = ["worker_thread_program"]


def _filtered_call(searcher: LocalSearcher, batch: bool):
    """The searcher's filtered entry point for a pushed-down predicate.

    Raises a clear error for custom searchers that predate the filtered
    surface instead of silently answering unfiltered.
    """
    name = "search_filtered_batch" if batch else "search_filtered"
    fn = getattr(searcher, name, None)
    if fn is None:
        raise TypeError(
            f"{type(searcher).__name__} has no {name}(); filtered queries "
            "need a searcher implementing the filtered LocalSearcher surface"
        )
    return fn


def _wire_filter(fpayload: dict):
    """(clauses, strategy) from a task message's filter payload."""
    from repro.filtering import clauses_from_wire

    return (
        clauses_from_wire(fpayload.get("clauses", [])),
        fpayload.get("strategy", "auto"),
    )


def worker_thread_program(
    ctx: Context,
    node_mailbox: Mailbox,
    node_store: NodeStore,
    searcher: LocalSearcher,
    k: int,
    done_event: Event,
    master_mailbox: Mailbox,
    window: Window | None,
    reply_tag: int = TAG_RESULT,
    send_credits: bool = False,
):
    """One simulated OpenMP thread.  Returns (tasks_processed,).

    ``send_credits`` (one-sided + ``dispatch_window > 0`` only) makes the
    thread follow each batch of ``Get_accumulate`` landings with a tiny
    credit-ack message, giving the master's flow control the completion
    signal one-sided results otherwise withhold; two-sided replies are
    their own credit return.
    """
    one_sided = window is not None
    if one_sided:
        yield from window.lock_shared(ctx)
    processed = 0
    try:
        while True:
            req = yield from ctx.post_recv(node_mailbox, source=ANY_SOURCE, tag=ANY_TAG)
            fired, payload = yield from ctx.wait_any([req, done_event])
            if fired == 1:  # terminate flag set by a sibling thread
                yield from ctx.cancel(req)
                break
            kind = payload[0]
            if kind == "end":
                yield from ctx.set_event(done_event)
                break
            if kind in ("btask", "fbtask"):
                # ("btask", qids, pid, Q): B queries for one partition,
                # answered with one local batch search (see master dispatch);
                # "fbtask" additionally carries the filter payload at [4]
                _, query_ids, partition_id, Qb = payload[:4]
                fpayload = payload[4] if kind == "fbtask" else None
                qids = tuple(int(q) for q in query_ids) if ctx.trace_active else None
                if ctx.trace_active and req.arrival is not None:
                    # the gap between the task landing in the node mailbox
                    # and a thread picking it up is pure queueing delay
                    ctx.trace_complete(
                        "queue",
                        req.arrival,
                        ctx.now,
                        query_ids=qids,
                        partition=int(partition_id),
                    )
                with ctx.span(
                    "search",
                    query_ids=qids,
                    partition=int(partition_id),
                    n_queries=len(query_ids),
                ):
                    partition = node_store.get(partition_id)
                    if fpayload is not None:
                        clauses, strat = _wire_filter(fpayload)
                        ds, idss, seconds = _filtered_call(searcher, batch=True)(
                            partition, Qb, k, clauses, strat
                        )
                    else:
                        search_batch = getattr(searcher, "search_batch", None)
                        if search_batch is not None:
                            ds, idss, seconds = search_batch(partition, Qb, k)
                        else:
                            ds, idss, seconds = generic_search_batch(
                                searcher, partition, Qb, k
                            )
                    yield from ctx.compute(seconds, kind="search")
                processed += len(query_ids)
                with ctx.span("reduce"):
                    if one_sided:
                        # the RMA window is keyed by query id: one
                        # accumulate per row, same bytes as unbatched
                        for qid, d, ids in zip(query_ids, ds, idss):
                            yield from window.get_accumulate(
                                ctx, qid, (d, ids), nbytes=result_nbytes(d, ids)
                            )
                        if send_credits:
                            yield from ctx.send_to_mailbox(
                                master_mailbox,
                                make_credit(query_ids, partition_id),
                                source=ctx.pid,
                                tag=TAG_CREDIT,
                                nbytes=credit_nbytes(len(query_ids)),
                                same_node=False,
                            )
                    else:
                        yield from ctx.send_to_mailbox(
                            master_mailbox,
                            make_batch_result(query_ids, partition_id, ds, idss),
                            source=ctx.pid,
                            tag=reply_tag,
                            nbytes=batch_result_nbytes(ds, idss),
                            same_node=False,
                        )
                continue
            # tasks are ("task", qid, pid, qvec) from the master, or the
            # 5-tuple variant carrying an explicit reply mailbox from a
            # multiple-owner dispatcher; "ftask" shifts those by one to
            # fit the filter payload at [4]
            _, query_id, partition_id, qvec = payload[:4]
            if kind == "ftask":
                fpayload = payload[4]
                reply_to = payload[5] if len(payload) > 5 else master_mailbox
            else:
                fpayload = None
                reply_to = payload[4] if len(payload) > 4 else master_mailbox
            if ctx.trace_active and req.arrival is not None:
                ctx.trace_complete(
                    "queue",
                    req.arrival,
                    ctx.now,
                    query_id=int(query_id),
                    partition=int(partition_id),
                )
            with ctx.span("search", query_id=int(query_id), partition=int(partition_id)):
                partition = node_store.get(partition_id)
                if fpayload is not None:
                    clauses, strat = _wire_filter(fpayload)
                    dists, ids, seconds = _filtered_call(searcher, batch=False)(
                        partition, qvec, k, clauses, strat
                    )
                else:
                    dists, ids, seconds = searcher.search(partition, qvec, k)
                yield from ctx.compute(seconds, kind="search")
            processed += 1
            # returning a result is the worker-side half of the reduction:
            # either the remote accumulate or the point-to-point reply
            with ctx.span("reduce"):
                if one_sided:
                    yield from window.get_accumulate(
                        ctx, query_id, (dists, ids), nbytes=result_nbytes(dists, ids)
                    )
                    if send_credits:
                        yield from ctx.send_to_mailbox(
                            master_mailbox,
                            make_credit([query_id], partition_id),
                            source=ctx.pid,
                            tag=TAG_CREDIT,
                            nbytes=credit_nbytes(1),
                            same_node=False,
                        )
                else:
                    yield from ctx.send_to_mailbox(
                        reply_to,
                        make_result(query_id, partition_id, dists, ids),
                        source=ctx.pid,
                        tag=reply_tag,
                        nbytes=result_nbytes(dists, ids),
                        same_node=False,
                    )
    finally:
        if one_sided:
            yield from window.unlock(ctx)
    # completion notification (tiny message) so the master can detect that
    # every one-sided accumulate has landed before reading the window
    with ctx.span("drain"):
        yield from ctx.send_to_mailbox(
            master_mailbox,
            ("tdone", ctx.pid, processed),
            source=ctx.pid,
            tag=TAG_THREAD_DONE,
            nbytes=24,
            same_node=False,
        )
    return processed
