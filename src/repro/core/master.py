"""Master-side search routine (paper Algorithms 3 and 5).

The master routes every query through the VP-tree skeleton to its partition
set F(q), dispatches one task per (query, partition) to a worker node —
round-robin over the partition's workgroup when replication is on (Alg. 5)
— then sends "End of Queries" to every node and collects results:

- two-sided: receives one result message per dispatched task and merges it
  into :class:`~repro.core.results.GlobalResults` (Alg. 3's update loop);
- one-sided: does *nothing* per task — workers accumulate straight into
  the RMA window (Fig. 2) — and only waits for the per-thread completion
  notifications before reading the window.

Adaptive routing (two-sided only) pipelines two waves per query: a pilot
task to the nearest partition, then — once the pilot's k-th distance is
known — an exact ball route for the remaining partitions.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SystemConfig
from repro.core.messages import (
    TAG_END,
    TAG_RESULT,
    TAG_TASK,
    TAG_THREAD_DONE,
    make_task,
    task_nbytes,
)
from repro.core.replication import Workgroups
from repro.core.results import GlobalResults
from repro.simmpi.engine import Context, Mailbox
from repro.vptree.router import PartitionRouter

__all__ = ["master_program", "MasterReport"]


class MasterReport:
    """What the master learned during one batch (consumed by SearchReport)."""

    def __init__(self, n_cores: int) -> None:
        self.dispatch_counts = np.zeros(n_cores, dtype=np.int64)
        self.tasks_sent = 0
        self.route_dist_evals = 0
        self.fanouts: list[int] = []
        #: per-query completion latency (virtual s from batch start to the
        #: query's last result landing at the master); two-sided mode only —
        #: in one-sided mode results bypass the master, so per-query
        #: completion is unobservable there (None)
        self.query_latencies: np.ndarray | None = None


def master_program(
    ctx: Context,
    config: SystemConfig,
    router: PartitionRouter,
    workgroups: Workgroups,
    queries: np.ndarray,
    results: GlobalResults,
    node_mailboxes: list[Mailbox],
    window,
):
    """The master proc body.  Returns a :class:`MasterReport`."""
    report = MasterReport(config.n_cores)
    k = config.k
    one_sided = window is not None
    n_threads_total = config.n_nodes * config.threads_per_node
    batch_start = ctx.now
    outstanding = np.zeros(len(queries), dtype=np.int64)
    latencies = np.full(len(queries), np.nan)

    def note_result(query_id: int) -> None:
        outstanding[query_id] -= 1
        if outstanding[query_id] == 0:
            latencies[query_id] = ctx.now - batch_start

    def dispatch(query_id: int, partition_id: int, qvec: np.ndarray):
        with ctx.span("dispatch"):
            core = workgroups.next_core(partition_id)
            report.dispatch_counts[core] += 1
            report.tasks_sent += 1
            outstanding[query_id] += 1
            node = config.node_of_core(core)
            yield from ctx.send_to_mailbox(
                node_mailboxes[node],
                make_task(query_id, partition_id, qvec),
                source=ctx.pid,
                tag=TAG_TASK,
                nbytes=task_nbytes(qvec),
                same_node=False,
            )

    def route_cost(parts_found_before: int):
        evals = router.n_dist_evals - parts_found_before
        report.route_dist_evals += evals
        return ctx.cost.distance_cost(evals, queries.shape[1])

    if config.routing == "approx":
        for qid in range(len(queries)):
            q = queries[qid]
            with ctx.span("route"):
                before = router.n_dist_evals
                parts = router.route_approx(q, config.n_probe)
                yield from ctx.compute(route_cost(before), kind="route")
            report.fanouts.append(len(parts))
            for pid_part in parts:
                yield from dispatch(qid, pid_part, q)
        expected_results = 0 if one_sided else report.tasks_sent
    else:  # adaptive, two-sided
        pending_pilot: dict[int, int] = {}
        for qid in range(len(queries)):
            q = queries[qid]
            with ctx.span("route"):
                before = router.n_dist_evals
                pilot = router.route_approx(q, 1)[0]
                yield from ctx.compute(route_cost(before), kind="route")
            pending_pilot[qid] = pilot
            yield from dispatch(qid, pilot, q)
        # every result triggers a merge; a *pilot* result additionally
        # triggers the second-wave exact route with its k-th distance
        expected = len(queries)
        received = 0
        while received < expected:
            with ctx.span("reduce"):
                req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_RESULT)
                payload = yield from ctx.wait(req)
                _, qid, d, ids = payload
                yield from ctx.compute(ctx.cost.compare_cost(len(d) + k), kind="merge")
                results.update(qid, d, ids)
            note_result(qid)
            received += 1
            if qid in pending_pilot:
                pilot = pending_pilot.pop(qid)
                tau = float(d[k - 1]) if len(d) >= k else float("inf")
                if np.isfinite(tau):
                    with ctx.span("route"):
                        before = router.n_dist_evals
                        parts = [p for p in router.route_exact(queries[qid], tau) if p != pilot]
                        yield from ctx.compute(route_cost(before), kind="route")
                else:
                    parts = [p for p in range(config.n_cores) if p != pilot]
                report.fanouts.append(len(parts) + 1)
                for pid_part in parts:
                    yield from dispatch(qid, pid_part, queries[qid])
                    expected += 1
        expected_results = 0  # everything already collected

    # End of Queries to every worker node (Alg. 3 lines 12-14)
    with ctx.span("drain"):
        for node in range(config.n_nodes):
            yield from ctx.send_to_mailbox(
                node_mailboxes[node],
                ("end",),
                source=ctx.pid,
                tag=TAG_END,
                nbytes=8,
                same_node=False,
            )

    # collection loop (Alg. 3 lines 15-18)
    remaining = expected_results
    while remaining:
        with ctx.span("reduce"):
            req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_RESULT)
            payload = yield from ctx.wait(req)
            _, qid, d, ids = payload
            yield from ctx.compute(ctx.cost.compare_cost(len(d) + k), kind="merge")
            results.update(qid, d, ids)
        note_result(qid)
        remaining -= 1

    # thread completion notifications: in one-sided mode this is what tells
    # the master every Get_accumulate has landed; in two-sided mode it
    # simply drains the exit messages
    with ctx.span("drain"):
        for _ in range(n_threads_total):
            req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_THREAD_DONE)
            yield from ctx.wait(req)

    if not one_sided:
        report.query_latencies = latencies
    return report
