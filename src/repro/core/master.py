"""Master-side search routine (paper Algorithms 3 and 5).

The master routes every query through the VP-tree skeleton to its partition
set F(q), dispatches one task per (query, partition) to a worker node —
picking the replica with the configured :mod:`repro.loadbalance` selector
when replication is on (Alg. 5's round-robin is the ``primary`` default) —
then sends "End of Queries" to every node and collects results:

- two-sided: receives one result message per dispatched task and merges it
  into :class:`~repro.core.results.GlobalResults` (Alg. 3's update loop);
- one-sided: does *nothing* per task — workers accumulate straight into
  the RMA window (Fig. 2) — and only waits for the per-thread completion
  notifications before reading the window.

Adaptive routing (two-sided only) pipelines two waves per query: a pilot
task to the nearest partition, then — once the pilot's k-th distance is
known — an exact ball route for the remaining partitions.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SystemConfig
from repro.core.messages import (
    TAG_END,
    TAG_RESULT,
    TAG_TASK,
    TAG_THREAD_DONE,
    batch_task_nbytes,
    make_batch_task,
    make_task,
    task_nbytes,
)
from repro.core.replication import Workgroups
from repro.core.results import GlobalResults
from repro.faults.spec import FaultPolicy
from repro.loadbalance import PrimarySelector, ReplicaSelector
from repro.simmpi.engine import WAIT_TIMED_OUT, Context, Mailbox
from repro.vptree.router import PartitionRouter

__all__ = ["master_program", "fault_tolerant_master_program", "MasterReport"]


class MasterReport:
    """What the master learned during one batch (consumed by SearchReport)."""

    def __init__(self, n_cores: int) -> None:
        self.dispatch_counts = np.zeros(n_cores, dtype=np.int64)
        self.tasks_sent = 0
        #: task *messages* sent; equals ``tasks_sent`` at batch_size 1,
        #: shrinks toward ``tasks_sent / batch_size`` as batching kicks in
        self.batches_sent = 0
        self.route_dist_evals = 0
        self.fanouts: list[int] = []
        #: per-query completion latency (virtual s from batch start to the
        #: query's last result landing at the master); two-sided mode only —
        #: in one-sided mode results bypass the master, so per-query
        #: completion is unobservable there (None)
        self.query_latencies: np.ndarray | None = None
        # -- fault-tolerance accounting (zero / None on the plain paths) --
        #: re-dispatches to the same core after a timeout
        self.retries = 0
        #: re-dispatches to a different replica after a timeout
        self.failovers = 0
        #: tasks abandoned with no live replica / attempts exhausted
        self.failed_tasks = 0
        #: late or duplicated results dropped by (query, partition) dedup
        self.duplicate_results = 0
        #: per-query fraction of routed partitions that answered (1.0 =
        #: complete); None on the plain paths, where completion is all-or-hang
        self.completeness: np.ndarray | None = None
        #: cores the dispatcher declared dead after repeated timeouts
        self.suspected_dead_cores: list[int] = []
        #: (virtual time, total modeled queued tasks) samples, one per
        #: dispatch, from the selector's LoadTracker (None without one)
        self.queue_depth_timeline: np.ndarray | None = None


def master_program(
    ctx: Context,
    config: SystemConfig,
    router: PartitionRouter,
    workgroups: Workgroups,
    queries: np.ndarray,
    results: GlobalResults,
    node_mailboxes: list[Mailbox],
    window,
    selector: ReplicaSelector | None = None,
):
    """The master proc body.  Returns a :class:`MasterReport`.

    ``selector`` picks the replica core of each task's target partition
    (see :mod:`repro.loadbalance`); None falls back to
    :class:`~repro.loadbalance.PrimarySelector`, the workgroup circular
    pointer every golden trace was recorded with.
    """
    report = MasterReport(config.n_cores)
    if selector is None:
        selector = PrimarySelector(workgroups)
    tracker = selector.tracker
    k = config.k
    one_sided = window is not None
    n_threads_total = config.n_nodes * config.threads_per_node
    batch_start = ctx.now
    outstanding = np.zeros(len(queries), dtype=np.int64)
    latencies = np.full(len(queries), np.nan)

    def note_result(query_id: int) -> None:
        outstanding[query_id] -= 1
        if outstanding[query_id] == 0:
            latencies[query_id] = ctx.now - batch_start

    def dispatch(query_id: int, partition_id: int, qvec: np.ndarray):
        with ctx.span("dispatch"):
            core = selector.pick(partition_id, ctx.now)
            tracker.record_dispatch(core, ctx.now)
            report.dispatch_counts[core] += 1
            report.tasks_sent += 1
            report.batches_sent += 1
            outstanding[query_id] += 1
            node = config.node_of_core(core)
            yield from ctx.send_to_mailbox(
                node_mailboxes[node],
                make_task(query_id, partition_id, qvec),
                source=ctx.pid,
                tag=TAG_TASK,
                nbytes=task_nbytes(qvec),
                same_node=False,
            )

    def dispatch_batch(query_ids: list[int], partition_id: int, qvecs: list[np.ndarray]):
        """Ship B buffered queries for one partition as a single task message.

        One workgroup round-robin step, one message, one worker-side
        ``knn_search_batch``.  At B = 1 the wire bytes and send order are
        identical to :func:`dispatch`, so batching is a pure message-count
        knob — the batched-vs-unbatched golden tests pin this.
        """
        with ctx.span("dispatch"):
            core = selector.pick(partition_id, ctx.now)
            tracker.record_dispatch(core, ctx.now, n_tasks=len(query_ids))
            report.dispatch_counts[core] += len(query_ids)
            report.tasks_sent += len(query_ids)
            report.batches_sent += 1
            for qid in query_ids:
                outstanding[qid] += 1
            node = config.node_of_core(core)
            Qb = np.stack(qvecs)
            yield from ctx.send_to_mailbox(
                node_mailboxes[node],
                make_batch_task(query_ids, partition_id, Qb),
                source=ctx.pid,
                tag=TAG_TASK,
                nbytes=batch_task_nbytes(Qb),
                same_node=False,
            )

    def route_cost(parts_found_before: int):
        evals = router.n_dist_evals - parts_found_before
        report.route_dist_evals += evals
        return ctx.cost.distance_cost(evals, queries.shape[1])

    if config.routing == "approx":
        # per-partition dispatch buffers: a partition's batch flushes as
        # soon as it holds batch_size queries, and stragglers flush in
        # partition order after the last query routes
        batch = config.batch_size
        buffers: dict[int, tuple[list[int], list[np.ndarray]]] = {}
        for qid in range(len(queries)):
            q = queries[qid]
            with ctx.span("route"):
                before = router.n_dist_evals
                parts = router.route_approx(q, config.n_probe)
                yield from ctx.compute(route_cost(before), kind="route")
            report.fanouts.append(len(parts))
            for pid_part in parts:
                buf = buffers.get(pid_part)
                if buf is None:
                    buf = buffers[pid_part] = ([], [])
                buf[0].append(qid)
                buf[1].append(q)
                if len(buf[0]) >= batch:
                    del buffers[pid_part]
                    yield from dispatch_batch(buf[0], pid_part, buf[1])
        for pid_part in sorted(buffers):
            qids_b, qvecs_b = buffers[pid_part]
            yield from dispatch_batch(qids_b, pid_part, qvecs_b)
        buffers.clear()
        expected_results = 0 if one_sided else report.tasks_sent
    else:  # adaptive, two-sided
        pending_pilot: dict[int, int] = {}
        for qid in range(len(queries)):
            q = queries[qid]
            with ctx.span("route"):
                before = router.n_dist_evals
                pilot = router.route_approx(q, 1)[0]
                yield from ctx.compute(route_cost(before), kind="route")
            pending_pilot[qid] = pilot
            yield from dispatch(qid, pilot, q)
        # every result triggers a merge; a *pilot* result additionally
        # triggers the second-wave exact route with its k-th distance
        expected = len(queries)
        received = 0
        while received < expected:
            with ctx.span("reduce"):
                req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_RESULT)
                payload = yield from ctx.wait(req)
                _, qid, _pid_part, d, ids = payload
                yield from ctx.compute(ctx.cost.compare_cost(len(d) + k), kind="merge")
                results.update(qid, d, ids)
            note_result(qid)
            received += 1
            if qid in pending_pilot:
                pilot = pending_pilot.pop(qid)
                tau = float(d[k - 1]) if len(d) >= k else float("inf")
                if np.isfinite(tau):
                    with ctx.span("route"):
                        before = router.n_dist_evals
                        parts = [p for p in router.route_exact(queries[qid], tau) if p != pilot]
                        yield from ctx.compute(route_cost(before), kind="route")
                else:
                    parts = [p for p in range(config.n_cores) if p != pilot]
                report.fanouts.append(len(parts) + 1)
                for pid_part in parts:
                    yield from dispatch(qid, pid_part, queries[qid])
                    expected += 1
        expected_results = 0  # everything already collected

    # End of Queries to every worker node (Alg. 3 lines 12-14)
    with ctx.span("drain"):
        for node in range(config.n_nodes):
            yield from ctx.send_to_mailbox(
                node_mailboxes[node],
                ("end",),
                source=ctx.pid,
                tag=TAG_END,
                nbytes=8,
                same_node=False,
            )

    # collection loop (Alg. 3 lines 15-18); a "bresult" message settles a
    # whole batch of (query, partition) rows at once
    remaining = expected_results
    while remaining:
        with ctx.span("reduce"):
            req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_RESULT)
            payload = yield from ctx.wait(req)
            if payload[0] == "bresult":
                _, qids_b, _pid_part, ds, idss = payload
                for qid, d, ids in zip(qids_b, ds, idss):
                    yield from ctx.compute(ctx.cost.compare_cost(len(d) + k), kind="merge")
                    results.update(qid, d, ids)
            else:
                _, qid, _pid_part, d, ids = payload
                qids_b = [qid]
                yield from ctx.compute(ctx.cost.compare_cost(len(d) + k), kind="merge")
                results.update(qid, d, ids)
        for qid in qids_b:
            note_result(qid)
        remaining -= len(qids_b)

    # thread completion notifications: in one-sided mode this is what tells
    # the master every Get_accumulate has landed; in two-sided mode it
    # simply drains the exit messages
    with ctx.span("drain"):
        for _ in range(n_threads_total):
            req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_THREAD_DONE)
            yield from ctx.wait(req)

    if not one_sided:
        report.query_latencies = latencies
    report.queue_depth_timeline = tracker.timeline()
    return report


def fault_tolerant_master_program(
    ctx: Context,
    config: SystemConfig,
    router: PartitionRouter,
    workgroups: Workgroups,
    queries: np.ndarray,
    results: GlobalResults,
    node_mailboxes: list[Mailbox],
    policy: FaultPolicy,
    task_seconds_hint: float,
    selector: ReplicaSelector | None = None,
):
    """Master proc body with timeout / retry / failover dispatch.

    Same protocol as the two-sided approx path of :func:`master_program`,
    but every (query, partition) task carries a deadline derived from the
    cost model.  A task that misses its deadline is re-dispatched — to the
    same core (retry) or, when the workgroup has live alternatives, to the
    next replica (failover) — with exponential backoff, up to
    ``policy.max_attempts`` sends.  A core that times out
    ``policy.suspect_after`` times is suspected dead and excluded from
    further dispatch.  Tasks with no live replica left are abandoned and
    surface as per-query ``completeness`` < 1 in the report; the batch
    never hangs on a crashed rank.  Late answers from abandoned tasks are
    still merged (they only improve recall); answers for already-completed
    tasks — late retries or link-level duplicates — are dropped by
    (query, partition) dedup.  Returns a :class:`MasterReport`.

    Replica selection composes with fault tolerance: suspicion and the
    per-task tried set shrink the candidate pool through ``exclude``, and
    the ``selector`` policy ranks the remaining live replicas — so a
    least-loaded run keeps balancing across whatever survives.
    """
    report = MasterReport(config.n_cores)
    if selector is None:
        selector = PrimarySelector(workgroups)
    tracker = selector.tracker
    k = config.k
    n_q = len(queries)
    n_threads_total = config.n_nodes * config.threads_per_node
    batch_start = ctx.now

    # per-attempt deadline: the modeled service time scaled by a generous
    # multiplier, plus a round trip — loose enough that fault-free runs
    # never trip it, tight enough that a crashed rank is detected quickly
    rtt = 2.0 * (ctx.network.inter_latency + ctx.network.sw_overhead)
    if policy.task_timeout is not None:
        base_timeout = policy.task_timeout
    else:
        base_timeout = max(policy.timeout_multiplier * (task_seconds_hint + rtt), policy.min_timeout)

    # -- route every query up front (approx routing) -------------------------
    parts_per_query: list[list[int]] = []
    for qid in range(n_q):
        with ctx.span("route"):
            before = router.n_dist_evals
            parts = router.route_approx(queries[qid], config.n_probe)
            evals = router.n_dist_evals - before
            report.route_dist_evals += evals
            yield from ctx.compute(ctx.cost.distance_cost(evals, queries.shape[1]), kind="route")
        report.fanouts.append(len(parts))
        parts_per_query.append([int(p) for p in parts])

    unresolved = np.array([len(p) for p in parts_per_query], dtype=np.int64)
    latencies = np.full(n_q, np.nan)
    pending: dict[tuple[int, int], dict] = {}
    completed: set[tuple[int, int]] = set()
    failed: set[tuple[int, int]] = set()
    dead: set[int] = set()
    timeouts_by_core = np.zeros(config.n_cores, dtype=np.int64)

    def resolve(query_id: int) -> None:
        # a query is resolved when every routed task completed OR was
        # abandoned — its latency is final even if degraded
        unresolved[query_id] -= 1
        if unresolved[query_id] == 0:
            latencies[query_id] = ctx.now - batch_start

    def send_task(query_id: int, partition_id: int, core: int):
        tracker.record_dispatch(core, ctx.now)
        report.dispatch_counts[core] += 1
        report.tasks_sent += 1
        report.batches_sent += 1
        node = config.node_of_core(core)
        yield from ctx.send_to_mailbox(
            node_mailboxes[node],
            make_task(query_id, partition_id, queries[query_id]),
            source=ctx.pid,
            tag=TAG_TASK,
            nbytes=task_nbytes(queries[query_id]),
            same_node=False,
        )

    def abandon(key: tuple[int, int]) -> None:
        del pending[key]
        failed.add(key)
        report.failed_tasks += 1
        resolve(key[0])

    def handle_timeout(key: tuple[int, int], struck: set[int]):
        query_id, partition_id = key
        state = pending[key]
        core = state["core"]
        # many tasks expiring together on one core are ONE piece of evidence
        # (a single lost message batch), not many — strike each core at most
        # once per expiry sweep, or a burst would kill the whole cluster
        if core not in struck:
            struck.add(core)
            timeouts_by_core[core] += 1
            if core not in dead and timeouts_by_core[core] >= policy.suspect_after:
                dead.add(core)
                report.suspected_dead_cores.append(int(core))
        if state["attempts"] >= policy.max_attempts:
            abandon(key)
            return
        # prefer an untried live replica, then any live one, then anything:
        # suspicion steers dispatch away from dead cores but never forfeits a
        # task's remaining attempts (suspicion can be wrong — lossy links)
        nxt = selector.pick(partition_id, ctx.now, exclude=dead | state["tried"])
        if nxt is None:
            nxt = selector.pick(partition_id, ctx.now, exclude=dead)
        if nxt is None:
            nxt = selector.pick(partition_id, ctx.now, exclude=state["tried"])
        if nxt is None:
            nxt = selector.pick(partition_id, ctx.now)
        state["attempts"] += 1
        state["tried"].add(nxt)
        span = "retry" if nxt == state["core"] else "failover"
        if nxt == state["core"]:
            report.retries += 1
        else:
            report.failovers += 1
        state["core"] = nxt
        with ctx.span(span):
            yield from send_task(query_id, partition_id, nxt)
        state["deadline"] = ctx.now + base_timeout * policy.backoff ** (state["attempts"] - 1)

    # -- initial dispatch wave -----------------------------------------------
    for qid in range(n_q):
        for pid_part in parts_per_query[qid]:
            core = selector.pick(pid_part, ctx.now, exclude=dead)
            if core is None:
                failed.add((qid, pid_part))
                report.failed_tasks += 1
                resolve(qid)
                continue
            state = {"core": core, "attempts": 1, "tried": {core}, "deadline": 0.0}
            pending[(qid, pid_part)] = state
            with ctx.span("dispatch"):
                yield from send_task(qid, pid_part, core)
            state["deadline"] = ctx.now + base_timeout

    # -- collect with deadlines ----------------------------------------------
    recv_req = None
    while pending:
        if recv_req is None:
            recv_req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_RESULT)
        budget = max(min(s["deadline"] for s in pending.values()) - ctx.now, 0.0)
        fired, payload = yield from ctx.wait_any([recv_req], timeout=budget)
        if fired == WAIT_TIMED_OUT:
            now = ctx.now
            struck: set[int] = set()
            for key in [kk for kk, s in pending.items() if s["deadline"] <= now]:
                yield from handle_timeout(key, struck)
            continue
        recv_req = None
        _, qid, pid_part, d, ids = payload
        key = (int(qid), int(pid_part))
        if key in completed:
            report.duplicate_results += 1
            continue
        with ctx.span("reduce"):
            yield from ctx.compute(ctx.cost.compare_cost(len(d) + k), kind="merge")
            results.update(qid, d, ids)
        completed.add(key)
        if key in failed:
            failed.discard(key)  # late answer recovered an abandoned task
        elif key in pending:
            # the answering core is evidence of life: reset its suspicion so
            # transient losses (lossy links, bursts of queueing) cannot snowball
            # into the whole workgroup being declared dead
            core = pending[key]["core"]
            timeouts_by_core[core] = 0
            dead.discard(core)
            del pending[key]
            resolve(key[0])

    if recv_req is not None:
        yield from ctx.cancel(recv_req)

    # -- bounded shutdown drain ----------------------------------------------
    # Rebroadcast "End of Queries" up to drain_rounds times, collecting
    # thread-done notifications under a timeout each round.  Threads on
    # crashed nodes never answer; giving up after the rounds keeps shutdown
    # bounded (the remaining messages die with the simulation).
    drain_timeout = (
        policy.drain_timeout if policy.drain_timeout is not None else max(base_timeout, 4.0 * rtt)
    )
    got = 0
    with ctx.span("drain"):
        for _round in range(policy.drain_rounds):
            for node in range(config.n_nodes):
                yield from ctx.send_to_mailbox(
                    node_mailboxes[node],
                    ("end",),
                    source=ctx.pid,
                    tag=TAG_END,
                    nbytes=8,
                    same_node=False,
                )
            while got < n_threads_total:
                req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_THREAD_DONE)
                fired, _tdone = yield from ctx.wait_any([req], timeout=drain_timeout)
                if fired == WAIT_TIMED_OUT:
                    yield from ctx.cancel(req)
                    break
                got += 1
            if got >= n_threads_total:
                break

    n_parts = np.array([len(p) for p in parts_per_query], dtype=np.float64)
    done_counts = np.zeros(n_q, dtype=np.float64)
    for qid, _pid_part in completed:
        done_counts[qid] += 1.0
    report.completeness = np.where(n_parts > 0, done_counts / np.maximum(n_parts, 1.0), 1.0)
    report.query_latencies = latencies
    report.queue_depth_timeline = tracker.timeline()
    return report
