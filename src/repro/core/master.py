"""Master-side search routine (paper Algorithms 3 and 5).

The two master proc bodies are thin entry points over the composable
:mod:`repro.core.coordinator` package — :class:`~repro.core.coordinator.
pipeline.CoordinatorPipeline` for the fault-free modes,
:class:`~repro.core.coordinator.harness.FaultHarness` for timeout /
retry / failover dispatch.  Routing, flow-controlled dispatch, result
merging, and the drain protocol live there, shared by both (see
docs/pipelining.md for the coordinator architecture and the credit
window's degeneracy-to-eager guarantee at ``dispatch_window = 0``).

:class:`MasterReport` is re-exported for compatibility (the
multiple-owner coordinator and the report builder consume it).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SystemConfig
from repro.core.coordinator import CoordinatorPipeline, FaultHarness, MasterReport
from repro.core.replication import Workgroups
from repro.core.results import GlobalResults
from repro.faults.spec import FaultPolicy
from repro.loadbalance import ReplicaSelector
from repro.simmpi.engine import Context, Mailbox
from repro.vptree.router import PartitionRouter

__all__ = ["master_program", "fault_tolerant_master_program", "MasterReport"]


def master_program(
    ctx: Context,
    config: SystemConfig,
    router: PartitionRouter,
    workgroups: Workgroups,
    queries: np.ndarray,
    results: GlobalResults,
    node_mailboxes: list[Mailbox],
    window,
    selector: ReplicaSelector | None = None,
):
    """The master proc body.  Returns a :class:`MasterReport`.

    ``window`` is the one-sided RMA results window (None = two-sided).
    ``selector`` picks the replica core of each task's target partition
    (see :mod:`repro.loadbalance`); None falls back to
    :class:`~repro.loadbalance.PrimarySelector`, the workgroup circular
    pointer every golden trace was recorded with.
    """
    pipeline = CoordinatorPipeline(
        config, router, workgroups, queries, results, node_mailboxes, window,
        selector=selector,
    )
    return (yield from pipeline.run(ctx))


def fault_tolerant_master_program(
    ctx: Context,
    config: SystemConfig,
    router: PartitionRouter,
    workgroups: Workgroups,
    queries: np.ndarray,
    results: GlobalResults,
    node_mailboxes: list[Mailbox],
    policy: FaultPolicy,
    task_seconds_hint: float,
    selector: ReplicaSelector | None = None,
):
    """Master proc body with timeout / retry / failover dispatch.

    Returns a :class:`MasterReport`; see
    :class:`~repro.core.coordinator.harness.FaultHarness` for the
    dispatch semantics (deadlines, suspicion, dedup, bounded drain) and
    their interplay with flow control and replica selection.
    """
    harness = FaultHarness(
        config, router, workgroups, queries, results, node_mailboxes,
        policy, task_seconds_hint, selector=selector,
    )
    return (yield from harness.run(ctx))
