"""The fault-free coordinator pipeline (paper Algorithms 3 and 5).

Route → flow-controlled dispatch → streaming merge → drain, composed
from the package's pieces.  Covers all fault-free mode combinations:

- approx routing (fixed ``n_probe``, per-partition dispatch batching)
  and adaptive routing (pilot probe + exact-ball second wave),
- two-sided results (point-to-point merge at the master) and one-sided
  results (worker ``Get_accumulate`` into the master's RMA window).

With ``dispatch_window = 0`` the run is bit-identical to the historical
eager master; with a finite window, dispatch blocks on worker credits
and consumes in-flight results while blocked, which bounds the queue
the cluster ever holds and overlaps merging with dispatch.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.config import SystemConfig
from repro.core.coordinator.merger import ResultMerger
from repro.core.coordinator.report import MasterReport
from repro.core.coordinator.router import Router
from repro.core.coordinator.window import DispatchWindow
from repro.core.messages import TAG_END, TAG_THREAD_DONE
from repro.core.replication import Workgroups
from repro.core.results import GlobalResults
from repro.loadbalance import PrimarySelector, ReplicaSelector
from repro.simmpi.engine import Context, Mailbox

__all__ = ["CoordinatorPipeline"]


class CoordinatorPipeline:
    """One batch search's coordinator, any fault-free mode combination."""

    def __init__(
        self,
        config: SystemConfig,
        router,
        workgroups: Workgroups,
        queries: np.ndarray,
        results: GlobalResults,
        node_mailboxes: list[Mailbox],
        rma_window,
        selector: ReplicaSelector | None = None,
        metrics=None,
        fpayload: dict | None = None,
    ) -> None:
        self.config = config
        self.queries = queries
        self.node_mailboxes = node_mailboxes
        self.rma_window = rma_window
        self.report = MasterReport(config.n_cores, registry=metrics)
        if selector is None:
            selector = PrimarySelector(workgroups)
        self.selector = selector
        self.tracker = selector.tracker
        self.router = Router(router, self.report, int(queries.shape[1]))
        self.window = DispatchWindow(
            config, selector, self.report, node_mailboxes, fpayload=fpayload
        )
        self.merger = ResultMerger(
            config, results, self.report, one_sided=rma_window is not None
        )
        #: (query_id, dists) completions awaiting adaptive second waves
        self._events: deque = deque()
        self._pending_pilot: dict[int, int] = {}

    def run(self, ctx: Context):
        """The coordinator proc body.  Returns a :class:`MasterReport`."""
        config, report = self.config, self.report
        window, merger = self.window, self.merger
        queries = self.queries
        one_sided = self.rma_window is not None
        n_threads_total = config.n_nodes * config.threads_per_node
        batch_start = ctx.now
        outstanding = np.zeros(len(queries), dtype=np.int64)
        latencies = np.full(len(queries), np.nan)

        def note_result(query_id: int) -> None:
            outstanding[query_id] -= 1
            if outstanding[query_id] == 0:
                latencies[query_id] = ctx.now - batch_start
                ctx.trace_instant("complete", query_id=int(query_id))

        def note_dispatch(query_ids) -> None:
            for qid in query_ids:
                outstanding[qid] += 1

        window.on_dispatch = note_dispatch
        if not one_sided:
            merger.note_result = note_result

        if config.routing == "approx":
            yield from self._approx_dispatch(ctx)
        else:  # adaptive, two-sided (collects its own results inline)
            yield from self._adaptive(ctx)

        # End of Queries to every worker node (Alg. 3 lines 12-14)
        with ctx.span("drain"):
            for node in range(config.n_nodes):
                yield from ctx.send_to_mailbox(
                    self.node_mailboxes[node],
                    ("end",),
                    source=ctx.pid,
                    tag=TAG_END,
                    nbytes=8,
                    same_node=False,
                )

        # collection loop (Alg. 3 lines 15-18): whatever is still in
        # flight — everything at W = 0, the uncollected tail at finite W.
        # One-sided runs drain only their credit acks (W > 0); at W = 0
        # nothing passes back through the master.
        if not one_sided or window.credits is not None:
            while merger.tasks_completed < report.tasks_sent:
                yield from merger.consume_one(ctx, window)

        # thread completion notifications: in one-sided mode this is what
        # tells the master every Get_accumulate has landed; in two-sided
        # mode it simply drains the exit messages
        with ctx.span("drain"):
            for _ in range(n_threads_total):
                req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_THREAD_DONE)
                yield from ctx.wait(req)

        if not one_sided:
            report.query_latencies = latencies
        report.queue_depth_timeline = self.tracker.timeline()
        report.max_outstanding_tasks = window.max_outstanding
        report.credits_leaked = window.outstanding
        return report

    # -- approx: route everything, batch per partition, collect after -------

    def _approx_dispatch(self, ctx: Context):
        config, window, merger = self.config, self.window, self.merger
        queries = self.queries
        # per-partition dispatch buffers: a partition's batch flushes as
        # soon as it holds batch_size queries, and stragglers flush in
        # partition order after the last query routes
        batch = config.batch_size
        buffers: dict[int, tuple[list[int], list[np.ndarray]]] = {}
        for qid in range(len(queries)):
            q = queries[qid]
            parts = yield from self.router.route_approx(ctx, q, config.n_probe, query_id=qid)
            self.report.fanouts.append(len(parts))
            for pid_part in parts:
                buf = buffers.get(pid_part)
                if buf is None:
                    buf = buffers[pid_part] = ([], [])
                buf[0].append(qid)
                buf[1].append(q)
                if len(buf[0]) >= batch:
                    del buffers[pid_part]
                    yield from window.dispatch_batch(ctx, merger, buf[0], pid_part, buf[1])
        for pid_part in sorted(buffers):
            qids_b, qvecs_b = buffers[pid_part]
            yield from window.dispatch_batch(ctx, merger, qids_b, pid_part, qvecs_b)
        buffers.clear()

    # -- adaptive: pilot wave, then per-pilot exact second waves -------------

    def _adaptive(self, ctx: Context):
        window, merger = self.window, self.merger
        queries = self.queries
        merger.on_complete = lambda qid, _pid, d: self._events.append((qid, d))
        for qid in range(len(queries)):
            q = queries[qid]
            parts = yield from self.router.route_approx(ctx, q, 1, query_id=qid)
            self._pending_pilot[qid] = parts[0]
            yield from window.dispatch(ctx, merger, qid, parts[0], q)
            # completions consumed while blocked on credits trigger their
            # second waves right away (empty at W = 0: nothing is consumed
            # until dispatch finishes)
            while self._events:
                eqid, d = self._events.popleft()
                yield from self._second_wave(ctx, eqid, d)
        # every result triggers a merge; a *pilot* result additionally
        # triggers the second-wave exact route with its k-th distance
        while self._events or merger.tasks_completed < self.report.tasks_sent:
            if self._events:
                eqid, d = self._events.popleft()
                yield from self._second_wave(ctx, eqid, d)
                continue
            yield from merger.consume_one(ctx, window)

    def _second_wave(self, ctx: Context, qid: int, d):
        pilot = self._pending_pilot.pop(qid, None)
        if pilot is None:
            return
        config, k = self.config, self.config.k
        tau = float(d[k - 1]) if len(d) >= k else float("inf")
        if np.isfinite(tau):
            parts = yield from self.router.route_exact(
                ctx, self.queries[qid], tau, drop=pilot, query_id=qid
            )
        else:
            parts = [p for p in range(config.n_cores) if p != pilot]
        self.report.fanouts.append(len(parts) + 1)
        for pid_part in parts:
            yield from self.window.dispatch(ctx, self.merger, qid, pid_part, self.queries[qid])
