"""Routing with cost accounting, shared by every coordinator path.

The coordinator routes each query through the VP-tree skeleton (or any
object exposing ``route_approx`` / ``route_exact`` / ``n_dist_evals`` —
the KD baseline router qualifies) and must charge the routing distance
evaluations to the simulation clock under a ``route`` span.  Both master
variants used to inline this triple (span, route, compute) — it lives
here once now.
"""

from __future__ import annotations

import numpy as np

from repro.core.coordinator.report import MasterReport
from repro.simmpi.engine import Context

__all__ = ["Router"]


class Router:
    """VP-tree routing plus route-cost accounting for one batch.

    Wraps the partition router and the batch's :class:`MasterReport`:
    every call runs under a ``route`` span, charges
    ``cost.distance_cost`` for exactly the distance evaluations the
    inner router performed, and accumulates ``report.route_dist_evals``
    — the same yield sequence the pre-refactor masters produced.
    """

    def __init__(self, inner, report: MasterReport, dim: int) -> None:
        self.inner = inner
        self.report = report
        self.dim = dim

    def _cost(self, ctx: Context, evals_before: int) -> float:
        evals = self.inner.n_dist_evals - evals_before
        self.report.route_dist_evals += evals
        return ctx.cost.distance_cost(evals, self.dim)

    def route_approx(self, ctx: Context, q: np.ndarray, n_probe: int, query_id=None):
        """Best-first ``n_probe`` partitions for ``q`` (Alg. 3 line 4)."""
        with ctx.span("route", query_id=query_id):
            before = self.inner.n_dist_evals
            parts = self.inner.route_approx(q, n_probe)
            yield from ctx.compute(self._cost(ctx, before), kind="route")
        return parts

    def route_exact(self, ctx: Context, q: np.ndarray, tau: float, drop=None, query_id=None):
        """Exact ball route for the adaptive second wave.

        ``drop`` removes the already-probed pilot partition from the
        returned set (the distance evaluations are still charged — the
        router visited them either way).
        """
        with ctx.span("route", query_id=query_id):
            before = self.inner.n_dist_evals
            parts = self.inner.route_exact(q, tau)
            if drop is not None:
                parts = [p for p in parts if p != drop]
            yield from ctx.compute(self._cost(ctx, before), kind="route")
        return parts
