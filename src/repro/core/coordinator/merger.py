"""Streaming result consumption behind one interface.

The coordinator's receive side has three shapes — two-sided single
results, two-sided batch results, and (with flow control on) one-sided
credit acks — and two consumers: the plain pipeline's collect loops and
the :class:`~repro.core.coordinator.window.DispatchWindow`'s blocked
dispatch, which *streams* results while waiting for a credit so merging
overlaps in-flight work.  :meth:`ResultMerger.consume_one` is the one
message-at-a-time entry both use; the fault harness reuses the
lower-level :meth:`merge_payload` (its receive is a deadline-bounded
``wait_any``, not a plain wait).
"""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.core.coordinator.report import MasterReport
from repro.core.messages import TAG_CREDIT, TAG_RESULT
from repro.core.results import GlobalResults
from repro.simmpi.engine import Context

__all__ = ["ResultMerger"]


class ResultMerger:
    """Merge worker answers into :class:`GlobalResults`, one message at
    a time, releasing dispatch credits as tasks settle.

    Order independence of the merge (each (query, partition) pair is
    merged at most once, and per-query merges commute — see
    ``GlobalResults.combine``) is what lets a finite window consume
    results *during* dispatch without changing D/I.

    ``note_result`` observes each settled two-sided row (per-query
    latency accounting); ``on_complete(qid, pid, d)`` feeds the adaptive
    path's second-wave trigger.
    """

    def __init__(
        self,
        config: SystemConfig,
        results: GlobalResults,
        report: MasterReport,
        one_sided: bool,
    ) -> None:
        self.config = config
        self.results = results
        self.report = report
        self.one_sided = one_sided
        #: rows settled at this coordinator (results merged, or one-sided
        #: credit acks consumed); the collect loops run it up to tasks_sent
        self.tasks_completed = 0
        self.note_result = None
        self.on_complete = None

    def merge_payload(self, ctx: Context, payload):
        """Merge one result/bresult payload; returns ``(rows, pid)`` with
        ``rows`` a list of settled ``(query_id, dists)`` pairs.

        Charges one ``compare_cost`` merge per row — the caller wraps
        this in its own ``reduce`` span.
        """
        k = self.config.k
        if payload[0] == "bresult":
            _, qids_b, pid_part, ds, idss = payload
            rows = []
            for qid, d, ids in zip(qids_b, ds, idss):
                yield from ctx.compute(ctx.cost.compare_cost(len(d) + k), kind="merge")
                self.results.update(qid, d, ids)
                rows.append((int(qid), d))
            return rows, int(pid_part)
        _, qid, pid_part, d, ids = payload
        yield from ctx.compute(ctx.cost.compare_cost(len(d) + k), kind="merge")
        self.results.update(qid, d, ids)
        return [(int(qid), d)], int(pid_part)

    def settle_credit(self, payload, window, ctx: Context | None = None) -> None:
        """Settle one credit-ack payload: count the tasks done, return
        their dispatch credits.  Pure bookkeeping — charges no time."""
        _, qids_b, pid_part = payload
        for qid in qids_b:
            self.tasks_completed += 1
            window.release((int(qid), int(pid_part)))
            if ctx is not None and ctx.trace_active:
                ctx.trace_instant(
                    "task_settle", query_id=int(qid), partition=int(pid_part)
                )

    def finish_rows(self, rows, pid_part, window, ctx: Context | None = None) -> None:
        """Settle already-merged rows: credits back, completion hooks.
        Pure bookkeeping — charges no time."""
        trace = ctx is not None and ctx.trace_active
        for qid, d in rows:
            self.tasks_completed += 1
            window.release((qid, pid_part))
            if trace:
                ctx.trace_instant("task_settle", query_id=int(qid), partition=int(pid_part))
            if self.note_result is not None:
                self.note_result(qid)
            if self.on_complete is not None:
                self.on_complete(qid, pid_part, d)

    def consume_one(self, ctx: Context, window):
        """Receive and settle one in-flight message, releasing credits.

        Two-sided: one result message (possibly a whole batch row set).
        One-sided: one credit ack — the data already landed in the RMA
        window, only the flow-control bookkeeping passes through the
        coordinator.
        """
        if self.one_sided:
            with ctx.span("reduce"):
                req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_CREDIT)
                payload = yield from ctx.wait(req)
            self.settle_credit(payload, window, ctx=ctx)
            return
        with ctx.span("reduce"):
            req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_RESULT)
            payload = yield from ctx.wait(req)
            rows, pid_part = yield from self.merge_payload(ctx, payload)
        self.finish_rows(rows, pid_part, window, ctx=ctx)
