"""The per-coordinator measurement record.

One :class:`MasterReport` per coordinator proc (the master, or each
owner in the multiple-owner mode); the
:class:`~repro.runtime.report.ReportBuilder` sums them into the public
:class:`~repro.runtime.report.SearchReport`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MasterReport"]


class MasterReport:
    """What the coordinator learned during one batch (consumed by SearchReport)."""

    def __init__(self, n_cores: int) -> None:
        self.dispatch_counts = np.zeros(n_cores, dtype=np.int64)
        self.tasks_sent = 0
        #: task *messages* sent; equals ``tasks_sent`` at batch_size 1,
        #: shrinks toward ``tasks_sent / batch_size`` as batching kicks in
        self.batches_sent = 0
        self.route_dist_evals = 0
        self.fanouts: list[int] = []
        #: per-query completion latency (virtual s from batch start to the
        #: query's last result landing at the master); two-sided mode only —
        #: in one-sided mode results bypass the master, so per-query
        #: completion is unobservable there (None)
        self.query_latencies: np.ndarray | None = None
        # -- fault-tolerance accounting (zero / None on the plain paths) --
        #: re-dispatches to the same core after a timeout
        self.retries = 0
        #: re-dispatches to a different replica after a timeout
        self.failovers = 0
        #: tasks abandoned with no live replica / attempts exhausted
        self.failed_tasks = 0
        #: late or duplicated results dropped by (query, partition) dedup
        self.duplicate_results = 0
        #: per-query fraction of routed partitions that answered (1.0 =
        #: complete); None on the plain paths, where completion is all-or-hang
        self.completeness: np.ndarray | None = None
        #: cores the dispatcher declared dead after repeated timeouts
        self.suspected_dead_cores: list[int] = []
        #: (virtual time, total modeled queued tasks) samples from the
        #: selector's LoadTracker (None without one); capped/downsampled —
        #: see LoadTracker.max_timeline_samples
        self.queue_depth_timeline: np.ndarray | None = None
        # -- pipelined dispatch accounting (zeros at dispatch_window == 0) --
        #: virtual seconds dispatch spent blocked waiting for credits
        self.credit_stall_seconds = 0.0
        #: peak tasks simultaneously in flight under credit accounting
        self.max_outstanding_tasks = 0
        #: credits still charged when the batch ended — a leak detector
        #: (failover must reclaim a crashed worker's credits), always 0 on
        #: a correct run
        self.credits_leaked = 0
        # -- open-loop serving accounting (zero / None in closed-loop runs) --
        #: queries the arrival process offered to the ingress
        self.offered_queries = 0
        #: queries that entered service (includes cache hits)
        self.admitted_queries = 0
        #: queued queries dropped by the shed-oldest overload policy
        self.shed_queries = 0
        #: arrivals refused outright by the reject overload policy
        self.rejected_queries = 0
        #: peak ingress-queue occupancy
        self.max_ingress_depth = 0
        #: result-cache counters (zero when the cache is off)
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stale = 0
        self.cache_evictions = 0
        #: per-query serving timestamps on the virtual clock (None in
        #: closed-loop runs); NaN where a query was shed/rejected
        self.arrival_times: np.ndarray | None = None
        self.dispatch_times: np.ndarray | None = None
        self.complete_times: np.ndarray | None = None
