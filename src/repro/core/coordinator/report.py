"""The per-coordinator measurement record.

One :class:`MasterReport` per coordinator proc (the master, or each
owner in the multiple-owner mode); the
:class:`~repro.runtime.report.ReportBuilder` sums them into the public
:class:`~repro.runtime.report.SearchReport`.

Every scalar counter lives in a :class:`~repro.obs.metrics.MetricsRegistry`
rather than as a plain attribute: the attribute accesses below are
properties over named registry instruments, so existing
``report.tasks_sent += 1`` call sites keep working while the same counts
surface in the unified metrics dump.  Handing several components the same
registry (the master-worker strategy shares one per run) makes e.g. the
admission queue's ``admission.admitted`` and this report's
``admitted_queries`` literally the same counter.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import MetricsRegistry

__all__ = ["MasterReport"]


def _reg_counter(metric: str):
    """Property reading/writing a named registry counter (so ``+=`` works)."""

    def fget(self):
        return self.registry.counter(metric).value

    def fset(self, value):
        self.registry.counter(metric).value = value

    return property(fget, fset)


def _reg_gauge(metric: str):
    def fget(self):
        return self.registry.gauge(metric).value

    def fset(self, value):
        self.registry.gauge(metric).value = value

    return property(fget, fset)


class MasterReport:
    """What the coordinator learned during one batch (consumed by SearchReport)."""

    def __init__(self, n_cores: int, registry: MetricsRegistry | None = None) -> None:
        #: the metrics registry backing every scalar counter below; a
        #: private one unless the caller shares the run-wide registry
        self.registry = registry if registry is not None else MetricsRegistry()
        self.dispatch_counts = np.zeros(n_cores, dtype=np.int64)
        self.fanouts: list[int] = []
        #: per-query completion latency (virtual s from batch start to the
        #: query's last result landing at the master); two-sided mode only —
        #: in one-sided mode results bypass the master, so per-query
        #: completion is unobservable there (None)
        self.query_latencies: np.ndarray | None = None
        #: per-query fraction of routed partitions that answered (1.0 =
        #: complete); None on the plain paths, where completion is all-or-hang
        self.completeness: np.ndarray | None = None
        #: cores the dispatcher declared dead after repeated timeouts
        self.suspected_dead_cores: list[int] = []
        #: (virtual time, total modeled queued tasks) samples from the
        #: selector's LoadTracker (None without one); capped/downsampled —
        #: see LoadTracker.max_timeline_samples
        self.queue_depth_timeline: np.ndarray | None = None
        #: per-query serving timestamps on the virtual clock (None in
        #: closed-loop runs); NaN where a query was shed/rejected
        self.arrival_times: np.ndarray | None = None
        self.dispatch_times: np.ndarray | None = None
        self.complete_times: np.ndarray | None = None

    # -- dispatch/routing counters (registry-backed) ----------------------
    tasks_sent = _reg_counter("coordinator.tasks_sent")
    #: task *messages* sent; equals ``tasks_sent`` at batch_size 1,
    #: shrinks toward ``tasks_sent / batch_size`` as batching kicks in
    batches_sent = _reg_counter("coordinator.batches_sent")
    route_dist_evals = _reg_counter("router.dist_evals")
    # -- fault-tolerance accounting (zero on the plain paths) -------------
    #: re-dispatches to the same core after a timeout
    retries = _reg_counter("faults.retries")
    #: re-dispatches to a different replica after a timeout
    failovers = _reg_counter("faults.failovers")
    #: tasks abandoned with no live replica / attempts exhausted
    failed_tasks = _reg_counter("faults.failed_tasks")
    #: late or duplicated results dropped by (query, partition) dedup
    duplicate_results = _reg_counter("faults.duplicate_results")
    # -- pipelined dispatch accounting (zeros at dispatch_window == 0) ----
    #: virtual seconds dispatch spent blocked waiting for credits
    credit_stall_seconds = _reg_counter("dispatch.credit_stall_seconds")
    #: peak tasks simultaneously in flight under credit accounting
    max_outstanding_tasks = _reg_gauge("dispatch.max_outstanding_tasks")
    #: credits still charged when the batch ended — a leak detector
    #: (failover must reclaim a crashed worker's credits), always 0 on
    #: a correct run
    credits_leaked = _reg_gauge("dispatch.credits_leaked")
    # -- open-loop serving accounting (zeros in closed-loop runs) ---------
    #: queries the arrival process offered to the ingress
    offered_queries = _reg_counter("serving.offered")
    #: queries that entered service (includes cache hits); same instrument
    #: as AdmissionQueue.admitted when the registry is shared
    admitted_queries = _reg_counter("admission.admitted")
    #: queued queries dropped by the shed-oldest overload policy
    shed_queries = _reg_counter("admission.shed")
    #: arrivals refused outright by the reject overload policy
    rejected_queries = _reg_counter("admission.rejected")
    #: peak ingress-queue occupancy
    max_ingress_depth = _reg_gauge("admission.max_depth")
    #: result-cache counters (zero when the cache is off); same instruments
    #: as ResultCache's when the registry is shared
    cache_hits = _reg_counter("cache.hits")
    cache_misses = _reg_counter("cache.misses")
    cache_stale = _reg_counter("cache.stale")
    cache_evictions = _reg_counter("cache.evictions")
