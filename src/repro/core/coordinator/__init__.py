"""The coordinator core: composable master-side dispatch machinery.

The paper's master (Algorithms 3 and 5) and its fault-tolerant variant
used to live as two ~250-line near-duplicate proc bodies in
``repro.core.master``.  This package splits the shared logic into four
pieces that compose instead of forking:

- :class:`Router` — VP-tree routing plus route-cost accounting,
- :class:`DispatchWindow` — credit-based flow control: at most
  ``dispatch_window`` tasks in flight per core, credits returned as
  results (or one-sided credit acks) come home; ``dispatch_window=0``
  degenerates to the eager send-everything dispatcher bit for bit,
- :class:`ResultMerger` — the two-sided merge and one-sided RMA paths
  behind one streaming consume-one-message interface,
- :class:`CoordinatorPipeline` — the fault-free route → dispatch →
  merge → drain composition (both routing modes, both comm modes),
- :class:`FaultHarness` — the timeout/retry/suspicion decoration of the
  same pipeline pieces (never a fork of them).

See docs/pipelining.md for the window/credit model and the
degeneracy-to-eager guarantee the golden tests pin.
"""

from repro.core.coordinator.harness import FaultHarness
from repro.core.coordinator.merger import ResultMerger
from repro.core.coordinator.pipeline import CoordinatorPipeline
from repro.core.coordinator.report import MasterReport
from repro.core.coordinator.router import Router
from repro.core.coordinator.window import DispatchWindow

__all__ = [
    "Router",
    "DispatchWindow",
    "ResultMerger",
    "CoordinatorPipeline",
    "FaultHarness",
    "MasterReport",
]
