"""Fault-tolerant decoration of the coordinator pipeline.

Timeout / retry / failover / suspicion dispatch (the PR-2 semantics)
implemented *over* the same coordinator pieces the plain pipeline uses
— :class:`Router` for routing, :class:`DispatchWindow.send_task` for
every send (and so for every credit charge), :class:`ResultMerger.
merge_payload` for every merge — rather than as a fork of them.  The
harness owns only what is genuinely fault-specific: per-task deadlines,
the expiry sweep, the retry/failover replica chain, suspicion, dedup,
and the bounded shutdown drain.

Flow control interplay (``dispatch_window > 0``):

- a new task whose live replicas are all out of credits is *deferred*
  (the collect loop re-tries it as credits free) rather than blocking —
  the collect loop must keep consuming results to detect timeouts;
- a timed-out attempt's credit is reclaimed before re-dispatch, so a
  crashed worker cannot pin its workgroup's window (the leak the
  ``credits_leaked`` counter guards);
- the failover chain prefers replicas with spare credits but will
  over-commit a window rather than abandon a task that still has
  attempts left — fault recovery outranks flow control.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SystemConfig
from repro.core.coordinator.merger import ResultMerger
from repro.core.coordinator.report import MasterReport
from repro.core.coordinator.router import Router
from repro.core.coordinator.window import DispatchWindow
from repro.core.messages import TAG_ARRIVE, TAG_END, TAG_RESULT, TAG_THREAD_DONE
from repro.core.replication import Workgroups
from repro.core.results import GlobalResults
from repro.faults.spec import FaultPolicy
from repro.loadbalance import (
    PrimarySelector,
    ReplicaSelector,
    derive_drain_timeout,
    derive_task_timeout,
)
from repro.simmpi.engine import WAIT_TIMED_OUT, Context, Mailbox
from repro.simmpi.errors import SimError

__all__ = ["FaultHarness"]


class _ExcludeUnion:
    """Lazy union of two ``exclude`` views (dead/tried sets + credit block)."""

    __slots__ = ("a", "b")

    def __init__(self, a, b) -> None:
        self.a = a
        self.b = b

    def __contains__(self, core) -> bool:
        return core in self.a or core in self.b


class FaultHarness:
    """One batch search's coordinator with deadline-driven re-dispatch.

    Two-sided, approx-routed, unbatched (config validation enforces all
    three).  Returns a :class:`MasterReport` from :meth:`run`, exactly
    like the plain pipeline.
    """

    def __init__(
        self,
        config: SystemConfig,
        router,
        workgroups: Workgroups,
        queries: np.ndarray,
        results: GlobalResults,
        node_mailboxes: list[Mailbox],
        policy: FaultPolicy,
        task_seconds_hint: float,
        selector: ReplicaSelector | None = None,
        serving=None,
        metrics=None,
        fpayload: dict | None = None,
    ) -> None:
        self.config = config
        self.queries = queries
        self.node_mailboxes = node_mailboxes
        self.policy = policy
        self.task_seconds_hint = task_seconds_hint
        self.report = MasterReport(config.n_cores, registry=metrics)
        if selector is None:
            selector = PrimarySelector(workgroups)
        self.selector = selector
        self.workgroups = selector.workgroups
        self.router = Router(router, self.report, int(queries.shape[1]))
        self.win = DispatchWindow(
            config, selector, self.report, node_mailboxes, fpayload=fpayload
        )
        self.merger = ResultMerger(config, results, self.report, one_sided=False)
        # -- dispatch state ---------------------------------------------------
        self.pending: dict[tuple[int, int], dict] = {}
        self.completed: set[tuple[int, int]] = set()
        self.failed: set[tuple[int, int]] = set()
        self.dead: set[int] = set()
        #: new tasks waiting for a live replica with spare credits
        #: (dispatch_window > 0 only; always empty with flow control off)
        self.deferred: list[tuple[int, int]] = []
        self.timeouts_by_core = np.zeros(config.n_cores, dtype=np.int64)
        self.base_timeout = 0.0  # derived from the live network model in run()
        self._ctx: Context | None = None  # bound by run()
        self._unresolved: np.ndarray | None = None
        self._latencies: np.ndarray | None = None
        self._batch_start = 0.0
        # -- open-loop serving composition (None on the closed-loop path) ----
        #: :class:`~repro.serving.state.ServingState`; when set, queries
        #: arrive over time and :meth:`run_serving` replaces :meth:`run`
        self.serving = serving
        self._parts_per_query: list[list[int]] | None = None
        #: cache key per probed-and-missed query (serving + cache only)
        self._serving_keys: dict[int, bytes] = {}
        #: queries with at least one abandoned task — their (possibly
        #: partial) results must never seed the cache
        self._abandoned_queries: set[int] = set()

    # -- helpers -------------------------------------------------------------

    def _exclude(self, base):
        """``base`` extended with credit-starved cores when flow control
        is on (plain ``base`` — bit-identical behaviour — when off)."""
        if self.win.credits is None:
            return base
        return _ExcludeUnion(base, self.win.blocked(1))

    def _resolve(self, query_id: int) -> None:
        # a query is resolved when every routed task completed OR was
        # abandoned — its latency is final even if degraded
        self._unresolved[query_id] -= 1
        if self._unresolved[query_id] == 0:
            self._latencies[query_id] = self._ctx.now - self._batch_start
            self._ctx.trace_instant("complete", query_id=int(query_id))
            if self.serving is not None:
                self._finish_serving(query_id)

    def _finish_serving(self, query_id: int) -> None:
        """Serving completion: stamp the timeline, maybe seed the cache."""
        state = self.serving
        state.timeline.note_complete(query_id, self._ctx.now)
        key = self._serving_keys.pop(query_id, None)
        if state.cache is None or key is None:
            return
        if query_id in self._abandoned_queries:
            return  # a degraded answer must not be served to future hits
        slot = self.merger.results[query_id]
        if slot is not None:
            d, ids = slot
            state.cache.put(key, (d.copy(), ids.copy()))

    def _abandon(self, key: tuple[int, int]) -> None:
        del self.pending[key]
        self.failed.add(key)
        self.report.failed_tasks += 1
        self._abandoned_queries.add(key[0])
        self.win.release(key)  # an abandoned task must not hold its credit
        self._resolve(key[0])

    def _dispatch_new(self, ctx: Context, query_id: int, partition_id: int):
        """First dispatch of a (query, partition) task, or its deferral."""
        if self.win.credits is not None and not self.win.group_has_credit(
            partition_id, 1, exclude=self.dead
        ):
            if any(
                c not in self.dead
                for c in self.workgroups.cores_for_partition(partition_id)
            ):
                # live replicas exist but their windows are full: park the
                # task; the collect loop re-tries as credits come home
                self.deferred.append((query_id, partition_id))
                return
        core = self.selector.pick(partition_id, ctx.now, exclude=self._exclude(self.dead))
        if core is None:
            self.failed.add((query_id, partition_id))
            self.report.failed_tasks += 1
            self._resolve(query_id)
            return
        state = {"core": core, "attempts": 1, "tried": {core}, "deadline": 0.0}
        self.pending[(query_id, partition_id)] = state
        with ctx.span("dispatch", query_id=int(query_id), partition=int(partition_id)):
            yield from self.win.send_task(
                ctx, query_id, partition_id, core, self.queries[query_id]
            )
        state["deadline"] = ctx.now + self.base_timeout

    def _drain_deferred(self, ctx: Context):
        """Re-try parked tasks; dispatch what credits now allow."""
        still: list[tuple[int, int]] = []
        parked, self.deferred = self.deferred, []
        for query_id, partition_id in parked:
            group = self.workgroups.cores_for_partition(partition_id)
            if all(c in self.dead for c in group):
                self.failed.add((query_id, partition_id))
                self.report.failed_tasks += 1
                self._resolve(query_id)
                continue
            if not self.win.group_has_credit(partition_id, 1, exclude=self.dead):
                still.append((query_id, partition_id))
                continue
            core = self.selector.pick(
                partition_id, ctx.now, exclude=self._exclude(self.dead)
            )
            state = {"core": core, "attempts": 1, "tried": {core}, "deadline": 0.0}
            self.pending[(query_id, partition_id)] = state
            with ctx.span("dispatch", query_id=int(query_id), partition=int(partition_id)):
                yield from self.win.send_task(
                    ctx, query_id, partition_id, core, self.queries[query_id]
                )
            state["deadline"] = ctx.now + self.base_timeout
        self.deferred = still + self.deferred

    def _handle_timeout(self, ctx: Context, key: tuple[int, int], struck: set[int]):
        query_id, partition_id = key
        state = self.pending[key]
        core = state["core"]
        # many tasks expiring together on one core are ONE piece of evidence
        # (a single lost message batch), not many — strike each core at most
        # once per expiry sweep, or a burst would kill the whole cluster
        if core not in struck:
            struck.add(core)
            self.timeouts_by_core[core] += 1
            if (
                core not in self.dead
                and self.timeouts_by_core[core] >= self.policy.suspect_after
            ):
                self.dead.add(core)
                self.report.suspected_dead_cores.append(int(core))
                ctx.trace_instant("suspect_core", core=int(core))
        if state["attempts"] >= self.policy.max_attempts:
            self._abandon(key)
            return
        # reclaim the timed-out attempt's credit before re-picking: the
        # replacement send charges its own, and a crashed core must never
        # pin its workgroup's window (the credits_leaked invariant)
        self.win.release(key)
        # prefer an untried live replica with spare credits, then any live
        # one, then anything: suspicion steers dispatch away from dead cores
        # but never forfeits a task's remaining attempts (suspicion can be
        # wrong — lossy links), and flow control yields to fault recovery
        # (the last two levels may over-commit a window)
        nxt = self.selector.pick(
            partition_id, ctx.now, exclude=self._exclude(self.dead | state["tried"])
        )
        if nxt is None:
            nxt = self.selector.pick(partition_id, ctx.now, exclude=self._exclude(self.dead))
        if nxt is None:
            nxt = self.selector.pick(partition_id, ctx.now, exclude=state["tried"])
        if nxt is None:
            nxt = self.selector.pick(partition_id, ctx.now)
        state["attempts"] += 1
        state["tried"].add(nxt)
        span = "retry" if nxt == state["core"] else "failover"
        if nxt == state["core"]:
            self.report.retries += 1
        else:
            self.report.failovers += 1
        state["core"] = nxt
        with ctx.span(
            span, query_id=int(query_id), partition=int(partition_id), core=int(nxt)
        ):
            yield from self.win.send_task(ctx, query_id, partition_id, nxt, self.queries[query_id])
        state["deadline"] = ctx.now + self.base_timeout * self.policy.backoff ** (
            state["attempts"] - 1
        )

    # -- the proc body -------------------------------------------------------

    def run(self, ctx: Context):
        """The fault-tolerant coordinator proc body.  Returns a
        :class:`MasterReport`.

        Same protocol as the two-sided approx path of the plain
        pipeline, but every task carries a deadline derived from the
        cost model; a task that misses it is re-dispatched — same core
        (retry) or next live replica (failover) — with exponential
        backoff, up to ``policy.max_attempts`` sends.  A core that
        times out ``policy.suspect_after`` times is suspected dead.
        Tasks with no live replica left are abandoned and surface as
        per-query ``completeness`` < 1; the batch never hangs on a
        crashed rank.  Late answers from abandoned tasks are still
        merged (they only improve recall); answers for completed tasks
        are dropped by (query, partition) dedup.
        """
        if self.serving is not None:
            return (yield from self.run_serving(ctx))
        config, report, policy = self.config, self.report, self.policy
        queries = self.queries
        n_q = len(queries)
        n_threads_total = config.n_nodes * config.threads_per_node
        self._ctx = ctx
        self._batch_start = ctx.now

        # per-attempt deadline: the modeled service time scaled by a generous
        # multiplier, plus a round trip — loose enough that fault-free runs
        # never trip it, tight enough that a crashed rank is detected quickly
        self.base_timeout = derive_task_timeout(policy, self.task_seconds_hint, ctx.network)

        # -- route every query up front (approx routing) ---------------------
        parts_per_query: list[list[int]] = []
        for qid in range(n_q):
            parts = yield from self.router.route_approx(
                ctx, queries[qid], config.n_probe, query_id=qid
            )
            report.fanouts.append(len(parts))
            parts_per_query.append([int(p) for p in parts])

        self._unresolved = np.array([len(p) for p in parts_per_query], dtype=np.int64)
        self._latencies = np.full(n_q, np.nan)

        # -- initial dispatch wave -------------------------------------------
        for qid in range(n_q):
            for pid_part in parts_per_query[qid]:
                yield from self._dispatch_new(ctx, qid, pid_part)

        # -- collect with deadlines ------------------------------------------
        recv_req = None
        while self.pending or self.deferred:
            if self.deferred:
                yield from self._drain_deferred(ctx)
                if not self.pending:
                    continue
            if recv_req is None:
                recv_req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_RESULT)
            budget = max(min(s["deadline"] for s in self.pending.values()) - ctx.now, 0.0)
            fired, payload = yield from ctx.wait_any([recv_req], timeout=budget)
            if fired == WAIT_TIMED_OUT:
                now = ctx.now
                struck: set[int] = set()
                for key in [kk for kk, s in self.pending.items() if s["deadline"] <= now]:
                    yield from self._handle_timeout(ctx, key, struck)
                continue
            recv_req = None
            _, qid, pid_part, d, ids = payload
            key = (int(qid), int(pid_part))
            if key in self.completed:
                report.duplicate_results += 1
                continue
            with ctx.span("reduce"):
                yield from self.merger.merge_payload(ctx, payload)
            self.completed.add(key)
            if key in self.failed:
                self.failed.discard(key)  # late answer recovered an abandoned task
            elif key in self.pending:
                # the answering core is evidence of life: reset its suspicion
                # so transient losses (lossy links, bursts of queueing) cannot
                # snowball into the whole workgroup being declared dead
                core = self.pending[key]["core"]
                self.timeouts_by_core[core] = 0
                self.dead.discard(core)
                self.win.release(key)
                del self.pending[key]
                self._resolve(key[0])

        if recv_req is not None:
            yield from ctx.cancel(recv_req)

        # -- bounded shutdown drain ------------------------------------------
        # Rebroadcast "End of Queries" up to drain_rounds times, collecting
        # thread-done notifications under a timeout each round.  Threads on
        # crashed nodes never answer; giving up after the rounds keeps
        # shutdown bounded (the remaining messages die with the simulation).
        drain_timeout = derive_drain_timeout(policy, self.base_timeout, ctx.network)
        got = 0
        with ctx.span("drain"):
            for _round in range(policy.drain_rounds):
                for node in range(config.n_nodes):
                    yield from ctx.send_to_mailbox(
                        self.node_mailboxes[node],
                        ("end",),
                        source=ctx.pid,
                        tag=TAG_END,
                        nbytes=8,
                        same_node=False,
                    )
                while got < n_threads_total:
                    req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_THREAD_DONE)
                    fired, _tdone = yield from ctx.wait_any([req], timeout=drain_timeout)
                    if fired == WAIT_TIMED_OUT:
                        yield from ctx.cancel(req)
                        break
                    got += 1
                if got >= n_threads_total:
                    break

        n_parts = np.array([len(p) for p in parts_per_query], dtype=np.float64)
        done_counts = np.zeros(n_q, dtype=np.float64)
        for qid, _pid_part in self.completed:
            done_counts[qid] += 1.0
        report.completeness = np.where(
            n_parts > 0, done_counts / np.maximum(n_parts, 1.0), 1.0
        )
        report.query_latencies = self._latencies
        report.queue_depth_timeline = self.win.tracker.timeline()
        report.max_outstanding_tasks = self.win.max_outstanding
        report.credits_leaked = self.win.outstanding
        return report

    # -- open-loop serving under faults --------------------------------------

    def _serve_query(self, ctx: Context):
        """Take the admission-queue head into service.

        Cache probe first (a hit completes instantly at the master), then
        route and dispatch every partition through :meth:`_dispatch_new` —
        credit exhaustion defers rather than blocks, exactly as on the
        closed-loop fault path, so the collect loop keeps sweeping
        deadlines while a workgroup's window is full.
        """
        state = self.serving
        qid = state.admission.begin_service()
        state.timeline.note_dispatch(qid, ctx.now)
        ctx.trace_instant("admit", query_id=int(qid))
        q = self.queries[qid]
        cache = state.cache
        if cache is not None:
            key = cache.key(q)
            row = cache.get(key)
            ctx.trace_instant("cache_probe", query_id=int(qid), hit=row is not None)
            if row is not None:
                d, ids = row
                self.merger.results[qid] = (d.copy(), ids.copy())
                state.timeline.note_complete(qid, ctx.now)
                ctx.trace_instant("complete", query_id=int(qid), cached=True)
                self.report.fanouts.append(0)
                return
            self._serving_keys[qid] = key
        parts = yield from self.router.route_approx(
            ctx, q, self.config.n_probe, query_id=int(qid)
        )
        self.report.fanouts.append(len(parts))
        self._parts_per_query[qid] = [int(p) for p in parts]
        self._unresolved[qid] = len(parts)
        for pid_part in self._parts_per_query[qid]:
            yield from self._dispatch_new(ctx, qid, pid_part)

    def run_serving(self, ctx: Context):
        """The fault-tolerant coordinator under open-loop arrivals.

        The closed-loop harness routes the whole batch up front; here a
        query becomes work only when its ``TAG_ARRIVE`` lands and the
        admission queue lets it through.  The collect loop waits on the
        arrival receive *and* the result receive together, under the same
        deadline budget, so timeout sweeps, retries, and failovers work
        unchanged while queries trickle in.  Already-completed receives
        are consumed in virtual-completion order, keeping the
        arrival/result interleaving causal.
        """
        config, report, policy = self.config, self.report, self.policy
        state = self.serving
        adm = state.admission
        n_q = len(self.queries)
        n_threads_total = config.n_nodes * config.threads_per_node
        self._ctx = ctx
        self._batch_start = ctx.now
        self.base_timeout = derive_task_timeout(policy, self.task_seconds_hint, ctx.network)
        self._parts_per_query = [[] for _ in range(n_q)]
        self._unresolved = np.zeros(n_q, dtype=np.int64)
        self._latencies = np.full(n_q, np.nan)

        recv_req = None
        arrive_req = None
        while state.consumed < n_q or adm.queue or self.pending or self.deferred:
            while adm.queue:
                yield from self._serve_query(ctx)
            if self.deferred:
                yield from self._drain_deferred(ctx)
            if arrive_req is None and state.consumed < n_q and adm.accepting():
                arrive_req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_ARRIVE)
            if recv_req is None and self.pending:
                recv_req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_RESULT)
            waits = [r for r in (recv_req, arrive_req) if r is not None]
            if not waits:
                # deferred-only state: every credit is home, so the next
                # sweep of _drain_deferred dispatches or fails each task
                continue
            done = [r for r in waits if r.done and not r.cancelled]
            if done:
                req = min(done, key=lambda r: r.completion_time)
                payload = yield from ctx.wait(req)
                fired_req = req
            else:
                budget = None
                if self.pending:
                    budget = max(
                        min(s["deadline"] for s in self.pending.values()) - ctx.now, 0.0
                    )
                idx, payload = yield from ctx.wait_any(waits, timeout=budget)
                if idx == WAIT_TIMED_OUT:
                    now = ctx.now
                    struck: set[int] = set()
                    for key in [
                        kk for kk, s in self.pending.items() if s["deadline"] <= now
                    ]:
                        yield from self._handle_timeout(ctx, key, struck)
                    continue
                fired_req = waits[idx]
            if fired_req is arrive_req:
                arrive_req = None
                _, aqid, _t = payload
                state.consumed += 1
                outcome, dropped = adm.offer(int(aqid))
                ctx.trace_instant("arrive", query_id=int(aqid), outcome=outcome)
                if outcome == "rejected":
                    state.drop(int(aqid))
                elif outcome == "shed":
                    state.drop(dropped)
                continue
            recv_req = None
            _, qid, pid_part, d, ids = payload
            key = (int(qid), int(pid_part))
            if key in self.completed:
                report.duplicate_results += 1
                continue
            with ctx.span("reduce"):
                yield from self.merger.merge_payload(ctx, payload)
            self.completed.add(key)
            if key in self.failed:
                self.failed.discard(key)  # late answer recovered an abandoned task
            elif key in self.pending:
                core = self.pending[key]["core"]
                self.timeouts_by_core[core] = 0
                self.dead.discard(core)
                self.win.release(key)
                del self.pending[key]
                self._resolve(key[0])

        for r in (recv_req, arrive_req):
            if r is not None:
                yield from ctx.cancel(r)

        # bounded shutdown drain, exactly as on the closed-loop path
        drain_timeout = derive_drain_timeout(policy, self.base_timeout, ctx.network)
        got = 0
        with ctx.span("drain"):
            for _round in range(policy.drain_rounds):
                for node in range(config.n_nodes):
                    yield from ctx.send_to_mailbox(
                        self.node_mailboxes[node],
                        ("end",),
                        source=ctx.pid,
                        tag=TAG_END,
                        nbytes=8,
                        same_node=False,
                    )
                while got < n_threads_total:
                    req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_THREAD_DONE)
                    fired, _tdone = yield from ctx.wait_any([req], timeout=drain_timeout)
                    if fired == WAIT_TIMED_OUT:
                        yield from ctx.cancel(req)
                        break
                    got += 1
                if got >= n_threads_total:
                    break

        if not state.accounted():
            raise SimError(
                "serving admission ledgers do not cover the offered load: "
                f"admitted {adm.admitted} + shed {adm.shed} + rejected "
                f"{adm.rejected} != offered {state.offered}"
            )

        n_parts = np.array([len(p) for p in self._parts_per_query], dtype=np.float64)
        done_counts = np.zeros(n_q, dtype=np.float64)
        for qid, _pid_part in self.completed:
            done_counts[qid] += 1.0
        # cache hits and shed/rejected queries routed no partitions: they
        # are complete by definition (served from cache) or never served
        report.completeness = np.where(
            n_parts > 0, done_counts / np.maximum(n_parts, 1.0), 1.0
        )
        report.query_latencies = state.timeline.latencies()
        report.offered_queries = state.offered
        report.admitted_queries = adm.admitted
        report.shed_queries = adm.shed
        report.rejected_queries = adm.rejected
        report.max_ingress_depth = adm.max_depth_seen
        cache = state.cache
        if cache is not None:
            report.cache_hits = cache.hits
            report.cache_misses = cache.misses
            report.cache_stale = cache.stale
            report.cache_evictions = cache.evictions
        report.arrival_times = state.timeline.arrival
        report.dispatch_times = state.timeline.dispatch
        report.complete_times = state.timeline.complete
        report.queue_depth_timeline = self.win.tracker.timeline()
        report.max_outstanding_tasks = self.win.max_outstanding
        report.credits_leaked = self.win.outstanding
        return report
