"""Fault-tolerant decoration of the coordinator pipeline.

Timeout / retry / failover / suspicion dispatch (the PR-2 semantics)
implemented *over* the same coordinator pieces the plain pipeline uses
— :class:`Router` for routing, :class:`DispatchWindow.send_task` for
every send (and so for every credit charge), :class:`ResultMerger.
merge_payload` for every merge — rather than as a fork of them.  The
harness owns only what is genuinely fault-specific: per-task deadlines,
the expiry sweep, the retry/failover replica chain, suspicion, dedup,
and the bounded shutdown drain.

Flow control interplay (``dispatch_window > 0``):

- a new task whose live replicas are all out of credits is *deferred*
  (the collect loop re-tries it as credits free) rather than blocking —
  the collect loop must keep consuming results to detect timeouts;
- a timed-out attempt's credit is reclaimed before re-dispatch, so a
  crashed worker cannot pin its workgroup's window (the leak the
  ``credits_leaked`` counter guards);
- the failover chain prefers replicas with spare credits but will
  over-commit a window rather than abandon a task that still has
  attempts left — fault recovery outranks flow control.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SystemConfig
from repro.core.coordinator.merger import ResultMerger
from repro.core.coordinator.report import MasterReport
from repro.core.coordinator.router import Router
from repro.core.coordinator.window import DispatchWindow
from repro.core.messages import TAG_END, TAG_RESULT, TAG_THREAD_DONE
from repro.core.replication import Workgroups
from repro.core.results import GlobalResults
from repro.faults.spec import FaultPolicy
from repro.loadbalance import (
    PrimarySelector,
    ReplicaSelector,
    derive_drain_timeout,
    derive_task_timeout,
)
from repro.simmpi.engine import WAIT_TIMED_OUT, Context, Mailbox

__all__ = ["FaultHarness"]


class _ExcludeUnion:
    """Lazy union of two ``exclude`` views (dead/tried sets + credit block)."""

    __slots__ = ("a", "b")

    def __init__(self, a, b) -> None:
        self.a = a
        self.b = b

    def __contains__(self, core) -> bool:
        return core in self.a or core in self.b


class FaultHarness:
    """One batch search's coordinator with deadline-driven re-dispatch.

    Two-sided, approx-routed, unbatched (config validation enforces all
    three).  Returns a :class:`MasterReport` from :meth:`run`, exactly
    like the plain pipeline.
    """

    def __init__(
        self,
        config: SystemConfig,
        router,
        workgroups: Workgroups,
        queries: np.ndarray,
        results: GlobalResults,
        node_mailboxes: list[Mailbox],
        policy: FaultPolicy,
        task_seconds_hint: float,
        selector: ReplicaSelector | None = None,
    ) -> None:
        self.config = config
        self.queries = queries
        self.node_mailboxes = node_mailboxes
        self.policy = policy
        self.task_seconds_hint = task_seconds_hint
        self.report = MasterReport(config.n_cores)
        if selector is None:
            selector = PrimarySelector(workgroups)
        self.selector = selector
        self.workgroups = selector.workgroups
        self.router = Router(router, self.report, int(queries.shape[1]))
        self.win = DispatchWindow(config, selector, self.report, node_mailboxes)
        self.merger = ResultMerger(config, results, self.report, one_sided=False)
        # -- dispatch state ---------------------------------------------------
        self.pending: dict[tuple[int, int], dict] = {}
        self.completed: set[tuple[int, int]] = set()
        self.failed: set[tuple[int, int]] = set()
        self.dead: set[int] = set()
        #: new tasks waiting for a live replica with spare credits
        #: (dispatch_window > 0 only; always empty with flow control off)
        self.deferred: list[tuple[int, int]] = []
        self.timeouts_by_core = np.zeros(config.n_cores, dtype=np.int64)
        self.base_timeout = 0.0  # derived from the live network model in run()
        self._ctx: Context | None = None  # bound by run()
        self._unresolved: np.ndarray | None = None
        self._latencies: np.ndarray | None = None
        self._batch_start = 0.0

    # -- helpers -------------------------------------------------------------

    def _exclude(self, base):
        """``base`` extended with credit-starved cores when flow control
        is on (plain ``base`` — bit-identical behaviour — when off)."""
        if self.win.credits is None:
            return base
        return _ExcludeUnion(base, self.win.blocked(1))

    def _resolve(self, query_id: int) -> None:
        # a query is resolved when every routed task completed OR was
        # abandoned — its latency is final even if degraded
        self._unresolved[query_id] -= 1
        if self._unresolved[query_id] == 0:
            self._latencies[query_id] = self._ctx.now - self._batch_start

    def _abandon(self, key: tuple[int, int]) -> None:
        del self.pending[key]
        self.failed.add(key)
        self.report.failed_tasks += 1
        self.win.release(key)  # an abandoned task must not hold its credit
        self._resolve(key[0])

    def _dispatch_new(self, ctx: Context, query_id: int, partition_id: int):
        """First dispatch of a (query, partition) task, or its deferral."""
        if self.win.credits is not None and not self.win.group_has_credit(
            partition_id, 1, exclude=self.dead
        ):
            if any(
                c not in self.dead
                for c in self.workgroups.cores_for_partition(partition_id)
            ):
                # live replicas exist but their windows are full: park the
                # task; the collect loop re-tries as credits come home
                self.deferred.append((query_id, partition_id))
                return
        core = self.selector.pick(partition_id, ctx.now, exclude=self._exclude(self.dead))
        if core is None:
            self.failed.add((query_id, partition_id))
            self.report.failed_tasks += 1
            self._resolve(query_id)
            return
        state = {"core": core, "attempts": 1, "tried": {core}, "deadline": 0.0}
        self.pending[(query_id, partition_id)] = state
        with ctx.span("dispatch"):
            yield from self.win.send_task(
                ctx, query_id, partition_id, core, self.queries[query_id]
            )
        state["deadline"] = ctx.now + self.base_timeout

    def _drain_deferred(self, ctx: Context):
        """Re-try parked tasks; dispatch what credits now allow."""
        still: list[tuple[int, int]] = []
        parked, self.deferred = self.deferred, []
        for query_id, partition_id in parked:
            group = self.workgroups.cores_for_partition(partition_id)
            if all(c in self.dead for c in group):
                self.failed.add((query_id, partition_id))
                self.report.failed_tasks += 1
                self._resolve(query_id)
                continue
            if not self.win.group_has_credit(partition_id, 1, exclude=self.dead):
                still.append((query_id, partition_id))
                continue
            core = self.selector.pick(
                partition_id, ctx.now, exclude=self._exclude(self.dead)
            )
            state = {"core": core, "attempts": 1, "tried": {core}, "deadline": 0.0}
            self.pending[(query_id, partition_id)] = state
            with ctx.span("dispatch"):
                yield from self.win.send_task(
                    ctx, query_id, partition_id, core, self.queries[query_id]
                )
            state["deadline"] = ctx.now + self.base_timeout
        self.deferred = still + self.deferred

    def _handle_timeout(self, ctx: Context, key: tuple[int, int], struck: set[int]):
        query_id, partition_id = key
        state = self.pending[key]
        core = state["core"]
        # many tasks expiring together on one core are ONE piece of evidence
        # (a single lost message batch), not many — strike each core at most
        # once per expiry sweep, or a burst would kill the whole cluster
        if core not in struck:
            struck.add(core)
            self.timeouts_by_core[core] += 1
            if (
                core not in self.dead
                and self.timeouts_by_core[core] >= self.policy.suspect_after
            ):
                self.dead.add(core)
                self.report.suspected_dead_cores.append(int(core))
        if state["attempts"] >= self.policy.max_attempts:
            self._abandon(key)
            return
        # reclaim the timed-out attempt's credit before re-picking: the
        # replacement send charges its own, and a crashed core must never
        # pin its workgroup's window (the credits_leaked invariant)
        self.win.release(key)
        # prefer an untried live replica with spare credits, then any live
        # one, then anything: suspicion steers dispatch away from dead cores
        # but never forfeits a task's remaining attempts (suspicion can be
        # wrong — lossy links), and flow control yields to fault recovery
        # (the last two levels may over-commit a window)
        nxt = self.selector.pick(
            partition_id, ctx.now, exclude=self._exclude(self.dead | state["tried"])
        )
        if nxt is None:
            nxt = self.selector.pick(partition_id, ctx.now, exclude=self._exclude(self.dead))
        if nxt is None:
            nxt = self.selector.pick(partition_id, ctx.now, exclude=state["tried"])
        if nxt is None:
            nxt = self.selector.pick(partition_id, ctx.now)
        state["attempts"] += 1
        state["tried"].add(nxt)
        span = "retry" if nxt == state["core"] else "failover"
        if nxt == state["core"]:
            self.report.retries += 1
        else:
            self.report.failovers += 1
        state["core"] = nxt
        with ctx.span(span):
            yield from self.win.send_task(ctx, query_id, partition_id, nxt, self.queries[query_id])
        state["deadline"] = ctx.now + self.base_timeout * self.policy.backoff ** (
            state["attempts"] - 1
        )

    # -- the proc body -------------------------------------------------------

    def run(self, ctx: Context):
        """The fault-tolerant coordinator proc body.  Returns a
        :class:`MasterReport`.

        Same protocol as the two-sided approx path of the plain
        pipeline, but every task carries a deadline derived from the
        cost model; a task that misses it is re-dispatched — same core
        (retry) or next live replica (failover) — with exponential
        backoff, up to ``policy.max_attempts`` sends.  A core that
        times out ``policy.suspect_after`` times is suspected dead.
        Tasks with no live replica left are abandoned and surface as
        per-query ``completeness`` < 1; the batch never hangs on a
        crashed rank.  Late answers from abandoned tasks are still
        merged (they only improve recall); answers for completed tasks
        are dropped by (query, partition) dedup.
        """
        config, report, policy = self.config, self.report, self.policy
        queries = self.queries
        n_q = len(queries)
        n_threads_total = config.n_nodes * config.threads_per_node
        self._ctx = ctx
        self._batch_start = ctx.now

        # per-attempt deadline: the modeled service time scaled by a generous
        # multiplier, plus a round trip — loose enough that fault-free runs
        # never trip it, tight enough that a crashed rank is detected quickly
        self.base_timeout = derive_task_timeout(policy, self.task_seconds_hint, ctx.network)

        # -- route every query up front (approx routing) ---------------------
        parts_per_query: list[list[int]] = []
        for qid in range(n_q):
            parts = yield from self.router.route_approx(ctx, queries[qid], config.n_probe)
            report.fanouts.append(len(parts))
            parts_per_query.append([int(p) for p in parts])

        self._unresolved = np.array([len(p) for p in parts_per_query], dtype=np.int64)
        self._latencies = np.full(n_q, np.nan)

        # -- initial dispatch wave -------------------------------------------
        for qid in range(n_q):
            for pid_part in parts_per_query[qid]:
                yield from self._dispatch_new(ctx, qid, pid_part)

        # -- collect with deadlines ------------------------------------------
        recv_req = None
        while self.pending or self.deferred:
            if self.deferred:
                yield from self._drain_deferred(ctx)
                if not self.pending:
                    continue
            if recv_req is None:
                recv_req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_RESULT)
            budget = max(min(s["deadline"] for s in self.pending.values()) - ctx.now, 0.0)
            fired, payload = yield from ctx.wait_any([recv_req], timeout=budget)
            if fired == WAIT_TIMED_OUT:
                now = ctx.now
                struck: set[int] = set()
                for key in [kk for kk, s in self.pending.items() if s["deadline"] <= now]:
                    yield from self._handle_timeout(ctx, key, struck)
                continue
            recv_req = None
            _, qid, pid_part, d, ids = payload
            key = (int(qid), int(pid_part))
            if key in self.completed:
                report.duplicate_results += 1
                continue
            with ctx.span("reduce"):
                yield from self.merger.merge_payload(ctx, payload)
            self.completed.add(key)
            if key in self.failed:
                self.failed.discard(key)  # late answer recovered an abandoned task
            elif key in self.pending:
                # the answering core is evidence of life: reset its suspicion
                # so transient losses (lossy links, bursts of queueing) cannot
                # snowball into the whole workgroup being declared dead
                core = self.pending[key]["core"]
                self.timeouts_by_core[core] = 0
                self.dead.discard(core)
                self.win.release(key)
                del self.pending[key]
                self._resolve(key[0])

        if recv_req is not None:
            yield from ctx.cancel(recv_req)

        # -- bounded shutdown drain ------------------------------------------
        # Rebroadcast "End of Queries" up to drain_rounds times, collecting
        # thread-done notifications under a timeout each round.  Threads on
        # crashed nodes never answer; giving up after the rounds keeps
        # shutdown bounded (the remaining messages die with the simulation).
        drain_timeout = derive_drain_timeout(policy, self.base_timeout, ctx.network)
        got = 0
        with ctx.span("drain"):
            for _round in range(policy.drain_rounds):
                for node in range(config.n_nodes):
                    yield from ctx.send_to_mailbox(
                        self.node_mailboxes[node],
                        ("end",),
                        source=ctx.pid,
                        tag=TAG_END,
                        nbytes=8,
                        same_node=False,
                    )
                while got < n_threads_total:
                    req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_THREAD_DONE)
                    fired, _tdone = yield from ctx.wait_any([req], timeout=drain_timeout)
                    if fired == WAIT_TIMED_OUT:
                        yield from ctx.cancel(req)
                        break
                    got += 1
                if got >= n_threads_total:
                    break

        n_parts = np.array([len(p) for p in parts_per_query], dtype=np.float64)
        done_counts = np.zeros(n_q, dtype=np.float64)
        for qid, _pid_part in self.completed:
            done_counts[qid] += 1.0
        report.completeness = np.where(
            n_parts > 0, done_counts / np.maximum(n_parts, 1.0), 1.0
        )
        report.query_latencies = self._latencies
        report.queue_depth_timeline = self.win.tracker.timeline()
        report.max_outstanding_tasks = self.win.max_outstanding
        report.credits_leaked = self.win.outstanding
        return report
