"""Credit-based dispatch flow control (the HARMONY-style window).

``SystemConfig.dispatch_window = W`` grants every core W credits; each
in-flight task charges one credit against the core serving it, and the
credit returns when the task's result (two-sided) or credit ack
(one-sided) lands at the coordinator.  Dispatch to a partition whose
whole workgroup is out of credits *blocks* — the coordinator consumes
in-flight results through the :class:`~repro.core.coordinator.merger.
ResultMerger` until a credit frees — so at most ``W * n_cores`` tasks
are ever outstanding and merging overlaps dispatch instead of trailing
it.

At ``W = 0`` every credit structure is inert: no accounting, empty
exclusion sets, zero stall — the dispatcher is the eager
send-everything one, bit-identical to the pre-pipelining golden traces.

Replica selection composes: a blocked core is handed to the selector as
an exclusion, so backpressure steers tasks toward replicas that still
have credit (feedback the open-loop LoadTracker model cannot provide).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SystemConfig
from repro.core.coordinator.report import MasterReport
from repro.core.messages import (
    TAG_TASK,
    batch_task_nbytes,
    filter_payload_nbytes,
    make_batch_task,
    make_filter_batch_task,
    make_filter_task,
    make_task,
    task_nbytes,
)
from repro.loadbalance import ReplicaSelector
from repro.simmpi.engine import Context, Mailbox

__all__ = ["DispatchWindow"]


class _CreditBlocked:
    """Lazy ``exclude`` view: a core is excluded while it lacks credits.

    Handed to ``selector.pick`` so membership is checked only for the
    cores the selector actually considers (the partition's workgroup).
    """

    __slots__ = ("credits", "need")

    def __init__(self, credits: np.ndarray, need: int) -> None:
        self.credits = credits
        self.need = need

    def __contains__(self, core) -> bool:
        return bool(self.credits[core] < self.need)


class DispatchWindow:
    """Per-core credit accounting plus the task send path.

    Both coordinator variants send every task through here: the plain
    pipeline via :meth:`dispatch` / :meth:`dispatch_batch` (which block
    on credits), the fault harness via the lower-level :meth:`send_task`
    (it owns its own retry spans and deadline bookkeeping and handles
    credit exhaustion by deferring, never blocking its collect loop).
    """

    def __init__(
        self,
        config: SystemConfig,
        selector: ReplicaSelector,
        report: MasterReport,
        node_mailboxes: list[Mailbox],
        fpayload: dict | None = None,
    ) -> None:
        self.config = config
        self.selector = selector
        self.tracker = selector.tracker
        self.workgroups = selector.workgroups
        self.report = report
        self.node_mailboxes = node_mailboxes
        #: run-wide pushed-down filter description; when set, every task
        #: leaves as an "ftask"/"fbtask" carrying it (and its wire bytes).
        #: None keeps the send path byte-identical to the unfiltered wire.
        self.fpayload = fpayload
        self._fpayload_nbytes = (
            filter_payload_nbytes(fpayload) if fpayload is not None else 0
        )
        self.window = int(config.dispatch_window)
        #: remaining credits per core; None when flow control is off
        self.credits = (
            np.full(config.n_cores, self.window, dtype=np.int64) if self.window else None
        )
        #: (query_id, partition_id) -> core currently charged for the task
        self.charged: dict[tuple[int, int], int] = {}
        self.outstanding = 0
        self.max_outstanding = 0
        #: set by the pipeline to observe dispatched query ids (per-query
        #: outstanding-result accounting for latencies)
        self.on_dispatch = None

    # -- credit accounting ---------------------------------------------------

    def blocked(self, need: int = 1):
        """The ``exclude`` view of credit-starved cores (empty when off)."""
        if self.credits is None:
            return ()
        return _CreditBlocked(self.credits, need)

    def group_has_credit(self, partition_id: int, need: int = 1, exclude=()) -> bool:
        """Whether any non-excluded replica of ``partition_id`` can take
        ``need`` more tasks (always True with flow control off)."""
        if self.credits is None:
            return True
        return any(
            self.credits[c] >= need
            for c in self.workgroups.cores_for_partition(partition_id)
            if c not in exclude
        )

    def _charge(self, core: int, keys) -> None:
        if self.credits is None:
            return
        self.credits[core] -= len(keys)
        for key in keys:
            self.charged[key] = core
        self.outstanding += len(keys)
        if self.outstanding > self.max_outstanding:
            self.max_outstanding = self.outstanding

    def release(self, key: tuple[int, int]) -> int | None:
        """Return the credit held by ``key``; the charged core, or None.

        None means the task holds no credit — flow control is off, or
        the task was already released (an abandoned task whose credit
        failover reclaimed, a late duplicate).  Callers never need to
        distinguish: release is idempotent per charge.
        """
        if self.credits is None:
            return None
        core = self.charged.pop(key, None)
        if core is None:
            return None
        self.credits[core] += 1
        self.outstanding -= 1
        return core

    def _await_credit(self, ctx: Context, merger, partition_id: int, need: int):
        """Block (consuming in-flight results) until the partition's
        workgroup has a core with ``need`` spare credits."""
        stall_start = None
        while not self.group_has_credit(partition_id, need):
            if stall_start is None:
                stall_start = ctx.now
            yield from merger.consume_one(ctx, self)
        if stall_start is not None:
            self.report.credit_stall_seconds += ctx.now - stall_start
            # only actual stalls land in the trace — a zero-width
            # credit_wait on every dispatch would drown the timeline
            ctx.trace_complete(
                "credit_wait", stall_start, ctx.now, partition=int(partition_id)
            )

    # -- send paths ----------------------------------------------------------

    def send_task(self, ctx: Context, query_id: int, partition_id: int, core: int, qvec):
        """Record + charge + ship one (query, partition) task to ``core``.

        No span and no credit *wait* — the callers own both (the plain
        pipeline blocks up front, the fault harness defers instead).
        """
        self.tracker.record_dispatch(core, ctx.now)
        self.report.dispatch_counts[core] += 1
        self.report.tasks_sent += 1
        self.report.batches_sent += 1
        self._charge(core, ((int(query_id), int(partition_id)),))
        if ctx.trace_active:
            ctx.trace_instant(
                "task_send",
                query_id=int(query_id),
                partition=int(partition_id),
                core=int(core),
            )
        node = self.config.node_of_core(core)
        if self.fpayload is not None:
            msg = make_filter_task(query_id, partition_id, qvec, self.fpayload)
        else:
            msg = make_task(query_id, partition_id, qvec)
        yield from ctx.send_to_mailbox(
            self.node_mailboxes[node],
            msg,
            source=ctx.pid,
            tag=TAG_TASK,
            nbytes=task_nbytes(qvec) + self._fpayload_nbytes,
            same_node=False,
        )

    def dispatch(self, ctx: Context, merger, query_id: int, partition_id: int, qvec):
        """One flow-controlled task dispatch (the adaptive path's unit)."""
        if self.credits is not None:
            yield from self._await_credit(ctx, merger, partition_id, 1)
        with ctx.span("dispatch", query_id=int(query_id), partition=int(partition_id)):
            core = self.selector.pick(partition_id, ctx.now, exclude=self.blocked(1))
            if self.on_dispatch is not None:
                self.on_dispatch((query_id,))
            yield from self.send_task(ctx, query_id, partition_id, core, qvec)

    def dispatch_batch(self, ctx: Context, merger, query_ids, partition_id: int, qvecs):
        """Ship B buffered queries for one partition as a single message.

        One selector step, one message, one worker-side
        ``knn_search_batch`` — but B credits against the chosen core, so
        config validation requires ``batch_size <= dispatch_window``
        when flow control is on.  At B = 1 the wire bytes and send
        order are identical to :meth:`dispatch`.
        """
        need = len(query_ids)
        if self.credits is not None:
            yield from self._await_credit(ctx, merger, partition_id, need)
        with ctx.span("dispatch", partition=int(partition_id), n_queries=need):
            core = self.selector.pick(partition_id, ctx.now, exclude=self.blocked(need))
            self.tracker.record_dispatch(core, ctx.now, n_tasks=need)
            self.report.dispatch_counts[core] += need
            self.report.tasks_sent += need
            self.report.batches_sent += 1
            if self.on_dispatch is not None:
                self.on_dispatch(query_ids)
            self._charge(core, [(int(q), int(partition_id)) for q in query_ids])
            if ctx.trace_active:
                ctx.trace_instant(
                    "task_send",
                    query_ids=tuple(int(q) for q in query_ids),
                    partition=int(partition_id),
                    core=int(core),
                )
            node = self.config.node_of_core(core)
            Qb = np.stack(qvecs)
            if self.fpayload is not None:
                msg = make_filter_batch_task(query_ids, partition_id, Qb, self.fpayload)
            else:
                msg = make_batch_task(query_ids, partition_id, Qb)
            yield from ctx.send_to_mailbox(
                self.node_mailboxes[node],
                msg,
                source=ctx.pid,
                tag=TAG_TASK,
                nbytes=batch_task_nbytes(Qb) + self._fpayload_nbytes,
                same_node=False,
            )
