"""System configuration.

One dataclass holds every knob of the distributed system so experiments are
single-object parameter sweeps.  Defaults are a small laptop-scale setup;
the benchmarks instantiate paper-scale variants (up to 8192 simulated
cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.spec import FaultPolicy, FaultSpec
from repro.filtering.strategy import STRATEGIES as _FILTER_STRATEGIES
from repro.hnsw.params import HnswParams
from repro.simmpi.costmodel import CostModel
from repro.simmpi.errors import SimConfigError
from repro.simmpi.network import NetworkModel

__all__ = ["SystemConfig", "cli_option"]

_ROUTINGS = ("approx", "adaptive")
_OWNERS = ("master", "multiple")
_SEARCHERS = ("real", "modeled")
_SELECTORS = ("primary", "round_robin", "least_loaded", "power_of_two_choices")
_OVERLOAD_POLICIES = ("block", "shed_oldest", "reject")
_CACHE_MODES = ("exact", "near")


def cli_option(
    flag: str,
    help: str,  # noqa: A002 - mirrors argparse's keyword
    commands: tuple[str, ...] = ("query", "bench"),
    type: type | None = None,  # noqa: A002
    choices: tuple | None = None,
) -> dict:
    """Dataclass-field metadata declaring the field's CLI flag.

    ``SystemConfig`` is the single source of truth for config-backed CLI
    knobs: tag a field with ``metadata=cli_option(...)`` and the argparse
    flag (dest = field name, default = field default) is derived by
    :func:`repro.cli.add_config_flags` on every subcommand named in
    ``commands`` — declared once, parsed everywhere, round-trip tested.
    """
    return {"cli": {"flag": flag, "help": help, "commands": commands,
                    "type": type, "choices": choices}}


@dataclass(frozen=True)
class SystemConfig:
    """All parameters of one :class:`~repro.core.engine.DistributedANN`.

    Attributes
    ----------
    n_cores:
        P — number of processing cores = number of data partitions (the
        paper couples these: one leaf of the VP tree per core).
    cores_per_node:
        Cores per compute node (paper's XC40: 24).  ``n_cores`` must be a
        multiple of it or smaller than it.
    routing:
        ``"approx"`` — fixed ``n_probe`` best-first partitions per query
        (the throughput mode).  ``"adaptive"`` — pilot probe of the nearest
        partition, then exact ball routing with the pilot's k-th distance
        (guaranteed partition coverage; needs two-sided results).
    replication_factor:
        r — each partition is replicated on r consecutive cores' nodes and
        the master round-robins queries over the workgroup (Alg. 5);
        ``1`` disables replication (base algorithm).
    one_sided:
        Workers return results via RMA ``Get_accumulate`` into the master's
        window (Fig. 2) instead of point-to-point sends.
    owner_strategy:
        ``"master"`` — the paper's main design.  ``"multiple"`` — the
        hash-owner variant the paper describes (every node owns a slice of
        the queries and routes them itself).
    searcher:
        ``"real"`` — partitions hold real HNSW indexes; results and recall
        are genuine.  ``"modeled"`` — local searches charge the analytic
        HNSW cost for ``modeled_partition_points`` points (paper-scale
        partitions) and answer from a small real subsample; used for the
        billion-point scaling experiments.
    """

    n_cores: int = 8
    cores_per_node: int = 4
    k: int = 10
    metric: str = "l2"
    hnsw: HnswParams = field(default_factory=lambda: HnswParams(M=8, ef_construction=40))
    ef_search: int | None = None
    routing: str = "approx"
    n_probe: int = 3
    #: queries per task message: the master buffers per-partition dispatch
    #: and ships B queries to a partition as one batch task, which the
    #: worker answers with one ``knn_search_batch`` call (amortized message
    #: headers and python dispatch).  1 = one task per (query, partition),
    #: wire-identical to the unbatched protocol.  Batching reorders
    #: dispatch, so >1 requires the plain master/approx path.
    batch_size: int = field(
        default=1,
        metadata=cli_option(
            "--batch-size", "queries per task message (per-partition dispatch batching)"
        ),
    )
    #: credit-based dispatch flow control (see docs/pipelining.md): at most
    #: ``dispatch_window`` tasks in flight per core; dispatch to a partition
    #: whose whole workgroup is out of credits blocks (consuming in-flight
    #: results) until a credit returns.  0 = eager unwindowed dispatch,
    #: bit-identical to the pre-pipelining master.  Master-worker modes
    #: only; a batch must fit one core's window (batch_size <= W).
    dispatch_window: int = field(
        default=0,
        metadata=cli_option(
            "--dispatch-window",
            "max in-flight tasks per core (credit-based flow control; 0 = eager dispatch)",
        ),
    )
    replication_factor: int = field(
        default=1,
        metadata=cli_option("--replication", "workgroup replication factor r"),
    )
    #: which replica of a task's target partition serves it (see
    #: :mod:`repro.loadbalance`): ``"primary"`` — the workgroup circular
    #: pointer (Alg. 5, bit-identical to the pre-selector dispatcher),
    #: ``"round_robin"``, ``"least_loaded"``, ``"power_of_two_choices"``.
    #: Master-worker modes only; with r = 1 all policies coincide.
    replica_selector: str = field(
        default="primary",
        metadata=cli_option(
            "--replica-selector",
            "replica selection policy for dispatch (load balancing)",
            choices=_SELECTORS,
        ),
    )
    #: Zipf exponent s of the skewed-workload generator (0 = uniform
    #: targets).  A workload knob, not an engine knob: the engine never
    #: reads it — ``repro bench`` and the load-balance benchmark pass it to
    #: :func:`repro.datasets.zipf_queries` to aim queries at partitions
    #: with probability proportional to 1/rank^s.
    skew: float = field(
        default=0.0,
        metadata=cli_option(
            "--skew", "Zipf exponent of the benchmark query workload (0 = uniform)",
            commands=("bench",),
        ),
    )
    #: open-loop serving arrival process (see docs/serving.md): None = the
    #: closed-loop batch (every query present at t = 0, bit-identical to the
    #: pre-serving pipeline); ``"poisson:RATE"``, ``"burst:LOW:HIGH:PERIOD"``
    #: or ``"trace:t1,t2,..."`` runs the search through the serving
    #: coordinator, with queries arriving on the virtual clock.
    arrival: str | None = field(
        default=None,
        metadata=cli_option(
            "--arrival",
            "open-loop arrival process: poisson:RATE, burst:LOW:HIGH:PERIOD "
            "or trace:t1,t2,... (default: closed-loop batch)",
            type=str,
        ),
    )
    #: serving ingress queue bound (0 = unbounded); overload_policy decides
    #: what happens to arrivals past the bound
    queue_depth: int = field(
        default=0,
        metadata=cli_option(
            "--queue-depth",
            "serving ingress queue bound (0 = unbounded; needs --arrival)",
        ),
    )
    #: what a full ingress queue does to new arrivals: ``"block"`` stops
    #: consuming them (backpressure), ``"shed_oldest"`` drops the stalest
    #: queued query, ``"reject"`` refuses the new arrival with a flag
    overload_policy: str = field(
        default="block",
        metadata=cli_option(
            "--overload-policy",
            "full-ingress-queue policy (needs --arrival and --queue-depth)",
            choices=_OVERLOAD_POLICIES,
        ),
    )
    #: hot-query result cache capacity in entries (0 = cache off)
    cache_size: int = field(
        default=0,
        metadata=cli_option(
            "--cache-size",
            "hot-query result cache capacity, entries (0 = off; needs --arrival)",
        ),
    )
    #: cache key mode: ``"exact"`` (quantized query bytes — hits are
    #: bit-identical to recomputation) or ``"near"`` (coarse quantizer
    #: cell — near-duplicate queries share an answer, an approximation)
    cache_mode: str = "exact"
    #: SLO target for arrival-to-completion latency, milliseconds (0 = no
    #: target; the violation fraction is only reported when set)
    slo_ms: float = field(
        default=0.0,
        metadata=cli_option(
            "--slo-ms",
            "arrival-to-completion SLO target in ms (0 = none; needs --arrival)",
        ),
    )
    # -- filtered & multi-tenant search (see docs/filtering.md)
    #: default filter predicate for every query of the run, as text: JSON
    #: (``{"attr": "tier", "op": "in", "value": [1, 2]}``) or the shorthand
    #: ``tier=3`` / ``tier=1,2,5`` / ``tier=10..20``.  None = unfiltered.
    #: Per-call ``filter=`` arguments override it.
    filter: str | None = field(
        default=None,
        metadata=cli_option(
            "--filter",
            'default filter predicate: JSON or shorthand ("tier=3", '
            '"tier=1,2,5", "tier=10..20"); needs build-time metadata',
            type=str,
        ),
    )
    #: tenant id every query of the run belongs to: adds an implicit
    #: ``tenant == id`` clause (over the build-time ``tenant`` attribute
    #: column) and namespaces serving admission + result-cache keys.
    #: None = single-tenant, bit-identical to the pre-filtering engine.
    tenant: int | None = field(
        default=None,
        metadata=cli_option(
            "--tenant",
            "tenant id: adds an implicit tenant==id clause and namespaces "
            "serving admission and cache keys",
            type=int,
        ),
    )
    #: filtered-execution strategy: ``"auto"`` picks brute force over the
    #: matching rows (pre) below the selectivity crossover and filtered
    #: graph traversal (post) above it; ``"pre"``/``"post"`` force one.
    filter_strategy: str = field(
        default="auto",
        metadata=cli_option(
            "--filter-strategy",
            "filtered execution strategy (auto = selectivity crossover)",
            choices=_FILTER_STRATEGIES,
        ),
    )
    # -- observability (see docs/observability.md); valid in every mode and
    # guaranteed bit-identity-neutral: recording never touches the virtual
    # clock, so golden digests and makespans match with tracing on or off
    #: write a Chrome-trace-event JSON (Perfetto-loadable) of the run
    trace_out: str | None = field(
        default=None,
        metadata=cli_option(
            "--trace-out",
            "write a Perfetto-loadable Chrome trace-event JSON of the run",
            commands=("query",),
            type=str,
        ),
    )
    #: write the schema-versioned JSONL structured event log
    events_out: str | None = field(
        default=None,
        metadata=cli_option(
            "--events-out",
            "write a schema-versioned JSONL event log (spans/instants/counters/queries)",
            commands=("query",),
            type=str,
        ),
    )
    #: write the metrics-registry dump as JSON
    metrics_out: str | None = field(
        default=None,
        metadata=cli_option(
            "--metrics-out",
            "write the unified metrics-registry dump as JSON",
            commands=("query",),
            type=str,
        ),
    )
    #: print the span trees of the N slowest queries after the run
    explain_top: int = field(
        default=0,
        metadata=cli_option(
            "--explain-top",
            "print span trees of the N slowest queries (0 = off)",
            commands=("query",),
        ),
    )
    one_sided: bool = True
    owner_strategy: str = "master"
    searcher: str = "real"
    #: virtual points per partition for the modeled searcher (e.g. 1e9/P)
    modeled_partition_points: int = 1_000_000
    #: real points kept per partition by the modeled searcher to answer from
    modeled_sample_points: int = 128
    #: explicit virtual seconds per modeled local search.  None = use the
    #: analytic HNSW estimate.  The scaling benchmarks set this from the
    #: paper's own aggregate throughput (e.g. 6.3 s x 8192 cores / (1e4
    #: queries x fanout) for ANN_SIFT1B), because the paper's measured
    #: per-task cost is far above any analytic HNSW estimate — see
    #: EXPERIMENTS.md, "calibration".
    modeled_search_seconds: float | None = None
    network: NetworkModel = field(default_factory=NetworkModel)
    cost: CostModel = field(default_factory=CostModel)
    seed: int = 0
    #: fault scenario injected into the simulated fabric (None = fault-free)
    fault_spec: FaultSpec | None = None
    #: fault-tolerant dispatch knobs; setting either faults field routes the
    #: search through the timeout/retry/failover master
    fault_policy: FaultPolicy | None = None

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise SimConfigError(f"n_cores must be >= 1, got {self.n_cores}")
        if self.cores_per_node < 1:
            raise SimConfigError(f"cores_per_node must be >= 1, got {self.cores_per_node}")
        if self.k < 1:
            raise SimConfigError(f"k must be >= 1, got {self.k}")
        if self.routing not in _ROUTINGS:
            raise SimConfigError(f"routing must be one of {_ROUTINGS}, got {self.routing!r}")
        if self.owner_strategy not in _OWNERS:
            raise SimConfigError(
                f"owner_strategy must be one of {_OWNERS}, got {self.owner_strategy!r}"
            )
        if self.searcher not in _SEARCHERS:
            raise SimConfigError(f"searcher must be one of {_SEARCHERS}, got {self.searcher!r}")
        if not 1 <= self.replication_factor <= self.n_cores:
            raise SimConfigError(
                f"replication_factor must be in [1, n_cores={self.n_cores}], "
                f"got {self.replication_factor}"
            )
        if self.n_probe < 1:
            raise SimConfigError(f"n_probe must be >= 1, got {self.n_probe}")
        if self.replica_selector not in _SELECTORS:
            raise SimConfigError(
                f"replica_selector must be one of {_SELECTORS}, got {self.replica_selector!r}"
            )
        if self.replica_selector != "primary" and self.owner_strategy != "master":
            raise SimConfigError(
                "replica selection policies require owner_strategy='master': "
                "owners dispatch through the paper's workgroup pointer only"
            )
        if self.skew < 0:
            raise SimConfigError(f"skew must be >= 0, got {self.skew}")
        if self.batch_size < 1:
            raise SimConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.batch_size > 1:
            if self.routing != "approx":
                raise SimConfigError(
                    f"batch_size > 1 requires routing='approx', got {self.routing!r}"
                )
            if self.owner_strategy != "master":
                raise SimConfigError(
                    "batch_size > 1 requires owner_strategy='master', "
                    f"got {self.owner_strategy!r}"
                )
            if self.fault_spec is not None or self.fault_policy is not None:
                raise SimConfigError(
                    "batch_size > 1 is incompatible with fault injection: the "
                    "fault-tolerant dispatcher times out and retries per task"
                )
        if self.dispatch_window < 0:
            raise SimConfigError(
                f"dispatch_window must be >= 0, got {self.dispatch_window}"
            )
        if self.dispatch_window > 0:
            if self.owner_strategy != "master":
                raise SimConfigError(
                    "dispatch_window > 0 requires owner_strategy='master': "
                    "owner procs dispatch their query slices eagerly"
                )
            if self.batch_size > self.dispatch_window:
                raise SimConfigError(
                    f"batch_size ({self.batch_size}) must fit one core's credit "
                    f"window (dispatch_window={self.dispatch_window}): a batch "
                    "charges batch_size credits against a single core"
                )
        if self.routing == "adaptive" and self.one_sided:
            raise SimConfigError(
                "adaptive routing needs the pilot result back at the master, "
                "which requires two-sided results (one_sided=False)"
            )
        if self.fault_spec is not None or self.fault_policy is not None:
            # the FT dispatcher tracks per-task deadlines at the master, so
            # it needs the two-sided master-worker approx path
            if self.one_sided:
                raise SimConfigError(
                    "fault tolerance needs two-sided results (one_sided=False): "
                    "one-sided accumulates cannot be timed out per task"
                )
            if self.owner_strategy != "master":
                raise SimConfigError(
                    "fault tolerance requires owner_strategy='master', "
                    f"got {self.owner_strategy!r}"
                )
            if self.routing != "approx":
                raise SimConfigError(
                    f"fault tolerance requires routing='approx', got {self.routing!r}"
                )
        if self.queue_depth < 0:
            raise SimConfigError(f"queue_depth must be >= 0, got {self.queue_depth}")
        if self.cache_size < 0:
            raise SimConfigError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.slo_ms < 0:
            raise SimConfigError(f"slo_ms must be >= 0, got {self.slo_ms}")
        if self.overload_policy not in _OVERLOAD_POLICIES:
            raise SimConfigError(
                f"overload_policy must be one of {_OVERLOAD_POLICIES}, "
                f"got {self.overload_policy!r}"
            )
        if self.cache_mode not in _CACHE_MODES:
            raise SimConfigError(
                f"cache_mode must be one of {_CACHE_MODES}, got {self.cache_mode!r}"
            )
        if self.arrival is not None:
            # deferred import: serving's package root imports no core module,
            # so this cannot cycle
            from repro.serving.arrivals import parse_arrival_spec

            try:
                parse_arrival_spec(self.arrival)
            except ValueError as exc:
                raise SimConfigError(f"invalid arrival spec: {exc}") from None
            if self.owner_strategy != "master":
                raise SimConfigError(
                    "open-loop serving requires owner_strategy='master': "
                    "arrivals feed one coordinator's admission queue"
                )
            if self.routing != "approx":
                raise SimConfigError(
                    f"open-loop serving requires routing='approx', got {self.routing!r}"
                )
            if self.batch_size != 1:
                raise SimConfigError(
                    "open-loop serving requires batch_size=1: queries are "
                    "served one at a time from the admission queue head"
                )
            if self.one_sided and self.dispatch_window == 0:
                raise SimConfigError(
                    "open-loop serving cannot observe per-query completion in "
                    "one-sided mode without flow control: Get_accumulate "
                    "results bypass the master entirely.  Set one_sided=False "
                    "(two-sided results) or dispatch_window > 0 (credit acks "
                    "give the master a per-task completion signal)"
                )
        else:
            for name, value, default in (
                ("queue_depth", self.queue_depth, 0),
                ("overload_policy", self.overload_policy, "block"),
                ("cache_size", self.cache_size, 0),
                ("slo_ms", self.slo_ms, 0.0),
            ):
                if value != default:
                    raise SimConfigError(
                        f"{name}={value!r} needs an open-loop arrival process "
                        "(set arrival=...); the closed-loop batch has no "
                        "ingress queue, cache, or SLO clock"
                    )
        if self.overload_policy != "block" and self.queue_depth == 0:
            raise SimConfigError(
                f"overload_policy={self.overload_policy!r} requires "
                "queue_depth > 0: an unbounded ingress queue never overloads"
            )
        if self.explain_top < 0:
            raise SimConfigError(f"explain_top must be >= 0, got {self.explain_top}")
        if self.filter_strategy not in _FILTER_STRATEGIES:
            raise SimConfigError(
                f"filter_strategy must be one of {_FILTER_STRATEGIES}, "
                f"got {self.filter_strategy!r}"
            )
        if self.tenant is not None and self.tenant < 0:
            raise SimConfigError(f"tenant must be >= 0, got {self.tenant}")
        if self.filter is not None:
            from repro.filtering import FilterSpec, FilterSpecError

            try:
                FilterSpec.parse(self.filter)
            except FilterSpecError as exc:
                raise SimConfigError(f"invalid filter: {exc}") from None

    # -- observability ------------------------------------------------------

    @property
    def trace_enabled(self) -> bool:
        """True when any observability output wants a per-query trace."""
        return (
            self.trace_out is not None
            or self.events_out is not None
            or self.explain_top > 0
        )

    # -- derived topology ---------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return -(-self.n_cores // self.cores_per_node)

    @property
    def threads_per_node(self) -> int:
        return min(self.cores_per_node, self.n_cores)

    def node_of_core(self, core: int) -> int:
        if not 0 <= core < self.n_cores:
            raise SimConfigError(f"core {core} out of range [0, {self.n_cores})")
        return core // self.cores_per_node

    @property
    def effective_ef_search(self) -> int:
        return self.ef_search if self.ef_search is not None else self.hnsw.ef_search
