"""Alternative local index strategies (the paper's extensibility claim).

§VI: "Our approach is extensible in that any algorithm can be used for
local indexing and searching instead of HNSW."  These searchers exercise
that seam:

- :class:`BruteForceSearcher` — exact scan of the partition (the quality
  ceiling and the cost ceiling; with it the whole system's recall equals
  its routing coverage).
- :class:`VPTreeLocalSearcher` — exact metric-tree search per partition
  (cheaper than brute force, still exact).
- :class:`IvfPqLocalSearcher` — compressed IVF-PQ partitions (the
  related-work comparator class); demonstrates the recall plateau of
  compressed indexes inside the same distributed harness.

Each implements the :class:`~repro.core.searcher.LocalSearcher` protocol
and is paired with a ``build(partition)`` hook used by
:func:`attach_local_indexes` to retrofit a fitted system.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import Partition
from repro.core.searcher import generic_search_batch
from repro.metrics import Metric, get_metric
from repro.pq.ivfpq import IVFPQIndex
from repro.simmpi.costmodel import CostModel
from repro.vptree.tree import VPTree

__all__ = [
    "BruteForceSearcher",
    "VPTreeLocalSearcher",
    "IvfPqLocalSearcher",
    "attach_local_indexes",
]


class BruteForceSearcher:
    """Exact linear scan of the partition's raw points."""

    def __init__(self, cost: CostModel, metric: str | Metric = "l2") -> None:
        self.cost = cost
        self.metric = get_metric(metric)

    def search(self, partition: Partition, query: np.ndarray, k: int):
        pts = partition.points
        if len(pts) == 0:
            return np.empty(0), np.empty(0, dtype=np.int64), self.cost.sec_per_dist_call
        d = self.metric.one_to_many(query, pts)
        order = np.lexsort((partition.ids, d))[:k]
        return (
            d[order],
            partition.ids[order],
            self.cost.distance_cost(len(pts), pts.shape[1]),
        )

    def search_batch(self, partition: Partition, Q: np.ndarray, k: int):
        return generic_search_batch(self, partition, Q, k)

    def build_seconds(self, partition: Partition) -> float:
        return 0.0  # nothing to build


class VPTreeLocalSearcher:
    """Exact VP-tree search per partition (stored in ``partition.index``)."""

    def __init__(self, cost: CostModel) -> None:
        self.cost = cost

    @staticmethod
    def build(partition: Partition, leaf_size: int = 32, metric: str = "l2", seed: int = 0):
        partition.index = VPTree(partition.points, leaf_size=leaf_size, metric=metric, seed=seed)

    def search(self, partition: Partition, query: np.ndarray, k: int):
        tree = partition.index
        if not isinstance(tree, VPTree):
            raise ValueError(
                f"partition {partition.partition_id} holds {type(tree).__name__}, "
                "expected VPTree — call attach_local_indexes first"
            )
        before = tree.n_dist_evals
        d, local = tree.knn_search(query, k)
        evals = tree.n_dist_evals - before
        return d, partition.ids[local], self.cost.distance_cost(evals, tree.X.shape[1])

    def build_seconds(self, partition: Partition) -> float:
        n = partition.n_points
        return self.cost.distance_cost(int(n * max(np.log2(max(n, 2)), 1.0)), partition.points.shape[1])


class IvfPqLocalSearcher:
    """Compressed IVF-PQ search per partition.

    ``n_probe_cells`` probes that many coarse cells inside the partition's
    index.  The ADC cost charged is one lookup-sum per scanned code — far
    cheaper per point than full distances, which is the compression
    trade's other half.
    """

    def __init__(self, cost: CostModel, n_probe_cells: int = 4) -> None:
        self.cost = cost
        self.n_probe_cells = n_probe_cells

    @staticmethod
    def build(
        partition: Partition,
        n_cells: int = 16,
        n_subspaces: int = 8,
        n_centroids: int = 64,
        seed: int = 0,
    ) -> None:
        idx = IVFPQIndex(n_cells=n_cells, n_subspaces=n_subspaces, n_centroids=n_centroids, seed=seed)
        idx.fit(partition.points, partition.ids)
        partition.index = idx

    def search(self, partition: Partition, query: np.ndarray, k: int):
        idx = partition.index
        if not isinstance(idx, IVFPQIndex):
            raise ValueError(
                f"partition {partition.partition_id} holds {type(idx).__name__}, "
                "expected IVFPQIndex — call attach_local_indexes first"
            )
        before = idx.n_dist_evals
        idx.n_probe = self.n_probe_cells
        d, ids = idx.knn_search(query, k)
        scanned = idx.n_dist_evals - before
        # ADC: table build (n_centroids x sub_dim madds x n_subspaces) plus
        # n_subspaces lookup-adds per scanned code
        table_cost = self.cost.distance_cost(
            idx.pq.n_centroids * idx.pq.n_subspaces, idx.pq.sub_dim
        )
        scan_cost = self.cost.compare_cost(scanned * idx.pq.n_subspaces)
        return d, ids, table_cost + scan_cost

    def build_seconds(self, partition: Partition) -> float:
        n = partition.n_points
        # k-means training passes dominate
        return self.cost.distance_cost(25 * n, partition.points.shape[1])


def attach_local_indexes(ann, kind: str, **kwargs) -> None:
    """Replace every partition's local index in a fitted DistributedANN.

    ``kind`` is one of ``"vptree"``, ``"ivfpq"``, or ``"none"`` (brute
    force needs no index).  The next ``query`` must be issued with the
    matching searcher via ``query_with_searcher``.
    """
    builders = {
        "vptree": VPTreeLocalSearcher.build,
        "ivfpq": IvfPqLocalSearcher.build,
        "none": lambda p, **kw: setattr(p, "index", None),
    }
    try:
        build = builders[kind]
    except KeyError:
        raise ValueError(f"unknown local index kind {kind!r}; choose from {sorted(builders)}")
    for partition in ann.partitions.values():
        build(partition, **kwargs)
