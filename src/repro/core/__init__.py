"""The paper's system: distributed VP-partitioned HNSW search.

Public surface:

- :class:`~repro.core.config.SystemConfig` — every knob of the system
  (cores, nodes, HNSW params, routing mode, replication factor, one-sided
  vs two-sided results, owner strategy, real vs modeled local search).
- :class:`~repro.core.engine.DistributedANN` — the facade: ``fit(X)`` runs
  the distributed construction (Algorithms 1-2 + per-partition HNSW
  builds), ``query(Q)`` runs the master-worker batch search (Algorithms
  3-5) on the simulated cluster and returns results plus a full report
  (virtual times, communication breakdown, per-core load).
- :class:`~repro.core.engine.BuildReport` / :class:`~repro.core.engine.SearchReport`
  — the measured quantities every benchmark consumes.
"""

from repro.core.config import SystemConfig
from repro.core.partition import Partition, NodeStore
from repro.core.results import GlobalResults
from repro.core.searcher import LocalSearcher, RealHnswSearcher, ModeledSearcher
from repro.core.engine import DistributedANN, BuildReport, SearchReport

__all__ = [
    "SystemConfig",
    "Partition",
    "NodeStore",
    "GlobalResults",
    "LocalSearcher",
    "RealHnswSearcher",
    "ModeledSearcher",
    "DistributedANN",
    "BuildReport",
    "SearchReport",
]
