"""Search-simulation scaffolding shared by the VP+HNSW system and the
KD-tree baseline.

Builds one :class:`~repro.simmpi.engine.Simulation` per query batch: a
master proc, one shared mailbox + thread-pool per compute node, and (in
one-sided mode) the RMA results window; runs it; and reduces the outcome to
``(D, I, SearchReport)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SystemConfig
from repro.core.master import MasterReport, master_program
from repro.core.partition import NodeStore
from repro.core.replication import Workgroups
from repro.core.results import GlobalResults
from repro.core.searcher import LocalSearcher
from repro.core.worker import worker_thread_program
from repro.simmpi.engine import Event, Simulation
from repro.simmpi.rma import Window
from repro.simmpi.trace import aggregate_stats

__all__ = ["run_master_worker_search"]


def run_master_worker_search(
    config: SystemConfig,
    router,
    workgroups: Workgroups,
    node_stores: dict[int, NodeStore],
    searcher: LocalSearcher,
    Q: np.ndarray,
    k: int,
):
    """Simulate one master-worker batch search.  Returns (D, I, report).

    ``router`` must expose ``route_approx(q, n_probe)``, ``route_exact(q,
    tau)`` and an ``n_dist_evals`` counter — both the VP and the KD
    partition routers qualify.
    """
    from repro.core.engine import SearchReport  # local import to avoid a cycle

    sim = Simulation(network=config.network, cost=config.cost)
    results = GlobalResults(len(Q), k)
    workgroups.reset()

    node_mailboxes = [sim.new_mailbox(f"node{n}") for n in range(config.n_nodes)]
    master_node = config.n_nodes  # the master gets a node of its own

    window_holder: list[Window | None] = [None]

    def master(ctx):
        return (
            yield from master_program(
                ctx,
                config,
                router,
                workgroups,
                Q,
                results,
                node_mailboxes,
                window_holder[0],
            )
        )

    master_pid = sim.add_proc(master, node=master_node, name="master")
    if config.one_sided:
        window_holder[0] = Window(
            owner_pid=master_pid,
            owner_node=master_node,
            slots=results,
            combine=results.combine,
            name="results",
        )
    master_mailbox = sim.mailbox_of(master_pid)

    for node in range(config.n_nodes):
        done = Event()
        store = node_stores[node]
        for t in range(config.threads_per_node):
            sim.add_proc(
                worker_thread_program,
                node_mailboxes[node],
                store,
                searcher,
                k,
                done,
                master_mailbox,
                window_holder[0],
                node=node,
                name=f"worker_n{node}_t{t}",
            )

    out = sim.run()
    mreport: MasterReport = out.results[master_pid]
    D, I = results.result_arrays()
    report = SearchReport(
        total_seconds=out.makespan,
        n_queries=len(Q),
        tasks=mreport.tasks_sent,
        dispatch_counts=mreport.dispatch_counts,
        mean_fanout=float(np.mean(mreport.fanouts)) if mreport.fanouts else 0.0,
        worker_breakdown=aggregate_stats(
            [s for s in out.stats.values() if s.name.startswith("worker")]
        ),
        master_breakdown=aggregate_stats(
            [s for s in out.stats.values() if s.name == "master"]
        ),
        throughput=len(Q) / out.makespan if out.makespan > 0 else float("inf"),
        n_events=out.n_events,
        query_latencies=mreport.query_latencies,
    )
    return D, I, report
