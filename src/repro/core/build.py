"""Construction orchestration: fit-time simulation.

Runs the full distributed index construction on the simulated cluster:

1. the dataset is equi-partitioned over the P builder ranks,
2. all ranks run :func:`~repro.vptree.distributed.distributed_build`
   (Algorithms 1-2) to produce one VP-leaf partition per rank,
3. each rank builds its partition's local HNSW index — for real in
   fidelity mode (charging the exact distance evaluations the build
   performed), analytically in modeled mode,
4. rank 0 gathers the per-rank construction paths and assembles the
   global :class:`~repro.vptree.router.PartitionRouter`,
5. replicas are shipped to workgroup nodes (charged as broadcasts of the
   partition bytes — the memory/transfer cost of the load-balancing
   optimisation).

Returns the materialized partitions (real Python objects extracted from
the proc return values) and per-phase virtual timings: the numbers Table II
reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SystemConfig
from repro.core.partition import NodeStore, Partition
from repro.core.replication import Workgroups
from repro.hnsw.index import HnswIndex
from repro.obs.metrics import MetricsRegistry
from repro.simmpi.comm import Comm
from repro.simmpi.engine import Simulation
from repro.utils.rng import rng_for
from repro.vptree.distributed import distributed_build
from repro.vptree.router import PartitionRouter

__all__ = ["BuildOutput", "run_build"]


@dataclass
class BuildOutput:
    """Everything fit() produces."""

    router: PartitionRouter
    partitions: dict[int, Partition]
    node_stores: dict[int, NodeStore]
    workgroups: Workgroups
    #: virtual seconds: whole construction makespan
    total_seconds: float
    #: virtual seconds of the slowest rank's HNSW (local index) phase
    hnsw_seconds: float
    #: virtual seconds of the slowest rank's VP partitioning phase
    vptree_seconds: float
    #: virtual seconds spent distributing replicas (0 when r == 1)
    replication_seconds: float
    #: real points per partition
    partition_sizes: list[int]
    #: build-phase instruments (hnsw.build.*); None when reconstituted
    #: from saved artifacts, where the build ran in another process
    metrics: MetricsRegistry | None = None


def _builder_program(
    ctx, world: Comm, config: SystemConfig, X, chunk_ids, work_scale, metadata=None
):
    """One builder rank: VP partitioning, then the local HNSW build."""
    rank = world.rank(ctx)
    res = yield from distributed_build(
        ctx,
        world,
        X[chunk_ids],
        chunk_ids,
        metric=config.metric,
        seed=config.seed,
        work_scale=work_scale,
    )
    t_partition_done = ctx.now

    if config.searcher == "real":
        index = HnswIndex(
            dim=X.shape[1],
            params=config.hnsw,
            metric=config.metric,
            capacity=max(len(res.ids), 16),
        )
        if len(res.ids):
            index.add_items(res.points, res.ids)
        build_cost = ctx.cost.distance_cost(index.n_dist_evals, X.shape[1])
        build_cost += ctx.cost.graph_update_cost(len(index) * config.hnsw.M)
        yield from ctx.compute(build_cost, kind="build_hnsw")
        partition = Partition(rank, res.points, res.ids, index=index)
        sample_rows = None
    else:
        yield from ctx.compute(
            ctx.cost.hnsw_build_cost(
                config.modeled_partition_points,
                X.shape[1],
                config.hnsw.ef_construction,
                config.hnsw.M,
            ),
            kind="build_hnsw",
        )
        n_keep = min(config.modeled_sample_points, len(res.ids))
        rng = rng_for(config.seed, "modeled_sample", rank)
        if n_keep and len(res.ids):
            keep = rng.choice(len(res.ids), size=n_keep, replace=False)
            sample = (res.points[keep].copy(), res.ids[keep].copy())
            sample_rows = np.asarray(keep, dtype=np.int64)
        else:
            sample = (
                np.empty((0, X.shape[1]), dtype=np.float32),
                np.empty(0, dtype=np.int64),
            )
            sample_rows = np.empty(0, dtype=np.int64)
        partition = Partition(
            rank, res.points, res.ids, sample=sample, sample_rows=sample_rows
        )
    if metadata is not None:
        # the partition's slice of the attribute store, row-aligned with
        # its points (res.ids are global dataset rows); rides the replica
        # broadcast below via partition.nbytes
        partition.attrs = metadata.slice_rows(res.ids)
    t_hnsw_done = ctx.now

    # replica distribution: each partition is broadcast to the other r-1
    # workgroup cores' nodes (skipped when they share this core's node)
    r = config.replication_factor
    if r > 1:
        nbytes = int(partition.nbytes * work_scale)
        my_node = config.node_of_core(rank)
        other_nodes = {
            config.node_of_core(c)
            for c in ((rank + j) % config.n_cores for j in range(1, r))
        } - {my_node}
        for _ in other_nodes:
            yield from ctx.compute(
                ctx.network.p2p_time(nbytes, same_node=False), kind="replicate"
            )
    yield from world.barrier(ctx)
    t_replicated = ctx.now

    paths = yield from world.gather(ctx, res.path, root=0)
    return {
        "partition": partition,
        "paths": paths,
        "t_partition": t_partition_done,
        "t_hnsw": t_hnsw_done - t_partition_done,
        "t_replicated": t_replicated,
    }


def run_build(config: SystemConfig, X: np.ndarray, metadata=None) -> BuildOutput:
    """Simulate the whole construction; return materialized partitions.

    ``metadata``: optional per-vector attribute columns — a
    :class:`~repro.filtering.MetadataStore` or a plain ``{name: column}``
    dict aligned with ``X``'s rows.  Each partition receives its rows'
    slice (``Partition.attrs``), which is what filtered queries predicate
    on at the workers.
    """
    P = config.n_cores
    if len(X) < P:
        raise ValueError(f"dataset has {len(X)} points for {P} partitions")
    if metadata is not None:
        from repro.filtering import MetadataStore

        if not isinstance(metadata, MetadataStore):
            metadata = MetadataStore(metadata)
        if len(metadata) != len(X):
            raise ValueError(
                f"metadata has {len(metadata)} rows, dataset has {len(X)}"
            )
    work_scale = 1.0
    if config.searcher == "modeled":
        work_scale = max(1.0, config.modeled_partition_points * P / len(X))

    sim = Simulation(network=config.network, cost=config.cost)
    rng = rng_for(config.seed, "equipartition")
    perm = rng.permutation(len(X))
    chunks = np.array_split(perm, P)

    # `world` is assigned after the procs are registered; the program
    # closures late-bind it and only dereference it once the sim runs.
    world: Comm

    def program_factory(rank):
        def program(ctx):
            return (
                yield from _builder_program(
                    ctx, world, config, X, np.sort(chunks[rank]), work_scale, metadata
                )
            )

        return program

    pids = [
        sim.add_proc(program_factory(rank), node=config.node_of_core(rank), name=f"build{rank}")
        for rank in range(P)
    ]
    world = Comm(sim, pids, "build")
    out = sim.run()

    results = [out.results[pid] for pid in pids]
    partitions = {r: results[r]["partition"] for r in range(P)}
    router = PartitionRouter.from_paths(results[0]["paths"], metric=config.metric) if P > 1 else None
    if router is None:
        from repro.vptree.router import RouteNode

        router = PartitionRouter(RouteNode(partition=0), 1, config.metric)

    workgroups = Workgroups(P, config.replication_factor)
    node_stores: dict[int, NodeStore] = {
        n: NodeStore(n) for n in range(config.n_nodes)
    }
    for pid_part in range(P):
        for core in workgroups.cores_for_partition(pid_part):
            node_stores[config.node_of_core(core)].add(partitions[pid_part])

    t_partition = max(r["t_partition"] for r in results)
    t_hnsw = max(r["t_hnsw"] for r in results)
    t_replicated = max(r["t_replicated"] for r in results)

    # build-phase instruments, merged into the runtime registry at query
    # time so build cost shows up in --metrics-out dumps like search cost
    metrics = MetricsRegistry()
    real_indexes = [
        p.index for p in partitions.values() if getattr(p, "index", None) is not None
    ]
    metrics.counter("hnsw.build.dist_evals").inc(
        sum(ix.n_dist_evals for ix in real_indexes)
    )
    metrics.counter("hnsw.build.shrink_ops").inc(
        sum(getattr(ix, "n_shrink_ops", 0) for ix in real_indexes)
    )
    metrics.gauge("hnsw.build.native_build_active").set(
        int(any(getattr(ix, "native_build_active", False) for ix in real_indexes))
    )
    return BuildOutput(
        router=router,
        partitions=partitions,
        node_stores=node_stores,
        workgroups=workgroups,
        total_seconds=out.makespan,
        hnsw_seconds=t_hnsw,
        vptree_seconds=t_partition,
        replication_seconds=max(0.0, t_replicated - t_partition - t_hnsw),
        partition_sizes=[partitions[r].n_points for r in range(P)],
        metrics=metrics,
    )
