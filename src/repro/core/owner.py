"""Multiple-owner search strategy (paper §IV, discussion paragraph).

Instead of one master, every node runs an *owner* process holding a replica
of the VP-tree skeleton; the owner of a query is chosen by a hash.  Each
owner routes and dispatches its queries, workers reply directly to the
owning node, and a final barrier among owners precedes the shutdown
broadcast.  The paper found this slightly faster than the master-worker
design at small scale but worse at large core counts because it cannot be
combined with workgroup-replication load balancing — the ablation bench
``test_ablation_owner_strategy`` reproduces that comparison.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SystemConfig
from repro.core.master import MasterReport
from repro.core.messages import (
    TAG_END,
    TAG_RESULT,
    TAG_TASK,
    filter_task_nbytes,
    task_nbytes,
)
from repro.core.replication import Workgroups
from repro.core.results import GlobalResults
from repro.simmpi.comm import Comm
from repro.simmpi.engine import Context, Mailbox
from repro.vptree.router import PartitionRouter

__all__ = ["owner_node_program"]


def owner_node_program(
    ctx: Context,
    config: SystemConfig,
    router: PartitionRouter,
    workgroups: Workgroups,
    Q: np.ndarray,
    my_query_ids: np.ndarray,
    results: GlobalResults,
    node_mailboxes: list[Mailbox],
    owner_comm: Comm,
    k: int,
    node_id: int,
    fpayload: dict | None = None,
):
    """One node's owner proc.  Returns a :class:`MasterReport`."""
    report = MasterReport(config.n_cores)
    expected = 0

    for qid in my_query_ids:
        q = Q[qid]
        with ctx.span("route"):
            before = router.n_dist_evals
            parts = router.route_approx(q, config.n_probe)
            evals = router.n_dist_evals - before
            report.route_dist_evals += evals
            yield from ctx.compute(ctx.cost.distance_cost(evals, Q.shape[1]), kind="route")
        report.fanouts.append(len(parts))
        with ctx.span("dispatch"):
            for pid_part in parts:
                core = workgroups.next_core(pid_part)
                report.dispatch_counts[core] += 1
                report.tasks_sent += 1
                report.batches_sent += 1
                node = config.node_of_core(core)
                if fpayload is not None:
                    # the filtered task shifts the reply mailbox to [5] to
                    # fit the filter payload at [4] (see make_filter_task)
                    msg = ("ftask", int(qid), int(pid_part), q, fpayload, ctx.mailbox)
                    nbytes = filter_task_nbytes(q, fpayload)
                else:
                    msg = ("task", int(qid), int(pid_part), q, ctx.mailbox)
                    nbytes = task_nbytes(q)
                yield from ctx.send_to_mailbox(
                    node_mailboxes[node],
                    msg,
                    source=ctx.pid,
                    tag=TAG_TASK,
                    nbytes=nbytes,
                    same_node=node == node_id,
                )
                expected += 1

    # collect results for this owner's queries
    for _ in range(expected):
        with ctx.span("reduce"):
            req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_RESULT)
            payload = yield from ctx.wait(req)
            _, qid, _pid_part, d, ids = payload
            yield from ctx.compute(ctx.cost.compare_cost(len(d) + k), kind="merge")
            results.update(qid, d, ids)

    # all owners done => all tasks answered => safe to shut workers down
    with ctx.span("drain"):
        yield from owner_comm.barrier(ctx)
        if owner_comm.rank(ctx) == 0:
            for node in range(config.n_nodes):
                for _ in range(config.threads_per_node):
                    yield from ctx.send_to_mailbox(
                        node_mailboxes[node],
                        ("end",),
                        source=ctx.pid,
                        tag=TAG_END,
                        nbytes=8,
                        same_node=False,
                    )
    return report
