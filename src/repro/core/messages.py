"""Wire protocol of the search phase.

Plain tags + tuple payloads; kept in one module so master, workers, and the
multiple-owner variant agree on the format and tests can build messages.

Filtered tasks ride their own payload kinds (``"ftask"`` / ``"fbtask"``)
with their own size functions: the existing builders are byte-for-byte
untouched, which is what keeps unfiltered runs bit-identical to the
golden digests.
"""

from __future__ import annotations

import json

import numpy as np

__all__ = [
    "TAG_TASK",
    "TAG_END",
    "TAG_RESULT",
    "TAG_THREAD_DONE",
    "TAG_CREDIT",
    "TAG_ARRIVE",
    "make_arrival",
    "arrival_nbytes",
    "make_task",
    "make_credit",
    "credit_nbytes",
    "task_nbytes",
    "make_result",
    "result_nbytes",
    "make_batch_task",
    "batch_task_nbytes",
    "make_batch_result",
    "batch_result_nbytes",
    "make_filter_task",
    "filter_task_nbytes",
    "make_filter_batch_task",
    "filter_batch_task_nbytes",
    "filter_payload_nbytes",
]

#: master/owner -> worker node: one (query, partition) unit of work
TAG_TASK = 1
#: master/owner -> worker node: no more queries (Alg. 3 "End of Queries")
TAG_END = 2
#: worker thread -> master/owner: local k-NN result (two-sided path)
TAG_RESULT = 3
#: worker thread -> master: thread exited (one-sided completion detection)
TAG_THREAD_DONE = 4
#: worker thread -> master: dispatch-credit return for one-sided tasks
#: (flow control only — sent when ``dispatch_window > 0``; on the
#: two-sided path the result message itself is the credit)
TAG_CREDIT = 5
#: arrival source -> master: a query arrived at the serving ingress
#: (open-loop serving only — see repro.serving)
TAG_ARRIVE = 6


def make_arrival(query_id: int, arrival_time: float) -> tuple:
    """An ingress notification: query ``query_id`` arrived at the client-
    scheduled virtual time ``arrival_time`` (the timestamp SLO latency is
    measured from)."""
    return ("arrive", int(query_id), float(arrival_time))


def arrival_nbytes() -> int:
    # query id + timestamp + header
    return 24


def make_task(query_id: int, partition_id: int, qvec: np.ndarray) -> tuple:
    return ("task", int(query_id), int(partition_id), qvec)


def task_nbytes(qvec: np.ndarray) -> int:
    # query vector + two ids + header
    return int(qvec.nbytes) + 24


def make_result(query_id: int, partition_id: int, dists: np.ndarray, ids: np.ndarray) -> tuple:
    """A worker's local k-NN answer for one (query, partition) task.

    The partition id rides along so a fault-tolerant collector can mark
    exactly which task completed and drop duplicates (late answers from
    timed-out attempts, or link-level message duplication).
    """
    return ("result", int(query_id), int(partition_id), dists, ids)


def result_nbytes(dists: np.ndarray, ids: np.ndarray) -> int:
    # distances + ids + query/partition ids + header
    return int(dists.nbytes + ids.nbytes) + 24


def make_batch_task(query_ids: list[int], partition_id: int, Q: np.ndarray) -> tuple:
    """B queries bound for the same partition, shipped as one message.

    The batch shares one header and one partition id, so its wire size for
    B = 1 is exactly :func:`task_nbytes` — a batch of one is
    indistinguishable from a plain task on the simulated fabric.
    """
    return ("btask", [int(q) for q in query_ids], int(partition_id), Q)


def batch_task_nbytes(Q: np.ndarray) -> int:
    # query matrix + one id per row + partition id + header
    return int(Q.nbytes) + 8 * int(Q.shape[0]) + 16


def make_filter_task(
    query_id: int, partition_id: int, qvec: np.ndarray, fpayload: dict
) -> tuple:
    """A task carrying a pushed-down filter.

    ``fpayload`` is the JSON-able filter description
    (``{"clauses": [FilterSpec dicts...], "strategy": ...}``); the worker
    reconstructs the predicates and evaluates them against its
    partition's attribute slice.  Owner-mode senders append their reply
    mailbox as a 6th element, mirroring the plain task's optional 5th.
    """
    return ("ftask", int(query_id), int(partition_id), qvec, fpayload)


def filter_payload_nbytes(fpayload: dict) -> int:
    """Wire bytes of the serialized filter description."""
    return len(json.dumps(fpayload, sort_keys=True, separators=(",", ":")))


def filter_task_nbytes(qvec: np.ndarray, fpayload: dict) -> int:
    # a plain task plus the serialized predicate payload
    return task_nbytes(qvec) + filter_payload_nbytes(fpayload)


def make_filter_batch_task(
    query_ids: list[int], partition_id: int, Q: np.ndarray, fpayload: dict
) -> tuple:
    """B filtered queries for one partition, sharing one filter payload."""
    return ("fbtask", [int(q) for q in query_ids], int(partition_id), Q, fpayload)


def filter_batch_task_nbytes(Q: np.ndarray, fpayload: dict) -> int:
    # the batch shares a single serialized predicate payload
    return batch_task_nbytes(Q) + filter_payload_nbytes(fpayload)


def make_credit(query_ids: list[int], partition_id: int) -> tuple:
    """A worker's flow-control ack: its one-sided accumulates for these
    (query, partition) tasks have landed, return their dispatch credits.

    Only exists on the one-sided path with ``dispatch_window > 0`` —
    two-sided results are their own credit return.
    """
    return ("credit", [int(q) for q in query_ids], int(partition_id))


def credit_nbytes(n_tasks: int) -> int:
    # one query id per settled task + partition id + header
    return 8 * int(n_tasks) + 16


def make_batch_result(
    query_ids: list[int],
    partition_id: int,
    dists: list[np.ndarray],
    ids: list[np.ndarray],
) -> tuple:
    """A worker's local k-NN answers for one batch task (row-aligned lists)."""
    return ("bresult", [int(q) for q in query_ids], int(partition_id), dists, ids)


def batch_result_nbytes(dists: list[np.ndarray], ids: list[np.ndarray]) -> int:
    # per-row distances + ids + one query id per row + partition id + header
    payload = sum(int(d.nbytes + i.nbytes) for d, i in zip(dists, ids))
    return payload + 8 * len(dists) + 16
