"""Wire protocol of the search phase.

Plain tags + tuple payloads; kept in one module so master, workers, and the
multiple-owner variant agree on the format and tests can build messages.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "TAG_TASK",
    "TAG_END",
    "TAG_RESULT",
    "TAG_THREAD_DONE",
    "make_task",
    "task_nbytes",
    "make_result",
    "result_nbytes",
]

#: master/owner -> worker node: one (query, partition) unit of work
TAG_TASK = 1
#: master/owner -> worker node: no more queries (Alg. 3 "End of Queries")
TAG_END = 2
#: worker thread -> master/owner: local k-NN result (two-sided path)
TAG_RESULT = 3
#: worker thread -> master: thread exited (one-sided completion detection)
TAG_THREAD_DONE = 4


def make_task(query_id: int, partition_id: int, qvec: np.ndarray) -> tuple:
    return ("task", int(query_id), int(partition_id), qvec)


def task_nbytes(qvec: np.ndarray) -> int:
    # query vector + two ids + header
    return int(qvec.nbytes) + 24


def make_result(query_id: int, partition_id: int, dists: np.ndarray, ids: np.ndarray) -> tuple:
    """A worker's local k-NN answer for one (query, partition) task.

    The partition id rides along so a fault-tolerant collector can mark
    exactly which task completed and drop duplicates (late answers from
    timed-out attempts, or link-level message duplication).
    """
    return ("result", int(query_id), int(partition_id), dists, ids)


def result_nbytes(dists: np.ndarray, ids: np.ndarray) -> int:
    # distances + ids + query/partition ids + header
    return int(dists.nbytes + ids.nbytes) + 24
