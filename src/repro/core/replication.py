"""Workgroups for replication-based load balancing (paper §IV-C2, Alg. 5).

With replication factor r, partition i's *workgroup* is the r consecutive
cores ``{p_i, p_(i+1) mod P, ..., p_(i+r-1) mod P}``.  Every node whose
cores appear in a workgroup loads a replica of that partition, and the
master dispatches each (query, partition) task to the workgroup's cores in
round-robin order via a per-group circular ``next`` pointer.

Replica selection is deterministic: with the default ``seed=None`` every
pointer starts at the group's first core (the paper's scheme, and the
behaviour the golden tests pin down); with an integer seed the starting
offsets are drawn reproducibly from ``random.Random(seed)``, which
de-synchronizes the round-robins across partitions while keeping
fault-injection and golden runs bit-for-bit repeatable.  ``next_core`` can
also *exclude* cores (suspected-dead replicas) — the hook the
fault-tolerant dispatcher uses for failover.
"""

from __future__ import annotations

from random import Random

from repro.simmpi.errors import SimConfigError

__all__ = ["Workgroups"]


class Workgroups:
    """Round-robin dispatch state over replicated partitions."""

    def __init__(self, n_cores: int, replication_factor: int, seed: int | None = None) -> None:
        if n_cores < 1:
            raise SimConfigError(f"n_cores must be >= 1, got {n_cores}")
        if not 1 <= replication_factor <= n_cores:
            raise SimConfigError(
                f"replication_factor must be in [1, {n_cores}], got {replication_factor}"
            )
        self.n_cores = n_cores
        self.r = replication_factor
        self.seed = seed
        self._groups = [
            [(i + j) % n_cores for j in range(replication_factor)] for i in range(n_cores)
        ]
        if seed is None:
            self._offsets = [0] * n_cores
        else:
            rng = Random(seed)
            self._offsets = [rng.randrange(replication_factor) for _ in range(n_cores)]
        self._next = list(self._offsets)

    def cores_for_partition(self, partition_id: int) -> list[int]:
        """The workgroup W_i (cores holding a replica of partition i)."""
        return list(self._groups[partition_id])

    def partitions_for_core(self, core: int) -> list[int]:
        """Partitions replicated onto ``core`` (inverse of the above)."""
        return sorted(
            (core - j) % self.n_cores for j in range(self.r)
        )

    def next_core(self, partition_id: int, exclude=()) -> int | None:
        """Round-robin pick from partition_id's workgroup (advances the
        circular pointer, Alg. 5 lines 10-11).

        Cores in ``exclude`` are skipped; returns None when the whole
        workgroup is excluded (no live replica — the degraded case).

        The choice is a pure function of ``(seed, partition_id, exclude)``
        and this partition's prior ``next_core`` call history: no hidden
        randomness is drawn per call, two instances built with the same
        ``(n_cores, replication_factor, seed)`` replay identical sequences,
        and excluding a core skips it *without* consuming the skipped
        pointer position — so load-balancing and failover runs are
        reproducible, which the golden tests rely on.
        """
        group = self._groups[partition_id]
        n = len(group)
        for step in range(n):
            idx = (self._next[partition_id] + step) % n
            core = group[idx]
            if core not in exclude:
                self._next[partition_id] = (idx + 1) % n
                return core
        return None

    def reset(self) -> None:
        """Rewind all circular pointers (between query batches)."""
        self._next = list(self._offsets)
