"""Workgroups for replication-based load balancing (paper §IV-C2, Alg. 5).

With replication factor r, partition i's *workgroup* is the r consecutive
cores ``{p_i, p_(i+1) mod P, ..., p_(i+r-1) mod P}``.  Every node whose
cores appear in a workgroup loads a replica of that partition, and the
master dispatches each (query, partition) task to the workgroup's cores in
round-robin order via a per-group circular ``next`` pointer.
"""

from __future__ import annotations

from repro.simmpi.errors import SimConfigError

__all__ = ["Workgroups"]


class Workgroups:
    """Round-robin dispatch state over replicated partitions."""

    def __init__(self, n_cores: int, replication_factor: int) -> None:
        if n_cores < 1:
            raise SimConfigError(f"n_cores must be >= 1, got {n_cores}")
        if not 1 <= replication_factor <= n_cores:
            raise SimConfigError(
                f"replication_factor must be in [1, {n_cores}], got {replication_factor}"
            )
        self.n_cores = n_cores
        self.r = replication_factor
        self._groups = [
            [(i + j) % n_cores for j in range(replication_factor)] for i in range(n_cores)
        ]
        self._next = [0] * n_cores

    def cores_for_partition(self, partition_id: int) -> list[int]:
        """The workgroup W_i (cores holding a replica of partition i)."""
        return list(self._groups[partition_id])

    def partitions_for_core(self, core: int) -> list[int]:
        """Partitions replicated onto ``core`` (inverse of the above)."""
        return sorted(
            (core - j) % self.n_cores for j in range(self.r)
        )

    def next_core(self, partition_id: int) -> int:
        """Round-robin pick from partition_id's workgroup (advances the
        circular pointer, Alg. 5 lines 10-11)."""
        group = self._groups[partition_id]
        core = group[self._next[partition_id]]
        self._next[partition_id] = (self._next[partition_id] + 1) % len(group)
        return core

    def reset(self) -> None:
        """Rewind all circular pointers (between query batches)."""
        self._next = [0] * self.n_cores
