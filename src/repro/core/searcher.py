"""Local search strategies executed by worker threads.

``LocalSearcher.search`` returns the local k-NN plus the *virtual seconds*
the search should cost on one simulated core.  Two implementations:

- :class:`RealHnswSearcher`: searches the partition's real HNSW index,
  charges exactly the distance evaluations the traversal performed.
  Results (and therefore recall) are genuine.  Used in fidelity mode.
- :class:`ModeledSearcher`: charges the analytic HNSW cost for a partition
  of the *paper-scale* virtual size (e.g. 1B/8192 points) while answering
  from a small real subsample so result messages carry realistic bytes.
  Used for the billion-point scaling experiments where indexing the real
  volume is impossible in this environment (see DESIGN.md substitutions).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core.partition import Partition
from repro.metrics import get_metric
from repro.simmpi.costmodel import CostModel

__all__ = [
    "LocalSearcher",
    "RealHnswSearcher",
    "ModeledSearcher",
    "generic_search_batch",
    "new_filter_stats",
]


def new_filter_stats() -> dict[str, int]:
    """Zeroed per-run filtered-search accounting.

    Both built-in searchers keep one of these dicts (the single searcher
    instance is shared by every worker proc of a run, so the counts are
    run-global); the runtime folds it into the metrics registry and the
    SearchReport after the simulation drains.
    """
    return {
        "filter_tasks_pre": 0,
        "filter_tasks_post": 0,
        "filter_evals_pre": 0,
        "filter_evals_post": 0,
        "filter_empty_tasks": 0,
    }


class LocalSearcher(Protocol):
    """Strategy interface: search one partition for one query."""

    def search(
        self, partition: Partition, query: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Return (distances, global ids, virtual_seconds)."""
        ...

    def build_seconds(self, partition: Partition) -> float:
        """Virtual cost of having built this partition's local index."""
        ...


def generic_search_batch(
    searcher: "LocalSearcher", partition: Partition, Q: np.ndarray, k: int
) -> tuple[list[np.ndarray], list[np.ndarray], float]:
    """Row-by-row batch fallback for searchers without a native batch path.

    Returns row-aligned result lists plus the summed virtual seconds; each
    row is exactly what ``searcher.search`` returns for that query, so
    batching never changes results or virtual cost — only how many python
    calls and simulated messages carry them.
    """
    ds: list[np.ndarray] = []
    idss: list[np.ndarray] = []
    seconds = 0.0
    for q in Q:
        d, ids, s = searcher.search(partition, q, k)
        ds.append(d)
        idss.append(ids)
        seconds += s
    return ds, idss, seconds


class RealHnswSearcher:
    """Search the partition's real HNSW index; charge measured evaluations."""

    def __init__(self, cost: CostModel, ef_search: int) -> None:
        self.cost = cost
        self.ef_search = ef_search
        self.filter_stats = new_filter_stats()

    def search_filtered(
        self,
        partition: Partition,
        query: np.ndarray,
        k: int,
        clauses,
        strategy: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Filtered local k-NN with the selectivity crossover.

        Evaluates the pushed-down predicate conjunction against the
        partition's attribute slice, then either brute-forces exactly the
        matching rows (``pre``; charged one eval per match) or runs the
        filtered HNSW traversal (``post``; charged its measured evals) —
        ``auto`` picks per the partition's matching fraction (see
        :mod:`repro.filtering.strategy`).
        """
        from repro.filtering import choose_strategy, mask_for

        index = partition.index
        if index is None:
            raise ValueError(
                f"partition {partition.partition_id} has no HNSW index; "
                "was the system built with searcher='modeled'?"
            )
        mask = mask_for(partition.attrs, clauses, partition.n_points)
        n_match = int(np.count_nonzero(mask))
        if n_match == 0:
            self.filter_stats["filter_empty_tasks"] += 1
            return (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
                0.0,
            )
        chosen = choose_strategy(strategy, n_match, partition.n_points, k)
        if chosen == "pre":
            rows = np.flatnonzero(mask)
            d = index.metric.one_to_many(query, partition.points[rows])
            order = np.lexsort((partition.ids[rows], d))[:k]
            d_out = np.asarray(d[order], dtype=np.float64)
            ids_out = np.asarray(partition.ids[rows][order], dtype=np.int64)
            evals = n_match
            self.filter_stats["filter_tasks_pre"] += 1
            self.filter_stats["filter_evals_pre"] += evals
        else:
            # row order == internal node order, so the row mask is the
            # index's node mask directly
            before = index.n_dist_evals
            d_out, ids_out = index.knn_search(
                query, k, ef=self.ef_search, filter=mask
            )
            evals = index.n_dist_evals - before
            self.filter_stats["filter_tasks_post"] += 1
            self.filter_stats["filter_evals_post"] += evals
        return d_out, ids_out, self.cost.distance_cost(evals, index.dim)

    def search_filtered_batch(
        self,
        partition: Partition,
        Q: np.ndarray,
        k: int,
        clauses,
        strategy: str = "auto",
    ) -> tuple[list[np.ndarray], list[np.ndarray], float]:
        """Row-aligned filtered batch; each row exactly ``search_filtered``."""
        ds: list[np.ndarray] = []
        idss: list[np.ndarray] = []
        seconds = 0.0
        for q in Q:
            d, ids, s = self.search_filtered(partition, q, k, clauses, strategy)
            ds.append(d)
            idss.append(ids)
            seconds += s
        return ds, idss, seconds

    def search(
        self, partition: Partition, query: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, float]:
        index = partition.index
        if index is None:
            raise ValueError(
                f"partition {partition.partition_id} has no HNSW index; "
                "was the system built with searcher='modeled'?"
            )
        before = index.n_dist_evals
        d, ids = index.knn_search(query, k, ef=self.ef_search)
        evals = index.n_dist_evals - before
        return d, ids, self.cost.distance_cost(evals, index.dim)

    def search_batch(
        self, partition: Partition, Q: np.ndarray, k: int
    ) -> tuple[list[np.ndarray], list[np.ndarray], float]:
        """Batch of queries against one partition via ``knn_search_batch``.

        Row ``i`` of the returned lists is bit-identical to
        ``self.search(partition, Q[i], k)`` (the index's batch method runs
        the same per-row traversal), and the summed eval charge equals the
        sum of the per-row charges — batching amortizes python dispatch
        only, never changes answers or virtual time.
        """
        index = partition.index
        if index is None:
            raise ValueError(
                f"partition {partition.partition_id} has no HNSW index; "
                "was the system built with searcher='modeled'?"
            )
        before = index.n_dist_evals
        D, I = index.knn_search_batch(Q, k, ef=self.ef_search)
        evals = index.n_dist_evals - before
        ds: list[np.ndarray] = []
        idss: list[np.ndarray] = []
        for i in range(len(Q)):
            valid = I[i] != -1  # strip the inf/-1 padding of short rows
            ds.append(D[i][valid])
            idss.append(I[i][valid])
        return ds, idss, self.cost.distance_cost(evals, index.dim)

    def build_seconds(self, partition: Partition) -> float:
        index = partition.index
        if index is None:
            return 0.0
        # exact counter value accumulated during this partition's build
        return self.cost.distance_cost(index.n_dist_evals, index.dim) + self.cost.graph_update_cost(
            len(index) * index.params.M
        )


class ModeledSearcher:
    """Charge paper-scale virtual cost; answer from a real subsample.

    ``virtual_points`` is the partition size being modelled (the paper's
    1B/P).  The subsample search is a brute-force scan of
    ``partition.sample`` — its own real cost is *not* charged (the virtual
    cost stands in for the full-scale search).
    """

    def __init__(
        self,
        cost: CostModel,
        ef_search: int,
        m: int,
        dim: int,
        virtual_points: int,
        metric: str = "l2",
        search_seconds: float | None = None,
    ) -> None:
        self.cost = cost
        self.ef_search = ef_search
        self.m = m
        self.dim = dim
        self.virtual_points = virtual_points
        self.metric = get_metric(metric)
        self.search_seconds = search_seconds
        self.filter_stats = new_filter_stats()

    def search(
        self, partition: Partition, query: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, float]:
        if self.search_seconds is not None:
            seconds = self.search_seconds
        else:
            seconds = self.cost.hnsw_search_cost(
                self.virtual_points, self.dim, self.ef_search, self.m
            )
        if partition.sample is None:
            return (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
                seconds,
            )
        pts, ids = partition.sample
        d = self.metric.one_to_many(query, pts)
        order = np.lexsort((ids, d))[:k]
        return d[order], ids[order], seconds

    def search_batch(
        self, partition: Partition, Q: np.ndarray, k: int
    ) -> tuple[list[np.ndarray], list[np.ndarray], float]:
        # dispatches through self.search, so GpuModeledSearcher's per-query
        # launch overhead is charged per batched row too
        return generic_search_batch(self, partition, Q, k)

    def search_filtered(
        self,
        partition: Partition,
        query: np.ndarray,
        k: int,
        clauses,
        strategy: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Filtered modeled search: answer from the matching sample rows.

        The virtual cost stays the modeled full-scale search cost (the
        model has no per-strategy refinement); the crossover decision is
        still taken — and counted in ``filter_stats`` — over the real
        partition mask so strategy accounting works in modeled runs too.
        """
        from repro.filtering import choose_strategy, mask_for

        mask = mask_for(partition.attrs, clauses, partition.n_points)
        n_match = int(np.count_nonzero(mask))
        if n_match == 0:
            self.filter_stats["filter_empty_tasks"] += 1
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64), 0.0
        chosen = choose_strategy(strategy, n_match, partition.n_points, k)
        self.filter_stats[f"filter_tasks_{'pre' if chosen == 'pre' else 'post'}"] += 1
        self.filter_stats[f"filter_evals_{'pre' if chosen == 'pre' else 'post'}"] += (
            n_match if chosen == "pre" else min(partition.n_points, self.ef_search * self.m)
        )
        # charge the (subclass-specific) modeled cost once; the unfiltered
        # answer rows are discarded
        _, _, seconds = self.search(partition, query, 1)
        if partition.sample is None:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64), seconds
        pts, ids = partition.sample
        if partition.sample_rows is not None:
            smask = mask[partition.sample_rows]
        else:
            # legacy partitions without recorded sample rows: map sample
            # ids back to partition rows once
            row_of = {int(g): r for r, g in enumerate(partition.ids)}
            smask = np.array([mask[row_of[int(g)]] for g in ids], dtype=bool)
        pts, ids = pts[smask], ids[smask]
        if not len(ids):
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64), seconds
        d = self.metric.one_to_many(query, pts)
        order = np.lexsort((ids, d))[:k]
        return (
            np.asarray(d[order], dtype=np.float64),
            np.asarray(ids[order], dtype=np.int64),
            seconds,
        )

    def search_filtered_batch(
        self,
        partition: Partition,
        Q: np.ndarray,
        k: int,
        clauses,
        strategy: str = "auto",
    ) -> tuple[list[np.ndarray], list[np.ndarray], float]:
        """Row-aligned filtered batch; each row exactly ``search_filtered``."""
        ds: list[np.ndarray] = []
        idss: list[np.ndarray] = []
        seconds = 0.0
        for q in Q:
            d, ids, s = self.search_filtered(partition, q, k, clauses, strategy)
            ds.append(d)
            idss.append(ids)
            seconds += s
        return ds, idss, seconds

    def build_seconds(self, partition: Partition) -> float:
        return self.cost.hnsw_build_cost(
            self.virtual_points, self.dim, max(self.ef_search, 100), self.m
        )


class GpuModeledSearcher(ModeledSearcher):
    """Future-work projection: GPU-accelerated local search (paper §VI).

    The paper proposes exploiting GPUs for local searching as future work.
    This searcher models a GPU worker with the standard two-term shape:
    the distance-evaluation work runs ``gpu_speedup`` times faster than the
    CPU cost model, but every search pays a fixed ``launch_overhead``
    (kernel launch + PCIe round trip).  Small partitions are therefore
    launch-bound and *slower* on the GPU — the crossover the projection
    bench locates.  Everything else (results from the real subsample,
    message flow) matches :class:`ModeledSearcher`.
    """

    def __init__(
        self,
        *args,
        gpu_speedup: float = 15.0,
        launch_overhead: float = 2.0e-5,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if gpu_speedup <= 0:
            raise ValueError(f"gpu_speedup must be positive, got {gpu_speedup}")
        if launch_overhead < 0:
            raise ValueError(f"launch_overhead must be >= 0, got {launch_overhead}")
        self.gpu_speedup = gpu_speedup
        self.launch_overhead = launch_overhead

    def search(self, partition: Partition, query: np.ndarray, k: int):
        d, ids, cpu_seconds = super().search(partition, query, k)
        return d, ids, self.launch_overhead + cpu_seconds / self.gpu_speedup
