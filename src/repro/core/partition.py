"""Data partitions and per-node partition stores."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hnsw.index import HnswIndex

__all__ = ["Partition", "NodeStore"]


@dataclass
class Partition:
    """One VP-tree leaf: a chunk of the dataset plus its local index.

    ``index`` is None when the system runs with the modeled searcher (the
    virtual partition is too large to index for real); ``sample`` then
    holds the small real subsample modeled searches answer from.
    """

    partition_id: int
    points: np.ndarray
    ids: np.ndarray
    index: HnswIndex | None = None
    sample: tuple[np.ndarray, np.ndarray] | None = None
    #: per-row attribute columns (this partition's slice of the build-time
    #: :class:`~repro.filtering.MetadataStore`); None on unfiltered builds.
    #: Row-aligned with ``points``/``ids`` — and, because the local HNSW
    #: inserts rows in order, with the index's internal node ids, so a row
    #: mask over these columns doubles as the index's filter mask.
    attrs: dict[str, np.ndarray] | None = None
    #: rows of ``points`` the modeled ``sample`` was drawn from (position-
    #: aligned with the sample's rows); None with a real index
    sample_rows: np.ndarray | None = None

    @property
    def n_points(self) -> int:
        return len(self.ids)

    @property
    def nbytes(self) -> int:
        base = int(self.points.nbytes + self.ids.nbytes)
        if self.attrs:
            base += int(sum(col.nbytes for col in self.attrs.values()))
        return base


@dataclass
class NodeStore:
    """All partitions resident in one compute node's shared memory.

    With replication factor r, a node stores not only the partitions of its
    own cores but every partition whose workgroup includes one of its cores
    — that is the memory cost of the load-balancing optimisation the paper
    calls out, and :meth:`total_bytes` is what the memory-budget check in
    the engine validates against the node's capacity.
    """

    node_id: int
    partitions: dict[int, Partition] = field(default_factory=dict)

    def add(self, partition: Partition) -> None:
        self.partitions[partition.partition_id] = partition

    def get(self, partition_id: int) -> Partition:
        try:
            return self.partitions[partition_id]
        except KeyError:
            raise KeyError(
                f"node {self.node_id} does not hold partition {partition_id}; "
                f"resident: {sorted(self.partitions)}"
            ) from None

    def __contains__(self, partition_id: int) -> bool:
        return partition_id in self.partitions

    def total_bytes(self) -> int:
        return sum(p.nbytes for p in self.partitions.values())
