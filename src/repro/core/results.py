"""Global k-NN result accumulation.

One slot per query holding the best-k (distances, ids) seen so far.  The
slot combiner is exactly the operation the paper implements remotely with
``MPI_Get_accumulate``: merge a worker's local k-NN into the global top-k.
The same object backs both result paths — as the master-side store in
two-sided mode and as the RMA window buffer in one-sided mode — so both
paths provably compute the same answer (a property test asserts this).
"""

from __future__ import annotations

import numpy as np

from repro.utils.heaps import merge_knn

__all__ = ["GlobalResults"]


class GlobalResults:
    """Fixed-size array of per-query top-k results."""

    def __init__(self, n_queries: int, k: int) -> None:
        if n_queries < 1:
            raise ValueError(f"n_queries must be >= 1, got {n_queries}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.n_queries = n_queries
        self.k = k
        self._slots: list[tuple[np.ndarray, np.ndarray] | None] = [None] * n_queries
        self.update_count = 0

    # dict/array protocol so the RMA Window can use this object as storage
    def __getitem__(self, qid: int):
        return self._slots[qid]

    def __setitem__(self, qid: int, value) -> None:
        self._slots[qid] = value

    def combine(self, old, update) -> tuple[np.ndarray, np.ndarray]:
        """Merge an incoming local result into a slot (the RMA combiner)."""
        self.update_count += 1
        if old is None:
            d, i = update
            order = np.lexsort((i, d))[: self.k]
            return np.asarray(d)[order], np.asarray(i)[order]
        return merge_knn([old, update], self.k)

    def update(self, qid: int, dists: np.ndarray, ids: np.ndarray) -> None:
        """Master-side (two-sided path) slot update."""
        if not 0 <= qid < self.n_queries:
            raise IndexError(f"query id {qid} out of range [0, {self.n_queries})")
        self._slots[qid] = self.combine(self._slots[qid], (dists, ids))

    def result_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(n_queries, k) distance and id matrices, inf/-1 padded."""
        D = np.full((self.n_queries, self.k), np.inf, dtype=np.float64)
        I = np.full((self.n_queries, self.k), -1, dtype=np.int64)
        for q, slot in enumerate(self._slots):
            if slot is None:
                continue
            d, i = slot
            n = min(len(d), self.k)
            D[q, :n] = d[:n]
            I[q, :n] = i[:n]
        return D, I
