"""The public facade: :class:`DistributedANN`.

``fit(X)`` simulates the distributed construction and materializes the
router, partitions, and node stores; ``query(Q)`` simulates one batch
search (master-worker or multiple-owner) and returns the k-NN results with
a full measurement report.  All times are virtual cluster seconds from the
simulation; all results are real (computed by the actual index structures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.build import BuildOutput, run_build
from repro.core.config import SystemConfig
from repro.core.owner import owner_node_program
from repro.core.results import GlobalResults
from repro.core.searcher import LocalSearcher, ModeledSearcher, RealHnswSearcher
from repro.core.worker import worker_thread_program
from repro.simmpi.engine import Event, Simulation
from repro.simmpi.trace import aggregate_stats
from repro.utils.validation import check_matrix

__all__ = ["DistributedANN", "BuildReport", "SearchReport"]


@dataclass
class BuildReport:
    """Construction measurements (Table II's quantities)."""

    #: full construction makespan, virtual seconds
    total_seconds: float
    #: slowest rank's HNSW-construction phase, virtual seconds
    hnsw_seconds: float
    #: slowest rank's VP-partitioning phase, virtual seconds
    vptree_seconds: float
    #: replica-distribution phase, virtual seconds (0 when r == 1)
    replication_seconds: float
    #: real points per partition
    partition_sizes: list[int]
    #: peak per-node resident bytes (replicas included)
    max_node_bytes: int


@dataclass
class SearchReport:
    """Batch-search measurements (Figs. 3-5, Table III quantities)."""

    #: total query time, virtual seconds (the paper's headline metric)
    total_seconds: float
    #: number of queries in the batch
    n_queries: int
    #: tasks dispatched (sum over queries of partition fan-out)
    tasks: int
    #: per-core dispatch counts (Fig. 4b's distribution)
    dispatch_counts: np.ndarray = field(default=None)
    #: mean partitions visited per query
    mean_fanout: float = 0.0
    #: aggregate worker time breakdown {compute, send, recv, wait, poll, rma}
    worker_breakdown: dict = field(default_factory=dict)
    #: aggregate master/owner time breakdown
    master_breakdown: dict = field(default_factory=dict)
    #: queries per virtual second
    throughput: float = 0.0
    #: engine events processed (simulation diagnostics)
    n_events: int = 0
    #: per-query completion latencies in virtual seconds (two-sided mode
    #: only; None when results return one-sided)
    query_latencies: np.ndarray | None = None

    @property
    def comm_fraction(self) -> float:
        """Fraction of summed busy time attributable to communication —
        the quantity Fig. 5 plots."""
        w = self.worker_breakdown
        m = self.master_breakdown
        comm = sum(w.get(x, 0.0) + m.get(x, 0.0) for x in ("send", "recv", "wait", "poll", "rma"))
        comp = w.get("compute", 0.0) + m.get("compute", 0.0)
        total = comm + comp
        return comm / total if total > 0 else 0.0


class DistributedANN:
    """Distributed VP-partitioned HNSW k-NN search on a simulated cluster.

    Example
    -------
    >>> from repro import DistributedANN, SystemConfig
    >>> import numpy as np
    >>> X = np.random.default_rng(0).normal(size=(2000, 32)).astype("float32")
    >>> ann = DistributedANN(SystemConfig(n_cores=4, cores_per_node=2))
    >>> ann.fit(X)                                        # doctest: +ELLIPSIS
    BuildReport(...)
    >>> D, I, report = ann.query(X[:5], k=3)
    >>> I.shape
    (5, 3)
    """

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or SystemConfig()
        self._build: BuildOutput | None = None
        self._dim: int | None = None

    # -- construction -----------------------------------------------------------

    def fit(self, X: np.ndarray) -> BuildReport:
        """Build the distributed index over ``X`` (simulated construction)."""
        X = check_matrix(X, "X")
        self._dim = X.shape[1]
        self._build = run_build(self.config, X)
        max_node_bytes = max(
            ns.total_bytes() for ns in self._build.node_stores.values()
        )
        return BuildReport(
            total_seconds=self._build.total_seconds,
            hnsw_seconds=self._build.hnsw_seconds,
            vptree_seconds=self._build.vptree_seconds,
            replication_seconds=self._build.replication_seconds,
            partition_sizes=self._build.partition_sizes,
            max_node_bytes=max_node_bytes,
        )

    @property
    def router(self):
        self._require_fitted()
        return self._build.router

    @property
    def partitions(self):
        self._require_fitted()
        return self._build.partitions

    def _require_fitted(self) -> None:
        if self._build is None:
            raise RuntimeError("call fit(X) before querying")

    def _make_searcher(self) -> LocalSearcher:
        cfg = self.config
        if cfg.searcher == "real":
            return RealHnswSearcher(cfg.cost, cfg.effective_ef_search)
        return ModeledSearcher(
            cfg.cost,
            cfg.effective_ef_search,
            cfg.hnsw.M,
            self._dim,
            cfg.modeled_partition_points,
            metric=cfg.metric,
            search_seconds=cfg.modeled_search_seconds,
        )

    # -- search ---------------------------------------------------------------------

    def query(
        self, Q: np.ndarray, k: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, SearchReport]:
        """Batch k-NN search.  Returns (distances, ids, report); rows of the
        (n_queries, k) outputs are closest-first, padded with inf/-1."""
        self._require_fitted()
        cfg = self.config
        Q = check_matrix(Q, "Q")
        if Q.shape[1] != self._dim:
            raise ValueError(f"queries are {Q.shape[1]}-d, index is {self._dim}-d")
        k = k or cfg.k
        if cfg.owner_strategy == "multiple":
            return self._query_multiple_owner(Q, k)
        return self._query_master_worker(Q, k)

    def _query_master_worker(self, Q, k):
        return self.query_with_searcher(Q, k, self._make_searcher())

    def query_with_searcher(
        self, Q: np.ndarray, k: int, searcher: LocalSearcher
    ) -> tuple[np.ndarray, np.ndarray, SearchReport]:
        """Batch search with a custom local searcher (the paper's §VI
        extensibility seam — see :mod:`repro.core.localindex`)."""
        from repro.core.runner import run_master_worker_search

        self._require_fitted()
        Q = check_matrix(Q, "Q")
        build = self._build
        return run_master_worker_search(
            self.config,
            build.router,
            build.workgroups,
            build.node_stores,
            searcher,
            Q,
            k,
        )

    # -- incremental updates ------------------------------------------------------

    def add_points(self, X_new: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        """Insert new points into the fitted index (a practical extension;
        the paper builds statically).

        Each point is routed through the VP skeleton to its containing
        partition (the leaf its descent reaches) and inserted into that
        partition's HNSW index and point store on every replica-holding
        node.  Partition sizes drift from perfectly balanced — the same
        behaviour a static VP split would show under inserts.  Returns the
        assigned global ids.  Only supported with the real searcher.
        """
        self._require_fitted()
        if self.config.searcher != "real":
            raise RuntimeError("add_points requires searcher='real'")
        X_new = check_matrix(X_new, "X_new")
        if X_new.shape[1] != self._dim:
            raise ValueError(f"new points are {X_new.shape[1]}-d, index is {self._dim}-d")
        existing_max = max(int(p.ids.max()) if p.n_points else -1 for p in self.partitions.values())
        if ids is None:
            ids = np.arange(existing_max + 1, existing_max + 1 + len(X_new), dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if len(ids) != len(X_new):
                raise ValueError(f"{len(ids)} ids for {len(X_new)} points")
        router = self._build.router
        for row, gid in zip(X_new, ids):
            pid_part = router.route_approx(row, 1)[0]
            part = self.partitions[pid_part]
            part.points = np.concatenate([part.points, row[np.newaxis, :]])
            part.ids = np.concatenate([part.ids, [gid]])
            part.index.add(row, ext_id=int(gid))
        return ids

    def _query_multiple_owner(self, Q, k):
        cfg = self.config
        sim = Simulation(network=cfg.network, cost=cfg.cost)
        results = GlobalResults(len(Q), k)
        searcher = self._make_searcher()
        build = self._build
        build.workgroups.reset()

        node_mailboxes = [sim.new_mailbox(f"node{n}") for n in range(cfg.n_nodes)]
        # owner of query q is node hash(q) = qid % n_nodes (the paper's hash
        # function is unspecified; modulo over the batch is the natural one)
        owner_of = np.arange(len(Q)) % cfg.n_nodes
        owner_pids = []
        from repro.simmpi.comm import Comm

        owner_comm_holder: list = [None]

        for node in range(cfg.n_nodes):
            my_queries = np.flatnonzero(owner_of == node)

            def owner(ctx, node=node, my_queries=my_queries):
                return (
                    yield from owner_node_program(
                        ctx,
                        cfg,
                        build.router,
                        build.workgroups,
                        Q,
                        my_queries,
                        results,
                        node_mailboxes,
                        owner_comm_holder[0],
                        searcher,
                        k,
                        node_id=node,
                    )
                )

            owner_pids.append(sim.add_proc(owner, node=node, name=f"owner_n{node}"))
        owner_comm_holder[0] = Comm(sim, owner_pids, "owners")

        for node in range(cfg.n_nodes):
            done = Event()
            store = build.node_stores[node]
            for t in range(cfg.threads_per_node):
                sim.add_proc(
                    worker_thread_program,
                    node_mailboxes[node],
                    store,
                    searcher,
                    k,
                    done,
                    sim.mailbox_of(owner_pids[node]),  # unused sink for tdone
                    None,
                    node=node,
                    name=f"worker_n{node}_t{t}",
                )

        out = sim.run()
        D, I = results.result_arrays()
        tasks = sum(out.results[p].tasks_sent for p in owner_pids)
        fanouts = [f for p in owner_pids for f in out.results[p].fanouts]
        counts = np.sum([out.results[p].dispatch_counts for p in owner_pids], axis=0)
        report = SearchReport(
            total_seconds=out.makespan,
            n_queries=len(Q),
            tasks=int(tasks),
            dispatch_counts=counts,
            mean_fanout=float(np.mean(fanouts)) if fanouts else 0.0,
            worker_breakdown=aggregate_stats(
                [s for s in out.stats.values() if s.name.startswith("worker")]
            ),
            master_breakdown=aggregate_stats(
                [s for s in out.stats.values() if s.name.startswith("owner")]
            ),
            throughput=len(Q) / out.makespan if out.makespan > 0 else float("inf"),
            n_events=out.n_events,
        )
        return D, I, report
