"""The public facade: :class:`DistributedANN`.

``fit(X)`` simulates the distributed construction and materializes the
router, partitions, and node stores; ``query(Q)`` simulates one batch
search (master-worker or multiple-owner) and returns the k-NN results with
a full measurement report.  All times are virtual cluster seconds from the
simulation; all results are real (computed by the actual index structures).

All query modes route through one :class:`~repro.runtime.ClusterRuntime`;
the mode-specific parts live in the
:class:`~repro.runtime.strategies.DispatchStrategy` the config selects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.build import BuildOutput, run_build
from repro.core.config import SystemConfig
from repro.core.searcher import LocalSearcher, ModeledSearcher, RealHnswSearcher
from repro.runtime.report import SearchReport
from repro.utils.validation import check_matrix

__all__ = ["DistributedANN", "BuildReport", "SearchReport"]


@dataclass
class BuildReport:
    """Construction measurements (Table II's quantities)."""

    #: full construction makespan, virtual seconds
    total_seconds: float
    #: slowest rank's HNSW-construction phase, virtual seconds
    hnsw_seconds: float
    #: slowest rank's VP-partitioning phase, virtual seconds
    vptree_seconds: float
    #: replica-distribution phase, virtual seconds (0 when r == 1)
    replication_seconds: float
    #: real points per partition
    partition_sizes: list[int]
    #: peak per-node resident bytes (replicas included)
    max_node_bytes: int


class DistributedANN:
    """Distributed VP-partitioned HNSW k-NN search on a simulated cluster.

    Example
    -------
    >>> from repro import DistributedANN, SystemConfig
    >>> import numpy as np
    >>> X = np.random.default_rng(0).normal(size=(2000, 32)).astype("float32")
    >>> ann = DistributedANN(SystemConfig(n_cores=4, cores_per_node=2))
    >>> ann.fit(X)                                        # doctest: +ELLIPSIS
    BuildReport(...)
    >>> D, I, report = ann.query(X[:5], k=3)
    >>> I.shape
    (5, 3)
    """

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or SystemConfig()
        self._build: BuildOutput | None = None
        self._dim: int | None = None

    # -- construction -----------------------------------------------------------

    def fit(self, X: np.ndarray, metadata=None) -> BuildReport:
        """Build the distributed index over ``X`` (simulated construction).

        ``metadata``: optional per-vector attribute columns — a
        :class:`~repro.filtering.MetadataStore` or a plain ``{name:
        column}`` dict row-aligned with ``X``.  Partitions receive their
        rows' slice, which is what ``query(filter=...)`` predicates on;
        a ``"tenant"`` column is what ``tenant=`` scoping matches.
        """
        X = check_matrix(X, "X")
        self._dim = X.shape[1]
        self._build = run_build(self.config, X, metadata=metadata)
        max_node_bytes = max(
            ns.total_bytes() for ns in self._build.node_stores.values()
        )
        return BuildReport(
            total_seconds=self._build.total_seconds,
            hnsw_seconds=self._build.hnsw_seconds,
            vptree_seconds=self._build.vptree_seconds,
            replication_seconds=self._build.replication_seconds,
            partition_sizes=self._build.partition_sizes,
            max_node_bytes=max_node_bytes,
        )

    @property
    def router(self):
        self._require_fitted()
        return self._build.router

    @property
    def partitions(self):
        self._require_fitted()
        return self._build.partitions

    def _require_fitted(self) -> None:
        if self._build is None:
            raise RuntimeError("call fit(X) before querying")

    def _make_searcher(self) -> LocalSearcher:
        cfg = self.config
        if cfg.searcher == "real":
            return RealHnswSearcher(cfg.cost, cfg.effective_ef_search)
        return ModeledSearcher(
            cfg.cost,
            cfg.effective_ef_search,
            cfg.hnsw.M,
            self._dim,
            cfg.modeled_partition_points,
            metric=cfg.metric,
            search_seconds=cfg.modeled_search_seconds,
        )

    # -- search ---------------------------------------------------------------------

    def query(
        self, Q: np.ndarray, k: int | None = None, *, filter=None, tenant=None
    ) -> tuple[np.ndarray, np.ndarray, SearchReport]:
        """Batch k-NN search.  Returns (distances, ids, report); rows of the
        (n_queries, k) outputs are closest-first, padded with inf/-1.

        ``filter``: restrict every query to rows matching the predicate —
        a :class:`~repro.filtering.FilterSpec`, its text form (JSON or
        shorthand like ``"tier=1,2"``), or a sequence of either (ANDed).
        ``tenant``: scope to one tenant's rows (an implicit ``tenant ==
        id`` clause over the build-time ``tenant`` metadata column).
        Both default to the config's ``filter`` / ``tenant`` fields;
        None everywhere keeps the run bit-identical to unfiltered.
        """
        self._require_fitted()
        Q = check_matrix(Q, "Q")
        if Q.shape[1] != self._dim:
            raise ValueError(f"queries are {Q.shape[1]}-d, index is {self._dim}-d")
        k = k or self.config.k
        return self._run_search(
            Q, k, self._make_searcher(), fpayload=self._resolve_filter(filter, tenant)
        )

    def query_with_searcher(
        self, Q: np.ndarray, k: int, searcher: LocalSearcher, *, filter=None, tenant=None
    ) -> tuple[np.ndarray, np.ndarray, SearchReport]:
        """Batch search with a custom local searcher (the paper's §VI
        extensibility seam — see :mod:`repro.core.localindex`)."""
        self._require_fitted()
        Q = check_matrix(Q, "Q")
        return self._run_search(
            Q, k, searcher, fpayload=self._resolve_filter(filter, tenant)
        )

    def _resolve_filter(self, filter, tenant) -> dict | None:  # noqa: A002
        """The run's wire filter payload, or None for an unfiltered run.

        Per-call arguments override the config's ``filter`` / ``tenant``
        defaults; the tenant becomes an implicit equality clause ANDed
        after the explicit ones.
        """
        from repro.filtering import FilterSpec, clauses_to_wire

        cfg = self.config
        if filter is None:
            filter = cfg.filter  # noqa: A001
        if tenant is None:
            tenant = cfg.tenant
        clauses = []
        if filter is not None:
            if isinstance(filter, (FilterSpec, str)):
                filter = (filter,)  # noqa: A001
            for f in filter:
                clauses.append(f if isinstance(f, FilterSpec) else FilterSpec.parse(f))
        if tenant is not None:
            clauses.append(FilterSpec("tenant", "eq", int(tenant)))
        if not clauses:
            return None
        payload = {
            "clauses": clauses_to_wire(clauses),
            "strategy": cfg.filter_strategy,
        }
        if tenant is not None:
            # the tenant rides the payload so the runtime can account and
            # cache-namespace per tenant (workers only read the clauses)
            payload["tenant"] = int(tenant)
        return payload

    def _run_search(
        self, Q: np.ndarray, k: int, searcher: LocalSearcher, fpayload: dict | None = None
    ) -> tuple[np.ndarray, np.ndarray, SearchReport]:
        # deferred import: repro.runtime's orchestration layer imports the
        # core role programs, so importing it at module scope would cycle
        from repro.runtime import ClusterRuntime, strategy_for

        build = self._build
        runtime = ClusterRuntime(self.config)
        if build.metrics is not None:
            # fold the build-phase hnsw.build.* instruments into the
            # runtime registry so every report/dump carries them
            runtime.metrics.merge(build.metrics)
        return runtime.run_search(
            strategy_for(self.config),
            build.router,
            build.workgroups,
            build.node_stores,
            searcher,
            Q,
            k,
            fpayload=fpayload,
        )

    # -- incremental updates ------------------------------------------------------

    def add_points(self, X_new: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        """Insert new points into the fitted index (a practical extension;
        the paper builds statically).

        Each point is routed through the VP skeleton to its containing
        partition (the leaf its descent reaches) and inserted into that
        partition's HNSW index and point store on every replica-holding
        node.  Partition sizes drift from perfectly balanced — the same
        behaviour a static VP split would show under inserts.  Returns the
        assigned global ids.  Only supported with the real searcher.
        """
        self._require_fitted()
        if self.config.searcher != "real":
            raise RuntimeError("add_points requires searcher='real'")
        X_new = check_matrix(X_new, "X_new")
        if X_new.shape[1] != self._dim:
            raise ValueError(f"new points are {X_new.shape[1]}-d, index is {self._dim}-d")
        existing_max = max(int(p.ids.max()) if p.n_points else -1 for p in self.partitions.values())
        if ids is None:
            ids = np.arange(existing_max + 1, existing_max + 1 + len(X_new), dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if len(ids) != len(X_new):
                raise ValueError(f"{len(ids)} ids for {len(X_new)} points")
        router = self._build.router
        # bucket rows by target partition so each partition's point store is
        # grown with one concatenate instead of one per point
        rows_by_partition: dict[int, list[int]] = {}
        for i in range(len(X_new)):
            pid_part = router.route_approx(X_new[i], 1)[0]
            rows_by_partition.setdefault(pid_part, []).append(i)
        for pid_part, row_idx in rows_by_partition.items():
            part = self.partitions[pid_part]
            part.points = np.concatenate([part.points, X_new[row_idx]])
            part.ids = np.concatenate([part.ids, ids[row_idx]])
            for i in row_idx:
                part.index.add(X_new[i], ext_id=int(ids[i]))
        return ids
