"""repro — distributed approximate k-NN search (CLUSTER 2020 reproduction).

A faithful, self-contained reimplementation of "Fast Scalable Approximate
Nearest Neighbor Search for High-dimensional Data" (Renga Bashyam &
Vadhiyar, IEEE CLUSTER 2020): dataset partitioning with distributed
vantage-point trees, HNSW local indexes, a master-worker batch-query engine
with MPI one-sided result accumulation and replication-based load
balancing — all running on a deterministic simulated MPI cluster so the
paper's 8192-core experiments reproduce on a laptop.

Quick start::

    import numpy as np
    from repro import DistributedANN, SystemConfig

    X = np.random.default_rng(0).normal(size=(4000, 64)).astype("float32")
    ann = DistributedANN(SystemConfig(n_cores=8, cores_per_node=4))
    ann.fit(X)
    D, I, report = ann.query(X[:100], k=10)
    print(report.total_seconds, report.comm_fraction)

Subpackages
-----------
- ``repro.core``      — the paper's system (partitioning, master/worker
  search, replication, one-sided results).
- ``repro.hnsw``      — HNSW graphs from scratch.
- ``repro.vptree``    — VP-trees: serial, routing, distributed build.
- ``repro.kdtree``    — the exact KD-tree baseline (PANDA-style).
- ``repro.simmpi``    — the simulated MPI runtime (engine/comm/RMA).
- ``repro.datasets``  — synthetic corpora, file formats, ground truth.
- ``repro.metrics``   — vectorized distance metrics.
- ``repro.eval``      — recall, load statistics, scaling tables.
- ``repro.obs``       — metrics registry, per-query traces, exporters.
- ``repro.filtering`` — per-vector metadata, filter predicates, tenants.

The names below are the supported public surface; everything else under
``repro.*`` is internal and may move between releases.
``tests/test_public_api.py`` pins this list — extend it deliberately, in
both places.
"""

from repro.core import DistributedANN, SystemConfig, BuildReport, SearchReport
from repro.core.replication import Workgroups
from repro.faults import FaultSpec
from repro.filtering import FilterSpec, MetadataStore
from repro.hnsw import HnswIndex, HnswParams
from repro.kdtree import KDTree
from repro.loadbalance import ReplicaSelector
from repro.obs import MetricsRegistry, TraceRecorder
from repro.protocols import Searcher
from repro.runtime import ClusterRuntime
from repro.vptree import VPTree, PartitionRouter

__version__ = "1.0.0"

__all__ = [
    "BuildReport",
    "ClusterRuntime",
    "DistributedANN",
    "FaultSpec",
    "FilterSpec",
    "HnswIndex",
    "HnswParams",
    "KDTree",
    "MetadataStore",
    "MetricsRegistry",
    "PartitionRouter",
    "ReplicaSelector",
    "Searcher",
    "SearchReport",
    "SystemConfig",
    "TraceRecorder",
    "VPTree",
    "Workgroups",
    "__version__",
]
