"""Uniform search reporting for every dispatch strategy.

:class:`SearchReport` is the public measurement record a batch search
returns (Figs. 3-5, Table III quantities).  :class:`ReportBuilder` is the
single place that assembles it from a finished
:class:`~repro.simmpi.engine.SimulationResult` — identically for
master-worker two-sided, master-worker one-sided, and multiple-owner runs —
so report semantics can never drift between strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simmpi.engine import SimulationResult
from repro.simmpi.trace import aggregate_spans, aggregate_stats

__all__ = ["SearchReport", "ReportBuilder"]


@dataclass
class SearchReport:
    """Batch-search measurements (Figs. 3-5, Table III quantities)."""

    #: total query time, virtual seconds (the paper's headline metric)
    total_seconds: float
    #: number of queries in the batch
    n_queries: int
    #: tasks dispatched (sum over queries of partition fan-out)
    tasks: int
    #: per-core dispatch counts (Fig. 4b's distribution)
    dispatch_counts: np.ndarray | None = None
    #: mean partitions visited per query
    mean_fanout: float = 0.0
    #: aggregate worker time breakdown {compute, send, recv, wait, poll, rma}
    worker_breakdown: dict = field(default_factory=dict)
    #: aggregate master/owner time breakdown
    master_breakdown: dict = field(default_factory=dict)
    #: engine events processed (simulation diagnostics)
    n_events: int = 0
    #: per-query completion latencies in virtual seconds (two-sided
    #: master-worker mode only; None when results return one-sided or when
    #: multiple owners each observe only their own slice)
    query_latencies: np.ndarray | None = None
    #: elapsed virtual seconds per pipeline phase, summed over all procs —
    #: keys always include :data:`~repro.simmpi.trace.PHASES`
    phase_breakdown: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Queries per virtual second (0.0 for a degenerate zero-time run)."""
        if self.total_seconds > 0:
            return self.n_queries / self.total_seconds
        return 0.0

    @property
    def comm_fraction(self) -> float:
        """Fraction of summed busy time attributable to communication —
        the quantity Fig. 5 plots."""
        w = self.worker_breakdown
        m = self.master_breakdown
        comm = sum(w.get(x, 0.0) + m.get(x, 0.0) for x in ("send", "recv", "wait", "poll", "rma"))
        comp = w.get("compute", 0.0) + m.get("compute", 0.0)
        total = comm + comp
        return comm / total if total > 0 else 0.0


class ReportBuilder:
    """Reduce one finished simulation to a :class:`SearchReport`.

    The coordinator procs (one master, or one owner per node) each return a
    :class:`~repro.core.master.MasterReport`; everything else in the
    simulation is a worker thread.  The builder sums coordinator reports,
    partitions the proc stats by pid, and aggregates span times — the same
    arithmetic for every strategy.
    """

    def __init__(
        self,
        out: SimulationResult,
        coordinator_pids: list[int],
        n_queries: int,
    ) -> None:
        self.out = out
        self.coordinator_pids = list(coordinator_pids)
        self.n_queries = n_queries

    def build(self) -> SearchReport:
        out = self.out
        coord = set(self.coordinator_pids)
        creports = [out.results[p] for p in self.coordinator_pids]
        coord_stats = [out.stats[p] for p in self.coordinator_pids]
        worker_stats = [s for p, s in out.stats.items() if p not in coord]

        tasks = sum(r.tasks_sent for r in creports)
        counts = np.sum([r.dispatch_counts for r in creports], axis=0)
        fanouts = [f for r in creports for f in r.fanouts]
        # per-query latency is only observable when a single coordinator saw
        # every result land (the two-sided master); owners each see only
        # their own slice and one-sided results bypass the master entirely
        latencies = creports[0].query_latencies if len(creports) == 1 else None

        return SearchReport(
            total_seconds=out.makespan,
            n_queries=self.n_queries,
            tasks=int(tasks),
            dispatch_counts=counts,
            mean_fanout=float(np.mean(fanouts)) if fanouts else 0.0,
            worker_breakdown=aggregate_stats(worker_stats),
            master_breakdown=aggregate_stats(coord_stats),
            n_events=out.n_events,
            query_latencies=latencies,
            phase_breakdown=aggregate_spans(list(out.stats.values())),
        )
