"""Uniform search reporting for every dispatch strategy.

:class:`SearchReport` is the public measurement record a batch search
returns (Figs. 3-5, Table III quantities).  :class:`ReportBuilder` is the
single place that assembles it from a finished
:class:`~repro.simmpi.engine.SimulationResult` — identically for
master-worker two-sided, master-worker one-sided, and multiple-owner runs —
so report semantics can never drift between strategies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Any

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.simmpi.engine import SimulationResult
from repro.simmpi.trace import aggregate_spans, aggregate_stats

__all__ = ["SearchReport", "ReportBuilder", "REPORT_SCHEMA"]

#: schema version stamped on SearchReport.to_dict() payloads
REPORT_SCHEMA = "repro.search_report/v1"

# array-valued SearchReport fields and how from_dict() rebuilds them
_INT_ARRAY_FIELDS = ("dispatch_counts",)
_FLOAT_ARRAY_FIELDS = (
    "query_latencies",
    "core_busy_seconds",
    "completeness",
    "arrival_times",
    "dispatch_times",
    "complete_times",
)
_FLOAT_ARRAY_2D_FIELDS = ("queue_depth_timeline",)


def _json_safe(value):
    """Recursively convert to strict-JSON-safe python: numpy scalars to
    builtins, non-finite floats (NaN rows of shed queries) to None."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def _float_array(values, ndim: int = 1) -> np.ndarray:
    """Rebuild a float array from a JSON list, None entries -> NaN."""
    if ndim == 2:
        rows = [[math.nan if x is None else float(x) for x in row] for row in values]
        return np.asarray(rows, dtype=np.float64).reshape(-1, 2)
    return np.asarray(
        [math.nan if x is None else float(x) for x in values], dtype=np.float64
    )


@dataclass
class SearchReport:
    """Batch-search measurements (Figs. 3-5, Table III quantities)."""

    #: total query time, virtual seconds (the paper's headline metric)
    total_seconds: float
    #: number of queries in the batch
    n_queries: int
    #: tasks dispatched (sum over queries of partition fan-out)
    tasks: int
    #: task *messages* sent; equals ``tasks`` at batch_size 1 and shrinks
    #: toward ``tasks / batch_size`` as dispatch batching kicks in
    task_messages: int = 0
    #: per-core dispatch counts (Fig. 4b's distribution)
    dispatch_counts: np.ndarray | None = None
    #: mean partitions visited per query
    mean_fanout: float = 0.0
    #: aggregate worker time breakdown {compute, send, recv, wait, poll, rma}
    worker_breakdown: dict = field(default_factory=dict)
    #: aggregate master/owner time breakdown
    master_breakdown: dict = field(default_factory=dict)
    #: engine events processed (simulation diagnostics)
    n_events: int = 0
    #: per-query completion latencies in virtual seconds (two-sided
    #: master-worker mode only; None when results return one-sided or when
    #: multiple owners each observe only their own slice)
    query_latencies: np.ndarray | None = None
    # -- load-balance measurements (see repro.loadbalance) --
    #: observed busy virtual seconds per core — each worker thread's
    #: compute + active communication time (blocked waits excluded), the
    #: quantity whose max/mean is :attr:`imbalance_factor`.  Threads of one
    #: node share a task queue, so with cores_per_node > 1 imbalance shows
    #: at node granularity.
    core_busy_seconds: np.ndarray | None = None
    #: (virtual time, total modeled queued tasks) samples from the master's
    #: LoadTracker — queue depth over virtual time; None when no single
    #: dispatcher observed the whole batch.  One sample per dispatch on
    #: small runs; capped/downsampled on large ones (see
    #: LoadTracker.max_timeline_samples and docs/load_balancing.md)
    queue_depth_timeline: np.ndarray | None = None
    # -- pipelined dispatch measurements (zeros at dispatch_window == 0) --
    #: virtual seconds the coordinator spent blocked on dispatch credits
    credit_stall_seconds: float = 0.0
    #: peak tasks simultaneously in flight under credit accounting
    max_outstanding_tasks: int = 0
    #: dispatch credits still charged when the run ended — 0 on a correct
    #: run (failover must reclaim a crashed worker's credits)
    credits_leaked: int = 0
    #: elapsed virtual seconds per pipeline phase, summed over all procs —
    #: keys always include :data:`~repro.simmpi.trace.PHASES`
    phase_breakdown: dict = field(default_factory=dict)
    # -- fault-tolerance measurements (zeros / None on fault-free runs) --
    #: re-dispatches to the same core after a task timeout
    retries: int = 0
    #: re-dispatches to a different replica after a task timeout
    failovers: int = 0
    #: tasks abandoned after exhausting attempts / live replicas
    failed_tasks: int = 0
    #: late or duplicated results dropped by the dedup at the master
    duplicate_results: int = 0
    #: cores the dispatcher suspected dead (repeated timeouts)
    suspected_dead_cores: list = field(default_factory=list)
    #: per-query fraction of routed partitions that answered, in [0, 1];
    #: None unless the fault-tolerant dispatcher ran
    completeness: np.ndarray | None = None
    #: injected fault events ((virtual time, kind, detail) tuples) recorded
    #: by the FaultInjector during the run
    fault_events: tuple = ()
    #: pids killed by injected rank crashes
    crashed_pids: tuple = ()
    # -- open-loop serving measurements (zeros / None on closed-loop runs) --
    #: queries the arrival process offered to the serving ingress
    offered_queries: int = 0
    #: queries that entered service (includes cache hits)
    admitted_queries: int = 0
    #: queued queries dropped by the shed-oldest overload policy
    shed_queries: int = 0
    #: arrivals refused outright by the reject overload policy
    rejected_queries: int = 0
    #: peak ingress-queue occupancy during the run
    max_ingress_depth: int = 0
    #: hot-query result cache counters (zeros when the cache was off)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stale: int = 0
    cache_evictions: int = 0
    #: per-query serving timestamps on the virtual clock (None on
    #: closed-loop runs; NaN entries for shed/rejected queries).  In
    #: serving runs :attr:`query_latencies` is ``complete - arrival`` —
    #: the arrival-to-completion latency the SLO is judged on.
    arrival_times: np.ndarray | None = None
    dispatch_times: np.ndarray | None = None
    complete_times: np.ndarray | None = None
    #: the run's SLO target in virtual seconds (0 = no target set)
    slo_target_seconds: float = 0.0
    # -- filtered & multi-tenant search (zeros on unfiltered runs) --
    #: queries that carried a filter predicate (the filter is per-run, so
    #: this is the whole batch or zero)
    filtered_queries: int = 0
    #: filtered tasks answered by brute force over the matching rows
    #: (the low-selectivity "pre" strategy)
    filter_tasks_pre: int = 0
    #: filtered tasks answered by filtered graph traversal (the
    #: high-selectivity "post" strategy)
    filter_tasks_post: int = 0
    #: distance evaluations charged by pre-strategy (brute-force) tasks
    filter_evals_pre: int = 0
    #: distance evaluations charged by post-strategy (traversal) tasks
    filter_evals_post: int = 0
    #: filtered tasks whose partition held no matching row at all
    filter_empty_tasks: int = 0
    #: recall of the filtered answers against brute force over the
    #: matching rows; filled by the eval/bench layer, 0.0 when unmeasured
    filtered_recall: float = 0.0
    #: tenant the run's queries belong to (-1 = single-tenant run)
    tenant_id: int = -1
    #: queries served under that tenant (0 when ``tenant_id`` is -1)
    tenant_queries: int = 0
    #: unified metrics-registry dump for the run (see repro.obs.metrics):
    #: {"counters": ..., "gauges": ..., "histograms": ...}
    metrics: dict = field(default_factory=dict)
    #: the run's :class:`~repro.obs.trace.TraceRecorder` when observability
    #: was enabled (None otherwise); excluded from :meth:`to_dict`
    trace: Any = field(default=None, repr=False, compare=False)

    # -- JSON round-trip ---------------------------------------------------

    def to_dict(self) -> dict:
        """Strict-JSON-safe dict: numpy arrays become lists, NaN entries
        (shed/rejected queries) become None.  Round-trips via
        :meth:`from_dict`; the live ``trace`` handle is excluded."""
        out: dict = {"schema": REPORT_SCHEMA}
        for f in fields(self):
            if f.name == "trace":
                continue
            value = getattr(self, f.name)
            if isinstance(value, np.ndarray):
                value = value.tolist()
            elif f.name == "fault_events":
                value = [
                    {"time": e.time, "kind": e.kind, "detail": dict(e.detail)}
                    for e in value
                ]
            out[f.name] = _json_safe(value)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SearchReport":
        """Inverse of :meth:`to_dict` (None entries back to NaN)."""
        known = {f.name for f in fields(cls)} - {"trace"}
        kwargs = {}
        for name, value in data.items():
            if name not in known:
                continue
            if value is not None:
                if name in _INT_ARRAY_FIELDS:
                    value = np.asarray(value, dtype=np.int64)
                elif name in _FLOAT_ARRAY_FIELDS:
                    value = _float_array(value)
                elif name in _FLOAT_ARRAY_2D_FIELDS:
                    value = _float_array(value, ndim=2)
                elif name == "fault_events":
                    from repro.faults.injector import FaultEvent

                    value = tuple(
                        FaultEvent(
                            time=e["time"], kind=e["kind"], detail=e.get("detail") or {}
                        )
                        for e in value
                    )
                elif name == "crashed_pids":
                    value = tuple(value)
            kwargs[name] = value
        return cls(**kwargs)

    @property
    def queue_seconds(self) -> np.ndarray | None:
        """Per-query time-in-queue (arrival to service start), serving only."""
        if self.arrival_times is None or self.dispatch_times is None:
            return None
        return self.dispatch_times - self.arrival_times

    @property
    def service_seconds(self) -> np.ndarray | None:
        """Per-query time-in-service (service start to completion), serving only."""
        if self.dispatch_times is None or self.complete_times is None:
            return None
        return self.complete_times - self.dispatch_times

    @property
    def slo_violation_fraction(self) -> float:
        """Fraction of *offered* queries that missed the SLO.

        A query violates by completing slower than the target **or** by
        never completing at all (shed / rejected) — a dropped query is a
        violation from the client's side of the wire.  0.0 when no
        target was set or the run was closed-loop.
        """
        if self.slo_target_seconds <= 0.0 or self.offered_queries == 0:
            return 0.0
        lat = self.query_latencies
        late = 0
        if lat is not None:
            late = int(np.sum(lat[np.isfinite(lat)] > self.slo_target_seconds))
        return (late + self.shed_queries + self.rejected_queries) / self.offered_queries

    @property
    def availability(self) -> float:
        """Fraction of queries answered with full completeness (1.0 when no
        fault-tolerant accounting was active)."""
        if self.completeness is None or len(self.completeness) == 0:
            return 1.0
        return float(np.mean(self.completeness >= 1.0))

    @property
    def degraded_queries(self) -> int:
        """Number of queries flagged partial (completeness < 1)."""
        if self.completeness is None:
            return 0
        return int(np.sum(self.completeness < 1.0))

    @property
    def imbalance_factor(self) -> float:
        """Max/mean observed per-core busy time — 1.0 is perfect balance;
        the straggler factor that bounds the batch makespan (Fig. 4's
        quantity, measured in time rather than task counts)."""
        if self.core_busy_seconds is None or len(self.core_busy_seconds) == 0:
            return 1.0
        mean = float(np.mean(self.core_busy_seconds))
        if mean <= 0.0:
            return 1.0
        return float(np.max(self.core_busy_seconds)) / mean

    @property
    def throughput(self) -> float:
        """Queries per virtual second (0.0 for a degenerate zero-time run)."""
        if self.total_seconds > 0:
            return self.n_queries / self.total_seconds
        return 0.0

    @property
    def comm_fraction(self) -> float:
        """Fraction of summed busy time attributable to communication —
        the quantity Fig. 5 plots."""
        w = self.worker_breakdown
        m = self.master_breakdown
        comm = sum(w.get(x, 0.0) + m.get(x, 0.0) for x in ("send", "recv", "wait", "poll", "rma"))
        comp = w.get("compute", 0.0) + m.get("compute", 0.0)
        total = comm + comp
        return comm / total if total > 0 else 0.0


class ReportBuilder:
    """Reduce one finished simulation to a :class:`SearchReport`.

    The coordinator procs (one master, or one owner per node) each return a
    :class:`~repro.core.master.MasterReport`; everything else in the
    simulation is a worker thread.  The builder sums coordinator reports,
    partitions the proc stats by pid, and aggregates span times — the same
    arithmetic for every strategy.
    """

    def __init__(
        self,
        out: SimulationResult,
        coordinator_pids: list[int],
        n_queries: int,
        worker_cores: dict[int, int] | None = None,
        aux_pids: tuple = (),
        slo_target_seconds: float = 0.0,
        metrics=None,
        trace=None,
    ) -> None:
        self.out = out
        self.coordinator_pids = list(coordinator_pids)
        self.n_queries = n_queries
        #: worker pid -> simulated core id, for the per-core busy vector
        self.worker_cores = dict(worker_cores) if worker_cores else {}
        #: infrastructure procs (e.g. the serving arrival source) that are
        #: neither coordinator nor worker: excluded from worker stats so an
        #: arrival source idling between arrivals never skews the breakdown
        self.aux_pids = set(aux_pids)
        self.slo_target_seconds = float(slo_target_seconds)
        #: the run-wide MetricsRegistry (engine + shared coordinator counts)
        self.metrics = metrics
        #: the run's TraceRecorder, passed through to the report
        self.trace = trace

    def _finish(self, report: SearchReport, creports: list) -> SearchReport:
        """Attach the unified observability artifacts to a built report.

        Distinct registries (the run-wide one plus any private
        per-coordinator ones, deduplicated by identity — the master-worker
        strategy shares a single registry, the owners each carry their own)
        merge into one dump, and per-query latencies feed the latency
        histogram."""
        merged = MetricsRegistry()
        seen: set[int] = set()
        for registry in [self.metrics] + [getattr(r, "registry", None) for r in creports]:
            if registry is None or id(registry) in seen:
                continue
            seen.add(id(registry))
            merged.merge(registry)
        if report.query_latencies is not None:
            hist = merged.histogram("query.latency_seconds")
            for lat in report.query_latencies:
                if np.isfinite(lat):
                    hist.observe(float(lat))
        report.metrics = merged.dump()
        report.trace = self.trace
        return report

    def _core_busy(self) -> np.ndarray | None:
        """Observed busy seconds per core: compute plus active send/recv/
        poll/RMA time, excluding blocked communication waits (a core
        waiting for work is idle, not loaded)."""
        if not self.worker_cores:
            return None
        busy = np.zeros(max(self.worker_cores.values()) + 1, dtype=np.float64)
        for pid, core in self.worker_cores.items():
            stats = self.out.stats.get(pid)
            if stats is not None:
                busy[core] += stats.busy_total - stats.comm_wait
        return busy

    def build(self) -> SearchReport:
        out = self.out
        coord = set(self.coordinator_pids)
        # a coordinator killed by an injected crash never returned a report
        creports = [r for r in (out.results[p] for p in self.coordinator_pids) if r is not None]
        coord_stats = [out.stats[p] for p in self.coordinator_pids]
        worker_stats = [
            s for p, s in out.stats.items() if p not in coord and p not in self.aux_pids
        ]

        if not creports:  # every coordinator crashed: nothing was answered
            return self._finish(SearchReport(
                total_seconds=out.makespan,
                n_queries=self.n_queries,
                tasks=0,
                dispatch_counts=None,
                worker_breakdown=aggregate_stats(worker_stats),
                master_breakdown=aggregate_stats(coord_stats),
                n_events=out.n_events,
                phase_breakdown=aggregate_spans(list(out.stats.values())),
                core_busy_seconds=self._core_busy(),
                completeness=np.zeros(self.n_queries),
                fault_events=tuple(out.fault_events),
                crashed_pids=tuple(out.crashed_pids),
            ), creports)

        tasks = sum(r.tasks_sent for r in creports)
        task_messages = sum(r.batches_sent for r in creports)
        counts = np.sum([r.dispatch_counts for r in creports], axis=0)
        fanouts = [f for r in creports for f in r.fanouts]
        # per-query latency is only observable when a single coordinator saw
        # every result land (the two-sided master); owners each see only
        # their own slice and one-sided results bypass the master entirely
        latencies = creports[0].query_latencies if len(creports) == 1 else None
        # completeness is per-query, so it only composes from a single
        # coordinator (the fault-tolerant master)
        completeness = creports[0].completeness if len(creports) == 1 else None
        # the queue-depth timeline likewise requires one dispatcher having
        # observed every dispatch (owners each see only their slice)
        timeline = (
            getattr(creports[0], "queue_depth_timeline", None) if len(creports) == 1 else None
        )

        return self._finish(SearchReport(
            total_seconds=out.makespan,
            n_queries=self.n_queries,
            tasks=int(tasks),
            task_messages=int(task_messages),
            dispatch_counts=counts,
            mean_fanout=float(np.mean(fanouts)) if fanouts else 0.0,
            worker_breakdown=aggregate_stats(worker_stats),
            master_breakdown=aggregate_stats(coord_stats),
            n_events=out.n_events,
            query_latencies=latencies,
            phase_breakdown=aggregate_spans(list(out.stats.values())),
            core_busy_seconds=self._core_busy(),
            queue_depth_timeline=timeline,
            credit_stall_seconds=sum(
                getattr(r, "credit_stall_seconds", 0.0) for r in creports
            ),
            max_outstanding_tasks=max(
                getattr(r, "max_outstanding_tasks", 0) for r in creports
            ),
            credits_leaked=sum(getattr(r, "credits_leaked", 0) for r in creports),
            retries=sum(r.retries for r in creports),
            failovers=sum(r.failovers for r in creports),
            failed_tasks=sum(r.failed_tasks for r in creports),
            duplicate_results=sum(r.duplicate_results for r in creports),
            suspected_dead_cores=sorted(
                {c for r in creports for c in r.suspected_dead_cores}
            ),
            completeness=completeness,
            fault_events=tuple(out.fault_events),
            crashed_pids=tuple(out.crashed_pids),
            offered_queries=sum(getattr(r, "offered_queries", 0) for r in creports),
            admitted_queries=sum(getattr(r, "admitted_queries", 0) for r in creports),
            shed_queries=sum(getattr(r, "shed_queries", 0) for r in creports),
            rejected_queries=sum(getattr(r, "rejected_queries", 0) for r in creports),
            max_ingress_depth=max(
                (getattr(r, "max_ingress_depth", 0) for r in creports), default=0
            ),
            cache_hits=sum(getattr(r, "cache_hits", 0) for r in creports),
            cache_misses=sum(getattr(r, "cache_misses", 0) for r in creports),
            cache_stale=sum(getattr(r, "cache_stale", 0) for r in creports),
            cache_evictions=sum(getattr(r, "cache_evictions", 0) for r in creports),
            arrival_times=(
                getattr(creports[0], "arrival_times", None) if len(creports) == 1 else None
            ),
            dispatch_times=(
                getattr(creports[0], "dispatch_times", None) if len(creports) == 1 else None
            ),
            complete_times=(
                getattr(creports[0], "complete_times", None) if len(creports) == 1 else None
            ),
            slo_target_seconds=self.slo_target_seconds,
        ), creports)
