"""The ClusterRuntime: one simulated batch search, any dispatch strategy.

This is the single orchestration entrypoint every query mode routes
through — the VP+HNSW system's master-worker and multiple-owner modes and
the KD-tree baseline alike.  The runtime owns everything the three
hand-rolled copies used to duplicate:

- building the :class:`~repro.simmpi.engine.Simulation` from the config's
  network and cost models,
- one shared mailbox per compute node (the intra-node work queue),
- workgroup round-robin reset (so repeated batches are independent),
- spawning ``threads_per_node`` worker procs per node with the strategy's
  wiring (control mailbox + optional RMA window),
- running the simulation and reducing it to ``(D, I, SearchReport)`` via
  the shared :class:`~repro.runtime.report.ReportBuilder`.

Query batching (``config.batch_size``) needs no runtime wiring: the master
buffers per-partition dispatch into batch tasks and the workers answer
them with one local ``knn_search_batch`` per message, so at batch size B
the fabric carries ~B× fewer task/result messages while every row's
results and virtual search cost stay identical to the unbatched run (at
B = 1 the wire traffic is byte-identical).

A runtime instance is single-shot, like the Simulation it owns: construct,
``run_search`` once, read the report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.config import SystemConfig
from repro.core.messages import TAG_RESULT
from repro.core.partition import NodeStore
from repro.core.replication import Workgroups
from repro.core.results import GlobalResults
from repro.core.searcher import LocalSearcher
from repro.core.worker import worker_thread_program
from repro.faults.injector import FaultInjector
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.runtime.report import ReportBuilder, SearchReport
from repro.runtime.strategies import DispatchStrategy
from repro.simmpi.engine import Event, Simulation

__all__ = ["ClusterRuntime", "SearchJob", "run_search"]


@dataclass
class SearchJob:
    """Everything one batch search needs besides the cluster itself.

    ``router`` must expose ``route_approx(q, n_probe)``, ``route_exact(q,
    tau)`` and an ``n_dist_evals`` counter — both the VP and the KD
    partition routers qualify.
    """

    router: Any
    workgroups: Workgroups
    node_stores: dict[int, NodeStore]
    searcher: LocalSearcher
    Q: np.ndarray
    k: int
    #: filled in by the runtime before the strategy installs
    results: GlobalResults | None = None
    #: the run's pushed-down filter description ({"clauses": [...],
    #: "strategy": ...}); None = unfiltered, bit-identical wire traffic
    fpayload: dict | None = None


class ClusterRuntime:
    """Owns simulation setup and the run/reduce cycle of one batch search."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.faults = FaultInjector(config.fault_spec) if config.fault_spec is not None else None
        #: run-wide metrics registry: the engine, the coordinator parts, the
        #: load tracker, and the serving layer all record into this one seam
        self.metrics = MetricsRegistry()
        #: per-query distributed trace recorder, attached only when the
        #: config asks for observability output (recording is bit-identity-
        #: neutral either way; the gate just avoids the bookkeeping cost)
        self.recorder = TraceRecorder() if config.trace_enabled else None
        self.sim = Simulation(
            network=config.network,
            cost=config.cost,
            faults=self.faults,
            recorder=self.recorder,
            metrics=self.metrics,
        )
        self.node_mailboxes = [
            self.sim.new_mailbox(f"node{n}", node=n) for n in range(config.n_nodes)
        ]

    def run_search(
        self,
        strategy: DispatchStrategy,
        router: Any,
        workgroups: Workgroups,
        node_stores: dict[int, NodeStore],
        searcher: LocalSearcher,
        Q: np.ndarray,
        k: int,
        *,
        fpayload: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray, SearchReport]:
        """Simulate one batch search under ``strategy``; returns (D, I, report).

        ``fpayload`` is the run's filter description (see
        :mod:`repro.filtering`): every task message carries it to the
        workers, which answer through the searcher's filtered surface.
        None leaves every message and result bit-identical to the
        pre-filtering wire.
        """
        cfg = self.config
        workgroups.reset()
        job = SearchJob(
            router=router,
            workgroups=workgroups,
            node_stores=node_stores,
            searcher=searcher,
            Q=Q,
            k=k,
            results=GlobalResults(len(Q), k),
            fpayload=fpayload,
        )
        # searcher filter counters are cumulative across runs on a shared
        # instance; snapshot so the report carries this run's delta only
        fstats_before = dict(getattr(searcher, "filter_stats", None) or {})
        # coordinators first, workers second: registration order is the
        # engine's deterministic tie-break, so it is part of the contract
        strategy.install(self, job)
        worker_cores: dict[int, int] = {}
        for node in range(cfg.n_nodes):
            done = Event()
            control_mailbox, window = strategy.worker_wiring(self, node)
            store = node_stores[node]
            # this node's simulated cores; on a partial last node the extra
            # threads fold onto the valid cores round-robin so the per-core
            # busy vector stays length n_cores with nothing dropped
            cores = range(node * cfg.cores_per_node, min((node + 1) * cfg.cores_per_node, cfg.n_cores))
            # one-sided workers return dispatch credits only when the
            # coordinator runs flow-controlled (two-sided results are their
            # own credit return, so no extra traffic there)
            send_credits = window is not None and cfg.dispatch_window > 0
            for t in range(cfg.threads_per_node):
                pid = self.sim.add_proc(
                    worker_thread_program,
                    self.node_mailboxes[node],
                    store,
                    searcher,
                    k,
                    done,
                    control_mailbox,
                    window,
                    TAG_RESULT,
                    send_credits,
                    node=node,
                    name=f"worker_n{node}_t{t}",
                )
                worker_cores[pid] = cores[t % len(cores)]

        out = self.sim.run()
        D, I = job.results.result_arrays()
        # fold the run's filter/tenant accounting into the registry before
        # the builder snapshots it into report.metrics.  The resolved tenant
        # rides the filter payload (per-call tenant= overrides the config's);
        # a bare config tenant with no payload still tags.
        tenant = fpayload.get("tenant") if fpayload is not None else cfg.tenant
        if tenant is not None:
            self.metrics.counter("tenant.queries").inc(len(Q))
        fdeltas: dict[str, int] = {}
        if fpayload is not None:
            fstats = getattr(searcher, "filter_stats", None) or {}
            for name, value in fstats.items():
                delta = int(value) - int(fstats_before.get(name, 0))
                fdeltas[name] = delta
                # filter_tasks_pre -> the "filter.tasks_pre" instrument
                self.metrics.counter("filter." + name[len("filter_"):]).inc(delta)
        report = ReportBuilder(
            out,
            strategy.coordinator_pids,
            len(Q),
            worker_cores=worker_cores,
            aux_pids=getattr(strategy, "aux_pids", ()),
            slo_target_seconds=cfg.slo_ms / 1e3,
            metrics=self.metrics,
            trace=self.recorder,
        ).build()
        report.tenant_id = -1 if tenant is None else int(tenant)
        if tenant is not None:
            report.tenant_queries = len(Q)
        if fpayload is not None:
            report.filtered_queries = len(Q)
            for name, delta in fdeltas.items():
                setattr(report, name, delta)
        return D, I, report


def run_search(
    config: SystemConfig,
    strategy: DispatchStrategy,
    router: Any,
    workgroups: Workgroups,
    node_stores: dict[int, NodeStore],
    searcher: LocalSearcher,
    Q: np.ndarray,
    k: int,
    *,
    fpayload: dict | None = None,
) -> tuple[np.ndarray, np.ndarray, SearchReport]:
    """One-shot convenience: build a :class:`ClusterRuntime` and run."""
    return ClusterRuntime(config).run_search(
        strategy, router, workgroups, node_stores, searcher, Q, k, fpayload=fpayload
    )
