"""Dispatch strategies: who routes queries and how results come home.

A :class:`DispatchStrategy` plugs the coordinator side of a batch search
into a :class:`~repro.runtime.cluster.ClusterRuntime`.  The runtime owns
everything mode-independent (the simulation, node mailboxes, worker thread
pools, report assembly); the strategy owns everything mode-specific:

- which coordinator procs exist (one master vs. one owner per node),
- how the RMA window is wired (one-sided master-worker only),
- where a node's workers send completion notices and default replies.

The three paper modes (Algs. 3-5 and the §IV multiple-owner discussion) map
onto two classes: :class:`MasterWorkerStrategy` covers both the two-sided
and the one-sided result path (chosen by ``config.one_sided``), and
:class:`MultipleOwnerStrategy` is the hash-owner variant.  New sharding or
serving designs implement the same three-method contract.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.core.coordinator import CoordinatorPipeline, FaultHarness
from repro.core.owner import owner_node_program
from repro.faults.spec import FaultPolicy
from repro.loadbalance import LoadTracker, estimate_task_seconds, make_selector
from repro.serving import (
    ServingState,
    arrival_schedule,
    arrival_source_program,
    cache_namespace,
)
from repro.serving.coordinator import ServingPipeline
from repro.simmpi.comm import Comm
from repro.simmpi.engine import Mailbox
from repro.simmpi.rma import Window

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.runtime.cluster import ClusterRuntime, SearchJob

__all__ = [
    "DispatchStrategy",
    "MasterWorkerStrategy",
    "MultipleOwnerStrategy",
    "strategy_for",
]


class DispatchStrategy(ABC):
    """Contract between a query-dispatch design and the ClusterRuntime.

    Lifecycle: the runtime calls :meth:`install` exactly once (before any
    worker procs are added — coordinator pids must come first so the
    engine's deterministic tie-breaking is stable), then
    :meth:`worker_wiring` once per node while spawning the worker pools,
    then reads :attr:`coordinator_pids` to build the report after the run.

    Every coordinator proc must return a
    :class:`~repro.core.master.MasterReport` so the
    :class:`~repro.runtime.report.ReportBuilder` can aggregate uniformly.
    """

    #: pids of the coordinator procs, populated by :meth:`install`
    coordinator_pids: list[int]
    #: pids of infrastructure procs that are neither coordinator nor worker
    #: (e.g. the serving arrival source) — excluded from worker stats
    aux_pids: tuple = ()

    @abstractmethod
    def install(self, rt: "ClusterRuntime", job: "SearchJob") -> None:
        """Add coordinator procs to ``rt.sim`` and wire mode-specific state."""

    @abstractmethod
    def worker_wiring(self, rt: "ClusterRuntime", node: int) -> tuple[Mailbox, Window | None]:
        """(control mailbox, RMA window) for ``node``'s worker threads.

        The control mailbox receives thread-completion notices and is the
        default reply target for two-sided results; the window, when not
        None, switches workers to the one-sided accumulate path.
        """


class MasterWorkerStrategy(DispatchStrategy):
    """One master routes and dispatches every query (Algs. 3 and 5).

    Results return two-sided (point-to-point messages merged at the master)
    or one-sided (worker ``Get_accumulate`` into the master's RMA window,
    Fig. 2) according to ``config.one_sided``.
    """

    def __init__(self) -> None:
        self.coordinator_pids: list[int] = []
        self._window: Window | None = None
        self._master_mailbox: Mailbox | None = None

    def install(self, rt: "ClusterRuntime", job: "SearchJob") -> None:
        cfg = rt.config
        master_node = cfg.n_nodes  # the master gets a node of its own
        window_holder: list[Window | None] = [None]
        fault_tolerant = cfg.fault_spec is not None or cfg.fault_policy is not None

        # the replica-selection policy and its load model: one tracker per
        # run (the master is the only dispatcher in this strategy), in-flight
        # tasks weighted by the cost model's per-search estimate
        task_seconds = estimate_task_seconds(cfg, job)
        tracker = LoadTracker(cfg.n_cores, task_seconds, metrics=rt.metrics)
        selector = make_selector(cfg.replica_selector, job.workgroups, tracker, seed=cfg.seed)

        # open-loop serving: the arrival schedule and the master-side
        # serving state (admission queue, cache, SLO timeline) are built
        # here so both coordinator variants and the arrival source proc
        # share one object; None keeps the closed-loop paths untouched
        serving_state = None
        if cfg.arrival is not None:
            schedule = arrival_schedule(cfg.arrival, len(job.Q), seed=cfg.seed)
            serving_state = ServingState(
                schedule,
                cfg.queue_depth,
                cfg.overload_policy,
                cache_size=cfg.cache_size,
                cache_mode=cfg.cache_mode,
                dim=int(job.Q.shape[1]),
                seed=cfg.seed,
                metrics=rt.metrics,
                # tenant/filter isolation: a (tenant, filter) pair gets its
                # own key namespace; both None = the empty prefix, keeping
                # unfiltered keys byte-identical.  The resolved tenant rides
                # the payload (per-call tenant= overrides the config's).
                cache_namespace=cache_namespace(
                    job.fpayload.get("tenant") if job.fpayload else cfg.tenant,
                    job.fpayload,
                ),
            )

        # the coordinator core (repro.core.coordinator): the plain pipeline
        # and the fault harness share routing, windowed dispatch, and result
        # merging; only deadline/retry handling differs between them
        if fault_tolerant:
            policy = cfg.fault_policy if cfg.fault_policy is not None else FaultPolicy()

            def master(ctx):
                harness = FaultHarness(
                    cfg,
                    job.router,
                    job.workgroups,
                    job.Q,
                    job.results,
                    rt.node_mailboxes,
                    policy,
                    task_seconds,
                    selector=selector,
                    serving=serving_state,
                    metrics=rt.metrics,
                    fpayload=job.fpayload,
                )
                return (yield from harness.run(ctx))
        elif serving_state is not None:

            def master(ctx):
                pipeline = ServingPipeline(
                    cfg,
                    job.router,
                    job.workgroups,
                    job.Q,
                    job.results,
                    rt.node_mailboxes,
                    window_holder[0],
                    serving_state,
                    selector=selector,
                    metrics=rt.metrics,
                    fpayload=job.fpayload,
                )
                return (yield from pipeline.run(ctx))
        else:

            def master(ctx):
                pipeline = CoordinatorPipeline(
                    cfg,
                    job.router,
                    job.workgroups,
                    job.Q,
                    job.results,
                    rt.node_mailboxes,
                    window_holder[0],
                    selector=selector,
                    metrics=rt.metrics,
                    fpayload=job.fpayload,
                )
                return (yield from pipeline.run(ctx))

        pid = rt.sim.add_proc(master, node=master_node, name="master")
        if cfg.one_sided:
            window_holder[0] = Window(
                owner_pid=pid,
                owner_node=master_node,
                slots=job.results,
                combine=job.results.combine,
                name="results",
            )
        self._window = window_holder[0]
        self._master_mailbox = rt.sim.mailbox_of(pid)
        self.coordinator_pids = [pid]

        if serving_state is not None:
            # the ingress frontend: replays the arrival schedule into the
            # master's mailbox.  Registered right after the master (before
            # any workers) so pid order — the engine's deterministic
            # tie-break — stays stable; reported via aux_pids so its idle
            # gaps never pollute the worker time breakdown
            master_mailbox = self._master_mailbox

            def arrivals(ctx):
                yield from arrival_source_program(
                    ctx, master_mailbox, serving_state.schedule
                )

            src_pid = rt.sim.add_proc(arrivals, node=master_node, name="arrivals")
            self.aux_pids = (src_pid,)

    def worker_wiring(self, rt: "ClusterRuntime", node: int) -> tuple[Mailbox, Window | None]:
        return self._master_mailbox, self._window


class MultipleOwnerStrategy(DispatchStrategy):
    """Every node owns a hash slice of the queries (§IV discussion).

    Each node runs an owner proc holding a replica of the router skeleton;
    the owner of query q is node ``q % n_nodes``.  Workers reply directly
    to the owning node's mailbox (always two-sided), and a barrier among
    owners precedes the shutdown broadcast.
    """

    def __init__(self) -> None:
        self.coordinator_pids: list[int] = []

    def install(self, rt: "ClusterRuntime", job: "SearchJob") -> None:
        cfg = rt.config
        # owner of query q is node hash(q) = qid % n_nodes (the paper's hash
        # function is unspecified; modulo over the batch is the natural one)
        owner_of = np.arange(len(job.Q)) % cfg.n_nodes
        owner_comm_holder: list[Comm | None] = [None]
        pids: list[int] = []

        for node in range(cfg.n_nodes):
            my_queries = np.flatnonzero(owner_of == node)

            def owner(ctx, node=node, my_queries=my_queries):
                return (
                    yield from owner_node_program(
                        ctx,
                        cfg,
                        job.router,
                        job.workgroups,
                        job.Q,
                        my_queries,
                        job.results,
                        rt.node_mailboxes,
                        owner_comm_holder[0],
                        job.k,
                        node_id=node,
                        fpayload=job.fpayload,
                    )
                )

            pids.append(rt.sim.add_proc(owner, node=node, name=f"owner_n{node}"))
        owner_comm_holder[0] = Comm(rt.sim, pids, "owners")
        self.coordinator_pids = pids

    def worker_wiring(self, rt: "ClusterRuntime", node: int) -> tuple[Mailbox, Window | None]:
        # each node's workers report thread completion to their own owner;
        # result replies carry an explicit reply-to mailbox in the task
        return rt.sim.mailbox_of(self.coordinator_pids[node]), None


def strategy_for(config) -> DispatchStrategy:
    """The strategy a :class:`~repro.core.config.SystemConfig` selects."""
    if config.owner_strategy == "multiple":
        return MultipleOwnerStrategy()
    return MasterWorkerStrategy()
