"""Search orchestration: ClusterRuntime + pluggable dispatch strategies.

One entrypoint (:class:`ClusterRuntime`) simulates a batch search for any
dispatch design; :class:`DispatchStrategy` is the seam a new routing,
sharding, batching, or serving strategy plugs into; :class:`ReportBuilder`
assembles the uniform :class:`SearchReport` every mode returns.

Layering: ``repro.runtime`` sits above :mod:`repro.simmpi` (the simulated
cluster) and the per-role programs in :mod:`repro.core`
(master/owner/worker bodies), and below the facades
(:class:`~repro.core.engine.DistributedANN`,
:class:`~repro.kdtree.system.KDBaselineSystem`).
"""

from repro.runtime.cluster import ClusterRuntime, SearchJob, run_search
from repro.runtime.report import ReportBuilder, SearchReport
from repro.runtime.strategies import (
    DispatchStrategy,
    MasterWorkerStrategy,
    MultipleOwnerStrategy,
    strategy_for,
)

__all__ = [
    "ClusterRuntime",
    "SearchJob",
    "run_search",
    "ReportBuilder",
    "SearchReport",
    "DispatchStrategy",
    "MasterWorkerStrategy",
    "MultipleOwnerStrategy",
    "strategy_for",
]
