"""The unified index-search surface: the :class:`Searcher` protocol.

Every in-memory index in this repo — the production :class:`~repro.hnsw.HnswIndex`,
its dict-of-lists ground truth :class:`~repro.hnsw.reference.ReferenceHnswIndex`,
and the KD-tree / VP-tree / LSH / IVF-PQ baselines — answers k-NN queries
through one structural interface:

- ``knn_search(query, k, *, filter=None)`` → ``(distances, ids)`` closest
  first, possibly shorter than ``k`` when the index holds fewer candidates;
- ``knn_search_batch(Q, k, *, filter=None)`` → ``(D, I)`` of shape
  (n_queries, k), rows closest first, padded with ``inf`` / ``-1`` — row
  ``i`` agrees with ``knn_search(Q[i], k)`` on the unpadded prefix.

**Dtype contract** (pinned; ``tests/test_searcher_protocol.py`` enforces
it across every backend): distances are ``float64`` and ids are ``int64``
on both the single-query and the batch surface — including the batch
padding rows.  Backends may compute in float32 internally but the public
arrays are always float64/int64.

**Filtering** (keyword-only, default ``None`` — the unfiltered call sites
and results are untouched): ``filter`` is a boolean mask over the index's
rows *in insertion order* (row ``i`` = the ``i``-th vector given to the
constructor / ``add``).  Only rows with ``filter[i]`` true may appear in
the results; graph backends keep masked-out rows in the traversal
frontier so connectivity survives, and the exact backends stay exact
over the matching subset.  Passing ``filter=None`` must return results
bit-identical to omitting the argument.

Per-backend search knobs (``ef``, ``n_probe``, ``rerank``, …) are
construction-time state or optional keywords, never required positionals,
so any backend can stand in wherever a ``Searcher`` is expected —
``tests/test_searcher_protocol.py`` parameterizes the conformance check
over every backend.

:func:`batch_from_single` is the shared row-by-row fallback the
non-graph backends use to provide the batch half of the contract with
identical per-row results; :func:`filtered_overfetch` is the shared
overfetch-and-subset fallback backends without a native filtered
traversal use for the filtered half.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "Searcher",
    "batch_from_single",
    "check_filter_mask",
    "filtered_overfetch",
]


@runtime_checkable
class Searcher(Protocol):
    """Structural interface every k-NN index backend satisfies."""

    def knn_search(
        self, query: np.ndarray, k: int, *, filter: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(distances, ids) for one query, closest first (float64/int64).

        ``filter``: optional boolean mask over insertion-order rows;
        only unmasked rows may appear in the result.
        """
        ...

    def knn_search_batch(
        self, Q: np.ndarray, k: int, *, filter: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(D, I) of shape (n_queries, k), inf/-1 padded, closest first
        (float64/int64); the same row filter applies to every query."""
        ...


def batch_from_single(
    search, Q: np.ndarray, k: int, *, filter: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Assemble the padded (n_queries, k) batch result from per-row calls.

    ``search`` is the backend's single-query callable; each row of the
    output is exactly its return for that query, padded to width ``k``
    with ``inf`` / ``-1`` — the same float64/int64 layout
    ``HnswIndex.knn_search_batch`` produces natively.  A ``filter`` mask
    is forwarded to every per-row call (pass a ``search`` that accepts
    the keyword when using one).
    """
    Q = np.asarray(Q)
    nq = Q.shape[0]
    D = np.full((nq, k), np.inf, dtype=np.float64)
    ids = np.full((nq, k), -1, dtype=np.int64)
    for i in range(nq):
        if filter is None:
            d, nn = search(Q[i], k)
        else:
            d, nn = search(Q[i], k, filter=filter)
        D[i, : len(d)] = d
        ids[i, : len(nn)] = nn
    return D, ids


def check_filter_mask(filter: np.ndarray, n_rows: int) -> np.ndarray:
    """Validate a filter mask against the index size; returns a bool view."""
    mask = np.asarray(filter)
    if mask.dtype != np.bool_:
        raise TypeError(f"filter must be a boolean mask, got dtype {mask.dtype}")
    if mask.shape != (n_rows,):
        raise ValueError(
            f"filter mask has shape {mask.shape}, index has {n_rows} rows"
        )
    return mask


def filtered_overfetch(
    search,
    n_rows: int,
    insertion_ids: np.ndarray,
    query: np.ndarray,
    k: int,
    filter: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Filtered single-query search via adaptive overfetch.

    The shared fallback for backends without a native filtered traversal
    (KD-tree, VP-tree, LSH, IVF-PQ): call the backend's unfiltered
    ``search(query, k')`` with a doubling ``k'`` and keep the rows whose
    external id is allowed, until ``k`` survivors are found, ``k'``
    covers the whole index, or the backend stops yielding new candidates
    (LSH buckets exhausted).  Exact backends therefore stay exact over
    the matching subset — at ``k' == n_rows`` the scan is the filtered
    brute force.

    ``insertion_ids`` maps insertion-order rows to the backend's external
    ids (what ``search`` returns); ``filter`` is the insertion-order mask.
    """
    mask = check_filter_mask(filter, n_rows)
    allowed = np.asarray(insertion_ids)[mask]
    if allowed.size == 0:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
    kk = min(n_rows, max(2 * k, 16))
    while True:
        d, ids = search(query, kk)
        keep = np.isin(ids, allowed)
        if np.count_nonzero(keep) >= k or kk >= n_rows or len(ids) < kk:
            return (
                np.asarray(d, dtype=np.float64)[keep][:k],
                np.asarray(ids, dtype=np.int64)[keep][:k],
            )
        kk = min(2 * kk, n_rows)
