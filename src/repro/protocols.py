"""The unified index-search surface: the :class:`Searcher` protocol.

Every in-memory index in this repo — the production :class:`~repro.hnsw.HnswIndex`,
its dict-of-lists ground truth :class:`~repro.hnsw.reference.ReferenceHnswIndex`,
and the KD-tree / LSH / IVF-PQ baselines — answers k-NN queries through
one structural interface:

- ``knn_search(query, k)`` → ``(distances, ids)`` closest first, possibly
  shorter than ``k`` when the index holds fewer candidates;
- ``knn_search_batch(Q, k)`` → ``(D, I)`` of shape (n_queries, k), rows
  closest first, padded with ``inf`` / ``-1`` — row ``i`` agrees with
  ``knn_search(Q[i], k)`` on the unpadded prefix.

Per-backend search knobs (``ef``, ``n_probe``, ``rerank``, …) are
construction-time state or optional keywords, never required positionals,
so any backend can stand in wherever a ``Searcher`` is expected —
``tests/test_searcher_protocol.py`` parameterizes the conformance check
over every backend.

:func:`batch_from_single` is the shared row-by-row fallback the
non-graph backends use to provide the batch half of the contract with
identical per-row results.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["Searcher", "batch_from_single"]


@runtime_checkable
class Searcher(Protocol):
    """Structural interface every k-NN index backend satisfies."""

    def knn_search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """(distances, ids) for one query, closest first."""
        ...

    def knn_search_batch(self, Q: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """(D, I) of shape (n_queries, k), inf/-1 padded, closest first."""
        ...


def batch_from_single(search, Q: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Assemble the padded (n_queries, k) batch result from per-row calls.

    ``search`` is the backend's single-query callable; each row of the
    output is exactly its return for that query, padded to width ``k``
    with ``inf`` / ``-1`` — the same layout ``HnswIndex.knn_search_batch``
    produces natively.
    """
    Q = np.asarray(Q)
    nq = Q.shape[0]
    D = np.full((nq, k), np.inf, dtype=np.float64)
    ids = np.full((nq, k), -1, dtype=np.int64)
    for i in range(nq):
        d, nn = search(Q[i], k)
        D[i, : len(d)] = d
        ids[i, : len(nn)] = nn
    return D, ids
