"""Replica selection and load-aware dispatch (``repro.loadbalance``).

PR 2 gave every partition a *workgroup* of r replica cores but used the
replicas only for crash failover: the plain dispatcher walks each
workgroup's circular pointer, which spreads one partition's tasks evenly
over its own replicas yet is blind to the load the *other* partitions put
on the same cores.  Under a skewed workload (the paper's §IV "hot region"
scenario, LANNS's segmented routing problem) that blindness is exactly
what stretches the makespan: the core shared by two hot workgroups
queues twice the work of its neighbours while cold replicas idle.

This module turns replicas into throughput:

- :class:`LoadTracker` — the master's model of per-core outstanding work.
  Every dispatch extends the target core's *busy horizon* by the task's
  modeled cost (``cost model`` seconds); the backlog at virtual time
  ``now`` is ``max(busy_until - now, 0)``, so queues drain with the
  simulation clock and no completion callbacks are needed (the model
  works identically for one-sided runs, where results never pass through
  the master).
- :class:`ReplicaSelector` — the pluggable policy picking which replica
  of a partition serves a task.  Four built-ins:

  ============================ ============================================
  ``primary``                  the workgroup's own circular pointer
                               (paper Alg. 5; bit-identical to the
                               pre-selector dispatcher — the default)
  ``round_robin``              a per-partition counter independent of the
                               workgroup's seeded pointer state
  ``least_loaded``             the replica with the smallest tracked
                               backlog (ties break to the lowest core id)
  ``power_of_two_choices``     two seeded random candidates, keep the
                               less loaded (Mitzenmacher's classic
                               d = 2 balancer)
  ============================ ============================================

Every selector honours an ``exclude`` set (suspected-dead cores), so
load balancing composes with the fault-tolerant dispatcher's failover:
suspicion shrinks the candidate pool, the policy ranks what is left.
Selection itself costs zero virtual seconds — only where a task lands
changes, never what it computes — so ``primary`` runs reproduce the
golden traces bit for bit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from random import Random

import numpy as np

from repro.core.replication import Workgroups
from repro.simmpi.errors import SimConfigError

__all__ = [
    "SELECTORS",
    "LoadTracker",
    "ReplicaSelector",
    "PrimarySelector",
    "RoundRobinSelector",
    "LeastLoadedSelector",
    "PowerOfTwoChoicesSelector",
    "make_selector",
    "estimate_task_seconds",
    "derive_task_timeout",
    "derive_drain_timeout",
]

#: the replica-selection policies ``SystemConfig.replica_selector`` accepts
SELECTORS = ("primary", "round_robin", "least_loaded", "power_of_two_choices")


class LoadTracker:
    """Per-core outstanding-work model maintained by the dispatcher.

    The tracker is bookkeeping only: recording a dispatch costs zero
    virtual seconds and draws no randomness, so attaching one to any
    dispatcher (including ``primary``) never perturbs the simulation.

    ``task_cost_hint`` is the modeled virtual seconds of one local search
    (see :func:`estimate_task_seconds`); a dispatch may override it with a
    task-specific cost (e.g. ``B`` times the hint for a batch task).

    The queue-depth timeline is bounded: once ``max_timeline_samples``
    samples accumulate, the record is decimated 2:1 and the sampling
    stride doubles, so an N-dispatch run keeps an evenly strided subset
    of at most ``2 * max_timeline_samples`` samples (first-to-last
    coverage preserved) instead of one sample per dispatch.  Pass None
    to keep every sample.  See docs/load_balancing.md, "timeline
    sampling".
    """

    def __init__(
        self,
        n_cores: int,
        task_cost_hint: float,
        max_timeline_samples: int | None = 4096,
        metrics=None,
    ) -> None:
        if n_cores < 1:
            raise SimConfigError(f"n_cores must be >= 1, got {n_cores}")
        if max_timeline_samples is not None and max_timeline_samples < 2:
            raise SimConfigError(
                f"max_timeline_samples must be >= 2 or None, got {max_timeline_samples}"
            )
        self.n_cores = n_cores
        self.task_cost_hint = max(float(task_cost_hint), 1e-12)
        self.max_timeline_samples = max_timeline_samples
        #: peak-total-queued gauge in the run's MetricsRegistry (optional)
        self._peak_gauge = (
            metrics.gauge("loadtracker.peak_total_queued") if metrics is not None else None
        )
        #: modeled virtual time each core stays busy through
        self.busy_until = np.zeros(n_cores, dtype=np.float64)
        #: tasks dispatched per core (the tracker's own count — matches the
        #: master report's dispatch_counts on the master-worker paths)
        self.dispatched = np.zeros(n_cores, dtype=np.int64)
        self._samples: list[tuple[float, float]] = []
        self._events = 0
        self._stride = 1

    def record_dispatch(
        self, core: int, now: float, n_tasks: int = 1, cost: float | None = None
    ) -> None:
        """Extend ``core``'s busy horizon by one task's modeled cost."""
        c = self.task_cost_hint * n_tasks if cost is None else float(cost)
        self.busy_until[core] = max(self.busy_until[core], now) + c
        self.dispatched[core] += n_tasks
        self._events += 1
        if self._events % self._stride == 0:
            depth = self.total_queued(now)
            self._samples.append((now, depth))
            if self._peak_gauge is not None:
                self._peak_gauge.track_max(depth)
            if (
                self.max_timeline_samples is not None
                and len(self._samples) >= self.max_timeline_samples
            ):
                self._samples = self._samples[::2]
                self._stride *= 2

    def backlog(self, core: int, now: float) -> float:
        """Modeled seconds of queued work on ``core`` at virtual ``now``."""
        return max(float(self.busy_until[core]) - now, 0.0)

    def queue_depth(self, core: int, now: float) -> float:
        """Backlog expressed in tasks (backlog / per-task cost hint)."""
        return self.backlog(core, now) / self.task_cost_hint

    def total_queued(self, now: float) -> float:
        """Summed queue depth over all cores, in tasks."""
        return float(np.maximum(self.busy_until - now, 0.0).sum()) / self.task_cost_hint

    def timeline(self) -> np.ndarray:
        """(n_dispatches, 2) array of (virtual time, total queued tasks)."""
        if not self._samples:
            return np.empty((0, 2), dtype=np.float64)
        return np.asarray(self._samples, dtype=np.float64)


class ReplicaSelector(ABC):
    """Policy choosing which replica core serves a (query, partition) task.

    ``pick`` returns a core of ``workgroups.cores_for_partition(pid)`` not
    in ``exclude``, or None when every replica is excluded (the degraded
    case failover handles).  Implementations must be deterministic given
    their construction arguments and call history — the whole simulation
    is replayable, and the golden tests rely on it.
    """

    #: the ``SystemConfig.replica_selector`` name this class implements
    name: str = ""

    def __init__(self, workgroups: Workgroups, tracker: LoadTracker | None = None) -> None:
        self.workgroups = workgroups
        self.tracker = tracker if tracker is not None else LoadTracker(workgroups.n_cores, 1e-6)

    @abstractmethod
    def pick(self, partition_id: int, now: float, exclude=()) -> int | None:
        """The replica core for one task of ``partition_id`` at ``now``."""

    def _live(self, partition_id: int, exclude) -> list[int]:
        return [c for c in self.workgroups.cores_for_partition(partition_id) if c not in exclude]


class PrimarySelector(ReplicaSelector):
    """The pre-selector behaviour: delegate to the workgroup's own
    circular pointer (paper Alg. 5 lines 10-11).

    This is the only selector that *advances* the :class:`Workgroups`
    pointer state, which keeps ``--replica-selector primary`` runs
    bit-identical to every golden trace recorded before selectors existed.
    """

    name = "primary"

    def pick(self, partition_id: int, now: float, exclude=()) -> int | None:
        return self.workgroups.next_core(partition_id, exclude=exclude)


class RoundRobinSelector(ReplicaSelector):
    """Per-partition round-robin from offset 0, independent of the
    workgroup's seeded pointer state (so failover excursions through
    ``Workgroups.next_core`` never shift this selector's cycle)."""

    name = "round_robin"

    def __init__(self, workgroups: Workgroups, tracker: LoadTracker | None = None) -> None:
        super().__init__(workgroups, tracker)
        self._next = [0] * workgroups.n_cores

    def pick(self, partition_id: int, now: float, exclude=()) -> int | None:
        group = self.workgroups.cores_for_partition(partition_id)
        n = len(group)
        for step in range(n):
            idx = (self._next[partition_id] + step) % n
            core = group[idx]
            if core not in exclude:
                self._next[partition_id] = (idx + 1) % n
                return core
        return None


class LeastLoadedSelector(ReplicaSelector):
    """The replica with the smallest tracked backlog; ties break to the
    lowest core id so selection is deterministic."""

    name = "least_loaded"

    def pick(self, partition_id: int, now: float, exclude=()) -> int | None:
        live = self._live(partition_id, exclude)
        if not live:
            return None
        return min(live, key=lambda c: (self.tracker.backlog(c, now), c))


class PowerOfTwoChoicesSelector(ReplicaSelector):
    """Sample two distinct replicas with a seeded RNG, keep the less
    loaded (ties break to the lower core id).  Approaches least-loaded
    balance while probing only d = 2 queues — the classic result."""

    name = "power_of_two_choices"

    def __init__(
        self, workgroups: Workgroups, tracker: LoadTracker | None = None, seed: int = 0
    ) -> None:
        super().__init__(workgroups, tracker)
        self._rng = Random(seed)

    def pick(self, partition_id: int, now: float, exclude=()) -> int | None:
        live = self._live(partition_id, exclude)
        if not live:
            return None
        if len(live) == 1:
            return live[0]
        a, b = self._rng.sample(live, 2)
        return min((a, b), key=lambda c: (self.tracker.backlog(c, now), c))


def make_selector(
    name: str,
    workgroups: Workgroups,
    tracker: LoadTracker | None = None,
    seed: int = 0,
) -> ReplicaSelector:
    """Instantiate the selector ``SystemConfig.replica_selector`` names."""
    if name == "primary":
        return PrimarySelector(workgroups, tracker)
    if name == "round_robin":
        return RoundRobinSelector(workgroups, tracker)
    if name == "least_loaded":
        return LeastLoadedSelector(workgroups, tracker)
    if name == "power_of_two_choices":
        return PowerOfTwoChoicesSelector(workgroups, tracker, seed=seed)
    raise SimConfigError(f"replica_selector must be one of {SELECTORS}, got {name!r}")


def estimate_task_seconds(cfg, job) -> float:
    """Modeled virtual seconds of one local search.

    Used both to weight in-flight tasks in the :class:`LoadTracker` and to
    derive the fault-tolerant dispatcher's per-task deadlines.  Prefers
    the calibrated ``modeled_search_seconds`` override, else the analytic
    HNSW estimate on the average resident partition size.
    """
    if cfg.modeled_search_seconds is not None:
        return cfg.modeled_search_seconds
    if cfg.searcher == "modeled":
        n = cfg.modeled_partition_points
    else:
        sizes = [
            p.n_points for store in job.node_stores.values() for p in store.partitions.values()
        ]
        n = max(int(np.mean(sizes)), 1) if sizes else 1
    dim = job.Q.shape[1] if job.Q.ndim == 2 else 1
    return cfg.cost.hnsw_search_cost(n, dim, cfg.effective_ef_search, cfg.hnsw.M)


def _network_rtt(network) -> float:
    """The modeled master↔worker round trip (two inter-node hops)."""
    return 2.0 * (network.inter_latency + network.sw_overhead)


def derive_task_timeout(policy, task_seconds_hint: float, network) -> float:
    """Per-attempt deadline of one fault-tolerant task dispatch.

    The modeled service time (:func:`estimate_task_seconds`) plus a
    round trip, scaled by ``policy.timeout_multiplier`` and floored at
    ``policy.min_timeout`` — loose enough that fault-free runs never
    trip it, tight enough that a crashed rank is detected quickly.  An
    explicit ``policy.task_timeout`` overrides the derivation.  The one
    shared implementation of the rule (coordinator fault harness and
    any load-model consumer alike); the regression test pins its values.
    """
    if policy.task_timeout is not None:
        return policy.task_timeout
    return max(
        policy.timeout_multiplier * (task_seconds_hint + _network_rtt(network)),
        policy.min_timeout,
    )


def derive_drain_timeout(policy, base_timeout: float, network) -> float:
    """Per-round deadline of the bounded shutdown drain (thread-done
    collection): an explicit ``policy.drain_timeout``, else the task
    deadline floored at four round trips."""
    if policy.drain_timeout is not None:
        return policy.drain_timeout
    return max(base_timeout, 4.0 * _network_rtt(network))
