"""Serving-run summaries: admission ledger, cache effectiveness, SLO.

A thin reduction over :class:`~repro.runtime.report.SearchReport`'s
serving fields into the quantities an operator reads off a dashboard —
what fraction of offered load was answered, how hard the cache worked,
and how much of each query's life was queueing versus service.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ServingStats", "serving_stats"]


@dataclass(frozen=True)
class ServingStats:
    """One serving run's admission / cache / SLO summary."""

    offered: int
    admitted: int
    shed: int
    rejected: int
    max_ingress_depth: int
    cache_hits: int
    cache_misses: int
    cache_stale: int
    #: hits / (hits + misses + stale); 0.0 with the cache off
    cache_hit_rate: float
    #: mean virtual seconds queries spent in the ingress queue
    mean_queue_seconds: float
    #: mean virtual seconds queries spent in service
    mean_service_seconds: float
    slo_target_seconds: float
    slo_violation_fraction: float

    @property
    def drop_fraction(self) -> float:
        """Fraction of offered queries never answered (shed + rejected)."""
        if self.offered == 0:
            return 0.0
        return (self.shed + self.rejected) / self.offered


def serving_stats(report) -> ServingStats:
    """Summarise a serving :class:`SearchReport`.

    Raises ``ValueError`` on a closed-loop report — there is no ingress
    queue, cache, or SLO clock to summarise without an arrival process.
    """
    if report.offered_queries == 0:
        raise ValueError(
            "not a serving run: the report offered no queries through an "
            "arrival process (set arrival=... to run open-loop serving)"
        )
    lookups = report.cache_hits + report.cache_misses + report.cache_stale
    q = report.queue_seconds
    s = report.service_seconds
    mean_queue = float(np.nanmean(q)) if q is not None and np.any(np.isfinite(q)) else 0.0
    mean_service = float(np.nanmean(s)) if s is not None and np.any(np.isfinite(s)) else 0.0
    return ServingStats(
        offered=int(report.offered_queries),
        admitted=int(report.admitted_queries),
        shed=int(report.shed_queries),
        rejected=int(report.rejected_queries),
        max_ingress_depth=int(report.max_ingress_depth),
        cache_hits=int(report.cache_hits),
        cache_misses=int(report.cache_misses),
        cache_stale=int(report.cache_stale),
        cache_hit_rate=report.cache_hits / lookups if lookups else 0.0,
        mean_queue_seconds=mean_queue,
        mean_service_seconds=mean_service,
        slo_target_seconds=float(report.slo_target_seconds),
        slo_violation_fraction=float(report.slo_violation_fraction),
    )
