"""Load-distribution statistics (Fig. 4b).

Fig. 4b plots, for each replication factor, the distribution of the number
of queries dispatched to each processing core, against the optimal-balance
line (total tasks / P).  :func:`load_distribution` reduces a dispatch-count
vector to the summary statistics the figure visualizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LoadStats", "load_distribution"]


@dataclass(frozen=True)
class LoadStats:
    """Summary of a per-core task-count vector."""

    n_cores: int
    total_tasks: int
    min_tasks: int
    max_tasks: int
    mean_tasks: float
    std_tasks: float
    #: max/mean — 1.0 is perfect balance; the straggler factor that bounds
    #: the batch makespan
    imbalance: float
    #: ideal tasks per core (Fig. 4b's red dotted line)
    optimal: float

    def spread(self) -> int:
        """max - min, the 'compactness' Fig. 4b shows shrinking with r."""
        return self.max_tasks - self.min_tasks


def load_distribution(dispatch_counts: np.ndarray) -> LoadStats:
    counts = np.asarray(dispatch_counts, dtype=np.int64)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError(f"dispatch_counts must be a non-empty 1-D vector, got {counts.shape}")
    total = int(counts.sum())
    mean = total / counts.size
    return LoadStats(
        n_cores=counts.size,
        total_tasks=total,
        min_tasks=int(counts.min()),
        max_tasks=int(counts.max()),
        mean_tasks=float(mean),
        std_tasks=float(counts.std()),
        imbalance=float(counts.max() / mean) if mean > 0 else float("inf"),
        optimal=float(mean),
    )
