"""Load-distribution statistics (Fig. 4b) and busy-time imbalance.

Fig. 4b plots, for each replication factor, the distribution of the number
of queries dispatched to each processing core, against the optimal-balance
line (total tasks / P).  :func:`load_distribution` reduces a dispatch-count
vector to the summary statistics the figure visualizes.

:func:`imbalance_stats` is the time-domain companion for the
:mod:`repro.loadbalance` work: it reduces the observed per-core busy
seconds (``SearchReport.core_busy_seconds``) to min/max/mean and the
imbalance factor max/mean — task counts say where tasks *went*, busy time
says what they *cost*, and the latter is what bounds the makespan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LoadStats", "load_distribution", "ImbalanceStats", "imbalance_stats"]


@dataclass(frozen=True)
class LoadStats:
    """Summary of a per-core task-count vector."""

    n_cores: int
    total_tasks: int
    min_tasks: int
    max_tasks: int
    mean_tasks: float
    std_tasks: float
    #: max/mean — 1.0 is perfect balance; the straggler factor that bounds
    #: the batch makespan
    imbalance: float
    #: ideal tasks per core (Fig. 4b's red dotted line)
    optimal: float

    def spread(self) -> int:
        """max - min, the 'compactness' Fig. 4b shows shrinking with r."""
        return self.max_tasks - self.min_tasks


def load_distribution(dispatch_counts: np.ndarray) -> LoadStats:
    counts = np.asarray(dispatch_counts, dtype=np.int64)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError(f"dispatch_counts must be a non-empty 1-D vector, got {counts.shape}")
    total = int(counts.sum())
    mean = total / counts.size
    return LoadStats(
        n_cores=counts.size,
        total_tasks=total,
        min_tasks=int(counts.min()),
        max_tasks=int(counts.max()),
        mean_tasks=float(mean),
        std_tasks=float(counts.std()),
        imbalance=float(counts.max() / mean) if mean > 0 else float("inf"),
        optimal=float(mean),
    )


@dataclass(frozen=True)
class ImbalanceStats:
    """Summary of a per-core busy-time vector (virtual seconds)."""

    n_cores: int
    total_busy: float
    min_busy: float
    max_busy: float
    mean_busy: float
    #: max/mean busy time — 1.0 is perfect balance; the straggler factor
    #: replication-based load balancing exists to shrink
    imbalance: float

    def __str__(self) -> str:
        return (
            f"imbalance {self.imbalance:.2f} (max/mean core busy time; "
            f"busy {self.min_busy:.4g}..{self.max_busy:.4g}s over {self.n_cores} cores)"
        )


def imbalance_stats(core_busy_seconds: np.ndarray) -> ImbalanceStats:
    """Reduce ``SearchReport.core_busy_seconds`` to imbalance statistics."""
    busy = np.asarray(core_busy_seconds, dtype=np.float64)
    if busy.ndim != 1 or busy.size == 0:
        raise ValueError(f"core_busy_seconds must be a non-empty 1-D vector, got {busy.shape}")
    mean = float(busy.mean())
    return ImbalanceStats(
        n_cores=busy.size,
        total_busy=float(busy.sum()),
        min_busy=float(busy.min()),
        max_busy=float(busy.max()),
        mean_busy=mean,
        imbalance=float(busy.max() / mean) if mean > 0 else 1.0,
    )
