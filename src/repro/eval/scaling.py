"""Strong-scaling tables (Fig. 3).

The paper normalizes speedups to the smallest core count measured (32 for
the SYN datasets, 256 for the billion-scale ones) and plots speedup against
cores.  :func:`speedup_table` converts (cores, seconds) measurements into
that table, with parallel efficiency for the linearity check.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ScalingRow", "speedup_table"]


@dataclass(frozen=True)
class ScalingRow:
    cores: int
    seconds: float
    speedup: float
    #: speedup / (cores / base_cores); 1.0 = perfectly linear
    efficiency: float


def speedup_table(measurements: list[tuple[int, float]]) -> list[ScalingRow]:
    """Normalize (cores, seconds) pairs to the smallest core count.

    Input order is irrelevant; output is sorted by cores ascending.
    """
    if not measurements:
        raise ValueError("no measurements")
    meas = sorted(measurements)
    base_cores, base_seconds = meas[0]
    if base_seconds <= 0:
        raise ValueError(f"non-positive base time {base_seconds}")
    rows = []
    for cores, seconds in meas:
        speedup = base_seconds / seconds if seconds > 0 else float("inf")
        ideal = cores / base_cores
        rows.append(
            ScalingRow(
                cores=cores,
                seconds=seconds,
                speedup=speedup,
                efficiency=speedup / ideal,
            )
        )
    return rows
