"""Plain-text tables and histograms for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures show;
these helpers keep that output aligned and dependency-free.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.simmpi.trace import PHASES

__all__ = ["format_table", "format_histogram", "format_phase_breakdown"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]] + [
        [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row] for row in rows
    ]
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.rjust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_phase_breakdown(
    phase_seconds: dict[str, float], title: str = "", width: int = 30
) -> str:
    """Render a span/phase breakdown (see :data:`repro.simmpi.trace.PHASES`).

    One bar per phase, standard phases first in pipeline order, any custom
    span names after; percentages are of the summed span time across procs
    (phases overlap in wall-clock because procs run concurrently, so they
    need not sum to the makespan).
    """
    names = [p for p in PHASES if p in phase_seconds]
    names += sorted(set(phase_seconds) - set(PHASES))
    total = sum(phase_seconds.get(n, 0.0) for n in names)
    peak = max((phase_seconds.get(n, 0.0) for n in names), default=0.0)
    lines = [title] if title else []
    for n in names:
        sec = phase_seconds.get(n, 0.0)
        pct = 100.0 * sec / total if total > 0 else 0.0
        bar = "#" * (round(sec / peak * width) if peak > 0 else 0)
        lines.append(f"{n:>10s} {sec:12.6g}s {pct:5.1f}% {bar}")
    return "\n".join(lines)


def format_histogram(
    values: np.ndarray, bins: int = 10, width: int = 40, title: str = ""
) -> str:
    """ASCII histogram (used for the Fig. 4b query-count distributions)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return f"{title}\n(empty)"
    counts, edges = np.histogram(values, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * max(1 if c else 0, round(c / peak * width))
        lines.append(f"[{lo:10.2f}, {hi:10.2f}) {c:6d} {bar}")
    return "\n".join(lines)
