"""Plain-text tables and histograms for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures show;
these helpers keep that output aligned and dependency-free.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["format_table", "format_histogram"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]] + [
        [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row] for row in rows
    ]
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.rjust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_histogram(
    values: np.ndarray, bins: int = 10, width: int = 40, title: str = ""
) -> str:
    """ASCII histogram (used for the Fig. 4b query-count distributions)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return f"{title}\n(empty)"
    counts, edges = np.histogram(values, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * max(1 if c else 0, round(c / peak * width))
        lines.append(f"[{lo:10.2f}, {hi:10.2f}) {c:6d} {bar}")
    return "\n".join(lines)
