"""Evaluation utilities: recall, load distribution, scaling tables.

These compute exactly the quantities the paper's figures and tables report,
so benchmark output lines up with the evaluation section one-to-one.
"""

from repro.eval.recall import recall_at_k, per_query_recall
from repro.eval.availability import AvailabilityStats, availability_stats, degraded_recall
from repro.eval.load import load_distribution, LoadStats, imbalance_stats, ImbalanceStats
from repro.eval.scaling import speedup_table, ScalingRow
from repro.eval.latency import latency_stats, LatencyStats
from repro.eval.serving import serving_stats, ServingStats
from repro.eval.reporting import format_table, format_histogram, format_phase_breakdown

__all__ = [
    "recall_at_k",
    "per_query_recall",
    "AvailabilityStats",
    "availability_stats",
    "degraded_recall",
    "load_distribution",
    "LoadStats",
    "imbalance_stats",
    "ImbalanceStats",
    "speedup_table",
    "ScalingRow",
    "latency_stats",
    "LatencyStats",
    "serving_stats",
    "ServingStats",
    "format_table",
    "format_histogram",
    "format_phase_breakdown",
]
