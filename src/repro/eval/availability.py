"""Availability and degraded-recall metrics for fault-injected runs.

A fault-tolerant search never hangs on a crashed rank: every query comes
back either *complete* (all routed partitions answered, possibly via
failover replicas) or *degraded* (some tasks abandoned, flagged by a
per-query completeness fraction < 1 in the
:class:`~repro.runtime.report.SearchReport`).  These helpers reduce that
per-query record to the numbers a fault-injection experiment reports:
availability (fraction of fully-answered queries), and recall split by
complete vs. degraded queries — quantifying how much quality a lost
replica actually costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.recall import per_query_recall

__all__ = ["AvailabilityStats", "availability_stats", "degraded_recall"]


@dataclass(frozen=True)
class AvailabilityStats:
    """Per-batch availability summary under fault injection."""

    n_queries: int
    #: queries whose every routed partition answered
    n_complete: int
    #: queries flagged partial (completeness < 1)
    n_degraded: int
    #: n_complete / n_queries
    availability: float
    #: mean completeness over all queries (1.0 on a clean run)
    mean_completeness: float
    #: minimum per-query completeness (0.0 = some query got nothing back)
    min_completeness: float

    def __str__(self) -> str:
        return (
            f"availability {self.availability:.3f} "
            f"({self.n_complete}/{self.n_queries} complete, "
            f"{self.n_degraded} degraded, "
            f"mean completeness {self.mean_completeness:.3f})"
        )


def availability_stats(completeness: np.ndarray | None, n_queries: int) -> AvailabilityStats:
    """Summarize a report's per-query ``completeness`` array.

    ``completeness=None`` (a run without the fault-tolerant dispatcher)
    counts as fully available — the plain paths either answer everything
    or fail loudly.
    """
    if n_queries < 0:
        raise ValueError(f"n_queries must be >= 0, got {n_queries}")
    if completeness is None:
        return AvailabilityStats(
            n_queries=n_queries,
            n_complete=n_queries,
            n_degraded=0,
            availability=1.0,
            mean_completeness=1.0,
            min_completeness=1.0,
        )
    c = np.asarray(completeness, dtype=np.float64)
    if len(c) != n_queries:
        raise ValueError(f"completeness has {len(c)} entries for {n_queries} queries")
    if n_queries == 0:
        return AvailabilityStats(0, 0, 0, 1.0, 1.0, 1.0)
    complete = int(np.sum(c >= 1.0))
    return AvailabilityStats(
        n_queries=n_queries,
        n_complete=complete,
        n_degraded=n_queries - complete,
        availability=complete / n_queries,
        mean_completeness=float(np.mean(c)),
        min_completeness=float(np.min(c)),
    )


def degraded_recall(
    result_ids: np.ndarray,
    gt_ids: np.ndarray,
    completeness: np.ndarray | None,
    gt_dists: np.ndarray | None = None,
    result_dists: np.ndarray | None = None,
) -> dict:
    """Recall split by query completeness.

    Returns ``{"overall", "complete", "degraded"}`` mean recalls;
    ``complete``/``degraded`` are NaN when their slice is empty, so a
    fault-free run reports ``degraded=nan`` rather than a misleading 0.
    """
    per_q = per_query_recall(result_ids, gt_ids, gt_dists, result_dists)
    if completeness is None:
        mask = np.ones(len(per_q), dtype=bool)
    else:
        c = np.asarray(completeness, dtype=np.float64)
        if len(c) != len(per_q):
            raise ValueError(f"completeness has {len(c)} entries for {len(per_q)} queries")
        mask = c >= 1.0
    overall = float(np.mean(per_q)) if len(per_q) else float("nan")
    complete = float(np.mean(per_q[mask])) if mask.any() else float("nan")
    degraded = float(np.mean(per_q[~mask])) if (~mask).any() else float("nan")
    return {"overall": overall, "complete": complete, "degraded": degraded}
