"""Per-query latency statistics.

The paper reports batch totals; per-query latency percentiles are the
practitioner's complement (tail behaviour under load imbalance).  Only
measurable in two-sided mode, where each query's last result is observed
at the master — or in any open-loop serving run, where arrival-to-
completion timestamps exist on both result paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyStats", "latency_stats"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a per-query latency vector (virtual seconds)."""

    n: int
    mean: float
    p50: float
    p90: float
    p99: float
    p999: float
    max: float

    def as_row(self) -> tuple:
        return (self.n, self.mean, self.p50, self.p90, self.p99, self.p999, self.max)


def latency_stats(latencies: np.ndarray | None) -> LatencyStats:
    """Reduce a latency vector (NaNs = unobserved queries are dropped)."""
    if latencies is None:
        raise ValueError(
            "per-query latencies were not recorded — one-sided closed-loop "
            "runs have no per-query completion signal at the master; use "
            "two-sided results (one_sided=False) or an open-loop serving "
            "run (arrival=...), where credit acks time each query"
        )
    lat = np.asarray(latencies, dtype=np.float64)
    lat = lat[np.isfinite(lat)]
    if lat.size == 0:
        raise ValueError(
            "no finite latencies — was the batch run one-sided? per-query "
            "latency needs two-sided results (one_sided=False)"
        )
    return LatencyStats(
        n=int(lat.size),
        mean=float(lat.mean()),
        p50=float(np.percentile(lat, 50)),
        p90=float(np.percentile(lat, 90)),
        p99=float(np.percentile(lat, 99)),
        p999=float(np.percentile(lat, 99.9)),
        max=float(lat.max()),
    )
