"""Recall measurement (paper §V-D).

"Recall is defined as the ratio of the number of true k-nearest neighbors
in the result of the approximate search to k."  Ground-truth distance ties
are honored: a returned id counts as correct if its true distance does not
exceed the k-th ground-truth distance, so alternative orderings of
equidistant neighbors are not penalized.
"""

from __future__ import annotations

import numpy as np

__all__ = ["per_query_recall", "recall_at_k"]


def per_query_recall(
    result_ids: np.ndarray,
    gt_ids: np.ndarray,
    gt_dists: np.ndarray | None = None,
    result_dists: np.ndarray | None = None,
) -> np.ndarray:
    """Recall of each query; inputs are (n_queries, k) id matrices.

    When both distance matrices are given, ties at the k-th ground-truth
    distance are accepted even if the specific ids differ.
    """
    result_ids = np.asarray(result_ids)
    gt_ids = np.asarray(gt_ids)
    if result_ids.shape[0] != gt_ids.shape[0]:
        raise ValueError(
            f"{result_ids.shape[0]} result rows vs {gt_ids.shape[0]} ground-truth rows"
        )
    k = gt_ids.shape[1]
    out = np.empty(result_ids.shape[0], dtype=np.float64)
    for i in range(result_ids.shape[0]):
        res = set(int(x) for x in result_ids[i] if x >= 0)
        true = set(int(x) for x in gt_ids[i])
        hits = len(res & true)
        if gt_dists is not None and result_dists is not None:
            # accept equidistant substitutes for the k-th neighbor
            kth = gt_dists[i, k - 1]
            for j, rid in enumerate(result_ids[i]):
                if rid >= 0 and int(rid) not in true and result_dists[i, j] <= kth + 1e-9:
                    hits += 1
            hits = min(hits, k)
        out[i] = hits / k
    return out


def recall_at_k(
    result_ids: np.ndarray,
    gt_ids: np.ndarray,
    gt_dists: np.ndarray | None = None,
    result_dists: np.ndarray | None = None,
) -> float:
    """Mean recall over the batch (the number the paper reports)."""
    return float(
        per_query_recall(result_ids, gt_ids, gt_dists, result_dists).mean()
    )
