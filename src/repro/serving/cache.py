"""Hot-query result cache with LRU eviction.

Real serving traffic is heavy-tailed (the Zipf workloads in
``repro.datasets``): a small set of hot queries recurs constantly, and
answering a repeat from a master-side cache skips routing, dispatch,
and every local search — the single cheapest capacity win an ANN
serving tier has.

Two key modes:

- ``exact`` — the key is the query's quantized (float32) byte string, so
  a hit is only ever an *identical* vector and the cached row is
  bit-identical to what the cluster would have recomputed (the
  equivalence the serving tests pin);
- ``near`` — the key is a coarse quantizer cell: the sign pattern of the
  query against a seeded set of random hyperplanes (a 2^bits-cell
  quantization of the sphere).  Any query in the cell reuses the cell's
  last answer — an approximation trade (documented, off by default)
  that buys hits on near-duplicate queries.

Entries carry the cache *version*; :meth:`ResultCache.invalidate` bumps
it (e.g. after an index mutation), and a lookup that lands on an
out-of-version entry is dropped and counted ``stale`` rather than served
— the cache coherence rule described in docs/serving.md.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict

import numpy as np

from repro.obs.metrics import MetricsRegistry

__all__ = ["CACHE_MODES", "ResultCache", "cache_namespace"]

CACHE_MODES = ("exact", "near")


def cache_namespace(tenant: int | None, fpayload: dict | None) -> bytes:
    """The cache-key namespace of a (tenant, filter) pair.

    Filtered or tenant-scoped answers are only valid for identical
    predicates: prefixing every key with a digest of the pair keeps one
    tenant's (or one filter's) entries invisible to every other.  Both
    None — the unfiltered single-tenant run — maps to the empty prefix,
    so those keys stay byte-identical to the pre-filtering cache.
    """
    if tenant is None and fpayload is None:
        return b""
    blob = json.dumps(
        {"tenant": tenant, "filter": fpayload},
        sort_keys=True,
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(blob).digest()[:8]


def _reg_counter(metric: str):
    """Property reading/writing a named registry counter (so ``+=`` works)."""

    def fget(self):
        return self.registry.counter(metric).value

    def fset(self, value):
        self.registry.counter(metric).value = value

    return property(fget, fset)


class ResultCache:
    """LRU map from query key to a finished ``(distances, ids)`` row.

    The hit/miss/stale/eviction ledgers are ``cache.*`` instruments in a
    :class:`MetricsRegistry`; sharing the run-wide registry makes them
    the counters the coordinator report and metrics dump expose.
    """

    def __init__(
        self,
        capacity: int,
        mode: str = "exact",
        dim: int | None = None,
        n_bits: int = 16,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
        namespace: bytes = b"",
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if mode not in CACHE_MODES:
            raise ValueError(f"cache mode must be one of {CACHE_MODES}, got {mode!r}")
        self.capacity = int(capacity)
        self.mode = mode
        #: key prefix isolating this cache's entries to one (tenant, filter)
        #: namespace (see :func:`cache_namespace`); empty = legacy keys
        self.namespace = bytes(namespace)
        self.version = 0
        self.registry = metrics if metrics is not None else MetricsRegistry()
        #: (version, (dists, ids)) by key, in LRU order (oldest first)
        self._entries: OrderedDict[bytes, tuple[int, tuple]] = OrderedDict()
        if mode == "near":
            if dim is None:
                raise ValueError("near-duplicate cache mode needs the query dim")
            rng = np.random.default_rng(np.random.SeedSequence([seed, 0xCA]))
            #: coarse quantizer: random hyperplane normals, one sign bit each
            self._planes = rng.normal(size=(int(dim), int(n_bits)))

    hits = _reg_counter("cache.hits")
    misses = _reg_counter("cache.misses")
    stale = _reg_counter("cache.stale")
    evictions = _reg_counter("cache.evictions")

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, q: np.ndarray) -> bytes:
        """The cache key of a query vector (quantized bytes or cell id),
        prefixed with the (tenant, filter) namespace."""
        q32 = np.ascontiguousarray(q, dtype=np.float32)
        if self.mode == "exact":
            return self.namespace + q32.tobytes()
        return self.namespace + np.packbits(
            q32.astype(np.float64) @ self._planes > 0.0
        ).tobytes()

    def get(self, key: bytes):
        """The cached ``(dists, ids)`` row, or None (counted miss/stale)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        version, row = entry
        if version != self.version:
            del self._entries[key]
            self.stale += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return row

    def put(self, key: bytes, row: tuple) -> None:
        """Insert/refresh a finished result row under ``key``."""
        self._entries[key] = (self.version, row)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> None:
        """Mark every current entry stale (index contents changed)."""
        self.version += 1
