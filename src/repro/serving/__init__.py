"""Open-loop online serving: arrivals, admission, caching, SLO accounting.

The batch pipeline answers "how fast can the cluster chew through N
queries"; this package answers the serving question — what latency do
*clients* see when queries arrive on their own clock, what happens past
the capacity knee, and how much a hot-query cache buys.  Four pieces:

- :mod:`repro.serving.arrivals` — deterministic arrival processes
  (Poisson / bursty square-wave / trace replay) on the virtual clock;
- :mod:`repro.serving.admission` — bounded ingress queue with explicit,
  accounted overload policies (block / shed-oldest / reject);
- :mod:`repro.serving.cache` — LRU hot-query result cache (exact or
  near-duplicate keys) with hit/miss/stale accounting;
- :mod:`repro.serving.slo` — per-query arrival/dispatch/complete
  timestamps for arrival-to-completion latency and SLO-violation
  accounting.

The coordinator that drives these (``repro.serving.coordinator``) is
deliberately *not* imported here: ``core.config`` validates arrival
specs through this package root, and the coordinator imports core.
"""

from repro.serving.admission import OVERLOAD_POLICIES, AdmissionQueue
from repro.serving.arrivals import (
    arrival_schedule,
    arrival_source_program,
    parse_arrival_spec,
)
from repro.serving.cache import CACHE_MODES, ResultCache, cache_namespace
from repro.serving.slo import ServingTimeline
from repro.serving.state import ServingState

__all__ = [
    "OVERLOAD_POLICIES",
    "AdmissionQueue",
    "arrival_schedule",
    "arrival_source_program",
    "parse_arrival_spec",
    "CACHE_MODES",
    "ResultCache",
    "cache_namespace",
    "ServingTimeline",
    "ServingState",
]
