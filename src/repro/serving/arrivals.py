"""Open-loop query arrival processes on the simmpi virtual clock.

A closed-loop batch hands the coordinator every query at t = 0; an
open-loop serving system sees queries *arrive* over time, at a rate the
cluster does not control.  :func:`arrival_schedule` turns an arrival spec
string into a deterministic vector of virtual arrival times, and
:func:`arrival_source_program` is the simmpi proc that replays that
schedule into the master's mailbox as ``TAG_ARRIVE`` messages — so
arrivals are ordinary timestamped fabric events the coordinator can
``wait_any`` on alongside results.

Three generator families (all seeded, all replayable):

- ``poisson:RATE`` — exponential interarrivals at RATE queries/second,
  the memoryless baseline of queueing analysis;
- ``burst:LOW:HIGH:PERIOD`` — a diurnal square wave alternating between
  LOW and HIGH queries/second every PERIOD/2 virtual seconds, generated
  by Lewis-Shedler thinning of a HIGH-rate Poisson stream;
- ``trace:t1,t2,...`` — explicit arrival offsets in virtual seconds, for
  replaying a recorded workload bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.core.messages import TAG_ARRIVE, arrival_nbytes, make_arrival

__all__ = ["parse_arrival_spec", "arrival_schedule", "arrival_source_program"]

_KINDS = ("poisson", "burst", "trace")


def parse_arrival_spec(spec: str) -> tuple:
    """Validate and decompose an arrival spec string.

    Returns ``("poisson", rate)``, ``("burst", low, high, period)`` or
    ``("trace", times)``; raises ``ValueError`` on anything malformed so
    ``SystemConfig`` can reject bad specs at construction time.
    """
    if not isinstance(spec, str) or ":" not in spec:
        raise ValueError(
            f"arrival spec must look like 'poisson:RATE', 'burst:LOW:HIGH:PERIOD' "
            f"or 'trace:t1,t2,...', got {spec!r}"
        )
    kind, _, rest = spec.partition(":")
    if kind not in _KINDS:
        raise ValueError(f"arrival kind must be one of {_KINDS}, got {kind!r}")
    if kind == "poisson":
        try:
            rate = float(rest)
        except ValueError:
            raise ValueError(f"poisson arrival rate must be a number, got {rest!r}") from None
        if rate <= 0:
            raise ValueError(f"poisson arrival rate must be > 0, got {rate}")
        return ("poisson", rate)
    if kind == "burst":
        parts = rest.split(":")
        if len(parts) != 3:
            raise ValueError(f"burst spec must be 'burst:LOW:HIGH:PERIOD', got {spec!r}")
        try:
            low, high, period = (float(p) for p in parts)
        except ValueError:
            raise ValueError(f"burst parameters must be numbers, got {rest!r}") from None
        if low <= 0 or high <= 0 or period <= 0:
            raise ValueError(f"burst rates and period must be > 0, got {spec!r}")
        if high < low:
            raise ValueError(f"burst HIGH rate must be >= LOW rate, got {spec!r}")
        return ("burst", low, high, period)
    # trace
    try:
        times = np.array([float(t) for t in rest.split(",") if t != ""], dtype=np.float64)
    except ValueError:
        raise ValueError(f"trace times must be comma-separated numbers, got {rest!r}") from None
    if times.size == 0:
        raise ValueError("trace arrival spec has no times")
    if np.any(times < 0) or np.any(np.diff(times) < 0):
        raise ValueError("trace arrival times must be non-negative and non-decreasing")
    return ("trace", times)


def arrival_schedule(spec: str, n_queries: int, seed: int = 0) -> np.ndarray:
    """Deterministic virtual arrival times for ``n_queries`` queries.

    Returns a non-decreasing float64 vector of length ``n_queries``
    (seconds from the start of the run).  A trace shorter than the batch
    is an error — a replay must cover every query.
    """
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    parsed = parse_arrival_spec(spec)
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC6]))
    if parsed[0] == "poisson":
        _, rate = parsed
        return np.cumsum(rng.exponential(1.0 / rate, size=n_queries))
    if parsed[0] == "burst":
        _, low, high, period = parsed
        # Lewis-Shedler thinning: candidate arrivals at the HIGH rate,
        # kept with probability rate(t)/HIGH — exact for any piecewise
        # rate bounded by HIGH, and deterministic for a fixed seed
        times = np.empty(n_queries, dtype=np.float64)
        t, got = 0.0, 0
        while got < n_queries:
            t += rng.exponential(1.0 / high)
            rate = high if (t % period) < period / 2.0 else low
            if rng.random() <= rate / high:
                times[got] = t
                got += 1
        return times
    _, times = parsed
    if len(times) < n_queries:
        raise ValueError(
            f"trace has {len(times)} arrival times but the batch has "
            f"{n_queries} queries — a replay must cover every query"
        )
    return times[:n_queries].copy()


def arrival_source_program(ctx, master_mailbox, schedule):
    """The simmpi proc replaying ``schedule`` into the master's mailbox.

    One ``TAG_ARRIVE`` message per query, sent at its scheduled virtual
    time (or as soon after as the source's own send overhead allows —
    the source models a finite ingress NIC, so offered load beyond its
    message rate is itself a bottleneck, as on real frontends).  The
    scheduled timestamp rides in the payload: SLO latency is measured
    from when the *client* issued the query, not from when the master
    got around to reading it.
    """
    for query_id, t in enumerate(schedule):
        gap = float(t) - ctx.now
        if gap > 0:
            yield from ctx.compute(gap, kind="arrival_gap")
        yield from ctx.send_to_mailbox(
            master_mailbox,
            make_arrival(query_id, float(t)),
            source=ctx.pid,
            tag=TAG_ARRIVE,
            nbytes=arrival_nbytes(),
            same_node=False,
        )
