"""Bounded-ingress admission control for open-loop serving.

When offered load exceeds capacity something has to give; the admission
queue makes the choice explicit and *accounted* instead of letting the
backlog grow silently.  Three overload policies:

- ``block`` — never drop: when the queue is full the coordinator simply
  stops consuming arrivals, so excess queries wait at the ingress
  (clients see latency, not errors — TCP-backpressure semantics);
- ``shed_oldest`` — drop the *oldest* queued query to make room for the
  new one (the stale request was about to miss its SLO anyway);
- ``reject`` — refuse the *new* arrival with a flag (fail-fast
  semantics; the queued work keeps its position).

Every query ends in exactly one of three ledgers — admitted (entered
service), shed, or rejected — so ``admitted + shed + rejected ==
offered`` is an invariant the reports assert.
"""

from __future__ import annotations

from collections import deque

__all__ = ["OVERLOAD_POLICIES", "AdmissionQueue"]

OVERLOAD_POLICIES = ("block", "shed_oldest", "reject")


class AdmissionQueue:
    """FIFO ingress queue with a depth bound and an overload policy.

    ``depth = 0`` means unbounded (the policy never triggers).  The
    ``admitted`` counter is owned by the *coordinator* — a query counts
    as admitted when it leaves the queue into service, so a query that
    is queued and later shed is never double-counted.
    """

    def __init__(self, depth: int, policy: str) -> None:
        if depth < 0:
            raise ValueError(f"queue depth must be >= 0, got {depth}")
        if policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"overload policy must be one of {OVERLOAD_POLICIES}, got {policy!r}"
            )
        self.depth = int(depth)
        self.policy = policy
        self.queue: deque[int] = deque()
        self.admitted = 0
        self.shed = 0
        self.rejected = 0
        #: peak ingress-queue occupancy ever observed
        self.max_depth_seen = 0

    def _full(self) -> bool:
        return self.depth > 0 and len(self.queue) >= self.depth

    def accepting(self) -> bool:
        """Whether the coordinator should consume the next arrival now.

        Only the ``block`` policy ever says no — shedding policies must
        see every arrival to make their drop decision.
        """
        return self.policy != "block" or not self._full()

    def offer(self, query_id: int) -> tuple[str, int | None]:
        """Present one arrival; returns ``(outcome, dropped_query_id)``.

        ``("queued", None)`` — the arrival joined the queue;
        ``("shed", old_qid)`` — the arrival joined, evicting ``old_qid``;
        ``("rejected", query_id)`` — the arrival was refused.
        """
        if not self._full():
            self.queue.append(int(query_id))
            self.max_depth_seen = max(self.max_depth_seen, len(self.queue))
            return ("queued", None)
        if self.policy == "reject":
            self.rejected += 1
            return ("rejected", int(query_id))
        if self.policy == "shed_oldest":
            old = self.queue.popleft()
            self.shed += 1
            self.queue.append(int(query_id))
            return ("shed", int(old))
        raise RuntimeError(
            "block-policy arrival offered to a full queue: the caller must "
            "check accepting() before consuming arrivals"
        )

    def begin_service(self) -> int:
        """Pop the head query into service (counts it admitted)."""
        qid = self.queue.popleft()
        self.admitted += 1
        return int(qid)
