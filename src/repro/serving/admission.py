"""Bounded-ingress admission control for open-loop serving.

When offered load exceeds capacity something has to give; the admission
queue makes the choice explicit and *accounted* instead of letting the
backlog grow silently.  Three overload policies:

- ``block`` — never drop: when the queue is full the coordinator simply
  stops consuming arrivals, so excess queries wait at the ingress
  (clients see latency, not errors — TCP-backpressure semantics);
- ``shed_oldest`` — drop the *oldest* queued query to make room for the
  new one (the stale request was about to miss its SLO anyway);
- ``reject`` — refuse the *new* arrival with a flag (fail-fast
  semantics; the queued work keeps its position).

Every query ends in exactly one of three ledgers — admitted (entered
service), shed, or rejected — so ``admitted + shed + rejected ==
offered`` is an invariant the reports assert.
"""

from __future__ import annotations

from collections import deque

from repro.obs.metrics import MetricsRegistry

__all__ = ["OVERLOAD_POLICIES", "AdmissionQueue"]

OVERLOAD_POLICIES = ("block", "shed_oldest", "reject")


def _reg_counter(metric: str):
    """Property reading/writing a named registry counter (so ``+=`` works)."""

    def fget(self):
        return self.registry.counter(metric).value

    def fset(self, value):
        self.registry.counter(metric).value = value

    return property(fget, fset)


def _reg_gauge(metric: str):
    def fget(self):
        return self.registry.gauge(metric).value

    def fset(self, value):
        self.registry.gauge(metric).value = value

    return property(fget, fset)


class AdmissionQueue:
    """FIFO ingress queue with a depth bound and an overload policy.

    ``depth = 0`` means unbounded (the policy never triggers).  The
    ``admitted`` counter is owned by the *coordinator* — a query counts
    as admitted when it leaves the queue into service, so a query that
    is queued and later shed is never double-counted.

    The ledgers are registry instruments (``admission.*``): sharing the
    run-wide :class:`MetricsRegistry` makes them the same counters the
    :class:`~repro.core.coordinator.report.MasterReport` exposes as
    ``admitted_queries`` etc.
    """

    def __init__(self, depth: int, policy: str, metrics: MetricsRegistry | None = None) -> None:
        if depth < 0:
            raise ValueError(f"queue depth must be >= 0, got {depth}")
        if policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"overload policy must be one of {OVERLOAD_POLICIES}, got {policy!r}"
            )
        self.depth = int(depth)
        self.policy = policy
        self.queue: deque[int] = deque()
        self.registry = metrics if metrics is not None else MetricsRegistry()

    #: queries that left the queue into service
    admitted = _reg_counter("admission.admitted")
    #: queued queries dropped by the shed-oldest overload policy
    shed = _reg_counter("admission.shed")
    #: arrivals refused outright by the reject overload policy
    rejected = _reg_counter("admission.rejected")
    #: peak ingress-queue occupancy ever observed
    max_depth_seen = _reg_gauge("admission.max_depth")

    def _full(self) -> bool:
        return self.depth > 0 and len(self.queue) >= self.depth

    def accepting(self) -> bool:
        """Whether the coordinator should consume the next arrival now.

        Only the ``block`` policy ever says no — shedding policies must
        see every arrival to make their drop decision.
        """
        return self.policy != "block" or not self._full()

    def offer(self, query_id: int) -> tuple[str, int | None]:
        """Present one arrival; returns ``(outcome, dropped_query_id)``.

        ``("queued", None)`` — the arrival joined the queue;
        ``("shed", old_qid)`` — the arrival joined, evicting ``old_qid``;
        ``("rejected", query_id)`` — the arrival was refused.
        """
        if not self._full():
            self.queue.append(int(query_id))
            self.max_depth_seen = max(self.max_depth_seen, len(self.queue))
            return ("queued", None)
        if self.policy == "reject":
            self.rejected += 1
            return ("rejected", int(query_id))
        if self.policy == "shed_oldest":
            old = self.queue.popleft()
            self.shed += 1
            self.queue.append(int(query_id))
            return ("shed", int(old))
        raise RuntimeError(
            "block-policy arrival offered to a full queue: the caller must "
            "check accepting() before consuming arrivals"
        )

    def begin_service(self) -> int:
        """Pop the head query into service (counts it admitted)."""
        qid = self.queue.popleft()
        self.admitted += 1
        return int(qid)
