"""The open-loop serving coordinator.

Where :class:`~repro.core.coordinator.pipeline.CoordinatorPipeline`
holds the whole batch at t = 0 and pushes it through, the
:class:`ServingPipeline` is event-driven: queries become work only when
their ``TAG_ARRIVE`` message lands, pass through the admission queue,
and are served one at a time from its head.  The loop interleaves three
activities on the virtual clock —

1. consume arrivals that have already happened (offer to admission);
2. consume results/credit-acks that have already landed (settle tasks,
   complete queries, feed the cache);
3. serve the queue head: cache probe first, then route, then dispatch
   every routed partition — *gated* on every partition's workgroup
   having a spare credit, so service is head-of-line blocking rather
   than unbounded deferral (the bounded ingress queue stays the only
   queue).

When nothing is ready it blocks on whichever of the two posted receives
completes first.  Already-completed requests are settled in virtual-
completion-time order (not post order), so the interleaving of arrivals
and results is causal and deterministic.

Cache hits complete instantly at the master — no routing charge, no
dispatch, no worker time — which is exactly the capacity win the bench
measures; a run with the cache enabled but no hits does the same sends
at the same times as a run with the cache off (the equivalence the
tests pin).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SystemConfig
from repro.core.coordinator.merger import ResultMerger
from repro.core.coordinator.report import MasterReport
from repro.core.coordinator.router import Router
from repro.core.coordinator.window import DispatchWindow
from repro.core.messages import TAG_ARRIVE, TAG_CREDIT, TAG_END, TAG_RESULT, TAG_THREAD_DONE
from repro.core.replication import Workgroups
from repro.core.results import GlobalResults
from repro.loadbalance import PrimarySelector, ReplicaSelector
from repro.serving.state import ServingState
from repro.simmpi.engine import Context, Mailbox
from repro.simmpi.errors import SimError

__all__ = ["ServingPipeline"]


class ServingPipeline:
    """One serving run's coordinator (approx routing, batch_size 1)."""

    def __init__(
        self,
        config: SystemConfig,
        router,
        workgroups: Workgroups,
        queries: np.ndarray,
        results: GlobalResults,
        node_mailboxes: list[Mailbox],
        rma_window,
        serving: ServingState,
        selector: ReplicaSelector | None = None,
        metrics=None,
        fpayload: dict | None = None,
    ) -> None:
        self.config = config
        self.queries = queries
        self.results = results
        self.node_mailboxes = node_mailboxes
        self.rma_window = rma_window
        self.serving = serving
        self.report = MasterReport(config.n_cores, registry=metrics)
        if selector is None:
            selector = PrimarySelector(workgroups)
        self.selector = selector
        self.tracker = selector.tracker
        self.router = Router(router, self.report, int(queries.shape[1]))
        self.window = DispatchWindow(
            config, selector, self.report, node_mailboxes, fpayload=fpayload
        )
        self.merger = ResultMerger(
            config, results, self.report, one_sided=rma_window is not None
        )
        #: memoized route per query (the head may be retried while
        #: credit-blocked; it must not be re-routed or re-probed)
        self._routes: dict[int, list[int]] = {}
        #: cache key per probed-and-missed query, for insert at completion
        self._keys: dict[int, bytes] = {}
        self._outstanding = np.zeros(serving.n_queries, dtype=np.int64)

    # -- event handlers ------------------------------------------------------

    def _on_arrival(self, ctx: Context, payload) -> None:
        state = self.serving
        _, qid, _t = payload
        state.consumed += 1
        outcome, dropped = state.admission.offer(qid)
        ctx.trace_instant("arrive", query_id=int(qid), outcome=outcome)
        if outcome == "rejected":
            state.drop(qid)
        elif outcome == "shed":
            state.drop(dropped)

    def _note_settle(self, ctx: Context, qid: int) -> None:
        """One task of ``qid`` settled; at zero outstanding it completes."""
        self._outstanding[qid] -= 1
        if self._outstanding[qid] != 0:
            return
        state = self.serving
        state.timeline.note_complete(qid, ctx.now)
        ctx.trace_instant("complete", query_id=int(qid))
        if state.cache is not None:
            slot = self.results[qid]
            key = self._keys.pop(qid, None)
            if slot is not None and key is not None:
                d, i = slot
                state.cache.put(key, (d.copy(), i.copy()))

    def _serve_head(self, ctx: Context):
        """Try to take the queue head into service; returns True on entry.

        False means the head is credit-blocked (every routed partition's
        workgroup is out of credits) — the caller must consume results
        until credits free.
        """
        state, config = self.serving, self.config
        adm, window = state.admission, self.window
        qid = adm.queue[0]
        q = self.queries[qid]
        cache = state.cache
        if cache is not None and qid not in self._keys and qid not in self._routes:
            key = cache.key(q)
            row = cache.get(key)
            ctx.trace_instant("cache_probe", query_id=int(qid), hit=row is not None)
            if row is not None:
                # hit: the answer is already at the master — serve it
                # without touching the cluster (zero-cost completion)
                adm.begin_service()
                state.timeline.note_dispatch(qid, ctx.now)
                ctx.trace_instant("admit", query_id=int(qid))
                d, i = row
                self.results[qid] = (d.copy(), i.copy())
                state.timeline.note_complete(qid, ctx.now)
                ctx.trace_instant("complete", query_id=int(qid), cached=True)
                self.report.fanouts.append(0)
                return True
            self._keys[qid] = key
        parts = self._routes.get(qid)
        if parts is None:
            parts = yield from self.router.route_approx(ctx, q, config.n_probe, query_id=int(qid))
            self._routes[qid] = parts
        if not all(window.group_has_credit(p) for p in parts):
            return False
        adm.begin_service()
        state.timeline.note_dispatch(qid, ctx.now)
        ctx.trace_instant("admit", query_id=int(qid))
        self.report.fanouts.append(len(parts))
        self._outstanding[qid] = len(parts)
        for pid_part in parts:
            with ctx.span("dispatch", query_id=int(qid), partition=int(pid_part)):
                core = self.selector.pick(pid_part, ctx.now, exclude=window.blocked(1))
                yield from window.send_task(ctx, qid, pid_part, core, q)
        return True

    def _handle_result(self, ctx: Context, payload):
        merger, window = self.merger, self.window
        if merger.one_sided:
            merger.settle_credit(payload, window, ctx=ctx)
            _, qids_b, _pid = payload
            for qid in qids_b:
                self._note_settle(ctx, int(qid))
            return
        with ctx.span("reduce"):
            rows, pid_part = yield from merger.merge_payload(ctx, payload)
        merger.finish_rows(rows, pid_part, window, ctx=ctx)

    # -- the coordinator proc body -------------------------------------------

    def run(self, ctx: Context):
        config, report = self.config, self.report
        state, merger, window = self.serving, self.merger, self.window
        adm = state.admission
        one_sided = self.rma_window is not None
        result_tag = TAG_CREDIT if one_sided else TAG_RESULT
        n = state.n_queries
        if not one_sided:
            merger.note_result = lambda qid: self._note_settle(ctx, qid)

        def want_arrival() -> bool:
            return state.consumed < n and adm.accepting()

        def expect_result() -> bool:
            return merger.tasks_completed < report.tasks_sent

        arrive_req = None
        result_req = None
        while state.consumed < n or adm.queue or expect_result():
            if arrive_req is None and want_arrival():
                arrive_req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_ARRIVE)
            if result_req is None and expect_result():
                result_req = yield from ctx.post_recv(ctx.mailbox, tag=result_tag)

            # settle everything that has already happened, in virtual-
            # completion order, without advancing the clock
            progressed = False
            while True:
                ready = [
                    r
                    for r in (arrive_req, result_req)
                    if r is not None and r.done and r.completion_time <= ctx.now
                ]
                if not ready:
                    break
                req = min(ready, key=lambda r: r.completion_time)
                payload = yield from ctx.wait(req)
                if req is arrive_req:
                    arrive_req = None
                    self._on_arrival(ctx, payload)
                    if want_arrival():
                        arrive_req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_ARRIVE)
                else:
                    result_req = None
                    yield from self._handle_result(ctx, payload)
                    if expect_result():
                        result_req = yield from ctx.post_recv(ctx.mailbox, tag=result_tag)
                progressed = True

            if adm.queue:
                served = yield from self._serve_head(ctx)
                if served:
                    continue
            if progressed:
                continue

            # nothing ready and the head (if any) is credit-blocked:
            # block until the next arrival or settle.  Requests that are
            # done-but-future are waited directly in completion order —
            # wait_any's immediate-completion check is post-order, which
            # would let a later result overtake an earlier arrival.
            waits = [r for r in (arrive_req, result_req) if r is not None]
            if not waits:
                raise SimError(
                    "serving coordinator stalled with no receive posted "
                    f"(consumed {state.consumed}/{n}, queue {len(adm.queue)}, "
                    f"outstanding {report.tasks_sent - merger.tasks_completed})"
                )
            done = [r for r in waits if r.done]
            if done:
                req = min(done, key=lambda r: r.completion_time)
                payload = yield from ctx.wait(req)
            else:
                idx, payload = yield from ctx.wait_any(waits)
                req = waits[idx]
            if req is arrive_req:
                arrive_req = None
                self._on_arrival(ctx, payload)
            else:
                result_req = None
                yield from self._handle_result(ctx, payload)

        for r in (arrive_req, result_req):
            if r is not None:
                yield from ctx.cancel(r)

        # End of Queries + thread-exit drain, as in the closed-loop pipeline
        with ctx.span("drain"):
            for node in range(config.n_nodes):
                yield from ctx.send_to_mailbox(
                    self.node_mailboxes[node],
                    ("end",),
                    source=ctx.pid,
                    tag=TAG_END,
                    nbytes=8,
                    same_node=False,
                )
            for _ in range(config.n_nodes * config.threads_per_node):
                req = yield from ctx.post_recv(ctx.mailbox, tag=TAG_THREAD_DONE)
                yield from ctx.wait(req)

        if not state.accounted():
            raise SimError(
                "serving admission ledgers do not cover the offered load: "
                f"admitted {adm.admitted} + shed {adm.shed} + rejected "
                f"{adm.rejected} != offered {state.offered}"
            )

        report.query_latencies = state.timeline.latencies()
        report.offered_queries = state.offered
        report.admitted_queries = adm.admitted
        report.shed_queries = adm.shed
        report.rejected_queries = adm.rejected
        report.max_ingress_depth = adm.max_depth_seen
        cache = state.cache
        if cache is not None:
            report.cache_hits = cache.hits
            report.cache_misses = cache.misses
            report.cache_stale = cache.stale
            report.cache_evictions = cache.evictions
        report.arrival_times = state.timeline.arrival
        report.dispatch_times = state.timeline.dispatch
        report.complete_times = state.timeline.complete
        report.queue_depth_timeline = self.tracker.timeline()
        report.max_outstanding_tasks = window.max_outstanding
        report.credits_leaked = window.outstanding
        return report
