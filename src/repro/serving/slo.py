"""Per-query SLO timestamping for open-loop serving.

Three timestamps per query, all on the virtual clock:

- ``arrival`` — when the client issued the query (the schedule time);
- ``dispatch`` — when the coordinator took it into service (cache
  lookup / first task send);
- ``complete`` — when its last result settled at the coordinator (or
  its cache hit was served).

``complete - arrival`` is the arrival-to-completion latency the SLO is
judged on; ``dispatch - arrival`` is time-in-queue and ``complete -
dispatch`` time-in-service, the breakdown that tells an operator whether
an SLO miss is an admission problem or a capacity problem.  Shed and
rejected queries keep NaN timestamps — they have no completion, and the
NaNs flow through ``eval.latency_stats`` (which drops them) while the
admission ledgers account for them explicitly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ServingTimeline"]


class ServingTimeline:
    """The three per-query timestamp vectors of one serving run."""

    def __init__(self, n_queries: int) -> None:
        self.arrival = np.full(n_queries, np.nan)
        self.dispatch = np.full(n_queries, np.nan)
        self.complete = np.full(n_queries, np.nan)

    def note_dispatch(self, query_id: int, now: float) -> None:
        self.dispatch[query_id] = now

    def note_complete(self, query_id: int, now: float) -> None:
        self.complete[query_id] = now

    def latencies(self) -> np.ndarray:
        """Arrival-to-completion seconds (NaN for shed/rejected queries)."""
        return self.complete - self.arrival
