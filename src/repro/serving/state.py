"""The bundle of serving-side state one coordinator run owns.

Kept free of any ``repro.core`` import so the ``repro.serving`` package
root can be imported from ``core.config`` validation without a cycle:
the coordinator-side glue lives in ``repro.serving.coordinator`` and is
imported only by the runtime strategies.
"""

from __future__ import annotations

import numpy as np

from repro.serving.admission import AdmissionQueue
from repro.serving.cache import ResultCache
from repro.serving.slo import ServingTimeline

__all__ = ["ServingState"]


class ServingState:
    """Admission queue + optional result cache + SLO timeline + schedule."""

    def __init__(
        self,
        schedule: np.ndarray,
        queue_depth: int,
        overload_policy: str,
        cache_size: int = 0,
        cache_mode: str = "exact",
        dim: int | None = None,
        seed: int = 0,
        metrics=None,
        cache_namespace: bytes = b"",
    ) -> None:
        self.schedule = np.asarray(schedule, dtype=np.float64)
        n = int(self.schedule.shape[0])
        self.n_queries = n
        self.admission = AdmissionQueue(queue_depth, overload_policy, metrics=metrics)
        self.cache = (
            ResultCache(
                cache_size,
                mode=cache_mode,
                dim=dim,
                seed=seed,
                metrics=metrics,
                namespace=cache_namespace,
            )
            if cache_size > 0
            else None
        )
        self.timeline = ServingTimeline(n)
        self.timeline.arrival[:] = self.schedule
        #: arrivals consumed off the fabric so far (monotone cursor)
        self.consumed = 0
        #: queries dropped by admission (their results must never be served)
        self.dropped: set[int] = set()

    @property
    def offered(self) -> int:
        return self.n_queries

    def drop(self, query_id: int) -> None:
        self.dropped.add(int(query_id))
        # a dropped query never completes: its timeline stays NaN
        self.timeline.dispatch[query_id] = np.nan
        self.timeline.complete[query_id] = np.nan

    def accounted(self) -> bool:
        """The admission invariant: every offered query is in one ledger."""
        a = self.admission
        return a.admitted + a.shed + a.rejected == self.offered
