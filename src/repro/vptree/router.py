"""Partition routing: the master's query → partitions map F(q).

The master process holds only the VP-tree *skeleton* (vantage points and
radii; the data itself lives on workers).  Leaves are labeled with partition
ids — partition ``i`` lives on worker rank handling ``D_i``.  Three routing
modes:

- ``route_exact(q, tau)``: every partition whose subspace intersects the
  ball of radius ``tau`` around ``q``.  With ``tau`` equal to the true k-th
  neighbor distance this reconstructs the exact F(q) of the paper — results
  from these partitions suffice to recover the global k-NN (up to the
  local searchers' own approximation).
- ``route_approx(q, n_probe)``: best-first multi-probe — descend the tree,
  charging each detour by its boundary margin ``|d(q, vp) - mu|``, and
  return the ``n_probe`` partitions with the smallest accumulated penalty.
  This is the throughput mode: a small fixed fan-out per query.
- ``route_adaptive(q, k, pilot_result)``: two-phase — after probing the
  single nearest partition, use its k-th local distance as ``tau`` for an
  exact route.  Guarantees no partition that could improve the result is
  skipped, at the cost of one routing round-trip.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.metrics import Metric, get_metric
from repro.utils.validation import check_positive_int, check_vector

__all__ = ["RouteNode", "PartitionRouter"]


@dataclass
class RouteNode:
    """Skeleton node: internal (vp, mu, children) or leaf (partition id)."""

    vp: np.ndarray | None = None
    mu: float = 0.0
    left: "RouteNode | None" = None
    right: "RouteNode | None" = None
    partition: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.partition >= 0


class PartitionRouter:
    """VP-tree skeleton mapping queries to partition ids."""

    def __init__(self, root: RouteNode, n_partitions: int, metric: str | Metric = "l2"):
        self.root = root
        self.n_partitions = n_partitions
        self.metric = get_metric(metric)
        if not self.metric.is_true_metric:
            raise ValueError("partition routing requires a true metric")
        self.n_dist_evals = 0

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_paths(
        cls,
        paths: list[list[tuple[np.ndarray, float, bool]]],
        metric: str | Metric = "l2",
    ) -> "PartitionRouter":
        """Rebuild the skeleton from per-rank root-to-leaf paths.

        ``paths[r]`` is rank r's recorded construction path: a list of
        ``(vp, mu, went_left)`` from root to leaf.  This is how the master
        assembles the global tree after the distributed build (each rank
        knows only the splits it participated in).
        """
        n = len(paths)

        def rec(members: list[int], depth: int) -> RouteNode:
            if len(members) == 1:
                return RouteNode(partition=members[0])
            lefts = [r for r in members if paths[r][depth][2]]
            rights = [r for r in members if not paths[r][depth][2]]
            vp, mu, _ = paths[lefts[0]][depth]
            return RouteNode(
                vp=np.asarray(vp, dtype=np.float32),
                mu=float(mu),
                left=rec(lefts, depth + 1),
                right=rec(rights, depth + 1),
            )

        return cls(rec(list(range(n)), 0), n, metric)

    @classmethod
    def from_vptree(cls, tree, leaf_to_partition: dict[int, int] | None = None) -> "PartitionRouter":
        """Derive a router from a serial :class:`~repro.vptree.tree.VPTree`.

        Leaves are numbered left-to-right; ``leaf_to_partition`` can remap
        them.  Used by the single-process engine mode and by tests that
        compare routing against an exact tree search.
        """
        counter = [0]

        def rec(node) -> RouteNode:
            if node.is_leaf:
                pid = counter[0]
                counter[0] += 1
                if leaf_to_partition is not None:
                    pid = leaf_to_partition[pid]
                return RouteNode(partition=pid)
            return RouteNode(
                vp=node.vp, mu=node.mu, left=rec(node.left), right=rec(node.right)
            )

        root = rec(tree.root)
        return cls(root, counter[0], tree.metric)

    # -- routing -------------------------------------------------------------

    def _d(self, q: np.ndarray, vp: np.ndarray) -> float:
        self.n_dist_evals += 1
        return float(self.metric.one_to_many(q, vp[np.newaxis, :])[0])

    def route_exact(self, query: np.ndarray, tau: float) -> list[int]:
        """All partitions intersecting the ball of radius ``tau``."""
        q = check_vector(query, "query")
        if tau < 0:
            raise ValueError(f"tau must be non-negative, got {tau}")
        out: list[int] = []

        def rec(node: RouteNode) -> None:
            if node.is_leaf:
                out.append(node.partition)
                return
            d = self._d(q, node.vp)
            if d - tau <= node.mu:
                rec(node.left)
            if d + tau > node.mu:
                rec(node.right)

        rec(self.root)
        return out

    def route_approx(self, query: np.ndarray, n_probe: int = 1) -> list[int]:
        """The ``n_probe`` most promising partitions, best-first by margin.

        Penalty of a leaf is the sum of boundary-crossing margins along its
        path; the nearest leaf always has penalty 0.  Returned in
        increasing-penalty order.
        """
        q = check_vector(query, "query")
        check_positive_int(n_probe, "n_probe")
        out: list[int] = []
        seq = 0
        heap: list[tuple[float, int, RouteNode]] = [(0.0, seq, self.root)]
        while heap and len(out) < n_probe:
            penalty, _, node = heapq.heappop(heap)
            while not node.is_leaf:
                d = self._d(q, node.vp)
                margin = abs(d - node.mu)
                near, far = (
                    (node.left, node.right) if d <= node.mu else (node.right, node.left)
                )
                seq += 1
                heapq.heappush(heap, (penalty + margin, seq, far))
                node = near
            out.append(node.partition)
        return out

    def route_adaptive(self, query: np.ndarray, tau_from_pilot: float) -> list[int]:
        """Exact route with the pilot partition's k-th distance as radius.

        The pilot partition (``route_approx(q, 1)[0]``) must already have
        been searched; pass its k-th local result distance.  The union of
        {pilot} and this route provably covers every partition that could
        hold a closer point (triangle inequality on the VP boundaries).
        """
        return self.route_exact(query, tau_from_pilot)

    # -- diagnostics ------------------------------------------------------------

    def partitions(self) -> list[int]:
        out: list[int] = []

        def rec(node: RouteNode) -> None:
            if node.is_leaf:
                out.append(node.partition)
            else:
                rec(node.left)
                rec(node.right)

        rec(self.root)
        return out

    def depth(self) -> int:
        def rec(node: RouteNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(rec(node.left), rec(node.right))

        return rec(self.root)
