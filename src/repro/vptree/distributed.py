"""Distributed VP-tree construction (paper Algorithms 1 and 2).

All ranks of a communicator cooperatively build one VP-tree level, then the
communicator splits in half and each half recurses on its side of the data,
until every rank holds exactly one leaf — its data partition.  Per level:

1. **Vantage point selection** (Alg. 1): every rank scores a local candidate
   sample against its own data and sends its best representative to the
   group master; the master re-scores the representatives against *its*
   local subset and broadcasts the winner.  (Assumption, as in the paper:
   each rank's subset is representative of the global distribution.)
2. **Splitting radius**: distances from every local point to the vantage
   point, then the exact global q-th quantile via
   :func:`~repro.vptree.median.distributed_select` (the median when the
   group size is even — the paper's case; the generalization to any group
   size keeps per-rank loads equal for non-power-of-two worlds).
3. **Shuffle** (Alg. 2's ``MPI_Alltoallv``): inside-ball points are spread
   evenly over the first half of the ranks, outside points over the second
   half, with a rank-indexed rotation so remainders don't pile onto the
   first rank of each side.
4. **Recurse**: ``comm.split`` by side.

Every rank records its root-to-leaf path of ``(vp, mu, went_left)``; the
master assembles the global :class:`~repro.vptree.router.PartitionRouter`
from the gathered paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics import Metric, get_metric
from repro.simmpi.comm import Comm
from repro.simmpi.engine import Context
from repro.utils.rng import rng_for
from repro.vptree.median import distributed_select
from repro.vptree.select import spread_score

__all__ = ["DistributedBuildResult", "distributed_build"]


@dataclass
class DistributedBuildResult:
    """One rank's outcome of the distributed partitioning."""

    #: this rank's partition (points)
    points: np.ndarray
    #: global ids of the partition's points
    ids: np.ndarray
    #: root-to-leaf path: (vantage point, radius, went_left)
    path: list[tuple[np.ndarray, float, bool]] = field(default_factory=list)


def _select_vantage_point_dist(
    ctx: Context,
    comm: Comm,
    X: np.ndarray,
    metric: Metric,
    n_candidates: int,
    n_sample: int,
    rng: np.random.Generator,
    work_scale: float = 1.0,
):
    """Algorithm 1: two-level candidate tournament.  Returns the vp vector."""
    my_rank = comm.rank(ctx)
    # Virtual local size: at work_scale > 1 this rank stands in for a
    # paper-scale shard, so the candidate/sample counts saturate at the
    # algorithm's constants (100x100) rather than the tiny real shard.
    # Selection cost is candidates x samples — it does NOT scale with the
    # data volume, so it is charged unscaled.
    virt_local = max(1, int(len(X) * work_scale))
    n_c_virt = min(n_candidates, virt_local)
    n_s_virt = min(n_sample, virt_local)
    # local round: sample candidates from local data, score on local sample
    if len(X):
        n_c = min(n_candidates, len(X))
        n_s = min(n_sample, len(X))
        cand_idx = rng.choice(len(X), size=n_c, replace=False)
        samp_idx = rng.choice(len(X), size=n_s, replace=False)
        sample = X[samp_idx]
        best, best_score = None, -np.inf
        for ci in cand_idx:
            s = spread_score(X[ci], sample, metric)
            if s > best_score:
                best, best_score = X[ci], s
        yield from ctx.compute(
            ctx.cost.distance_cost(n_c_virt * n_s_virt, X.shape[1]), kind="build_vp"
        )
        representative = np.ascontiguousarray(best)
    else:
        representative = None

    reps = yield from comm.gather(ctx, representative, root=0)
    if my_rank == 0:
        cands = [r for r in reps if r is not None]
        if not cands:
            raise ValueError("no rank holds any data; cannot select a vantage point")
        if len(X):
            samp_idx = rng.choice(len(X), size=min(n_sample, len(X)), replace=False)
            sample = X[samp_idx]
        else:
            sample = np.stack(cands)
        best, best_score = None, -np.inf
        for c in cands:
            s = spread_score(c, sample, metric)
            if s > best_score:
                best, best_score = c, s
        yield from ctx.compute(
            ctx.cost.distance_cost(len(cands) * n_s_virt, len(best)),
            kind="build_vp",
        )
        vp = best
    else:
        vp = None
    vp = yield from comm.bcast(ctx, vp, root=0)
    return np.asarray(vp, dtype=np.float32)


def _split_inside(
    ctx: Context, comm: Comm, d: np.ndarray, mu: float, k_global: int
):
    """Boolean mask with exactly ``k_global`` True entries across ranks.

    Points strictly inside the radius always go left; boundary ties are
    assigned left in rank order until the global quota is met, so the split
    is exact even with many duplicate distances.
    """
    strict = d < mu
    equal = d == mu
    n_strict = yield from comm.allreduce(ctx, int(strict.sum()), op=sum)
    deficit = k_global - n_strict
    eq_counts = yield from comm.allgather(ctx, int(equal.sum()))
    my_rank = comm.rank(ctx)
    take_before = sum(eq_counts[:my_rank])
    my_take = max(0, min(int(equal.sum()), deficit - take_before))
    inside = strict.copy()
    if my_take > 0:
        eq_idx = np.flatnonzero(equal)[:my_take]
        inside[eq_idx] = True
    return inside


def _chunks_for(
    n_items: int, n_dests: int, rotation: int
) -> list[tuple[int, int]]:
    """Split ``n_items`` into ``n_dests`` near-equal (start, stop) slices,
    rotating which destinations get the +1 remainder by ``rotation``."""
    base = n_items // n_dests
    rem = n_items % n_dests
    sizes = [base + (1 if (j - rotation) % n_dests < rem else 0) for j in range(n_dests)]
    out = []
    pos = 0
    for s in sizes:
        out.append((pos, pos + s))
        pos += s
    return out


def distributed_build(
    ctx: Context,
    world: Comm,
    local_points: np.ndarray,
    local_ids: np.ndarray,
    metric: str | Metric = "l2",
    n_candidates: int = 100,
    n_sample: int = 100,
    seed: int = 0,
    work_scale: float = 1.0,
):
    """Run the full distributed partitioning on the calling rank.

    Generator; every rank of ``world`` must run it.  Returns this rank's
    :class:`DistributedBuildResult`.

    ``work_scale`` multiplies all local compute charges; the modeled
    (paper-scale) mode sets it to virtual_points / real_points so the
    virtual construction time reflects the billion-point workload while
    the algorithm itself runs on the reduced-scale data (see DESIGN.md).
    """
    m = get_metric(metric)
    if not m.is_true_metric:
        raise ValueError(f"VP partitioning requires a true metric, not {m.name!r}")
    X = np.ascontiguousarray(local_points, dtype=np.float32)
    ids = np.asarray(local_ids, dtype=np.int64)
    if len(X) != len(ids):
        raise ValueError(f"{len(X)} points but {len(ids)} ids")
    comm = world
    path: list[tuple[np.ndarray, float, bool]] = []
    depth = 0

    while comm.size > 1:
        my_rank = comm.rank(ctx)
        rng = rng_for(seed, "vpbuild", depth, my_rank)
        vp = yield from _select_vantage_point_dist(
            ctx, comm, X, m, n_candidates, n_sample, rng, work_scale
        )

        d = m.one_to_many(vp, X) if len(X) else np.empty(0)
        yield from ctx.compute(
            ctx.cost.distance_cost(len(X), X.shape[1]) * work_scale, kind="build_split"
        )

        n_left_ranks = (comm.size + 1) // 2
        total = yield from comm.allreduce(ctx, len(X), op=sum)
        k_global = max(1, min(total - 1, round(total * n_left_ranks / comm.size)))
        mu = yield from distributed_select(ctx, comm, d, k_global)
        inside = yield from _split_inside(ctx, comm, d, mu, k_global)

        left_ranks = list(range(n_left_ranks))
        right_ranks = list(range(n_left_ranks, comm.size))
        send: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for mask, dests in ((inside, left_ranks), (~inside, right_ranks)):
            pts = X[mask]
            pid = ids[mask]
            for j, (a, b) in enumerate(_chunks_for(len(pts), len(dests), my_rank)):
                if b > a:
                    send[dests[j]] = (pts[a:b], pid[a:b])
        yield from ctx.compute(
            ctx.cost.copy_cost(X.nbytes + ids.nbytes) * work_scale, kind="build_shuffle"
        )
        inbox = yield from comm.alltoallv(ctx, send)

        went_left = my_rank < n_left_ranks
        if inbox:
            X = np.ascontiguousarray(np.concatenate([p for p, _ in inbox.values()]))
            ids = np.concatenate([i for _, i in inbox.values()])
        else:
            X = np.empty((0, X.shape[1]), dtype=np.float32)
            ids = np.empty(0, dtype=np.int64)
        path.append((vp, float(mu), went_left))
        comm = yield from comm.split(ctx, color=0 if went_left else 1, key=my_rank)
        depth += 1

    return DistributedBuildResult(points=X, ids=ids, path=path)
