"""Distributed selection (median of medians across ranks).

Algorithm 2 needs the exact median of the distances-to-vantage-point over
data scattered across the group ("Use median of medians algorithm").  This
module provides:

- :func:`weighted_median` — serial weighted median, the pivot chooser;
- :func:`distributed_select` — an exact distributed k-th-smallest: each
  round, ranks contribute their local median and count, the weighted median
  of those becomes the global pivot, an allreduce counts elements below /
  equal to the pivot, and the search narrows to one side.  The weighted
  median pivot discards at least ~1/4 of the remaining elements per round,
  so rounds are O(log n); when the active set is small it is gathered and
  finished serially.

All algorithmic work happens on real NumPy arrays; communication goes
through the simulated comm, and local compare work is charged to the cost
model — so construction timings (Table II) account for it.
"""

from __future__ import annotations

import numpy as np

from repro.simmpi.comm import Comm
from repro.simmpi.engine import Context

__all__ = ["weighted_median", "distributed_select"]

#: below this many active elements the selection finishes serially
_GATHER_LIMIT = 4096


def weighted_median(values: np.ndarray, weights: np.ndarray) -> float:
    """Smallest value whose cumulative weight reaches half the total."""
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if values.size == 0:
        raise ValueError("weighted_median of empty input")
    order = np.argsort(values, kind="stable")
    cum = np.cumsum(weights[order])
    half = cum[-1] / 2.0
    idx = int(np.searchsorted(cum, half))
    return float(values[order[min(idx, len(order) - 1)]])


def distributed_select(ctx: Context, comm: Comm, values: np.ndarray, k: int):
    """Exact k-th smallest (1-based) of the concatenation of every rank's
    ``values``.  All ranks return the same scalar.  Generator — call with
    ``yield from``.
    """
    active = np.asarray(values, dtype=np.float64).ravel()
    total = yield from comm.allreduce(ctx, len(active), op=sum)
    if not 1 <= k <= total:
        raise ValueError(f"k={k} out of range for {total} total elements")
    rank_below = 0  # how many discarded elements are smaller than the active set

    while True:
        n_active = yield from comm.allreduce(ctx, len(active), op=sum)
        if n_active <= _GATHER_LIMIT:
            gathered = yield from comm.gather(ctx, active, root=0)
            if comm.rank(ctx) == 0:
                allv = np.sort(np.concatenate([np.asarray(g) for g in gathered]))
                # charge the serial sort
                yield from ctx.compute(
                    ctx.cost.compare_cost(int(len(allv) * max(np.log2(len(allv)), 1.0))),
                    kind="select",
                )
                answer = float(allv[k - rank_below - 1])
            else:
                answer = None
            answer = yield from comm.bcast(ctx, answer, root=0)
            return answer

        if len(active):
            local_med = float(np.median(active))
            yield from ctx.compute(ctx.cost.compare_cost(len(active)), kind="select")
            contrib = (local_med, len(active))
        else:
            contrib = (None, 0)
        meds = yield from comm.allgather(ctx, contrib)
        vals = np.array([m for m, c in meds if c > 0], dtype=np.float64)
        wts = np.array([c for m, c in meds if c > 0], dtype=np.float64)
        pivot = weighted_median(vals, wts)

        below = active < pivot
        equal = active == pivot
        counts = yield from comm.allreduce(
            ctx,
            (int(below.sum()), int(equal.sum())),
            op=lambda pairs: (sum(p[0] for p in pairs), sum(p[1] for p in pairs)),
        )
        yield from ctx.compute(ctx.cost.compare_cost(len(active)), kind="select")
        n_below, n_equal = counts
        target = k - rank_below
        if target <= n_below:
            active = active[below]
        elif target <= n_below + n_equal:
            return pivot
        else:
            active = active[~below & ~equal]
            rank_below += n_below + n_equal
