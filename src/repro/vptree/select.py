"""Vantage-point selection heuristic.

Yianilos's construction selects, from a random candidate subset, the point
whose distance distribution to the rest of the data has the largest *second
moment about its median* — i.e. the candidate that best spreads the data
away from the splitting boundary, which maximizes pruning during search.
The paper calls this ``SelectVantagePointSerial(D', D)`` (Algorithm 1).
"""

from __future__ import annotations

import numpy as np

from repro.metrics import Metric, get_metric

__all__ = ["spread_score", "select_vantage_point"]


def spread_score(candidate: np.ndarray, sample: np.ndarray, metric: Metric) -> float:
    """Second moment of distances to ``sample`` about their median.

    This is the heuristic function H(v, D) of the paper's Algorithm 1: a
    larger value means the candidate separates the data more decisively at
    the median boundary.
    """
    d = metric.one_to_many(candidate, sample)
    mu = np.median(d)
    return float(np.mean((d - mu) ** 2))


def select_vantage_point(
    X: np.ndarray,
    metric: str | Metric = "l2",
    n_candidates: int = 100,
    n_sample: int = 100,
    rng: np.random.Generator | None = None,
    candidates: np.ndarray | None = None,
) -> tuple[int, float]:
    """Pick the best vantage point for dataset ``X``.

    Samples ``n_candidates`` rows of ``X`` (or scores the explicitly given
    ``candidates`` matrix) against a random evaluation sample of ``X``,
    returning ``(index, score)``.  When ``candidates`` is given the index
    refers to a row of ``candidates`` — that is the mode the distributed
    construction uses at the group master, scoring worker representatives
    against the master's local subset.
    """
    m = get_metric(metric)
    rng = rng or np.random.default_rng()
    n = X.shape[0]
    sample_idx = rng.choice(n, size=min(n_sample, n), replace=False)
    sample = X[sample_idx]
    if candidates is None:
        cand_idx = rng.choice(n, size=min(n_candidates, n), replace=False)
        cand_matrix = X[cand_idx]
    else:
        cand_idx = np.arange(len(candidates))
        cand_matrix = candidates
    best_i, best_score = 0, -np.inf
    for j in range(cand_matrix.shape[0]):
        s = spread_score(cand_matrix[j], sample, m)
        if s > best_score:
            best_i, best_score = int(cand_idx[j]), s
    return best_i, best_score
