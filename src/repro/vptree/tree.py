"""Serial bucket-leaf VP-tree with exact k-NN search.

Differences from a textbook VP-tree, both taken from the paper:

- leaves hold *buckets* of points instead of single points ("the leaves of
  the VP tree we construct will be a set of data points"), and
- every point lives in a leaf — vantage points are stored by copy at
  internal nodes but their data rows descend into the left child (distance
  zero to themselves, always inside the ball), so the leaves exactly
  partition the dataset.  That invariant is what lets the same structure
  drive data partitioning.

Search uses the classic ball-overlap pruning: with current k-th best
distance tau, the left child (inside the ball of radius mu) is visited iff
``d(q, vp) - tau <= mu`` and the right child iff ``d(q, vp) + tau > mu``.
Correct for true metrics only — the constructor enforces
``metric.is_true_metric``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics import Metric, get_metric
from repro.utils.heaps import KnnBuffer
from repro.utils.validation import check_matrix, check_positive_int, check_vector
from repro.vptree.select import select_vantage_point

__all__ = ["VPTree", "VPNode"]


@dataclass
class VPNode:
    """Internal node (vp, mu) or leaf (ids).  Exactly one of the two forms."""

    vp: np.ndarray | None = None
    mu: float = 0.0
    left: "VPNode | None" = None
    right: "VPNode | None" = None
    ids: np.ndarray | None = None  # leaf bucket (global point ids)

    @property
    def is_leaf(self) -> bool:
        return self.ids is not None


class VPTree:
    """Exact metric-space k-NN index.

    Parameters
    ----------
    X:
        (n, dim) float matrix.
    leaf_size:
        Bucket capacity; recursion stops at or below this size.
    metric:
        A *true* metric (triangle inequality required for pruning).
    """

    def __init__(
        self,
        X: np.ndarray,
        leaf_size: int = 32,
        metric: str | Metric = "l2",
        seed: int = 0,
        n_candidates: int = 16,
    ) -> None:
        self.X = check_matrix(X, "X")
        self.metric = get_metric(metric)
        if not self.metric.is_true_metric:
            raise ValueError(
                f"VP-tree pruning requires a true metric; {self.metric.name!r} is not one"
            )
        check_positive_int(leaf_size, "leaf_size")
        self.leaf_size = leaf_size
        self.n_candidates = n_candidates
        self._rng = np.random.default_rng(np.random.SeedSequence([seed, 0x59]))
        self.n_dist_evals = 0
        self.root = self._build(np.arange(len(self.X), dtype=np.int64))

    # -- construction -----------------------------------------------------

    def _build(self, ids: np.ndarray) -> VPNode:
        if len(ids) <= self.leaf_size:
            return VPNode(ids=ids)
        sub = self.X[ids]
        vp_local, _ = select_vantage_point(
            sub,
            metric=self.metric,
            n_candidates=min(self.n_candidates, len(ids)),
            n_sample=min(100, len(ids)),
            rng=self._rng,
        )
        vp = sub[vp_local].copy()
        d = self.metric.one_to_many(vp, sub)
        self.n_dist_evals += len(ids)
        mu = float(np.median(d))
        inside = d <= mu
        # Degenerate split (many ties at mu): fall back to a half/half split
        # by distance rank so recursion always terminates.
        if inside.all() or not inside.any():
            order = np.argsort(d, kind="stable")
            half = len(ids) // 2
            inside = np.zeros(len(ids), dtype=bool)
            inside[order[:half]] = True
            mu = float(d[order[half - 1]])
        return VPNode(
            vp=vp,
            mu=mu,
            left=self._build(ids[inside]),
            right=self._build(ids[~inside]),
        )

    # -- search ------------------------------------------------------------

    def knn_search(
        self, query: np.ndarray, k: int, *, filter: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact k-NN; returns (distances, ids) closest first.

        ``filter``: optional boolean mask over insertion-order rows (= row
        indices of ``X``, which are also the returned ids); results stay
        exact over the matching subset via the shared overfetch fallback.
        """
        check_positive_int(k, "k")
        q = check_vector(query, "query", dim=self.X.shape[1])
        if filter is not None:
            from repro.protocols import filtered_overfetch

            n = len(self.X)
            return filtered_overfetch(
                lambda qq, kk: self.knn_search(qq, kk),
                n,
                np.arange(n, dtype=np.int64),
                q,
                k,
                filter,
            )
        buf = KnnBuffer(k)
        self._search(self.root, q, buf)
        return buf.result()

    def knn_search_batch(
        self, Q: np.ndarray, k: int, *, filter: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Padded (n_queries, k) batch search (the :class:`~repro.protocols.Searcher`
        contract); each row is exactly ``knn_search(Q[i], k, filter=...)``."""
        from repro.protocols import batch_from_single

        return batch_from_single(
            self.knn_search, check_matrix(Q, "Q"), k, filter=filter
        )

    def _search(self, node: VPNode, q: np.ndarray, buf: KnnBuffer) -> None:
        if node.is_leaf:
            if len(node.ids):
                d = self.metric.one_to_many(q, self.X[node.ids])
                self.n_dist_evals += len(node.ids)
                buf.offer_many(d, node.ids)
            return
        d_vp = float(self.metric.one_to_many(q, node.vp[np.newaxis, :])[0])
        self.n_dist_evals += 1
        near_first = d_vp <= node.mu
        first, second = (
            (node.left, node.right) if near_first else (node.right, node.left)
        )
        self._search(first, q, buf)
        tau = buf.tau
        # visit the other side only if the query ball crosses the boundary
        if near_first:
            if d_vp + tau > node.mu:
                self._search(second, q, buf)
        else:
            if d_vp - tau <= node.mu:
                self._search(second, q, buf)

    # -- diagnostics --------------------------------------------------------

    def leaves(self) -> list[np.ndarray]:
        """Leaf buckets in left-to-right order (they partition 0..n-1)."""
        out: list[np.ndarray] = []

        def rec(node: VPNode) -> None:
            if node.is_leaf:
                out.append(node.ids)
            else:
                rec(node.left)
                rec(node.right)

        rec(self.root)
        return out

    def depth(self) -> int:
        def rec(node: VPNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(rec(node.left), rec(node.right))

        return rec(self.root)
