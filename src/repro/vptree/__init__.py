"""Vantage-Point trees (Yianilos, SODA 1993).

Three roles in the system:

- :class:`~repro.vptree.tree.VPTree` — a serial bucket-leaf VP-tree with
  exact k-NN search, used as a correctness oracle and for the ablation
  comparing VP against KD partitioning quality.
- :class:`~repro.vptree.router.PartitionRouter` — the master's routing
  structure: a VP-tree whose leaves name data partitions.  Computes
  :math:`\\mathcal{F}(q)`, the set of partitions a query must visit, either
  exactly (ball-overlap with a given radius) or approximately (best-first
  multi-probe by boundary margin).
- :func:`~repro.vptree.distributed.distributed_build` — the paper's
  Algorithms 1 and 2: all ranks cooperatively select vantage points, find
  splitting radii with a distributed selection algorithm, shuffle points
  with ``alltoallv``, and recurse on split communicators until every rank
  holds exactly one partition.
"""

from repro.vptree.select import select_vantage_point, spread_score
from repro.vptree.tree import VPTree
from repro.vptree.router import PartitionRouter, RouteNode
from repro.vptree.median import weighted_median, distributed_select
from repro.vptree.distributed import distributed_build, DistributedBuildResult

__all__ = [
    "select_vantage_point",
    "spread_score",
    "VPTree",
    "PartitionRouter",
    "RouteNode",
    "weighted_median",
    "distributed_select",
    "distributed_build",
    "DistributedBuildResult",
]
