"""Lloyd's k-means with k-means++ seeding, blocked distance kernels.

Small, exact, dependency-free implementation tuned for the sizes the
compressed-index substrates need (codebooks of 16-4096 centroids over
sub-vectors).  All distances go through the GEMM-based squared-L2 kernel.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["kmeans_plus_plus_init", "KMeans"]


def _sq_dists(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    a2 = np.einsum("ij,ij->i", A, A)[:, None]
    b2 = np.einsum("ij,ij->i", B, B)[None, :]
    d = a2 + b2 - 2.0 * (A @ B.T)
    np.maximum(d, 0.0, out=d)
    return d


def kmeans_plus_plus_init(
    X: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = X.shape[0]
    centroids = np.empty((k, X.shape[1]), dtype=np.float64)
    centroids[0] = X[rng.integers(n)]
    closest = _sq_dists(X, centroids[:1]).ravel()
    for j in range(1, k):
        total = closest.sum()
        if total <= 0:
            centroids[j:] = X[rng.integers(n, size=k - j)]
            break
        probs = closest / total
        idx = rng.choice(n, p=probs)
        centroids[j] = X[idx]
        np.minimum(closest, _sq_dists(X, centroids[j : j + 1]).ravel(), out=closest)
    return centroids


class KMeans:
    """Exact Lloyd iterations until convergence or ``max_iter``.

    Attributes after :meth:`fit`: ``centroids`` (k, dim), ``inertia_``
    (sum of squared distances), ``n_iter_``.
    """

    def __init__(self, k: int, max_iter: int = 50, tol: float = 1e-5, seed: int = 0):
        check_positive_int(k, "k")
        check_positive_int(max_iter, "max_iter")
        self.k = k
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self.inertia_: float = float("inf")
        self.n_iter_: int = 0

    def fit(self, X: np.ndarray) -> "KMeans":
        X = check_matrix(X, "X").astype(np.float64)
        if X.shape[0] < self.k:
            raise ValueError(f"{X.shape[0]} points for k={self.k} clusters")
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 0x4B]))
        C = kmeans_plus_plus_init(X, self.k, rng)
        prev_inertia = float("inf")
        for it in range(self.max_iter):
            d = _sq_dists(X, C)
            assign = np.argmin(d, axis=1)
            inertia = float(d[np.arange(len(X)), assign].sum())
            for j in range(self.k):
                members = X[assign == j]
                if len(members):
                    C[j] = members.mean(axis=0)
                else:
                    # re-seed an empty cluster at the worst-served point
                    C[j] = X[int(np.argmax(d[np.arange(len(X)), assign]))]
            self.n_iter_ = it + 1
            if prev_inertia - inertia <= self.tol * max(prev_inertia, 1e-12):
                prev_inertia = inertia
                break
            prev_inertia = inertia
        self.centroids = C
        self.inertia_ = prev_inertia
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centroid assignment for each row of ``X``."""
        if self.centroids is None:
            raise RuntimeError("fit before predict")
        X = check_matrix(X, "X").astype(np.float64)
        return np.argmin(_sq_dists(X, self.centroids), axis=1)
