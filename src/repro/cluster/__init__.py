"""Clustering substrate: k-means (Lloyd's algorithm with k-means++ seeding).

Needed by the compressed-index baselines of the paper's related-work
section (inverted-file indexes assign points to centroid cells; product
quantization trains one codebook per subspace with k-means).
"""

from repro.cluster.kmeans import KMeans, kmeans_plus_plus_init

__all__ = ["KMeans", "kmeans_plus_plus_init"]
