"""Command-line interface.

Four subcommands mirroring the lifecycle a user of the real corpora needs:

- ``repro gen``    — synthesize a Table I analogue corpus to fvecs files,
- ``repro build``  — build the distributed index from an fvecs file and
  persist it to a directory (router skeleton + per-partition HNSW files),
- ``repro query``  — load a built index, answer a query fvecs batch, write
  ivecs results, report recall when ground truth is available,
- ``repro bench``  — tiny built-in strong-scaling sweep.

Installed as ``repro`` (console script) or runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time

import numpy as np

__all__ = ["main", "add_config_flags"]


def add_config_flags(parser: argparse.ArgumentParser, command: str) -> None:
    """Add every ``SystemConfig`` field tagged with CLI metadata to ``parser``.

    The config dataclass is the single source of truth for config-backed
    knobs (see :func:`repro.core.config.cli_option`): dest is the field
    name, the default is the field default, and the declared type/choices
    carry over — so a new knob is declared once, on the field, and every
    listed subcommand picks it up.  ``tests/test_cli.py`` asserts the
    round-trip for every tagged field.
    """
    from repro.core.config import SystemConfig

    for f in dataclasses.fields(SystemConfig):
        meta = f.metadata.get("cli")
        if meta is None or command not in meta["commands"]:
            continue
        kwargs: dict = {"dest": f.name, "default": f.default, "help": meta["help"]}
        if meta["choices"] is not None:
            kwargs["choices"] = list(meta["choices"])
        ftype = meta["type"] if meta["type"] is not None else type(f.default)
        if ftype is not str:
            kwargs["type"] = ftype
        parser.add_argument(meta["flag"], **kwargs)


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.datasets import load_dataset, write_fvecs, write_ivecs

    ds = load_dataset(args.dataset, n_points=args.n_points, n_queries=args.n_queries, k=args.k, seed=args.seed)
    os.makedirs(args.out, exist_ok=True)
    write_fvecs(os.path.join(args.out, "base.fvecs"), ds.X)
    write_fvecs(os.path.join(args.out, "query.fvecs"), ds.Q)
    write_ivecs(os.path.join(args.out, "groundtruth.ivecs"), ds.gt_ids.astype(np.int32))
    print(
        f"wrote {ds.n_points} x {ds.X.shape[1]} base vectors, {ds.n_queries} queries, "
        f"and exact ground truth (k={args.k}) to {args.out}/"
    )
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.core import DistributedANN, SystemConfig
    from repro.datasets import read_fvecs
    from repro.hnsw import HnswParams

    X = read_fvecs(args.base)
    # per-vector metadata for filtered search: an .npz of named integer
    # columns, each row-aligned with the base vectors
    metadata = None
    if args.attrs:
        with np.load(args.attrs) as npz:
            metadata = {name: np.asarray(npz[name]) for name in npz.files}
    cfg = SystemConfig(
        n_cores=args.cores,
        cores_per_node=args.cores_per_node,
        k=args.k,
        hnsw=HnswParams(M=args.M, ef_construction=args.ef_construction, seed=args.seed),
        n_probe=args.n_probe,
        seed=args.seed,
    )
    ann = DistributedANN(cfg)
    t0 = time.perf_counter()
    report = ann.fit(X, metadata=metadata)
    wall = time.perf_counter() - t0
    os.makedirs(args.out, exist_ok=True)
    if metadata is not None:
        # saved beside the partitions so `repro query --filter/--tenant`
        # can re-slice per-partition attribute columns on load
        np.savez_compressed(os.path.join(args.out, "attrs.npz"), **metadata)
    meta = {
        "dim": int(X.shape[1]),
        "n_points": int(len(X)),
        "n_cores": cfg.n_cores,
        "cores_per_node": cfg.cores_per_node,
        "k": cfg.k,
        "M": cfg.hnsw.M,
        "ef_construction": cfg.hnsw.ef_construction,
        "n_probe": cfg.n_probe,
        "seed": cfg.seed,
        "partition_sizes": report.partition_sizes,
    }
    with open(os.path.join(args.out, "meta.json"), "w") as fh:
        json.dump(meta, fh, indent=2)
    _save_router(ann.router, os.path.join(args.out, "router.npz"))
    for pid, part in ann.partitions.items():
        part.index.save(os.path.join(args.out, f"partition{pid}.npz"))
    print(
        f"built {cfg.n_cores} partitions in {wall:.1f}s wall "
        f"({report.total_seconds:.3f}s virtual cluster time; "
        f"VP {report.vptree_seconds:.3f}s, HNSW {report.hnsw_seconds:.3f}s)\n"
        f"index saved to {args.out}/"
    )
    return 0


def _save_router(router, path: str) -> None:
    """Flatten the RouteNode tree to arrays (preorder)."""
    vps, mus, partitions = [], [], []

    def rec(node) -> None:
        if node.is_leaf:
            vps.append(np.zeros(0, dtype=np.float32))
            mus.append(-1.0)
            partitions.append(node.partition)
        else:
            vps.append(np.asarray(node.vp, dtype=np.float32))
            mus.append(float(node.mu))
            partitions.append(-1)
            rec(node.left)
            rec(node.right)

    rec(router.root)
    lengths = np.array([len(v) for v in vps], dtype=np.int64)
    np.savez_compressed(
        path,
        vp_flat=np.concatenate(vps) if vps else np.zeros(0, dtype=np.float32),
        vp_lengths=lengths,
        mus=np.array(mus),
        partitions=np.array(partitions, dtype=np.int64),
        n_partitions=np.array([router.n_partitions]),
    )


def _load_router(path: str):
    from repro.vptree.router import PartitionRouter, RouteNode

    data = np.load(path)
    vp_flat = data["vp_flat"]
    lengths = data["vp_lengths"]
    mus = data["mus"]
    partitions = data["partitions"]
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    pos = [0]

    def rec() -> RouteNode:
        i = pos[0]
        pos[0] += 1
        if partitions[i] >= 0:
            return RouteNode(partition=int(partitions[i]))
        vp = vp_flat[offsets[i] : offsets[i + 1]]
        left = rec()
        right = rec()
        return RouteNode(vp=vp, mu=float(mus[i]), left=left, right=right)

    return PartitionRouter(rec(), int(data["n_partitions"][0]))


def _load_fault_spec(path: str | None):
    if not path:
        return None
    from repro.faults import FaultSpec

    return FaultSpec.from_json(path)


def _print_fault_summary(rep) -> None:
    from repro.eval import availability_stats

    stats = availability_stats(rep.completeness, rep.n_queries)
    print(f"faults: {stats}")
    print(
        f"faults: {rep.retries} retries, {rep.failovers} failovers, "
        f"{rep.failed_tasks} abandoned tasks, {rep.duplicate_results} duplicates dropped, "
        f"suspected dead cores {rep.suspected_dead_cores}"
    )


def _print_load_summary(cfg, rep) -> None:
    """Imbalance line, shown whenever replica choice can matter."""
    if cfg.replication_factor <= 1 and cfg.replica_selector == "primary":
        return
    if rep.core_busy_seconds is None:
        return
    from repro.eval import imbalance_stats

    print(f"load: selector {cfg.replica_selector!r}, {imbalance_stats(rep.core_busy_seconds)}")


def _print_pipeline_summary(cfg, rep) -> None:
    """Flow-control line, shown whenever dispatch is credit-windowed."""
    if cfg.dispatch_window <= 0:
        return
    print(
        f"pipeline: window {cfg.dispatch_window}/core, "
        f"peak {rep.max_outstanding_tasks} in flight, "
        f"credit stalls {rep.credit_stall_seconds*1e3:.2f} ms, "
        f"{rep.credits_leaked} credits leaked"
    )


def _print_serving_summary(cfg, rep) -> None:
    """Admission/cache/SLO lines, shown on open-loop serving runs."""
    if cfg.arrival is None:
        return
    from repro.eval import serving_stats

    s = serving_stats(rep)
    print(
        f"serving: arrival {cfg.arrival!r}, offered {s.offered}, "
        f"admitted {s.admitted}, shed {s.shed}, rejected {s.rejected}, "
        f"peak ingress queue {s.max_ingress_depth}"
    )
    if cfg.cache_size > 0:
        print(
            f"serving: cache {cfg.cache_size} entries, {s.cache_hits} hits / "
            f"{s.cache_misses} misses / {s.cache_stale} stale "
            f"({s.cache_hit_rate:.0%} hit rate)"
        )
    if cfg.slo_ms > 0:
        print(
            f"serving: SLO {cfg.slo_ms:g} ms, "
            f"violation fraction {s.slo_violation_fraction:.2%} "
            f"(mean queue {s.mean_queue_seconds*1e3:.3f} ms, "
            f"mean service {s.mean_service_seconds*1e3:.3f} ms)"
        )


def _print_filter_summary(cfg, rep) -> None:
    """Filtered-execution lines, shown whenever a filter/tenant was active."""
    if rep.filtered_queries <= 0 and rep.tenant_id < 0:
        return
    if rep.filtered_queries > 0:
        print(
            f"filter: {rep.filtered_queries} filtered queries, "
            f"{rep.filter_tasks_pre} pre / {rep.filter_tasks_post} post tasks, "
            f"{rep.filter_evals_pre + rep.filter_evals_post} dist evals "
            f"({rep.filter_evals_pre} pre, {rep.filter_evals_post} post), "
            f"{rep.filter_empty_tasks} empty tasks"
        )
    if rep.tenant_id >= 0:
        print(f"filter: tenant {rep.tenant_id}, {rep.tenant_queries} tenant queries")


def _print_latency_summary(rep) -> None:
    """Per-query latency percentiles, whenever they were observable."""
    lat = rep.query_latencies
    if lat is None or not np.any(np.isfinite(np.asarray(lat, dtype=np.float64))):
        return
    from repro.eval import latency_stats

    ls = latency_stats(lat)
    print(
        f"latency: p50 {ls.p50*1e3:.3f} ms, p90 {ls.p90*1e3:.3f} ms, "
        f"p99 {ls.p99*1e3:.3f} ms, p999 {ls.p999*1e3:.3f} ms, "
        f"max {ls.max*1e3:.3f} ms ({ls.n} observed)"
    )


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.core import DistributedANN, SystemConfig
    from repro.core.partition import Partition
    from repro.datasets import read_fvecs, read_ivecs, write_ivecs
    from repro.hnsw import HnswIndex, HnswParams

    with open(os.path.join(args.index, "meta.json")) as fh:
        meta = json.load(fh)
    fault_spec = _load_fault_spec(args.faults)
    cfg = SystemConfig(
        n_cores=meta["n_cores"],
        cores_per_node=meta["cores_per_node"],
        k=args.k or meta["k"],
        hnsw=HnswParams(M=meta["M"], ef_construction=meta["ef_construction"], seed=meta["seed"]),
        n_probe=args.n_probe or meta["n_probe"],
        replication_factor=args.replication_factor,
        replica_selector=args.replica_selector,
        batch_size=args.batch_size,
        dispatch_window=args.dispatch_window,
        arrival=args.arrival,
        queue_depth=args.queue_depth,
        overload_policy=args.overload_policy,
        cache_size=args.cache_size,
        slo_ms=args.slo_ms,
        trace_out=args.trace_out,
        events_out=args.events_out,
        metrics_out=args.metrics_out,
        explain_top=args.explain_top,
        filter=args.filter,
        tenant=args.tenant,
        filter_strategy=args.filter_strategy,
        seed=meta["seed"],
        # fault tolerance tracks per-task deadlines at the master, which
        # needs the two-sided result path; serving needs it too unless a
        # credit window gives the master a one-sided completion signal
        one_sided=fault_spec is None and (args.arrival is None or args.dispatch_window > 0),
        fault_spec=fault_spec,
    )
    ann = DistributedANN(cfg)
    # reconstitute the fitted state from disk
    from repro.core.build import BuildOutput
    from repro.core.partition import NodeStore
    from repro.core.replication import Workgroups

    router = _load_router(os.path.join(args.index, "router.npz"))
    # per-vector metadata saved by `repro build --attrs`; without it a
    # --filter/--tenant query matches nothing (unknown attribute => empty)
    metadata = None
    attrs_path = os.path.join(args.index, "attrs.npz")
    if os.path.exists(attrs_path):
        from repro.filtering import MetadataStore

        with np.load(attrs_path) as npz:
            metadata = MetadataStore({name: npz[name] for name in npz.files})
    partitions = {}
    for pid in range(meta["n_cores"]):
        idx = HnswIndex.load(os.path.join(args.index, f"partition{pid}.npz"))
        part_ids = np.array([idx.external_id(i) for i in range(len(idx))])
        partitions[pid] = Partition(
            pid, idx.points.copy(), part_ids,
            index=idx,
            attrs=metadata.slice_rows(part_ids) if metadata is not None else None,
        )
    workgroups = Workgroups(cfg.n_cores, cfg.replication_factor)
    node_stores = {n: NodeStore(n) for n in range(cfg.n_nodes)}
    for pid, part in partitions.items():
        for core in workgroups.cores_for_partition(pid):
            node_stores[cfg.node_of_core(core)].add(part)
    ann._build = BuildOutput(
        router=router,
        partitions=partitions,
        node_stores=node_stores,
        workgroups=workgroups,
        total_seconds=0.0,
        hnsw_seconds=0.0,
        vptree_seconds=0.0,
        replication_seconds=0.0,
        partition_sizes=[p.n_points for p in partitions.values()],
    )
    ann._dim = meta["dim"]

    Q = read_fvecs(args.queries)
    D, I, rep = ann.query(Q)
    if args.out:
        write_ivecs(args.out, I.astype(np.int32))
        print(f"wrote neighbor ids to {args.out}")
    print(
        f"{rep.n_queries} queries, {rep.tasks} tasks in {rep.task_messages} "
        f"messages, virtual time "
        f"{rep.total_seconds*1e3:.2f} ms ({rep.throughput:,.0f} q/s)"
    )
    _print_load_summary(cfg, rep)
    _print_pipeline_summary(cfg, rep)
    _print_serving_summary(cfg, rep)
    _print_filter_summary(cfg, rep)
    _print_latency_summary(rep)
    if fault_spec is not None:
        _print_fault_summary(rep)
    if any(v > 0 for v in rep.phase_breakdown.values()):
        from repro.eval import format_phase_breakdown

        print(format_phase_breakdown(rep.phase_breakdown, title="phase breakdown (summed over procs)"))
    if args.groundtruth:
        from repro.eval import recall_at_k

        gt = read_ivecs(args.groundtruth).astype(np.int64)
        k = min(I.shape[1], gt.shape[1])
        print(f"recall@{k} = {recall_at_k(I[:, :k], gt[:, :k]):.4f}")
    _write_obs_outputs(cfg, rep)
    return 0


def _write_obs_outputs(cfg, rep) -> int:
    """Emit the observability artifacts the config asked for."""
    if cfg.trace_out:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(cfg.trace_out, rep.trace, rep)
        print(f"wrote Chrome trace to {cfg.trace_out} (open in ui.perfetto.dev)")
    if cfg.events_out:
        from repro.obs.export import write_events_jsonl

        write_events_jsonl(cfg.events_out, rep.trace, rep)
        print(f"wrote event log to {cfg.events_out}")
    if cfg.metrics_out:
        from repro.obs.export import write_metrics_json

        write_metrics_json(cfg.metrics_out, rep.metrics)
        print(f"wrote metrics dump to {cfg.metrics_out}")
    if cfg.explain_top > 0:
        from repro.obs.explain import render_explain

        print(render_explain(rep, cfg.explain_top))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.core import DistributedANN, SystemConfig
    from repro.datasets import load_dataset, sample_queries
    from repro.eval import speedup_table
    from repro.hnsw import HnswParams

    ds = load_dataset(args.dataset, n_points=args.n_points, n_queries=10, seed=args.seed)
    Q = sample_queries(ds.X, args.n_queries, noise_scale=0.05, seed=args.seed + 1)
    fault_spec = _load_fault_spec(args.faults)
    meas = []
    for P in args.cores:
        cfg = SystemConfig(
            n_cores=P,
            cores_per_node=min(24, P),
            hnsw=HnswParams(M=16, ef_construction=100),
            searcher="modeled",
            modeled_partition_points=max(ds.paper_n_points // P, 64),
            modeled_sample_points=16,
            modeled_search_seconds=args.task_seconds,
            n_probe=3,
            replication_factor=min(args.replication_factor, P),
            replica_selector=args.replica_selector,
            skew=args.skew,
            batch_size=args.batch_size,
            dispatch_window=args.dispatch_window,
            arrival=args.arrival,
            queue_depth=args.queue_depth,
            overload_policy=args.overload_policy,
            cache_size=args.cache_size,
            slo_ms=args.slo_ms,
            filter=args.filter,
            tenant=args.tenant,
            filter_strategy=args.filter_strategy,
            seed=args.seed,
            one_sided=fault_spec is None
            and (args.arrival is None or args.dispatch_window > 0),
            fault_spec=fault_spec,
        )
        ann = DistributedANN(cfg)
        # synthetic corpora carry no attributes; a filtered bench run gets
        # deterministic round-robin tier/tenant columns so predicates match
        metadata = None
        if args.filter is not None or args.tenant is not None:
            rows = np.arange(len(ds.X))
            metadata = {"tier": rows % 8, "tenant": rows % 4}
        ann.fit(ds.X, metadata=metadata)
        if cfg.skew > 0:
            # aim the batch at partitions with Zipf-distributed popularity:
            # the skewed-serving workload replica selection is for
            from repro.datasets import zipf_queries

            anchors = np.stack(
                [p.points.mean(axis=0) for p in ann.partitions.values() if p.n_points]
            )
            Qrun = zipf_queries(anchors, args.n_queries, skew=cfg.skew, seed=args.seed + 1)
        else:
            Qrun = Q
        _, _, rep = ann.query(Qrun)
        meas.append((P, rep.total_seconds))
        print(f"P={P:5d}  virtual {rep.total_seconds:.4f}s")
        _print_load_summary(cfg, rep)
        _print_pipeline_summary(cfg, rep)
        _print_serving_summary(cfg, rep)
        _print_filter_summary(cfg, rep)
        _print_latency_summary(rep)
        if fault_spec is not None:
            _print_fault_summary(rep)
    for row in speedup_table(meas):
        print(f"  {row.cores:5d} cores: speedup {row.speedup:6.2f}  efficiency {row.efficiency:.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    g = sub.add_parser("gen", help="synthesize a Table I analogue corpus")
    g.add_argument("dataset", choices=["ANN_SIFT1B", "DEEP1B", "ANN_GIST1M", "SYN_1M", "SYN_10M"])
    g.add_argument("--out", required=True)
    g.add_argument("--n-points", type=int, default=10_000, dest="n_points")
    g.add_argument("--n-queries", type=int, default=100, dest="n_queries")
    g.add_argument("--k", type=int, default=10)
    g.add_argument("--seed", type=int, default=0)
    g.set_defaults(func=_cmd_gen)

    b = sub.add_parser("build", help="build + persist the distributed index")
    b.add_argument("base", help="base vectors (.fvecs)")
    b.add_argument("--out", required=True)
    b.add_argument("--cores", type=int, default=8)
    b.add_argument("--cores-per-node", type=int, default=4, dest="cores_per_node")
    b.add_argument("--k", type=int, default=10)
    b.add_argument("--M", type=int, default=16)
    b.add_argument("--ef-construction", type=int, default=100, dest="ef_construction")
    b.add_argument("--n-probe", type=int, default=3, dest="n_probe")
    b.add_argument("--attrs", help="per-vector metadata (.npz of named int columns, row-aligned with base)")
    b.add_argument("--seed", type=int, default=0)
    b.set_defaults(func=_cmd_build)

    q = sub.add_parser("query", help="answer a query batch from a saved index")
    q.add_argument("index", help="index directory from `repro build`")
    q.add_argument("queries", help="query vectors (.fvecs)")
    q.add_argument("--out", help="write neighbor ids (.ivecs)")
    q.add_argument("--groundtruth", help="exact ids (.ivecs) to compute recall")
    q.add_argument("--k", type=int, default=None)
    q.add_argument("--n-probe", type=int, default=None, dest="n_probe")
    q.add_argument("--faults", help="fault scenario JSON (switches to fault-tolerant dispatch)")
    add_config_flags(q, "query")
    q.set_defaults(func=_cmd_query)

    be = sub.add_parser("bench", help="strong-scaling sweep on the simulated cluster")
    be.add_argument("--dataset", default="ANN_SIFT1B")
    be.add_argument("--cores", type=int, nargs="+", default=[64, 128, 256])
    be.add_argument("--n-points", type=int, default=4096, dest="n_points")
    be.add_argument("--n-queries", type=int, default=1000, dest="n_queries")
    be.add_argument("--task-seconds", type=float, default=2e-3, dest="task_seconds")
    be.add_argument("--faults", help="fault scenario JSON (switches to fault-tolerant dispatch)")
    add_config_flags(be, "bench")
    be.add_argument("--seed", type=int, default=0)
    be.set_defaults(func=_cmd_bench)
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:
        from repro.simmpi.errors import SimConfigError

        if isinstance(exc, (SimConfigError, ValueError)):
            # configuration mistakes (incompatible mode combinations, bad
            # arrival specs, ...) get one clear line instead of a traceback
            print(f"error: {exc}", file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":
    sys.exit(main())
