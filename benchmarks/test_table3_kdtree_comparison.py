"""Table III — total search time: our method vs the KD-tree baseline.

Paper: 13.6x (ANN_SIFT1B, 8192 cores, recall 0.88), 11.4x (DEEP1B, 8192
cores, recall 0.85), 8.5x (ANN_GIST1M, 24 cores, recall 0.91).

Both systems run with the real searchers here (real partitions, real HNSW,
real KD-trees, real recall against exact ground truth) on identical
simulated clusters; only partitioning geometry + local index differ.  The
asserted shape: ours is several times faster, the baseline is exact, and
our recall lands in the paper's 0.8-1.0 band.
"""

import pytest

from repro.core import DistributedANN, SystemConfig
from repro.datasets import load_dataset
from repro.eval import format_table, recall_at_k
from repro.hnsw import HnswParams
from repro.kdtree import KDBaselineSystem

CASES = [
    # name, n_points, n_queries, cores, paper_speedup, paper_recall
    ("ANN_SIFT1B", 6000, 120, 16, 13.6, 0.88),
    ("DEEP1B", 6000, 120, 16, 11.4, 0.85),
    ("ANN_GIST1M", 3000, 60, 8, 8.5, 0.91),
]


@pytest.mark.parametrize("name,n,nq,cores,paper_x,paper_recall", CASES)
def test_table3_vs_kdtree(run_once, name, n, nq, cores, paper_x, paper_recall):
    def experiment():
        ds = load_dataset(name, n_points=n, n_queries=nq, k=10, seed=17)
        cfg = SystemConfig(
            n_cores=cores,
            cores_per_node=8,
            k=10,
            hnsw=HnswParams(M=8, ef_construction=60, seed=17),
            n_probe=3,
            seed=17,
        )
        ours = DistributedANN(cfg)
        ours.fit(ds.X)
        D, I, rep = ours.query(ds.Q)
        our_recall = recall_at_k(I, ds.gt_ids, ds.gt_dists, D)

        kd = KDBaselineSystem(cfg, leaf_size=32)
        kd.fit(ds.X)
        Dk, Ik, repk = kd.query(ds.Q)
        kd_recall = recall_at_k(Ik, ds.gt_ids, ds.gt_dists, Dk)
        return rep.total_seconds, our_recall, repk.total_seconds, kd_recall

    ours_t, ours_r, kd_t, kd_r = run_once(experiment)
    speedup = kd_t / ours_t
    print()
    print(
        format_table(
            ["dataset", "ours (virt s)", "KD-tree (virt s)", "speedup", "paper", "recall", "paper recall"],
            [(name, ours_t, kd_t, f"{speedup:.1f}x", f"{paper_x}x", f"{ours_r:.2f}", paper_recall)],
            title="Table III — total search times",
        )
    )
    # exactness of the baseline
    assert kd_r == pytest.approx(1.0, abs=1e-9)
    # ours must be substantially faster (the paper's 8.5-13.6x at full
    # scale; at reduced partition sizes the gap compresses, so >=3x)
    assert speedup >= 3.0
    # and accurate within the paper's observed recall band
    assert ours_r >= 0.80
