"""Extension — GPU local-search projection (paper §VI future work).

"We can utilise the parallelism offered by GPUs to perform local
searching."  This bench projects that proposal with a two-term GPU model
(kernel-launch overhead + accelerated distance work) and locates the
partition-size crossover: below it the GPU is launch-bound and loses,
above it the projected speedup approaches the raw acceleration factor.
A projection, not a measurement — labeled as such in EXPERIMENTS.md.
"""


from repro.core import DistributedANN, SystemConfig
from repro.core.searcher import GpuModeledSearcher, ModeledSearcher
from repro.datasets import load_dataset, sample_queries
from repro.eval import format_table
from repro.hnsw import HnswParams
from repro.simmpi import CostModel


def test_gpu_local_search_projection(run_once):
    def experiment():
        ds = load_dataset("ANN_SIFT1B", n_points=2048, n_queries=10, k=10, seed=99)
        Q = sample_queries(ds.X, 300, noise_scale=0.05, seed=100)
        cfg = SystemConfig(
            n_cores=16,
            cores_per_node=8,
            k=10,
            hnsw=HnswParams(M=16, ef_construction=100),
            searcher="modeled",
            modeled_sample_points=16,
            seed=99,
        )
        ann = DistributedANN(cfg)
        ann.fit(ds.X)
        cost = CostModel()
        rows = []
        for virtual_points in (10**3, 10**5, 10**7, 10**9):
            cpu = ModeledSearcher(cost, 50, 16, 128, virtual_points)
            gpu = GpuModeledSearcher(cost, 50, 16, 128, virtual_points)
            _, _, rep_cpu = ann.query_with_searcher(Q, 10, cpu)
            _, _, rep_gpu = ann.query_with_searcher(Q, 10, gpu)
            rows.append(
                (
                    virtual_points,
                    rep_cpu.total_seconds,
                    rep_gpu.total_seconds,
                    rep_cpu.total_seconds / rep_gpu.total_seconds,
                )
            )
        return rows

    rows = run_once(experiment)
    print()
    print(
        format_table(
            ["points/partition", "CPU workers (s)", "GPU workers (s)", "GPU speedup"],
            rows,
            title="Extension — projected GPU local search (§VI future work)",
        )
    )
    speedups = [r[3] for r in rows]
    # launch overhead compresses the gain at small partitions; the benefit
    # grows monotonically toward the raw acceleration factor at scale
    assert speedups[0] < 0.6 * speedups[-1]
    assert speedups[-1] > 3.0
    assert all(b >= a * 0.9 for a, b in zip(speedups, speedups[1:]))
