"""Figure 3 — strong scaling of the total query time.

Fig. 3(a): SYN_1M / SYN_10M analogues, 32 → 1024 cores, speedups
normalized to 32 cores (paper: ≈13x and ≈18x at 1024).
Fig. 3(b): ANN_SIFT1B / DEEP1B analogues, 256 → 8192 cores, normalized to
256 cores (paper: ≈25x at 8192, "almost linear").

Calibration (see EXPERIMENTS.md): the modeled local-search cost per task is
anchored to the paper's *own* aggregate throughput — e.g. ANN_SIFT1B's
6.3 s x 8192 cores / (10^4 queries x n_probe tasks) — because the paper's
measured per-task cost is the quantity that determines where master-side
serialization would bend the curve.  Routing runs for real on the
reduced-scale data; the speedup shape then follows from the architecture.
"""

import pytest

from repro.core import DistributedANN, SystemConfig
from repro.datasets import load_dataset
from repro.eval import format_table, speedup_table
from repro.hnsw import HnswParams

N_PROBE = 3


def scaling_run(dataset_name, paper_points, core_counts, n_points, n_queries, task_seconds):
    from repro.datasets import sample_queries

    ds = load_dataset(dataset_name, n_points=n_points, n_queries=10, k=10, seed=5)
    # Diverse held-out queries.  The paper's SYN query sets are skewed into
    # one cluster, but its ball-routing F(q) fans out across partitions and
    # spreads the load anyway; with this bench's fixed n_probe routing the
    # equivalent load spread comes from query diversity (the skewed-load
    # behaviour is Fig. 4's subject, benched separately).
    Q = sample_queries(ds.X, n_queries, noise_scale=0.05, seed=6)
    measurements = []
    for P in core_counts:
        cfg = SystemConfig(
            n_cores=P,
            cores_per_node=min(24, P),
            k=10,
            hnsw=HnswParams(M=16, ef_construction=100),
            searcher="modeled",
            modeled_partition_points=max(paper_points // P, 64),
            modeled_sample_points=16,
            modeled_search_seconds=task_seconds,
            n_probe=N_PROBE,
            seed=5,
        )
        ann = DistributedANN(cfg)
        ann.fit(ds.X)
        _, _, rep = ann.query(Q)
        measurements.append((P, rep.total_seconds))
    return speedup_table(measurements)


class TestFig3a:
    """SYN datasets, 32..1024 cores."""

    @pytest.mark.parametrize(
        "name,paper_points,task_seconds,paper_speedup",
        [("SYN_1M", 10**6, 1.0e-3, 13.0), ("SYN_10M", 10**7, 1.9e-3, 18.0)],
    )
    def test_syn_scaling(self, run_once, name, paper_points, task_seconds, paper_speedup):
        cores = [32, 64, 128, 256, 512, 1024]

        rows = run_once(
            lambda: scaling_run(
                name, paper_points, cores, n_points=4096, n_queries=10_000,
                task_seconds=task_seconds,
            )
        )
        print()
        print(
            format_table(
                ["cores", "virtual s", "speedup", "efficiency"],
                [(r.cores, r.seconds, r.speedup, r.efficiency) for r in rows],
                title=f"Fig. 3(a) — {name} strong scaling "
                f"(paper speedup at 1024: ~{paper_speedup}x)",
            )
        )
        speedups = [r.speedup for r in rows]
        # shape: monotone speedup growth, substantial but sublinear at 1024
        assert all(b > a for a, b in zip(speedups, speedups[1:]))
        assert 0.5 * paper_speedup <= speedups[-1] <= 32.0


class TestFig3b:
    """Billion-point datasets, 256..8192 cores, near-linear scaling."""

    @pytest.mark.parametrize(
        "name,paper_seconds_8192",
        [("ANN_SIFT1B", 6.3), ("DEEP1B", 7.1)],
    )
    def test_billion_scaling(self, run_once, name, paper_seconds_8192):
        cores = [256, 512, 1024, 2048, 4096, 8192]
        # the paper's own per-task cost at 8192 cores with 10^4 queries
        task_seconds = paper_seconds_8192 * 8192 / (10_000 * N_PROBE)

        rows = run_once(
            lambda: scaling_run(
                name, 10**9, cores, n_points=8192, n_queries=10_000,
                task_seconds=task_seconds,
            )
        )
        print()
        print(
            format_table(
                ["cores", "virtual s", "speedup", "efficiency"],
                [(r.cores, r.seconds, r.speedup, r.efficiency) for r in rows],
                title=f"Fig. 3(b) — {name} strong scaling "
                "(paper: ~25x at 8192 cores, almost linear)",
            )
        )
        speedups = [r.speedup for r in rows]
        assert all(b > a for a, b in zip(speedups, speedups[1:]))
        # "almost linear": >= 15x at 32x the cores (paper: ~25x)
        assert speedups[-1] >= 15.0
        assert rows[-1].efficiency >= 0.45
