"""Ablation — the three approximate-ANN families of §II head-to-head.

The paper's related work names three approximate approaches: LSH [9],
product quantization [10], and proximity graphs [11], and argues graphs
"scale well with dimension" — the premise for choosing HNSW.  This bench
runs all three (our implementations) on the same corpus and reports
recall, distance evaluations per query, and bytes per vector: the
three-way trade every survey plots.
"""


from repro.datasets import brute_force_knn, sample_queries, sift_like
from repro.eval import format_table
from repro.hnsw import HnswIndex, HnswParams
from repro.lsh import LSHIndex
from repro.pq import IVFPQIndex


def test_index_family_tradeoffs(run_once):
    def experiment():
        X = sift_like(4000, seed=77)
        Q = sample_queries(X, 60, noise_scale=0.05, seed=78)
        gt_d, gt_i = brute_force_knn(X, Q, 10)
        n, dim = X.shape
        rows = []

        def recall_and_evals(idx, search):
            before = idx.n_dist_evals
            hits = 0
            for i in range(len(Q)):
                _, ids = search(idx, Q[i])
                hits += len(set(ids) & set(gt_i[i]))
            return hits / (len(Q) * 10), (idx.n_dist_evals - before) / len(Q)

        hnsw = HnswIndex(dim=dim, params=HnswParams(M=16, ef_construction=80, seed=77))
        hnsw.add_items(X)
        r, e = recall_and_evals(hnsw, lambda i, q: i.knn_search(q, 10, ef=60))
        rows.append(("HNSW (graph)", r, e, dim * 4 + hnsw.params.M0 * 8))

        # two LSH operating points: a selective one and one pushed toward
        # the recall regime the graph reaches natively
        lsh_fast = LSHIndex(n_tables=16, n_bits=10, bucket_width=12.0, seed=77).fit(X)
        r, e = recall_and_evals(lsh_fast, lambda i, q: i.knn_search(q, 10))
        rows.append(("LSH selective", r, e, dim * 4 + 16 * 8))
        lsh_hr = LSHIndex(n_tables=32, n_bits=6, bucket_width=16.0, seed=77).fit(X)
        r, e = recall_and_evals(lsh_hr, lambda i, q: i.knn_search(q, 10))
        rows.append(("LSH high-recall", r, e, dim * 4 + 32 * 8))

        ivf = IVFPQIndex(n_cells=32, n_subspaces=8, n_centroids=128, seed=77, n_probe=8).fit(X)
        r, e = recall_and_evals(ivf, lambda i, q: i.knn_search(q, 10))
        rows.append(("IVF-PQ (quantization)", r, e, 8))
        return rows

    rows = run_once(experiment)
    print()
    print(
        format_table(
            ["family", "recall@10", "dist evals/query", "~bytes/vector"],
            rows,
            title="Ablation — §II's three approximate families on one corpus",
        )
    )
    by = {r[0]: r for r in rows}
    hnsw = by["HNSW (graph)"]
    # the paper's premise: the graph dominates on recall-per-work
    assert hnsw[1] >= 0.95
    assert hnsw[1] >= by["LSH selective"][1]
    assert hnsw[1] >= by["IVF-PQ (quantization)"][1]
    # pushed into the graph's recall regime, LSH must scan substantially
    # more (the gap widens with corpus size; ~2x already at 4k points)
    assert by["LSH high-recall"][1] >= 0.9
    assert by["LSH high-recall"][2] > 1.5 * hnsw[2]
    # and quantization wins memory by an order of magnitude
    assert by["IVF-PQ (quantization)"][3] * 10 < hnsw[3]