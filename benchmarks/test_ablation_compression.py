"""Ablation — uncompressed HNSW vs compressed IVF-PQ recall (§V-F claim).

The paper motivates its *uncompressed* distributed index against the
single-node compressed alternatives ([13], [14]): "Compression methods ...
cannot achieve near perfect recalls" — the quantization error floors the
recall no matter how many cells are probed, while HNSW reaches ~1.0 by
spending more search effort.  This bench measures both recall ceilings on
the same corpus.
"""


from repro.datasets import brute_force_knn, sample_queries, sift_like
from repro.eval import format_table
from repro.hnsw import HnswIndex, HnswParams
from repro.pq import IVFPQIndex


def test_compression_recall_plateau(run_once):
    def experiment():
        X = sift_like(4000, seed=71)
        Q = sample_queries(X, 80, noise_scale=0.05, seed=72)
        gt_d, gt_i = brute_force_knn(X, Q, 10)

        rows = []
        # HNSW: recall climbs to ~1.0 as ef grows
        idx = HnswIndex(dim=128, params=HnswParams(M=16, ef_construction=80, seed=71))
        idx.add_items(X)
        for ef in (10, 50, 200):
            hits = sum(
                len(set(idx.knn_search(Q[i], 10, ef=ef)[1]) & set(gt_i[i]))
                for i in range(len(Q))
            )
            rows.append((f"HNSW ef={ef}", hits / (len(Q) * 10)))

        # IVF-PQ: recall plateaus below 1.0 even probing every cell
        ivf = IVFPQIndex(n_cells=32, n_subspaces=8, n_centroids=128, seed=71).fit(X)
        for n_probe in (1, 8, 32):
            ivf.n_probe = n_probe
            hits = sum(
                len(set(ivf.knn_search(Q[i], 10)[1]) & set(gt_i[i]))
                for i in range(len(Q))
            )
            rows.append((f"IVF-PQ probe={n_probe}", hits / (len(Q) * 10)))
        return rows

    rows = run_once(experiment)
    print()
    print(
        format_table(
            ["index", "recall@10"],
            rows,
            title="Ablation — compression recall plateau "
            "(paper §V-F: compressed indexes cannot reach near-perfect recall)",
        )
    )
    by = dict(rows)
    assert by["HNSW ef=200"] >= 0.99, "uncompressed HNSW must reach near-perfect recall"
    # exhaustive probing of the compressed index still falls short
    assert by["IVF-PQ probe=32"] < 0.98
    # and extra probes stop helping (the plateau)
    assert by["IVF-PQ probe=32"] - by["IVF-PQ probe=8"] < 0.05


def test_hierarchy_benefit_over_flat_nsw(run_once):
    """HNSW's hierarchy vs flat NSW (§III-A: O(log n) vs O(log^2 n) —
    measured here as distance evaluations per search at equal recall)."""

    def experiment():
        X = sift_like(4000, seed=73)
        Q = sample_queries(X, 60, noise_scale=0.05, seed=74)
        gt_d, gt_i = brute_force_knn(X, Q, 10)
        out = {}
        for flat in (False, True):
            idx = HnswIndex(
                dim=128,
                params=HnswParams(M=16, ef_construction=80, flat=flat, seed=73),
            )
            idx.add_items(X)
            before = idx.n_dist_evals
            hits = 0
            for i in range(len(Q)):
                _, ids = idx.knn_search(Q[i], 10, ef=50)
                hits += len(set(ids) & set(gt_i[i]))
            out["flat" if flat else "hier"] = (
                (idx.n_dist_evals - before) / len(Q),
                hits / (len(Q) * 10),
                idx.max_level,
            )
        return out

    out = run_once(experiment)
    print()
    print(
        format_table(
            ["graph", "dist evals/query", "recall@10", "levels"],
            [("HNSW", *out["hier"]), ("flat NSW", *out["flat"])],
            title="Ablation — hierarchy benefit (same M, ef)",
        )
    )
    assert out["flat"][2] == 0  # flat really is single-layer
    assert out["hier"][2] >= 1
    # both recall well, but the hierarchy must not cost more evaluations
    assert out["hier"][1] >= 0.9 and out["flat"][1] >= 0.8
    assert out["hier"][0] <= out["flat"][0] * 1.1
