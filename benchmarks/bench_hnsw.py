"""HNSW hot-path benchmark: build throughput, query throughput, recall.

The simulated cluster charges *virtual* seconds for every search, but the
algorithmic work — HNSW build and search — runs for real in NumPy, so its
wall-clock cost is the real cost of every experiment and test run in this
repo.  This harness measures that cost on a seeded clustered dataset and
writes ``BENCH_hnsw.json`` at the repo root:

- build points/s (bulk ``add_items`` of the whole corpus),
- single-query qps (one ``knn_search`` call per query),
- batched qps (``knn_search_batch`` over the whole query matrix; falls back
  to the single-query loop on index versions without the batch API),
- recall@k against exact brute force,
- distance evaluations per query (the quantity virtual time is charged on),
- a SHA-256 checksum of the (D, I) results, so two implementations can be
  compared for bit-identical output at a fixed seed.

If a previous ``BENCH_hnsw.json`` exists it is folded into the new file as
``previous`` (plus a rolling ``history``), and the combined build+search
speedup against it is computed — the recorded perf trajectory.

Run via ``make bench`` (full size: n=20k, d=32) or ``make bench-smoke``
(``--tiny``; used by CI, which also enforces a recall floor).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

from trajectory import (  # noqa: E402
    fold_previous,
    load_previous,
    missing_keys,
    results_checksum,
)

from repro.datasets import brute_force_knn  # noqa: E402
from repro.hnsw import HnswIndex, HnswParams  # noqa: E402

#: keys every BENCH_hnsw.json must provide (CI's bench-smoke checks these)
REQUIRED_KEYS = (
    "schema",
    "config",
    "build.seconds",
    "build.points_per_s",
    "search.single_qps",
    "search.batched_qps",
    "search.recall_at_k",
    "search.dist_evals_per_query",
    "combined_seconds",
    "results_sha256",
)


def make_dataset(n: int, dim: int, n_queries: int, seed: int):
    """Seeded clustered corpus + queries (queries are perturbed base points)."""
    rng = np.random.default_rng([seed, 0xBE7C])
    n_clusters = 32
    centers = rng.normal(0.0, 4.0, size=(n_clusters, dim)).astype(np.float32)
    assign = rng.integers(0, n_clusters, size=n)
    X = (centers[assign] + rng.normal(0.0, 1.0, size=(n, dim))).astype(np.float32)
    picks = rng.choice(n, size=n_queries, replace=False)
    Q = (X[picks] + rng.normal(0.0, 0.1, size=(n_queries, dim))).astype(np.float32)
    return X, Q


def search_batched(index: HnswIndex, Q: np.ndarray, k: int, ef: int):
    """Batched search, tolerating index versions without the batch API."""
    batch = getattr(index, "knn_search_batch", None)
    if batch is not None:
        return batch(Q, k, ef=ef)
    D = np.full((len(Q), k), np.inf, dtype=np.float64)
    ids = np.full((len(Q), k), -1, dtype=np.int64)
    for i in range(len(Q)):
        d, nn = index.knn_search(Q[i], k, ef=ef)
        D[i, : len(d)] = d
        ids[i, : len(nn)] = nn
    return D, ids


def run(args: argparse.Namespace) -> dict:
    X, Q = make_dataset(args.n, args.dim, args.n_queries, args.seed)
    gt_d, gt_i = brute_force_knn(X, Q, args.k, metric=args.metric)
    params = HnswParams(
        M=args.M, ef_construction=args.ef_construction, ef_search=args.ef_search, seed=args.seed
    )

    index = HnswIndex(dim=args.dim, params=params, metric=args.metric, capacity=args.n)
    t0 = time.perf_counter()
    index.add_items(X)
    build_seconds = time.perf_counter() - t0
    build_evals = index.n_dist_evals

    # single-query pass (one Python call per query, the worker's unbatched path)
    t0 = time.perf_counter()
    singles = [index.knn_search(Q[i], args.k, ef=args.ef_search) for i in range(len(Q))]
    single_seconds = time.perf_counter() - t0
    search_evals = index.n_dist_evals - build_evals
    D = np.full((len(Q), args.k), np.inf, dtype=np.float64)
    ids = np.full((len(Q), args.k), -1, dtype=np.int64)
    for i, (d, nn) in enumerate(singles):
        D[i, : len(d)] = d
        ids[i, : len(nn)] = nn

    # batched pass (amortized dispatch; identical traversal per query)
    t0 = time.perf_counter()
    Db, idsb = search_batched(index, Q, args.k, args.ef_search)
    batched_seconds = time.perf_counter() - t0

    if not (np.array_equal(ids, idsb) and np.array_equal(D, Db)):
        print("WARNING: batched results differ from single-query results", file=sys.stderr)

    hits = sum(len(set(ids[i][ids[i] >= 0]) & set(gt_i[i])) for i in range(len(Q)))
    recall = hits / (len(Q) * args.k)

    report = {
        "schema": 1,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "n": args.n,
            "dim": args.dim,
            "n_queries": args.n_queries,
            "k": args.k,
            "M": args.M,
            "ef_construction": args.ef_construction,
            "ef_search": args.ef_search,
            "metric": args.metric,
            "seed": args.seed,
        },
        "build": {
            "seconds": round(build_seconds, 4),
            "points_per_s": round(args.n / build_seconds, 1),
            "dist_evals": int(build_evals),
        },
        "search": {
            "single_seconds": round(single_seconds, 4),
            "single_qps": round(len(Q) / single_seconds, 1),
            "batched_seconds": round(batched_seconds, 4),
            "batched_qps": round(len(Q) / batched_seconds, 1),
            "recall_at_k": round(recall, 4),
            "dist_evals_per_query": round(search_evals / len(Q), 1),
        },
        "combined_seconds": round(build_seconds + single_seconds + batched_seconds, 4),
        "results_sha256": results_checksum(D, ids),
    }
    return report


#: fields a previous run keeps when folded into the trajectory history
#: (bespoke flat names mapped onto the nested report — key names are pinned
#: so the recorded history stays continuous across harness versions)
TRIM_FIELDS = {
    "created": "created",
    "config": "config",
    # the full build block (seconds + dist_evals, not just the headline
    # points_per_s) so the build-speedup trajectory is reconstructable
    "build": "build",
    "build_points_per_s": "build.points_per_s",
    "single_qps": "search.single_qps",
    "batched_qps": "search.batched_qps",
    "recall_at_k": "search.recall_at_k",
    "dist_evals_per_query": "search.dist_evals_per_query",
    "combined_seconds": "combined_seconds",
    "results_sha256": "results_sha256",
}


def fold_with_speedup(report: dict, out_path: str) -> dict:
    """Record the previous run (and history) and the speedup against it."""
    prev = load_previous(out_path)
    if prev is None:
        return report
    fold_previous(report, out_path, trim_fields=TRIM_FIELDS)
    prev_combined = prev.get("combined_seconds")
    comparable = prev.get("config") == report["config"]
    if comparable and prev_combined:
        report["speedup_vs_previous"] = round(prev_combined / report["combined_seconds"], 2)
        report["bit_identical_to_previous"] = (
            prev.get("results_sha256") == report["results_sha256"]
        )
    elif not comparable:
        print("NOTE: previous run used a different config; no speedup computed")
    return report


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description="HNSW hot-path benchmark")
    ap.add_argument("--n", type=int, default=20_000, help="corpus size")
    ap.add_argument("--dim", type=int, default=32)
    ap.add_argument("--n-queries", type=int, default=200, dest="n_queries")
    ap.add_argument("--k", type=int, default=10)
    ap.add_argument("--M", type=int, default=16)
    ap.add_argument("--ef-construction", type=int, default=100, dest="ef_construction")
    ap.add_argument("--ef-search", type=int, default=64, dest="ef_search")
    ap.add_argument("--metric", default="l2")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="BENCH_hnsw.json")
    ap.add_argument(
        "--tiny", action="store_true", help="CI smoke size (n=2000, 50 queries)"
    )
    ap.add_argument(
        "--min-recall",
        type=float,
        default=None,
        dest="min_recall",
        help="exit non-zero if recall@k falls below this floor",
    )
    args = ap.parse_args(argv)
    if args.tiny:
        args.n, args.n_queries = 2000, 50

    report = run(args)
    report = fold_with_speedup(report, args.out)

    missing = missing_keys(report, REQUIRED_KEYS)
    if missing:
        print(f"ERROR: benchmark report is missing keys: {missing}", file=sys.stderr)
        return 2

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    b, s = report["build"], report["search"]
    print(
        f"build   {b['points_per_s']:>12,.0f} pts/s   ({b['seconds']:.2f}s, "
        f"{b['dist_evals']:,} dist evals)"
    )
    print(f"single  {s['single_qps']:>12,.0f} q/s     ({s['dist_evals_per_query']:.0f} evals/query)")
    print(f"batched {s['batched_qps']:>12,.0f} q/s")
    print(f"recall@{report['config']['k']} = {s['recall_at_k']:.4f}")
    if "speedup_vs_previous" in report:
        ident = "bit-identical" if report.get("bit_identical_to_previous") else "DIFFERENT results"
        print(
            f"combined build+search speedup vs previous run: "
            f"{report['speedup_vs_previous']:.2f}x ({ident})"
        )
    print(f"wrote {args.out}")

    if args.min_recall is not None and s["recall_at_k"] < args.min_recall:
        print(
            f"ERROR: recall@{report['config']['k']} {s['recall_at_k']:.4f} "
            f"below floor {args.min_recall}",
            file=sys.stderr,
        )
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
