"""Figure 4 — replication-based load balancing on a skewed batch.

4(a): total query time vs replication factor r = 1..5 (paper: up to ~11%
improvement at r = 5 on 8192 cores).
4(b): distribution of per-core dispatched query counts — the spread must
tighten as r grows (the paper plots it against the optimal-balance line).

Fig. 4 runs on ANN_SIFT1B's natural query set, whose uneven density over
the VP leaves is what creates the cross-node imbalance: several moderately
hot partitions spill their excess onto neighboring workgroup cores whose
own load is average.  (A single artificial hot blob does NOT reproduce the
gain — the spill lands on equally-hot neighbors, because adjacent
partition ids are spatially adjacent VP leaves; see EXPERIMENTS.md.)
"""


from repro.core import DistributedANN, SystemConfig
from repro.datasets import load_dataset
from repro.eval import format_histogram, format_table, load_distribution
from repro.hnsw import HnswParams


def replication_sweep(rs, P=64):
    from repro.datasets import sample_queries

    ds = load_dataset("ANN_SIFT1B", n_points=4096, n_queries=10, k=10, seed=9)
    # the natural (held-out) query workload: unevenly dense over VP leaves
    Q = sample_queries(ds.X, 600, noise_scale=0.05, seed=10)

    out = {}
    for r in rs:
        cfg = SystemConfig(
            n_cores=P,
            cores_per_node=8,
            k=10,
            hnsw=HnswParams(M=16, ef_construction=100),
            searcher="modeled",
            modeled_partition_points=10**9 // P,
            modeled_sample_points=16,
            modeled_search_seconds=2e-3,
            replication_factor=r,
            n_probe=4,
            seed=9,
        )
        ann = DistributedANN(cfg)
        ann.fit(ds.X)
        _, _, rep = ann.query(Q)
        out[r] = rep
    return out


def test_fig4a_total_time_vs_replication(run_once):
    reports = run_once(lambda: replication_sweep([1, 2, 3, 4, 5]))
    rows = [
        (r, rep.total_seconds, 100 * (1 - rep.total_seconds / reports[1].total_seconds))
        for r, rep in sorted(reports.items())
    ]
    print()
    print(
        format_table(
            ["replication r", "virtual s", "improvement %"],
            rows,
            title="Fig. 4(a) — total query time vs replication factor "
            "(paper: ~11% gain at r=5)",
        )
    )
    t1 = reports[1].total_seconds
    t5 = reports[5].total_seconds
    assert t5 < t1, "replication must improve a skewed workload"
    # best observed r must beat the baseline by a few percent at least
    best = min(rep.total_seconds for rep in reports.values())
    assert (t1 - best) / t1 >= 0.03


def test_fig4b_load_distribution_vs_replication(run_once):
    reports = run_once(lambda: replication_sweep([1, 3, 5]))
    rows = []
    print()
    for r, rep in sorted(reports.items()):
        stats = load_distribution(rep.dispatch_counts)
        rows.append((r, stats.min_tasks, stats.max_tasks, stats.spread(), stats.std_tasks, stats.optimal))
        print(
            format_histogram(
                rep.dispatch_counts,
                bins=8,
                title=f"Fig. 4(b) — queries per core, r={r} "
                f"(optimal balance: {stats.optimal:.1f}/core)",
            )
        )
        print()
    print(
        format_table(
            ["r", "min", "max", "spread", "std", "optimal"],
            rows,
            title="Fig. 4(b) — dispatch-count distribution summary",
        )
    )
    spread = {row[0]: row[3] for row in rows}
    std = {row[0]: row[4] for row in rows}
    # the distribution must become more compact as r grows
    assert spread[5] < spread[1]
    assert std[5] < std[1]
