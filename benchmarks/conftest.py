"""Benchmark-suite fixtures and helpers.

Each benchmark regenerates one table or figure from the paper's §V at
reduced scale: the experiment runs once inside ``benchmark.pedantic`` (the
wall-clock number pytest-benchmark records is the simulation's real
runtime), prints the paper-style rows next to the paper's published
numbers, and asserts the qualitative shape — who wins, what grows, what
shrinks.  Absolute virtual seconds are not expected to match the paper
(see EXPERIMENTS.md for the mapping).
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

import pytest

from repro.core import DistributedANN, SystemConfig
from repro.datasets import brute_force_knn, sample_queries
from repro.hnsw import HnswParams


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark.

    The recorded wall time is the real runtime of the simulation; the
    experiment's virtual cluster times are printed by the test body.
    """

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return _run


@pytest.fixture(scope="session")
def sift_corpus():
    """Shared SIFT-like corpus for the search benches (real searcher)."""
    from repro.datasets import sift_like

    X = sift_like(6000, seed=101)
    Q = sample_queries(X, 200, noise_scale=0.05, seed=102)
    gt_d, gt_i = brute_force_knn(X, Q, 10)
    return X, Q, gt_d, gt_i


@pytest.fixture(scope="session")
def fitted_real_system(sift_corpus):
    """One fitted 16-core real-searcher system shared by several benches."""
    X, *_ = sift_corpus
    cfg = SystemConfig(
        n_cores=16,
        cores_per_node=8,
        k=10,
        hnsw=HnswParams(M=8, ef_construction=40, seed=7),
        n_probe=4,
        seed=7,
    )
    ann = DistributedANN(cfg)
    ann.fit(X)
    return ann
