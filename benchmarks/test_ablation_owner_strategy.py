"""Ablation — master-worker vs the multiple-owner strategy (§IV).

The paper: multiple-owner gave "a small improvement ... over an optimized
master-worker strategy but this improvement deteriorated as core count
increased" because it cannot be combined with replication-based load
balancing.  This bench compares the two strategies on a skewed workload at
two scales, with replication enabled for master-worker at the larger one.
"""


from repro.core import DistributedANN, SystemConfig
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.hnsw import HnswParams


def run_strategy(ds, Q, P, owner_strategy, replication):
    cfg = SystemConfig(
        n_cores=P,
        cores_per_node=8,
        k=10,
        hnsw=HnswParams(M=16, ef_construction=100),
        searcher="modeled",
        modeled_partition_points=10**9 // P,
        modeled_sample_points=16,
        modeled_search_seconds=2e-3,
        n_probe=3,
        one_sided=False,
        owner_strategy=owner_strategy,
        replication_factor=replication,
        seed=41,
    )
    ann = DistributedANN(cfg)
    ann.fit(ds.X)
    _, _, rep = ann.query(Q)
    return rep.total_seconds


def test_owner_strategy_comparison(run_once):
    def experiment():
        from repro.datasets import sample_queries

        ds = load_dataset("ANN_SIFT1B", n_points=4096, n_queries=10, k=10, seed=41)
        Q = sample_queries(ds.X, 400, noise_scale=0.05, seed=42)
        rows = []
        for P in (16, 64):
            t_master = run_strategy(ds, Q, P, "master", 1)
            t_owner = run_strategy(ds, Q, P, "multiple", 1)
            t_master_repl = run_strategy(ds, Q, P, "master", min(4, P))
            rows.append((P, t_master, t_owner, t_master_repl))
        return rows

    rows = run_once(experiment)
    print()
    print(
        format_table(
            ["cores", "master-worker", "multiple-owner", "master + replication r=4"],
            rows,
            title="Ablation — owner strategy (virtual seconds, skewed batch)",
        )
    )
    # the paper's conclusion: master-worker WITH replication beats the
    # multiple-owner strategy at larger core counts
    P_big = rows[-1]
    assert P_big[3] < P_big[2], (
        "replicated master-worker should win at scale "
        f"(got master+repl={P_big[3]:.4f} vs owner={P_big[2]:.4f})"
    )
