"""IVF-PQ fast-scan benchmark: ADC scan throughput, recall, amortization.

The ADC scan is the inner loop of every IVF-PQ query: probe ``n_probe``
inverted lists and rank their codes by table lookups.  The fast-scan
layer (``repro.pq.kernels`` + ``_pqscan.c``) restructures that loop —
transposed code layout, one table per query reused across lists, a
blocked C kernel — and this harness measures what it bought, writing
``BENCH_pq.json`` at the repo root:

- fit seconds (coarse k-means + PQ training + list building),
- legacy qps: the pre-kernel scan reimplemented here verbatim (per-probed-
  list ``adc_table`` rebuild + fancy-indexing gather over row-major codes),
- single-query qps through ``IVFPQIndex.knn_search`` (the fast-scan path),
- batched qps at several batch sizes (``knn_search_batch`` groups scans
  by cell, so bigger batches amortize table builds and re-walk cached
  code bytes — the amortization curve),
- recall@k against exact brute force for both paths (they rank the same
  quantized distances, so recall must match),
- the ADC speedup (legacy seconds / fast-scan seconds) at equal recall,
- a SHA-256 checksum of the fast-scan (D, I) results.

A previous ``BENCH_pq.json`` is folded in as ``previous`` + ``history``
via the shared trajectory plumbing.  Run via ``make bench-pq`` (full
size) or ``make pq-smoke`` (``--smoke``; CI enforces the speedup and
recall-parity floors).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

from trajectory import (  # noqa: E402
    fold_previous,
    load_previous,
    missing_keys,
    results_checksum,
)

from repro.datasets import brute_force_knn  # noqa: E402
from repro.pq import IVFPQIndex  # noqa: E402

#: keys every BENCH_pq.json must provide (CI's pq-smoke checks these)
REQUIRED_KEYS = (
    "schema",
    "config",
    "fit.seconds",
    "scan.legacy_qps",
    "scan.single_qps",
    "scan.batched_qps",
    "scan.speedup_vs_legacy",
    "recall.fast_scan",
    "recall.legacy",
    "results_sha256",
)


def make_dataset(n: int, dim: int, n_queries: int, seed: int):
    """Seeded clustered corpus + queries (queries are perturbed base points)."""
    rng = np.random.default_rng([seed, 0xADC5])
    n_clusters = 32
    centers = rng.normal(0.0, 4.0, size=(n_clusters, dim)).astype(np.float32)
    assign = rng.integers(0, n_clusters, size=n)
    X = (centers[assign] + rng.normal(0.0, 1.0, size=(n, dim))).astype(np.float32)
    picks = rng.choice(n, size=n_queries, replace=False)
    Q = (X[picks] + rng.normal(0.0, 0.1, size=(n_queries, dim))).astype(np.float32)
    return X, Q


def legacy_knn_search(index: IVFPQIndex, query: np.ndarray, k: int):
    """The pre-kernel ADC path, reimplemented verbatim for comparison.

    Per probed list: rebuild the distance table (the old per-call
    ``adc_distances``) and gather one table entry per (vector, subspace)
    from the row-major codes.  Ranking semantics are identical to the
    fast-scan path; only the scan mechanics differ.
    """
    q = np.asarray(query, dtype=np.float32)
    qf = q.astype(np.float64)
    cd = ((index._coarse.centroids - qf) ** 2).sum(axis=1)
    probe = np.argsort(cd)[: min(index.n_probe, index.n_cells)]
    m = index.pq.n_subspaces
    all_d: list[np.ndarray] = []
    all_i: list[np.ndarray] = []
    for c in probe:
        codes = index._lists_codes[c]
        if len(codes) == 0:
            continue
        table = index.pq.adc_table(q)  # rebuilt per probed list, as the old code did
        all_d.append(table[np.arange(m)[None, :], codes.astype(np.int64)].sum(axis=1))
        all_i.append(index._lists_ids[c])
    if not all_d:
        return np.empty(0), np.empty(0, dtype=np.int64)
    d = np.concatenate(all_d)
    ids = np.concatenate(all_i)
    order = np.lexsort((ids, d))[:k]
    return np.sqrt(d[order]), ids[order]


def _recall(ids: np.ndarray, gt_i: np.ndarray, k: int) -> float:
    hits = sum(len(set(ids[i][ids[i] >= 0]) & set(gt_i[i])) for i in range(len(ids)))
    return hits / (len(ids) * k)


def run(args: argparse.Namespace) -> dict:
    X, Q = make_dataset(args.n, args.dim, args.n_queries, args.seed)
    gt_d, gt_i = brute_force_knn(X, Q, args.k, metric="l2")

    index = IVFPQIndex(
        n_cells=args.n_cells,
        n_subspaces=args.n_subspaces,
        n_centroids=args.n_centroids,
        seed=args.seed,
        n_probe=args.n_probe,
    )
    t0 = time.perf_counter()
    index.fit(X)
    fit_seconds = time.perf_counter() - t0

    # legacy pass (the pre-kernel scan)
    t0 = time.perf_counter()
    legacy = [legacy_knn_search(index, Q[i], args.k) for i in range(len(Q))]
    legacy_seconds = time.perf_counter() - t0
    legacy_ids = np.full((len(Q), args.k), -1, dtype=np.int64)
    for i, (_, nn) in enumerate(legacy):
        legacy_ids[i, : len(nn)] = nn

    # fast-scan single-query pass
    t0 = time.perf_counter()
    singles = [index.knn_search(Q[i], args.k) for i in range(len(Q))]
    single_seconds = time.perf_counter() - t0
    D = np.full((len(Q), args.k), np.inf, dtype=np.float64)
    ids = np.full((len(Q), args.k), -1, dtype=np.int64)
    for i, (d, nn) in enumerate(singles):
        D[i, : len(d)] = d
        ids[i, : len(nn)] = nn

    # batched passes: table builds amortize and list bytes stay cache-warm
    # as the batch grows; the curve records qps per batch size
    batch_qps: dict[str, float] = {}
    Db = idsb = None
    for bs in args.batch_sizes:
        bs = min(bs, len(Q))
        t0 = time.perf_counter()
        Ds, Is = [], []
        for lo in range(0, len(Q), bs):
            d, nn = index.knn_search_batch(Q[lo : lo + bs], args.k)
            Ds.append(d)
            Is.append(nn)
        secs = time.perf_counter() - t0
        batch_qps[str(bs)] = round(len(Q) / secs, 1)
        Db, idsb = np.concatenate(Ds), np.concatenate(Is)
    batched_qps = max(batch_qps.values())

    if Db is not None and not (np.array_equal(ids, idsb) and np.array_equal(D, Db)):
        print("WARNING: batched results differ from single-query results", file=sys.stderr)

    recall_fast = _recall(ids, gt_i, args.k)
    recall_legacy = _recall(legacy_ids, gt_i, args.k)

    report = {
        "schema": 1,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "n": args.n,
            "dim": args.dim,
            "n_queries": args.n_queries,
            "k": args.k,
            "n_cells": args.n_cells,
            "n_subspaces": args.n_subspaces,
            "n_centroids": args.n_centroids,
            "n_probe": args.n_probe,
            "seed": args.seed,
        },
        "fit": {"seconds": round(fit_seconds, 4)},
        "scan": {
            "legacy_seconds": round(legacy_seconds, 4),
            "legacy_qps": round(len(Q) / legacy_seconds, 1),
            "single_seconds": round(single_seconds, 4),
            "single_qps": round(len(Q) / single_seconds, 1),
            "batch_qps": batch_qps,
            "batched_qps": batched_qps,
            "speedup_vs_legacy": round(legacy_seconds / single_seconds, 2),
        },
        "recall": {
            "fast_scan": round(recall_fast, 4),
            "legacy": round(recall_legacy, 4),
        },
        "results_sha256": results_checksum(D, ids),
    }
    return report


#: fields a previous run keeps when folded into the trajectory history
TRIM_FIELDS = {
    "created": "created",
    "config": "config",
    "scan": "scan",
    "recall_fast_scan": "recall.fast_scan",
    "results_sha256": "results_sha256",
}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description="IVF-PQ fast-scan benchmark")
    ap.add_argument("--n", type=int, default=20_000, help="corpus size")
    ap.add_argument("--dim", type=int, default=32)
    ap.add_argument("--n-queries", type=int, default=200, dest="n_queries")
    ap.add_argument("--k", type=int, default=10)
    ap.add_argument("--n-cells", type=int, default=64, dest="n_cells")
    ap.add_argument("--n-subspaces", type=int, default=8, dest="n_subspaces")
    ap.add_argument("--n-centroids", type=int, default=256, dest="n_centroids")
    ap.add_argument("--n-probe", type=int, default=8, dest="n_probe")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument(
        "--batch-sizes",
        type=int,
        nargs="+",
        default=[1, 8, 32, 200],
        dest="batch_sizes",
        help="batch sizes for the amortization curve (last one sets batched_qps ceiling)",
    )
    ap.add_argument("--out", default="BENCH_pq.json")
    ap.add_argument(
        "--smoke", action="store_true", help="CI smoke size (n=3000, 40 queries)"
    )
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        dest="min_speedup",
        help="exit non-zero if the fast-scan speedup vs legacy falls below this",
    )
    ap.add_argument(
        "--min-recall",
        type=float,
        default=None,
        dest="min_recall",
        help="exit non-zero if fast-scan recall@k falls below this floor",
    )
    args = ap.parse_args(argv)
    if args.smoke:
        args.n, args.n_queries = 3000, 40
        args.n_centroids = min(args.n_centroids, 64)

    report = run(args)
    prev = load_previous(args.out)
    report = fold_previous(report, args.out, trim_fields=TRIM_FIELDS)
    if prev is not None and prev.get("config") == report["config"]:
        report["bit_identical_to_previous"] = (
            prev.get("results_sha256") == report["results_sha256"]
        )

    missing = missing_keys(report, REQUIRED_KEYS)
    if missing:
        print(f"ERROR: benchmark report is missing keys: {missing}", file=sys.stderr)
        return 2

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    s, r = report["scan"], report["recall"]
    print(f"fit     {report['fit']['seconds']:.2f}s")
    print(f"legacy  {s['legacy_qps']:>12,.0f} q/s     (pre-kernel gather scan)")
    print(f"single  {s['single_qps']:>12,.0f} q/s     ({s['speedup_vs_legacy']:.2f}x vs legacy)")
    for bs, qps in s["batch_qps"].items():
        print(f"batch={bs:<4} {qps:>11,.0f} q/s")
    print(f"recall@{report['config']['k']} = {r['fast_scan']:.4f} (legacy {r['legacy']:.4f})")
    if "bit_identical_to_previous" in report:
        ident = "bit-identical" if report["bit_identical_to_previous"] else "DIFFERENT results"
        print(f"vs previous run: {ident}")
    print(f"wrote {args.out}")

    rc = 0
    if args.min_speedup is not None and s["speedup_vs_legacy"] < args.min_speedup:
        print(
            f"ERROR: speedup {s['speedup_vs_legacy']:.2f}x below floor {args.min_speedup}",
            file=sys.stderr,
        )
        rc = 3
    if args.min_recall is not None and r["fast_scan"] < args.min_recall:
        print(
            f"ERROR: recall@{report['config']['k']} {r['fast_scan']:.4f} "
            f"below floor {args.min_recall}",
            file=sys.stderr,
        )
        rc = 3
    if r["fast_scan"] < r["legacy"] - 1e-9:
        print(
            f"ERROR: fast-scan recall {r['fast_scan']:.4f} fell below "
            f"legacy recall {r['legacy']:.4f} — scan changed answers",
            file=sys.stderr,
        )
        rc = 4
    return rc


if __name__ == "__main__":
    sys.exit(main())
