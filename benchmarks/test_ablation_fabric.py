"""Ablation — interconnect sensitivity (Aries-like vs 10GbE-like fabric).

The paper's conclusions (one-sided wins, compute dominates, near-linear
scaling) are claimed for a Cray Aries machine.  This bench re-runs the key
comparison on commodity-Ethernet constants to show which conclusions are
fabric-robust and how much total time degrades.
"""


from repro.core import DistributedANN, SystemConfig
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.hnsw import HnswParams
from repro.simmpi import ARIES_LIKE, ETHERNET_LIKE


def run_fabric(ds, network, one_sided):
    cfg = SystemConfig(
        n_cores=32,
        cores_per_node=8,
        k=10,
        hnsw=HnswParams(M=16, ef_construction=100),
        searcher="modeled",
        modeled_partition_points=10**9 // 32,
        modeled_sample_points=16,
        modeled_search_seconds=2e-3,
        n_probe=3,
        one_sided=one_sided,
        network=network,
        seed=59,
    )
    ann = DistributedANN(cfg)
    ann.fit(ds.X)
    _, _, rep = ann.query(ds.Q)
    return rep


def test_fabric_sensitivity(run_once):
    def experiment():
        ds = load_dataset("ANN_SIFT1B", n_points=4096, n_queries=400, k=10, seed=59)
        rows = []
        for fabric_name, net in (("aries", ARIES_LIKE), ("ethernet", ETHERNET_LIKE)):
            for one_sided in (True, False):
                rep = run_fabric(ds, net, one_sided)
                rows.append(
                    (
                        fabric_name,
                        "1-sided" if one_sided else "2-sided",
                        rep.total_seconds,
                        rep.comm_fraction,
                    )
                )
        return rows

    rows = run_once(experiment)
    print()
    print(
        format_table(
            ["fabric", "results path", "virtual s", "comm fraction"],
            rows,
            title="Ablation — fabric sensitivity",
        )
    )
    t = {(r[0], r[1]): r[2] for r in rows}
    comm = {(r[0], r[1]): r[3] for r in rows}
    # ethernet is slower, and communication eats a larger share there
    assert t[("ethernet", "1-sided")] >= t[("aries", "1-sided")]
    assert comm[("ethernet", "1-sided")] >= comm[("aries", "1-sided")]
    # the one-sided design still completes correctly on both fabrics, and
    # on the slow fabric the one-sided path does not lose to two-sided
    assert t[("ethernet", "1-sided")] <= t[("ethernet", "2-sided")] * 1.25
