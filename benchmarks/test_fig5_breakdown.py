"""Figure 5 — search-time breakdown vs core count.

Paper: for 10^4 queries on ANN_SIFT1B, MPI communication is a small
fraction of the total time — "computation-communication times are greater
than 90% in many cases" thanks to non-blocking sends and one-sided result
accumulation.  This bench sweeps cores with the modeled paper-scale
searcher and prints compute vs communication shares.
"""


from repro.core import DistributedANN, SystemConfig
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.hnsw import HnswParams


def test_fig5_breakdown_vs_cores(run_once):
    cores = [256, 512, 1024, 2048]

    def experiment():
        ds = load_dataset("ANN_SIFT1B", n_points=4096, n_queries=200, k=10, seed=23)
        rows = []
        for P in cores:
            cfg = SystemConfig(
                n_cores=P,
                cores_per_node=24,
                k=10,
                hnsw=HnswParams(M=16, ef_construction=100),
                searcher="modeled",
                modeled_partition_points=10**9 // P,
                modeled_sample_points=16,
                n_probe=3,
                seed=23,
            )
            ann = DistributedANN(cfg)
            ann.fit(ds.X)
            _, _, rep = ann.query(ds.Q)
            w = rep.worker_breakdown
            m = rep.master_breakdown
            # CPU-attributable time only; blocked waits are idle cores, which
            # the paper's breakdown likewise does not count as communication
            compute = w["compute"] + m["compute"]
            comm = sum(w[x] + m[x] for x in ("send", "recv", "poll", "rma"))
            total_cpu = compute + comm
            rows.append((P, rep.total_seconds, compute, comm, 100 * compute / total_cpu))
        return rows

    rows = run_once(experiment)
    print()
    print(
        format_table(
            ["cores", "total virt s", "compute s", "comm s", "compute %"],
            rows,
            title="Fig. 5 — search-time breakdown (paper: compute > 90%)",
        )
    )
    for P, total, compute, comm, pct in rows:
        # the paper's qualitative claim: communication stays a small share
        assert pct > 75.0, f"communication dominated at {P} cores ({pct:.1f}% compute)"
