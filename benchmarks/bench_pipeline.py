"""Pipelined-dispatch benchmark: credit windows under a skewed workload.

The scenario the coordinator refactor (``repro.core.coordinator``) is
about: the eager master fires every task the moment it is routed, so under
a Zipf-skewed workload the modeled queues grow to the whole batch while
the dispatcher is blind to which replicas are drowning.  A finite
``SystemConfig.dispatch_window`` caps tasks in flight per core; a workgroup
that is out of credits is excluded from replica selection and a fully
blocked dispatch consumes in-flight results until a credit returns —
flow control doubles as load balancing.

For each (cores, window) cell the harness runs the same fitted system and
query batch and records:

- the simulated makespan (``SearchReport.total_seconds``),
- the peak modeled queue depth (max of ``queue_depth_timeline``),
- the flow-control counters (peak in flight, credit stall time, leaks),
- a SHA-256 checksum of (D, I) — windows reorder dispatch, never answers,
  so results must be bit-identical across every window (and across repeat
  eager runs, the golden contract).

The headline numbers are the makespan improvement and peak-queue-depth
reduction of the headline window over eager dispatch at the headline core
count (>= 64 cores for the acceptance run); floors are enforced via
``--min-improvement`` / ``--min-queue-reduction``.  Writes
``BENCH_pipeline.json`` at the repo root with the same previous/history
trajectory folding as ``bench_loadbalance.py``.

Run via ``make bench-pipeline`` (full) or ``--smoke`` (CI size).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from datetime import datetime, timezone

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

from bench_loadbalance import make_corpus, skewed_queries  # noqa: E402
from trajectory import fold_previous, missing_keys, results_checksum  # noqa: E402

from repro.core import DistributedANN, SystemConfig  # noqa: E402
from repro.hnsw import HnswParams  # noqa: E402

#: keys every BENCH_pipeline.json must provide (CI's pipeline-smoke checks these)
REQUIRED_KEYS = (
    "schema",
    "config",
    "runs",
    "headline.cores",
    "headline.window",
    "headline.eager_makespan",
    "headline.windowed_makespan",
    "headline.improvement",
    "headline.eager_peak_queue",
    "headline.windowed_peak_queue",
    "headline.queue_depth_reduction",
    "eager_deterministic",
    "results_identical_across_windows",
    "no_credits_leaked",
)


def build_system(args: argparse.Namespace, cores: int, window: int) -> DistributedANN:
    return DistributedANN(
        SystemConfig(
            n_cores=cores,
            cores_per_node=1,  # one worker per node: crisp per-core attribution
            k=args.k,
            n_probe=1,  # skew lands undiluted on the routed partition
            hnsw=HnswParams(M=8, ef_construction=40, seed=args.seed),
            replication_factor=min(args.replication, cores),
            replica_selector="primary",  # flow control alone moves the needle
            searcher="modeled",
            modeled_search_seconds=args.task_seconds,
            modeled_sample_points=64,
            dispatch_window=window,
            seed=args.seed,
        )
    )


def run(args: argparse.Namespace) -> dict:
    runs = []
    checksums: dict[int, set] = {}
    leaked = 0
    eager_deterministic = True

    for cores in args.cores:
        X = make_corpus(args.n, args.dim, cores, args.seed)
        # fit once per core count; the skewed batch targets the fitted
        # partition layout and is identical across windows
        ref = build_system(args, cores, 0)
        ref.fit(X)
        Q = skewed_queries(ref, args)

        for window in args.windows:
            ann = build_system(args, cores, window)
            ann.fit(X)
            D, ids, rep = ann.query(Q, k=args.k)
            checksums.setdefault(cores, set()).add(results_checksum(D, ids))
            leaked += rep.credits_leaked
            runs.append(
                {
                    "cores": cores,
                    "window": window,
                    "makespan_s": round(rep.total_seconds, 6),
                    "peak_queue_depth": round(
                        float(rep.queue_depth_timeline[:, 1].max()), 1
                    ),
                    "max_outstanding_tasks": int(rep.max_outstanding_tasks),
                    "credit_stall_ms": round(rep.credit_stall_seconds * 1e3, 3),
                    "credits_leaked": int(rep.credits_leaked),
                    "imbalance_factor": round(rep.imbalance_factor, 4),
                    "results_sha256": results_checksum(D, ids),
                }
            )
        # golden contract: a repeat eager run is bit-identical
        again = build_system(args, cores, 0)
        again.fit(X)
        D2, I2, rep2 = again.query(Q, k=args.k)
        eager_row = next(
            r for r in runs if r["cores"] == cores and r["window"] == 0
        )
        if (
            results_checksum(D2, I2) != eager_row["results_sha256"]
            or round(rep2.total_seconds, 6) != eager_row["makespan_s"]
        ):
            print(f"ERROR: eager run at {cores} cores is not deterministic", file=sys.stderr)
            eager_deterministic = False

    def cell(cores: int, window: int) -> dict:
        return next(r for r in runs if r["cores"] == cores and r["window"] == window)

    head_eager = cell(args.headline_cores, 0)
    head_win = cell(args.headline_cores, args.headline_window)

    return {
        "schema": 1,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "n": args.n,
            "dim": args.dim,
            "n_queries": args.n_queries,
            "k": args.k,
            "cores": list(args.cores),
            "windows": list(args.windows),
            "skew": args.skew,
            "task_seconds": args.task_seconds,
            "replication": args.replication,
            "headline_cores": args.headline_cores,
            "headline_window": args.headline_window,
            "seed": args.seed,
        },
        "runs": runs,
        "headline": {
            "cores": args.headline_cores,
            "window": args.headline_window,
            "eager_makespan": head_eager["makespan_s"],
            "windowed_makespan": head_win["makespan_s"],
            "improvement": round(
                head_eager["makespan_s"] / head_win["makespan_s"], 3
            ),
            "eager_peak_queue": head_eager["peak_queue_depth"],
            "windowed_peak_queue": head_win["peak_queue_depth"],
            "queue_depth_reduction": round(
                head_eager["peak_queue_depth"]
                / max(head_win["peak_queue_depth"], 1e-9),
                2,
            ),
        },
        "eager_deterministic": eager_deterministic,
        # windows only change when tasks are sent and which replica serves
        # them, so within each core count every window must agree
        "results_identical_across_windows": all(
            len(s) == 1 for s in checksums.values()
        ),
        "no_credits_leaked": leaked == 0,
    }


#: fields a previous run keeps when folded into the trajectory history
TRIM_FIELDS = (
    "created",
    "config",
    "headline",
    "eager_deterministic",
    "results_identical_across_windows",
    "no_credits_leaked",
)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description="Credit-windowed dispatch benchmark")
    ap.add_argument("--n", type=int, default=4000, help="corpus size")
    ap.add_argument("--dim", type=int, default=16)
    ap.add_argument("--n-queries", type=int, default=600, dest="n_queries")
    ap.add_argument("--k", type=int, default=10)
    ap.add_argument(
        "--cores", type=int, nargs="+", default=[16, 64], help="core counts to sweep"
    )
    ap.add_argument(
        "--windows",
        type=int,
        nargs="+",
        default=[0, 1, 2, 4, 8],
        help="dispatch windows to sweep (0 = eager)",
    )
    ap.add_argument("--skew", type=float, default=1.3, help="Zipf exponent of the workload")
    ap.add_argument(
        "--task-seconds",
        type=float,
        default=5e-3,
        dest="task_seconds",
        help="modeled virtual seconds per local search",
    )
    ap.add_argument("--replication", type=int, default=4)
    ap.add_argument(
        "--headline-cores",
        type=int,
        default=64,
        dest="headline_cores",
        help="core count the headline numbers are computed at",
    )
    ap.add_argument(
        "--headline-window",
        type=int,
        default=4,
        dest="headline_window",
        help="dispatch window the headline numbers are computed at",
    )
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="BENCH_pipeline.json")
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke size (n=1200, 200 queries, 16 cores, windows 0/2)",
    )
    ap.add_argument(
        "--min-improvement",
        type=float,
        default=1.1,
        dest="min_improvement",
        help="exit non-zero if the headline makespan improvement falls below this",
    )
    ap.add_argument(
        "--min-queue-reduction",
        type=float,
        default=4.0,
        dest="min_queue_reduction",
        help="exit non-zero if the headline peak-queue reduction falls below this",
    )
    args = ap.parse_args(argv)
    if args.smoke:
        args.n, args.n_queries = 1200, 200
        args.cores, args.windows = [16], [0, 2]
        args.headline_cores, args.headline_window = 16, 2

    report = run(args)
    report = fold_previous(report, args.out, trim_fields=TRIM_FIELDS)

    missing = missing_keys(report, REQUIRED_KEYS)
    if missing:
        print(f"ERROR: benchmark report is missing keys: {missing}", file=sys.stderr)
        return 2

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(
        f"{'cores':>6} {'window':>7} {'makespan':>12} {'peak queue':>11} "
        f"{'in flight':>10} {'stall':>10}"
    )
    for row in report["runs"]:
        window = "eager" if row["window"] == 0 else str(row["window"])
        print(
            f"{row['cores']:>6} {window:>7} {row['makespan_s']:>11.4f}s "
            f"{row['peak_queue_depth']:>11.1f} {row['max_outstanding_tasks']:>10} "
            f"{row['credit_stall_ms']:>8.1f}ms"
        )
    head = report["headline"]
    print(
        f"window {head['window']} vs eager at {head['cores']} cores: "
        f"{head['improvement']:.2f}x makespan, "
        f"{head['queue_depth_reduction']:.1f}x flatter peak queue "
        f"(skew={report['config']['skew']})"
    )
    if not report["eager_deterministic"]:
        print("ERROR: eager runs are not bit-identical", file=sys.stderr)
        return 4
    if not report["results_identical_across_windows"]:
        print("ERROR: dispatch windows changed search results", file=sys.stderr)
        return 5
    if not report["no_credits_leaked"]:
        print("ERROR: dispatch credits leaked", file=sys.stderr)
        return 6
    print(f"wrote {args.out}")

    if args.min_improvement is not None and head["improvement"] < args.min_improvement:
        print(
            f"ERROR: improvement {head['improvement']:.2f}x below floor "
            f"{args.min_improvement}x",
            file=sys.stderr,
        )
        return 3
    if (
        args.min_queue_reduction is not None
        and head["queue_depth_reduction"] < args.min_queue_reduction
    ):
        print(
            f"ERROR: queue reduction {head['queue_depth_reduction']:.1f}x below "
            f"floor {args.min_queue_reduction}x",
            file=sys.stderr,
        )
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
