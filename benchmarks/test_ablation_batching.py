"""Ablation — throughput vs batch size (the system's design premise).

The paper's introduction argues for *batched* processing: "increased
throughput ... can be useful when queries need not be answered in real
time and can be batched together".  This bench quantifies that premise on
the simulated cluster: throughput (queries per virtual second) must rise
with batch size until the workers saturate, while per-query p99 latency
grows — the batching trade-off.  Also reports the latency percentiles
(two-sided mode so per-query completion is observable).
"""


from repro.core import DistributedANN, SystemConfig
from repro.datasets import load_dataset, sample_queries
from repro.eval import format_table, latency_stats
from repro.hnsw import HnswParams


def test_throughput_rises_with_batch_size(run_once):
    def experiment():
        ds = load_dataset("ANN_SIFT1B", n_points=4096, n_queries=10, k=10, seed=91)
        cfg = SystemConfig(
            n_cores=32,
            cores_per_node=8,
            k=10,
            hnsw=HnswParams(M=16, ef_construction=100),
            searcher="modeled",
            modeled_partition_points=10**9 // 32,
            modeled_sample_points=16,
            modeled_search_seconds=2e-3,
            n_probe=3,
            one_sided=False,
            seed=91,
        )
        ann = DistributedANN(cfg)
        ann.fit(ds.X)
        rows = []
        for batch in (8, 32, 128, 512):
            Q = sample_queries(ds.X, batch, noise_scale=0.05, seed=92)
            _, _, rep = ann.query(Q)
            ls = latency_stats(rep.query_latencies)
            rows.append((batch, rep.throughput, ls.p50 * 1e3, ls.p99 * 1e3))
        return rows

    rows = run_once(experiment)
    print()
    print(
        format_table(
            ["batch size", "throughput (q/s)", "p50 latency (ms)", "p99 latency (ms)"],
            rows,
            title="Ablation — batching premise: throughput vs batch size",
        )
    )
    thr = [r[1] for r in rows]
    p99 = [r[3] for r in rows]
    # throughput grows with batch size (until worker saturation)
    assert thr[2] > 2 * thr[0]
    assert thr[3] >= thr[2] * 0.8  # may flatten, must not collapse
    # the price: tail latency grows with batch depth
    assert p99[-1] > p99[0]
