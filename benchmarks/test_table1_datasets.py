"""Table I — datasets used in the experiments.

Regenerates the dataset roster at reduced scale: for every corpus in the
paper's Table I, synthesize the analogue, verify its dimension and ground
truth, and print the roster with paper-scale vs generated point counts.
"""


from repro.datasets import DATASET_CATALOG, load_dataset
from repro.eval import format_table


def test_table1_dataset_roster(run_once):
    def experiment():
        rows = []
        for name, spec in DATASET_CATALOG.items():
            ds = load_dataset(name, n_points=2000, n_queries=50, k=10, seed=0)
            rows.append(
                (
                    name,
                    f"{spec.paper_n_points:,}",
                    ds.n_points,
                    spec.dim,
                    spec.paper_n_queries,
                    ds.n_queries,
                )
            )
        return rows

    rows = run_once(experiment)
    print()
    print(
        format_table(
            ["dataset", "paper points", "ours", "dim", "paper queries", "ours"],
            rows,
            title="Table I — datasets (reduced-scale analogues)",
        )
    )
    assert len(rows) == 5
    dims = {r[0]: r[3] for r in rows}
    assert dims == {
        "ANN_SIFT1B": 128,
        "DEEP1B": 96,
        "ANN_GIST1M": 960,
        "SYN_1M": 512,
        "SYN_10M": 256,
    }
