"""Filtered-search benchmark: selectivity × strategy sweep and the crossover.

The experiment the ``repro.filtering`` stack is about: a filtered query
must return the k nearest *matching* rows, and there are two ways to pay
for that.  Brute-forcing exactly the matching rows (**pre**) costs one
distance per match, so it wins when the predicate is selective; filtered
graph traversal (**post**) costs roughly an ordinary beam search, so it
wins when most rows match.  The ``auto`` strategy flips between them at
:data:`~repro.filtering.CROSSOVER_SELECTIVITY` per (task, partition).

The sweep runs one filtered batch per (selectivity, strategy) cell over a
corpus whose ``pct`` attribute is ``row % 100`` — a range predicate
``pct=0..S-1`` selects exactly S% of every partition.  Per cell it
records recall against the exact answer *over the matching rows*, the
distance-eval split, and the pre/post task counts; per selectivity it
also records the **naive post-filter baseline** (unfiltered search at the
same k, then drop non-matching rows), the strawman the filtered paths
must beat.  A paired unfiltered run checks metadata attachment stays
bit-identical for unfiltered queries.

Acceptance gates (exit non-zero on failure):

- filtered recall >= the naive post-filter baseline at every swept
  selectivity (the ISSUE requires at least two such points on record);
- the measured auto crossover agrees with ``CROSSOVER_SELECTIVITY``;
- unfiltered results are bit-identical with and without metadata.

Writes ``BENCH_filter.json`` with the same previous/history folding as
the other benchmarks.  Run via ``make bench-filter`` (full) or
``--smoke`` (CI size).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from datetime import datetime, timezone

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

from trajectory import fold_previous, missing_keys, results_checksum  # noqa: E402

from repro.core import DistributedANN, SystemConfig  # noqa: E402
from repro.datasets import sample_queries, sift_like  # noqa: E402
from repro.filtering import CROSSOVER_SELECTIVITY, STRATEGIES  # noqa: E402
from repro.hnsw import HnswParams  # noqa: E402

#: keys every BENCH_filter.json must provide (CI's filter-smoke checks these)
REQUIRED_KEYS = (
    "schema",
    "config",
    "runs",
    "headline.cores",
    "headline.k",
    "headline.crossover_selectivity",
    "headline.measured_crossover",
    "headline.crossover_agrees",
    "headline.recall_points_beating_naive",
    "headline.recall_floor_met",
    "headline.min_filtered_recall",
    "headline.pre_evals_low_sel",
    "headline.post_evals_high_sel",
    "unfiltered_identical_with_metadata",
)


def build_system(args: argparse.Namespace, strategy: str) -> DistributedANN:
    return DistributedANN(
        SystemConfig(
            n_cores=args.cores,
            cores_per_node=4,
            k=args.k,
            n_probe=args.cores,  # every partition: recall is about filtering,
            # not routing, so take routing out of the experiment
            hnsw=HnswParams(M=8, ef_construction=60, seed=args.seed),
            filter_strategy=strategy,
            seed=args.seed,
        )
    )


def exact_over_matches(X: np.ndarray, match_rows: np.ndarray, Q: np.ndarray, k: int) -> np.ndarray:
    """(n_queries, k) exact neighbor ids among the matching rows (L2)."""
    gt = np.full((len(Q), k), -1, dtype=np.int64)
    sub = X[match_rows]
    for i, q in enumerate(Q):
        d = np.einsum("ij,ij->i", sub - q, sub - q)
        order = match_rows[np.argsort(d, kind="stable")][:k]
        gt[i, : len(order)] = order
    return gt


def recall_vs(gt: np.ndarray, ids: np.ndarray) -> float:
    """Mean fraction of the exact matching-row answers recovered."""
    hits = sum(
        len(np.intersect1d(row[row >= 0], g[g >= 0])) for row, g in zip(ids, gt)
    )
    denom = int(np.count_nonzero(gt >= 0))
    return hits / denom if denom else 1.0


def run(args: argparse.Namespace) -> dict:
    X = sift_like(args.n, dim=args.dim, seed=args.seed)
    Q = sample_queries(X, args.n_queries, noise_scale=0.05, seed=args.seed + 1)
    pct = np.arange(args.n) % 100  # pct=0..S-1 selects exactly S% of rows
    metadata = {"pct": pct}

    # unfiltered bit-identity: attaching metadata must change nothing
    plain = build_system(args, "auto")
    plain.fit(X)
    D0, I0, _ = plain.query(Q, k=args.k)
    tagged = build_system(args, "auto")
    tagged.fit(X, metadata=metadata)
    Dt, It, _ = tagged.query(Q, k=args.k)
    unfiltered_identical = results_checksum(D0, I0) == results_checksum(Dt, It)

    systems = {"auto": tagged}
    for strategy in STRATEGIES:
        if strategy not in systems:
            systems[strategy] = build_system(args, strategy)
            systems[strategy].fit(X, metadata=metadata)

    runs = []
    for sel_pct in args.selectivities:
        predicate = f"pct=0..{sel_pct - 1}"
        match_rows = np.flatnonzero(pct < sel_pct)
        gt = exact_over_matches(X, match_rows, Q, args.k)

        # the naive post-filter baseline: unfiltered search at the same k,
        # keep the rows that happen to match — no extra cluster run needed
        keep = np.where(np.isin(I0, match_rows), I0, -1)
        naive_recall = recall_vs(gt, keep)

        for strategy in STRATEGIES:
            D, ids, rep = systems[strategy].query(Q, k=args.k, filter=predicate)
            assert np.all(np.isin(ids[ids >= 0], match_rows)), (
                f"predicate violated at selectivity {sel_pct}% ({strategy})"
            )
            runs.append(
                {
                    "selectivity": sel_pct / 100.0,
                    "strategy": strategy,
                    "predicate": predicate,
                    "recall_filtered": round(recall_vs(gt, ids), 4),
                    "recall_naive_postfilter": round(naive_recall, 4),
                    "tasks_pre": rep.filter_tasks_pre,
                    "tasks_post": rep.filter_tasks_post,
                    "evals_pre": rep.filter_evals_pre,
                    "evals_post": rep.filter_evals_post,
                    "virtual_seconds": round(rep.total_seconds, 6),
                    "results_sha256": results_checksum(D, ids),
                }
            )

    def cell(sel_pct: int, strategy: str) -> dict:
        return next(
            r
            for r in runs
            if r["strategy"] == strategy and r["selectivity"] == sel_pct / 100.0
        )

    # the measured crossover: the lowest swept selectivity where auto sends
    # the majority of its tasks down the post (filtered-traversal) path
    measured = None
    for sel_pct in sorted(args.selectivities):
        row = cell(sel_pct, "auto")
        if row["tasks_post"] > row["tasks_pre"]:
            measured = sel_pct / 100.0
            break
    below = [s for s in args.selectivities if s / 100.0 < CROSSOVER_SELECTIVITY]
    crossover_agrees = measured is not None and all(
        s / 100.0 < measured for s in below
    )

    auto_rows = [r for r in runs if r["strategy"] == "auto"]
    beating = sum(
        1 for r in auto_rows if r["recall_filtered"] >= r["recall_naive_postfilter"]
    )
    low_sel, high_sel = min(args.selectivities), max(args.selectivities)

    return {
        "schema": 1,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "n": args.n,
            "dim": args.dim,
            "n_queries": args.n_queries,
            "k": args.k,
            "cores": args.cores,
            "selectivities": [s / 100.0 for s in args.selectivities],
            "seed": args.seed,
        },
        "runs": runs,
        "headline": {
            "cores": args.cores,
            "k": args.k,
            "crossover_selectivity": CROSSOVER_SELECTIVITY,
            "measured_crossover": measured,
            "crossover_agrees": crossover_agrees,
            # the ISSUE's acceptance point: filtered recall must be >= the
            # naive post-filter baseline at two or more selectivity points
            "recall_points_beating_naive": beating,
            "recall_floor_met": beating >= 2,
            "min_filtered_recall": min(r["recall_filtered"] for r in auto_rows),
            "pre_evals_low_sel": cell(low_sel, "pre")["evals_pre"],
            "post_evals_high_sel": cell(high_sel, "post")["evals_post"],
        },
        "unfiltered_identical_with_metadata": unfiltered_identical,
    }


#: fields a previous run keeps when folded into the trajectory history
TRIM_FIELDS = (
    "created",
    "config",
    "headline",
    "unfiltered_identical_with_metadata",
)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description="Filtered-search selectivity benchmark")
    ap.add_argument("--n", type=int, default=4000, help="corpus size")
    ap.add_argument("--dim", type=int, default=24)
    ap.add_argument("--n-queries", type=int, default=50, dest="n_queries")
    ap.add_argument("--k", type=int, default=10)
    ap.add_argument("--cores", type=int, default=8)
    ap.add_argument(
        "--selectivities",
        type=int,
        nargs="+",
        default=[1, 5, 10, 25, 50, 90],
        help="swept matching percentages (pct=0..S-1 predicates)",
    )
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="BENCH_filter.json")
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke size (n=1500, 20 queries, 4 cores, three selectivities)",
    )
    args = ap.parse_args(argv)
    if args.smoke:
        args.n, args.n_queries = 1500, 20
        args.cores = 4
        args.selectivities = [5, 25, 90]

    report = run(args)
    report = fold_previous(report, args.out, trim_fields=TRIM_FIELDS)

    missing = missing_keys(report, REQUIRED_KEYS)
    if missing:
        print(f"ERROR: benchmark report is missing keys: {missing}", file=sys.stderr)
        return 2

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(
        f"{'sel':>5} {'strategy':>9} {'recall':>7} {'naive':>7} "
        f"{'pre/post tasks':>15} {'evals':>12} {'virtual':>10}"
    )
    for row in report["runs"]:
        print(
            f"{row['selectivity']:>5.2f} {row['strategy']:>9} "
            f"{row['recall_filtered']:>7.3f} {row['recall_naive_postfilter']:>7.3f} "
            f"{row['tasks_pre']:>7}/{row['tasks_post']:<7} "
            f"{row['evals_pre'] + row['evals_post']:>12} "
            f"{row['virtual_seconds']:>9.4f}s"
        )
    head = report["headline"]
    print(
        f"crossover: configured {head['crossover_selectivity']:.2f}, "
        f"measured {head['measured_crossover']} "
        f"({'agrees' if head['crossover_agrees'] else 'DISAGREES'})"
    )
    print(
        f"recall: filtered >= naive post-filter at "
        f"{head['recall_points_beating_naive']} selectivity points, "
        f"min filtered recall {head['min_filtered_recall']:.3f}"
    )
    print(f"wrote {args.out}")

    if not report["unfiltered_identical_with_metadata"]:
        print("ERROR: metadata attachment changed unfiltered results", file=sys.stderr)
        return 4
    if not head["recall_floor_met"]:
        print(
            "ERROR: filtered recall beats the naive baseline at "
            f"{head['recall_points_beating_naive']} < 2 selectivity points",
            file=sys.stderr,
        )
        return 3
    if not head["crossover_agrees"]:
        print(
            f"ERROR: measured crossover {head['measured_crossover']} contradicts "
            f"CROSSOVER_SELECTIVITY={CROSSOVER_SELECTIVITY}",
            file=sys.stderr,
        )
        return 5
    return 0


if __name__ == "__main__":
    sys.exit(main())
