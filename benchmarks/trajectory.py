"""Shared BENCH_*.json trajectory plumbing.

Every benchmark harness in this directory writes a JSON report at the
repo root and folds the previous report into it as ``previous`` plus a
rolling ``history`` — the recorded perf trajectory.  The mechanics
(dotted-key lookup, required-key validation, trimming a previous run to
its headline fields, reading and folding the prior file, checksumming a
result matrix) were copy-pasted between harnesses; they live here once.

A harness keeps its own ``REQUIRED_KEYS`` tuple and (where the trimmed
history entry has bespoke fields, e.g. ``bench_hnsw``) its own trim
mapping; everything mechanical comes from this module.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

import numpy as np

__all__ = [
    "fold_previous",
    "get_path",
    "load_previous",
    "missing_keys",
    "results_checksum",
    "trim_report",
]


def results_checksum(D: np.ndarray, ids: np.ndarray) -> str:
    """SHA-256 over the (D, I) result matrices — the bit-identity gate."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(D, dtype=np.float64).tobytes())
    h.update(np.ascontiguousarray(ids, dtype=np.int64).tobytes())
    return h.hexdigest()


def get_path(report: dict, dotted: str):
    """``report["a"]["b"]`` for ``"a.b"``; None when any segment is absent."""
    node = report
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def missing_keys(report: dict, required_keys) -> list[str]:
    """Names of ``required_keys`` (dotted paths) missing from ``report``."""
    return [key for key in required_keys if get_path(report, key) is None]


def trim_report(report: dict, fields) -> dict:
    """A previous run reduced to the fields the trajectory keeps.

    ``fields`` maps output name -> dotted path into the report (pass a
    plain iterable when the names equal the paths).
    """
    if not isinstance(fields, dict):
        fields = {name: name for name in fields}
    return {name: get_path(report, path) for name, path in fields.items()}


def load_previous(out_path: str) -> dict | None:
    """The previous report at ``out_path``, or None (missing/corrupt)."""
    if not os.path.exists(out_path):
        return None
    try:
        with open(out_path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"NOTE: could not read previous {out_path}: {exc}", file=sys.stderr)
        return None


def fold_previous(report: dict, out_path: str, trim_fields=None, cap: int = 20) -> dict:
    """Record the previous run (and rolling history) in the trajectory.

    ``trim_fields`` is forwarded to :func:`trim_report`; the default keeps
    the fields every harness shares (created/config/headline).
    """
    prev = load_previous(out_path)
    if prev is None:
        return report
    if trim_fields is None:
        trim_fields = ("created", "config", "headline")
    trimmed = trim_report(prev, trim_fields)
    report["history"] = (prev.get("history", []) + [trimmed])[-cap:]
    report["previous"] = trimmed
    return report
