"""Ablation — routing mode: n_probe sweep vs adaptive two-phase routing.

DESIGN.md calls out routing as a core design choice: the paper's F(q) must
balance partition coverage (recall) against fan-out (work).  This bench
sweeps the fixed-probe mode and compares against the adaptive exact-ball
mode on real indexes, printing the recall/time/fan-out frontier.
"""


from repro.core import DistributedANN, SystemConfig
from repro.datasets import load_dataset
from repro.eval import format_table, recall_at_k
from repro.hnsw import HnswParams


def test_routing_frontier(run_once):
    def experiment():
        ds = load_dataset("ANN_SIFT1B", n_points=4000, n_queries=100, k=10, seed=47)
        rows = []
        base = dict(
            n_cores=16,
            cores_per_node=8,
            k=10,
            hnsw=HnswParams(M=8, ef_construction=60, seed=47),
            seed=47,
        )
        for n_probe in (1, 2, 4, 8, 16):
            ann = DistributedANN(SystemConfig(**base, n_probe=n_probe))
            ann.fit(ds.X)
            D, I, rep = ann.query(ds.Q)
            rows.append(
                (
                    f"approx({n_probe})",
                    rep.mean_fanout,
                    rep.total_seconds,
                    recall_at_k(I, ds.gt_ids, ds.gt_dists, D),
                )
            )
        ann = DistributedANN(
            SystemConfig(**base, routing="adaptive", one_sided=False)
        )
        ann.fit(ds.X)
        D, I, rep = ann.query(ds.Q)
        rows.append(
            (
                "adaptive",
                rep.mean_fanout,
                rep.total_seconds,
                recall_at_k(I, ds.gt_ids, ds.gt_dists, D),
            )
        )
        return rows

    rows = run_once(experiment)
    print()
    print(
        format_table(
            ["routing", "mean fanout", "virtual s", "recall@10"],
            rows,
            title="Ablation — routing mode frontier (16 partitions)",
        )
    )
    by_name = {r[0]: r for r in rows}
    # recall rises monotonically with probes
    recalls = [by_name[f"approx({n})"][3] for n in (1, 2, 4, 8, 16)]
    assert all(b >= a - 0.02 for a, b in zip(recalls, recalls[1:]))
    # probing every partition reaches the local-search ceiling
    assert by_name["approx(16)"][3] >= 0.95
    # adaptive reaches near-exhaustive recall with smaller fanout than 16
    assert by_name["adaptive"][3] >= 0.95
    assert by_name["adaptive"][1] <= 16.0
