"""Open-loop serving benchmark: latency knee, admission, and the hot cache.

The scenario the serving subsystem (``repro.serving``) is about: queries no
longer arrive as one closed-loop batch but as an open-loop Poisson process
on the virtual clock.  Below capacity the ingress queue stays empty and the
arrival-to-completion p99 sits near pure service time; past the capacity
knee the queue grows without bound and p99 rises with offered load.  A
hot-query result cache (exact match on quantized query bytes) short-cuts
the repeated queries of a Zipf-skewed workload, moving the knee to the
right and cutting the tail.

Three experiment groups share one fitted system and one hot query pool:

- **rate sweep** — fixed system, rising Poisson rates; records p50/p99/p999
  arrival-to-completion latency, mean queue/service split, and makespan.
- **cache on/off** — an above-knee rate with the cache disabled vs. sized
  to the hot pool; the answers must be bit-identical (cache hits replay the
  stored rows) while p99 and makespan improve.
- **overload** — a bounded ingress queue with ``shed_oldest`` under a
  deliberately tight dispatch window; shows load shedding engaging and the
  admission ledger (admitted + shed + rejected == offered) balancing.

Also re-runs the same batch closed-loop (no arrival process) and checks the
serving answers are bit-identical — arrivals reorder *when* queries are
served, never what they answer.  Writes ``BENCH_serving.json`` at the repo
root with the same previous/history folding as the other benchmarks.

Run via ``make bench-serving`` (full) or ``--smoke`` (CI size).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from datetime import datetime, timezone

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

from bench_loadbalance import make_corpus  # noqa: E402
from trajectory import fold_previous, missing_keys, results_checksum  # noqa: E402

from repro.core import DistributedANN, SystemConfig  # noqa: E402
from repro.datasets import zipf_query_targets, zipf_queries  # noqa: E402
from repro.eval import latency_stats, serving_stats  # noqa: E402
from repro.hnsw import HnswParams  # noqa: E402

#: keys every BENCH_serving.json must provide (CI's serving-smoke checks these)
REQUIRED_KEYS = (
    "schema",
    "config",
    "runs",
    "headline.cores",
    "headline.skew",
    "headline.low_rate",
    "headline.high_rate",
    "headline.low_rate_p99_ms",
    "headline.high_rate_p99_ms",
    "headline.knee_p99_ratio",
    "headline.cache_rate",
    "headline.cache_off_p99_ms",
    "headline.cache_on_p99_ms",
    "headline.cache_p99_improvement",
    "headline.cache_makespan_improvement",
    "headline.cache_hit_rate",
    "overload.offered",
    "overload.admitted",
    "overload.shed",
    "overload.rejected",
    "serving_matches_closed_loop",
    "cache_results_identical",
    "admission_accounted",
)


def build_system(
    args: argparse.Namespace,
    arrival: str | None,
    cache_size: int = 0,
    queue_depth: int = 0,
    overload_policy: str = "block",
    dispatch_window: int = 0,
) -> DistributedANN:
    return DistributedANN(
        SystemConfig(
            n_cores=args.cores,
            cores_per_node=1,  # one worker per node: crisp per-core attribution
            k=args.k,
            n_probe=1,  # skew lands undiluted on the routed partition
            hnsw=HnswParams(M=8, ef_construction=40, seed=args.seed),
            searcher="modeled",
            modeled_search_seconds=args.task_seconds,
            modeled_sample_points=64,
            one_sided=False,  # two-sided: per-query latency on every path
            arrival=arrival,
            cache_size=cache_size,
            queue_depth=queue_depth,
            overload_policy=overload_policy,
            dispatch_window=dispatch_window,
            seed=args.seed,
        )
    )


def hot_pool_queries(ann: DistributedANN, args: argparse.Namespace) -> np.ndarray:
    """Zipf repeats over a small pool of distinct queries.

    ``zipf_queries`` jitters every draw independently, so no two queries are
    ever byte-identical and an exact cache can never hit.  A serving cache
    models *repeated* queries: draw a pool of distinct vectors once, then
    index the pool with Zipf-distributed ranks so the hot entries recur.
    """
    anchors = np.stack(
        [p.points.mean(axis=0) for _, p in sorted(ann.partitions.items()) if p.n_points]
    )
    perm = np.random.default_rng([args.seed, 0xFACE]).permutation(len(anchors))
    pool = zipf_queries(
        anchors[perm], args.pool, skew=0.0, compactness=0.02, seed=args.seed
    )
    ranks = zipf_query_targets(args.n_queries, args.pool, args.skew, seed=args.seed)
    return np.ascontiguousarray(pool[ranks])


def serving_row(label: str, arrival: str | None, rep, D, ids) -> dict:
    # raw counters come off the JSON-safe report dict; derived stats
    # (hit rate, queue/service split, percentiles) off the live report
    rd = rep.to_dict()
    row = {
        "label": label,
        "arrival": arrival,
        "makespan_s": round(rd["total_seconds"], 6),
        "results_sha256": results_checksum(D, ids),
    }
    if arrival is not None:
        s = serving_stats(rep)
        lat = latency_stats(rep.query_latencies)
        row.update(
            {
                "offered": rd["offered_queries"],
                "admitted": rd["admitted_queries"],
                "shed": rd["shed_queries"],
                "rejected": rd["rejected_queries"],
                "max_ingress_depth": rd["max_ingress_depth"],
                "cache_hits": rd["cache_hits"],
                "cache_misses": rd["cache_misses"],
                "cache_hit_rate": round(s.cache_hit_rate, 4),
                "p50_ms": round(lat.p50 * 1e3, 4),
                "p99_ms": round(lat.p99 * 1e3, 4),
                "p999_ms": round(lat.p999 * 1e3, 4),
                "mean_queue_ms": round(s.mean_queue_seconds * 1e3, 4),
                "mean_service_ms": round(s.mean_service_seconds * 1e3, 4),
            }
        )
    return row


def run(args: argparse.Namespace) -> dict:
    X = make_corpus(args.n, args.dim, args.cores, args.seed)
    ref = build_system(args, None)
    ref.fit(X)
    Q = hot_pool_queries(ref, args)

    runs = []
    accounted = True

    def query(ann):
        D, ids, rep = ann.query(Q, k=args.k)
        nonlocal accounted
        if rep.offered_queries:
            accounted &= (
                rep.admitted_queries + rep.shed_queries + rep.rejected_queries
                == rep.offered_queries
            )
        return D, ids, rep

    # golden: the same batch closed-loop (arrival process off)
    D0, I0, rep0 = query(ref)
    runs.append(serving_row("closed_loop", None, rep0, D0, I0))

    # rate sweep: open loop, no cache, unbounded ingress — the latency knee
    for rate in args.rates:
        ann = build_system(args, f"poisson:{rate}")
        ann.fit(X)
        D, ids, rep = query(ann)
        runs.append(serving_row(f"rate:{rate}", f"poisson:{rate}", rep, D, ids))

    # cache on/off at an above-knee rate: identical answers, shorter tail
    arrival = f"poisson:{args.cache_rate}"
    off = build_system(args, arrival)
    off.fit(X)
    Doff, Ioff, rep_off = query(off)
    runs.append(serving_row("cache_off", arrival, rep_off, Doff, Ioff))

    on = build_system(args, arrival, cache_size=args.cache_size)
    on.fit(X)
    Don, Ion, rep_on = query(on)
    runs.append(serving_row("cache_on", arrival, rep_on, Don, Ion))

    # overload: bounded ingress + shed_oldest under a tight dispatch window
    # (window 1 credit-blocks the head of line so the ingress queue backs up)
    over = build_system(
        args,
        f"poisson:{args.overload_rate}",
        queue_depth=args.queue_depth,
        overload_policy="shed_oldest",
        dispatch_window=1,
    )
    over.fit(X)
    Dov, Iov, rep_ov = query(over)
    runs.append(
        serving_row("overload_shed", f"poisson:{args.overload_rate}", rep_ov, Dov, Iov)
    )

    def cell(label: str) -> dict:
        return next(r for r in runs if r["label"] == label)

    low, high = min(args.rates), max(args.rates)
    low_row, high_row = cell(f"rate:{low}"), cell(f"rate:{high}")
    off_row, on_row, ov_row = cell("cache_off"), cell("cache_on"), cell("overload_shed")

    return {
        "schema": 1,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "n": args.n,
            "dim": args.dim,
            "n_queries": args.n_queries,
            "pool": args.pool,
            "k": args.k,
            "cores": args.cores,
            "skew": args.skew,
            "task_seconds": args.task_seconds,
            "rates": list(args.rates),
            "cache_rate": args.cache_rate,
            "cache_size": args.cache_size,
            "overload_rate": args.overload_rate,
            "queue_depth": args.queue_depth,
            "seed": args.seed,
        },
        "runs": runs,
        "headline": {
            "cores": args.cores,
            "skew": args.skew,
            "low_rate": low,
            "high_rate": high,
            "low_rate_p99_ms": low_row["p99_ms"],
            "high_rate_p99_ms": high_row["p99_ms"],
            # how much the tail inflates when offered load crosses capacity
            "knee_p99_ratio": round(high_row["p99_ms"] / low_row["p99_ms"], 2),
            "cache_rate": args.cache_rate,
            "cache_off_p99_ms": off_row["p99_ms"],
            "cache_on_p99_ms": on_row["p99_ms"],
            "cache_p99_improvement": round(off_row["p99_ms"] / on_row["p99_ms"], 3),
            "cache_makespan_improvement": round(
                off_row["makespan_s"] / on_row["makespan_s"], 3
            ),
            "cache_hit_rate": on_row["cache_hit_rate"],
        },
        "overload": {
            "offered": ov_row["offered"],
            "admitted": ov_row["admitted"],
            "shed": ov_row["shed"],
            "rejected": ov_row["rejected"],
            "max_ingress_depth": ov_row["max_ingress_depth"],
        },
        # arrivals reorder when queries are served, never what they answer
        "serving_matches_closed_loop": all(
            cell(f"rate:{r}")["results_sha256"] == runs[0]["results_sha256"]
            for r in args.rates
        ),
        "cache_results_identical": off_row["results_sha256"] == on_row["results_sha256"]
        == runs[0]["results_sha256"],
        "admission_accounted": accounted,
    }


#: fields a previous run keeps when folded into the trajectory history
TRIM_FIELDS = (
    "created",
    "config",
    "headline",
    "overload",
    "serving_matches_closed_loop",
    "cache_results_identical",
    "admission_accounted",
)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description="Open-loop serving benchmark")
    ap.add_argument("--n", type=int, default=4000, help="corpus size")
    ap.add_argument("--dim", type=int, default=16)
    ap.add_argument("--n-queries", type=int, default=600, dest="n_queries")
    ap.add_argument(
        "--pool",
        type=int,
        default=64,
        help="distinct hot queries; Zipf ranks index this pool",
    )
    ap.add_argument("--k", type=int, default=10)
    ap.add_argument("--cores", type=int, default=16)
    ap.add_argument(
        "--skew", type=float, default=1.2, help="Zipf exponent of the hot-pool ranks"
    )
    ap.add_argument(
        "--task-seconds",
        type=float,
        default=5e-3,
        dest="task_seconds",
        help="modeled virtual seconds per local search",
    )
    ap.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[200, 800, 3200, 12800],
        help="Poisson arrival rates (queries/s) for the knee sweep",
    )
    ap.add_argument(
        "--cache-rate",
        type=float,
        default=3200,
        dest="cache_rate",
        help="arrival rate of the cache on/off comparison",
    )
    ap.add_argument(
        "--cache-size",
        type=int,
        default=64,
        dest="cache_size",
        help="result-cache capacity of the cache-on run (>= --pool to hold it)",
    )
    ap.add_argument(
        "--overload-rate",
        type=float,
        default=12800,
        dest="overload_rate",
        help="arrival rate of the bounded-queue shedding run",
    )
    ap.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        dest="queue_depth",
        help="ingress bound of the shedding run",
    )
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="BENCH_serving.json")
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke size (n=1200, 200 queries, 8 cores, two rates)",
    )
    ap.add_argument(
        "--min-knee-ratio",
        type=float,
        default=2.0,
        dest="min_knee_ratio",
        help="exit non-zero if p99 at the top rate is not this much worse than at the bottom",
    )
    ap.add_argument(
        "--min-cache-improvement",
        type=float,
        default=1.1,
        dest="min_cache_improvement",
        help="exit non-zero if the cache's p99 improvement falls below this",
    )
    args = ap.parse_args(argv)
    if args.smoke:
        args.n, args.n_queries, args.pool = 1200, 200, 32
        args.cores = 8
        args.rates = [200, 6400]
        args.cache_rate, args.cache_size = 6400, 32
        args.overload_rate = 12800

    report = run(args)
    report = fold_previous(report, args.out, trim_fields=TRIM_FIELDS)

    missing = missing_keys(report, REQUIRED_KEYS)
    if missing:
        print(f"ERROR: benchmark report is missing keys: {missing}", file=sys.stderr)
        return 2

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(
        f"{'run':>14} {'makespan':>11} {'p50':>9} {'p99':>9} {'queue':>8} "
        f"{'hits':>5} {'shed':>5}"
    )
    for row in report["runs"]:
        if row["arrival"] is None:
            print(f"{row['label']:>14} {row['makespan_s']:>10.4f}s {'—':>9} {'—':>9}")
            continue
        print(
            f"{row['label']:>14} {row['makespan_s']:>10.4f}s "
            f"{row['p50_ms']:>7.2f}ms {row['p99_ms']:>7.2f}ms "
            f"{row['max_ingress_depth']:>8} {row.get('cache_hits', 0):>5} "
            f"{row.get('shed', 0):>5}"
        )
    head = report["headline"]
    print(
        f"knee: p99 {head['low_rate_p99_ms']:.2f}ms @ {head['low_rate']:g}/s -> "
        f"{head['high_rate_p99_ms']:.2f}ms @ {head['high_rate']:g}/s "
        f"({head['knee_p99_ratio']:.1f}x)"
    )
    print(
        f"cache @ {head['cache_rate']:g}/s, skew={head['skew']}: "
        f"p99 {head['cache_p99_improvement']:.2f}x better, "
        f"makespan {head['cache_makespan_improvement']:.2f}x better, "
        f"hit rate {head['cache_hit_rate']:.0%}"
    )
    ov = report["overload"]
    print(
        f"overload: offered {ov['offered']}, admitted {ov['admitted']}, "
        f"shed {ov['shed']}, rejected {ov['rejected']}"
    )
    if not report["serving_matches_closed_loop"]:
        print("ERROR: serving changed search results vs. closed loop", file=sys.stderr)
        return 4
    if not report["cache_results_identical"]:
        print("ERROR: cache hits changed search results", file=sys.stderr)
        return 5
    if not report["admission_accounted"]:
        print("ERROR: admission ledger does not balance", file=sys.stderr)
        return 6
    print(f"wrote {args.out}")

    if args.min_knee_ratio is not None and head["knee_p99_ratio"] < args.min_knee_ratio:
        print(
            f"ERROR: knee ratio {head['knee_p99_ratio']:.2f}x below floor "
            f"{args.min_knee_ratio}x",
            file=sys.stderr,
        )
        return 3
    if (
        args.min_cache_improvement is not None
        and head["cache_p99_improvement"] < args.min_cache_improvement
    ):
        print(
            f"ERROR: cache p99 improvement {head['cache_p99_improvement']:.2f}x "
            f"below floor {args.min_cache_improvement}x",
            file=sys.stderr,
        )
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
