"""Ablation — one-sided RMA results vs two-sided sends (§IV-C1).

The paper's motivation: the baseline's master "spends considerable time
receiving responses"; one-sided accumulation removes that serial work.
This bench measures master CPU time and total batch time under both
transports at growing batch sizes; the master-side saving must grow with
the batch.
"""


from repro.core import DistributedANN, SystemConfig
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.hnsw import HnswParams


def master_cpu(report):
    m = report.master_breakdown
    return m["compute"] + m["send"] + m["recv"] + m["poll"] + m["rma"]


def test_onesided_removes_master_receive_work(run_once):
    def experiment():
        ds = load_dataset("ANN_SIFT1B", n_points=4096, n_queries=600, k=10, seed=37)
        rows = []
        for n_q in (150, 300, 600):
            Q = ds.Q[:n_q]
            per_mode = {}
            for one_sided in (True, False):
                cfg = SystemConfig(
                    n_cores=32,
                    cores_per_node=8,
                    k=10,
                    hnsw=HnswParams(M=16, ef_construction=100),
                    searcher="modeled",
                    modeled_partition_points=10**9 // 32,
                    modeled_sample_points=16,
                    n_probe=3,
                    one_sided=one_sided,
                    seed=37,
                )
                ann = DistributedANN(cfg)
                ann.fit(ds.X)
                _, _, rep = ann.query(Q)
                per_mode[one_sided] = rep
            rows.append(
                (
                    n_q,
                    master_cpu(per_mode[True]),
                    master_cpu(per_mode[False]),
                    per_mode[True].total_seconds,
                    per_mode[False].total_seconds,
                )
            )
        return rows

    rows = run_once(experiment)
    print()
    print(
        format_table(
            [
                "queries",
                "master CPU 1-sided",
                "master CPU 2-sided",
                "total 1-sided",
                "total 2-sided",
            ],
            rows,
            title="Ablation — one-sided vs two-sided result return",
        )
    )
    for n_q, cpu1, cpu2, t1, t2 in rows:
        assert cpu1 < cpu2, f"one-sided must reduce master CPU at {n_q} queries"
    # the saving grows with batch size (it is per-result work)
    savings = [(r[2] - r[1]) for r in rows]
    assert savings[-1] > savings[0]
