"""Load-balancing benchmark: replica selectors under a Zipf-skewed workload.

The scenario the paper's §IV replication argument is about: partition
popularity follows a heavy-tailed 1/rank^s law (the hot-region workload),
every partition is replicated on r consecutive cores, and the only thing
that changes between runs is the dispatch policy (``SystemConfig.
replica_selector``).  Virtual makespans are exactly reproducible, so the
numbers below are properties of the policies, not measurement noise.

For each replication factor the harness runs every selector on the same
fitted system and query batch and records:

- the simulated makespan (``SearchReport.total_seconds``),
- the imbalance factor (max/mean observed per-core busy time),
- a SHA-256 checksum of (D, I) — selectors move tasks between replicas
  of the *same* partition, so results must be bit-identical across all
  of them (and across repeat runs of ``primary``, the golden contract).

The headline number is the makespan improvement of ``least_loaded`` over
``primary`` at the headline replication factor; the acceptance floor is
1.5x (``--min-improvement``).  Writes ``BENCH_loadbalance.json`` at the
repo root with the same previous/history trajectory folding as
``bench_hnsw.py``.

Run via ``make bench-loadbalance`` (full) or ``--smoke`` (CI size).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from datetime import datetime, timezone

import numpy as np

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

from trajectory import fold_previous, missing_keys, results_checksum  # noqa: E402

from repro.core import DistributedANN, SystemConfig  # noqa: E402
from repro.datasets import zipf_queries  # noqa: E402
from repro.hnsw import HnswParams  # noqa: E402
from repro.loadbalance import SELECTORS  # noqa: E402

#: keys every BENCH_loadbalance.json must provide (CI's loadbalance-smoke checks these)
REQUIRED_KEYS = (
    "schema",
    "config",
    "runs",
    "headline.replication",
    "headline.primary_makespan",
    "headline.least_loaded_makespan",
    "headline.improvement",
    "primary_deterministic",
    "results_identical_across_selectors",
)


def make_corpus(n: int, dim: int, n_parts: int, seed: int) -> np.ndarray:
    """Clustered corpus with ~n_parts natural clusters (routing targets)."""
    rng = np.random.default_rng([seed, 0x10AD])
    centers = rng.normal(0.0, 8.0, size=(n_parts, dim)).astype(np.float32)
    assign = rng.integers(0, n_parts, size=n)
    return (centers[assign] + rng.normal(0.0, 0.5, size=(n, dim))).astype(np.float32)


def build_system(args: argparse.Namespace, replication: int, selector: str) -> DistributedANN:
    return DistributedANN(
        SystemConfig(
            n_cores=args.cores,
            cores_per_node=1,  # one worker per node: crisp per-core attribution
            k=args.k,
            n_probe=1,  # skew lands undiluted on the routed partition
            hnsw=HnswParams(M=8, ef_construction=40, seed=args.seed),
            replication_factor=replication,
            replica_selector=selector,
            searcher="modeled",
            modeled_search_seconds=args.task_seconds,
            modeled_sample_points=64,
            seed=args.seed,
        )
    )


def skewed_queries(ann: DistributedANN, args: argparse.Namespace) -> np.ndarray:
    """Zipf workload over the fitted system's partition anchors.

    Anchor rank order is a seeded permutation of partition ids, so the hot
    partition is not structurally special (e.g. not always partition 0).
    """
    anchors = np.stack(
        [p.points.mean(axis=0) for _, p in sorted(ann.partitions.items()) if p.n_points]
    )
    perm = np.random.default_rng([args.seed, 0xFACE]).permutation(len(anchors))
    return zipf_queries(
        anchors[perm], args.n_queries, skew=args.skew, compactness=0.02, seed=args.seed
    )


def run(args: argparse.Namespace) -> dict:
    X = make_corpus(args.n, args.dim, args.cores, args.seed)

    runs = []
    checksums: dict[int, set] = {}
    for replication in args.replication:
        # fit once per replication factor; the query batch targets the
        # fitted partition layout, identical across selectors
        ref = build_system(args, replication, "primary")
        ref.fit(X)
        Q = skewed_queries(ref, args)

        for selector in SELECTORS:
            if replication == 1 and selector != "primary":
                continue  # one replica: every policy degenerates to it
            ann = build_system(args, replication, selector)
            ann.fit(X)
            D, ids, rep = ann.query(Q, k=args.k)
            checksums.setdefault(replication, set()).add(results_checksum(D, ids))
            # raw fields come off the JSON-safe report dict; derived stats
            # (imbalance) stay on the live report object
            rd = rep.to_dict()
            busy = np.asarray(rd["core_busy_seconds"], dtype=np.float64)
            runs.append(
                {
                    "replication": replication,
                    "selector": selector,
                    "makespan_s": round(rd["total_seconds"], 6),
                    "imbalance_factor": round(rep.imbalance_factor, 4),
                    "max_core_busy_s": round(float(busy.max()), 6),
                    "mean_core_busy_s": round(float(busy.mean()), 6),
                    "peak_queue_depth": round(
                        max(d for _, d in rd["queue_depth_timeline"]), 1
                    ),
                    "results_sha256": results_checksum(D, ids),
                }
            )
        # golden contract: a repeat primary run is bit-identical
        again = build_system(args, replication, "primary")
        again.fit(X)
        D2, I2, rep2 = again.query(Q, k=args.k)
        primary_row = next(
            r for r in runs if r["replication"] == replication and r["selector"] == "primary"
        )
        if (
            results_checksum(D2, I2) != primary_row["results_sha256"]
            or round(rep2.total_seconds, 6) != primary_row["makespan_s"]
        ):
            print("ERROR: primary run is not deterministic", file=sys.stderr)
            primary_deterministic = False
        else:
            primary_deterministic = True

    head_r = args.headline_replication
    head_primary = next(
        r["makespan_s"] for r in runs if r["replication"] == head_r and r["selector"] == "primary"
    )
    head_ll = next(
        r["makespan_s"]
        for r in runs
        if r["replication"] == head_r and r["selector"] == "least_loaded"
    )

    return {
        "schema": 1,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "n": args.n,
            "dim": args.dim,
            "n_queries": args.n_queries,
            "k": args.k,
            "cores": args.cores,
            "skew": args.skew,
            "task_seconds": args.task_seconds,
            "replication": list(args.replication),
            "headline_replication": head_r,
            "seed": args.seed,
        },
        "runs": runs,
        "headline": {
            "replication": head_r,
            "primary_makespan": head_primary,
            "least_loaded_makespan": head_ll,
            "improvement": round(head_primary / head_ll, 3),
        },
        "primary_deterministic": primary_deterministic,
        # selectors only move tasks between replicas of the same partition,
        # so within each replication factor every selector must agree
        "results_identical_across_selectors": all(len(s) == 1 for s in checksums.values()),
    }


#: fields a previous run keeps when folded into the trajectory history
TRIM_FIELDS = (
    "created",
    "config",
    "headline",
    "primary_deterministic",
    "results_identical_across_selectors",
)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description="Replica-selector load-balancing benchmark")
    ap.add_argument("--n", type=int, default=4000, help="corpus size")
    ap.add_argument("--dim", type=int, default=16)
    ap.add_argument("--n-queries", type=int, default=600, dest="n_queries")
    ap.add_argument("--k", type=int, default=10)
    ap.add_argument("--cores", type=int, default=16)
    ap.add_argument("--skew", type=float, default=1.3, help="Zipf exponent of the workload")
    ap.add_argument(
        "--task-seconds",
        type=float,
        default=5e-3,
        dest="task_seconds",
        help="modeled virtual seconds per local search",
    )
    ap.add_argument(
        "--replication", type=int, nargs="+", default=[1, 2, 4], help="factors to sweep"
    )
    ap.add_argument(
        "--headline-replication",
        type=int,
        default=4,
        dest="headline_replication",
        help="replication factor the headline improvement is computed at",
    )
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="BENCH_loadbalance.json")
    ap.add_argument(
        "--smoke", action="store_true", help="CI smoke size (n=1200, 200 queries)"
    )
    ap.add_argument(
        "--min-improvement",
        type=float,
        default=1.5,
        dest="min_improvement",
        help="exit non-zero if the headline improvement falls below this floor",
    )
    args = ap.parse_args(argv)
    if args.smoke:
        args.n, args.n_queries = 1200, 200

    report = run(args)
    report = fold_previous(report, args.out, trim_fields=TRIM_FIELDS)

    missing = missing_keys(report, REQUIRED_KEYS)
    if missing:
        print(f"ERROR: benchmark report is missing keys: {missing}", file=sys.stderr)
        return 2

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"{'r':>3} {'selector':<22} {'makespan':>12} {'imbalance':>10} {'peak queue':>11}")
    for row in report["runs"]:
        print(
            f"{row['replication']:>3} {row['selector']:<22} "
            f"{row['makespan_s']:>11.4f}s {row['imbalance_factor']:>10.2f} "
            f"{row['peak_queue_depth']:>11.1f}"
        )
    head = report["headline"]
    print(
        f"least_loaded vs primary at r={head['replication']}: "
        f"{head['improvement']:.2f}x makespan improvement "
        f"(skew={report['config']['skew']})"
    )
    if not report["primary_deterministic"]:
        print("ERROR: primary runs are not bit-identical", file=sys.stderr)
        return 4
    if not report["results_identical_across_selectors"]:
        print("ERROR: selectors changed search results", file=sys.stderr)
        return 5
    print(f"wrote {args.out}")

    if args.min_improvement is not None and head["improvement"] < args.min_improvement:
        print(
            f"ERROR: improvement {head['improvement']:.2f}x below floor "
            f"{args.min_improvement}x",
            file=sys.stderr,
        )
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
