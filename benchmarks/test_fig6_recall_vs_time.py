"""Figure 6 — search recall vs total query time for M ∈ {8, 16, 32, 64}.

Paper: on ANN_SIFT1B at 1024 cores, raising HNSW's M trades time (and
memory) for recall, reaching near-perfect recall at M = 64.  Here the
sweep runs with *real* HNSW indexes on the reduced-scale corpus, so the
recalls are genuine measurements, and the virtual query time comes from
the simulated cluster.
"""


from repro.core import DistributedANN, SystemConfig
from repro.datasets import load_dataset
from repro.eval import format_table, recall_at_k
from repro.hnsw import HnswParams

# The paper sweeps M in {8, 16, 32, 64} on 1B-scale partitions; graph
# quality's useful range shifts down with index size, so at this reduced
# scale the equivalent sweep is one octave lower (see EXPERIMENTS.md).
M_VALUES = [4, 8, 16, 32]


def test_fig6_recall_vs_query_time(run_once):
    def experiment():
        ds = load_dataset("ANN_SIFT1B", n_points=6000, n_queries=80, k=10, seed=31)
        rows = []
        for m in M_VALUES:
            # Two large partitions, both probed, with a small search beam:
            # the binding constraint on recall is HNSW graph quality —
            # exactly the knob Fig. 6 studies.  (Small partitions or wide
            # beams mask the M effect; so would routing misses.)
            cfg = SystemConfig(
                n_cores=2,
                cores_per_node=2,
                k=10,
                hnsw=HnswParams(M=m, ef_construction=40, seed=31),
                ef_search=10,
                n_probe=2,
                seed=31,
            )
            ann = DistributedANN(cfg)
            ann.fit(ds.X)
            D, I, rep = ann.query(ds.Q)
            recall = recall_at_k(I, ds.gt_ids, ds.gt_dists, D)
            rows.append((m, rep.total_seconds, recall))
        return rows

    rows = run_once(experiment)
    print()
    print(
        format_table(
            ["M", "total query time (virt s)", "recall@10"],
            rows,
            title="Fig. 6 — recall vs query time on SIFT analogue "
            "(paper: near-perfect recall at M=64)",
        )
    )
    recalls = {m: r for m, _, r in rows}
    times = {m: t for m, t, _ in rows}
    # recall improves substantially from the low end of the sweep and the
    # top of the sweep is near-perfect (the paper's M=64 point)
    assert recalls[M_VALUES[-1]] >= recalls[M_VALUES[0]] + 0.02
    assert recalls[M_VALUES[-1]] >= 0.95
    # larger M costs more search time (more links touched per hop)
    assert times[M_VALUES[-1]] > times[M_VALUES[0]]
