"""Table II — construction times for ANN_SIFT1B vs core count.

Paper (minutes): total 21.5 → 14.7 and HNSW 17.6 → 4.3 as cores go
256 → 8192.  The implied VP-partitioning share *grows* with P (more tree
levels, more at-scale collectives); the HNSW share shrinks (smaller
partitions).  This bench rebuilds the modeled paper-scale index at each
core count on the straggler-calibrated network model and checks those
three shape properties.
"""


from repro.core import DistributedANN, SystemConfig
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.hnsw import HnswParams
from repro.simmpi import XC40_AT_SCALE

PAPER = {  # cores: (total_min, hnsw_min)
    256: (21.5, 17.6),
    512: (20.1, 14.8),
    1024: (18.3, 12.4),
    2048: (16.5, 9.8),
    4096: (15.2, 7.8),
    8192: (14.7, 4.3),
}


def test_table2_construction_scaling(run_once):
    ds = load_dataset("ANN_SIFT1B", n_points=8192, n_queries=10, k=10, seed=3)

    def experiment():
        rows = []
        for P in sorted(PAPER):
            cfg = SystemConfig(
                n_cores=P,
                cores_per_node=24,
                hnsw=HnswParams(M=16, ef_construction=100),
                searcher="modeled",
                modeled_partition_points=max(10**9 // P, 64),
                modeled_sample_points=16,
                network=XC40_AT_SCALE,
                seed=3,
            )
            ann = DistributedANN(cfg)
            br = ann.fit(ds.X)
            rows.append(
                (
                    P,
                    br.total_seconds / 60,
                    br.hnsw_seconds / 60,
                    br.vptree_seconds / 60,
                    PAPER[P][0],
                    PAPER[P][1],
                )
            )
        return rows

    rows = run_once(experiment)
    print()
    print(
        format_table(
            [
                "cores",
                "total (min)",
                "hnsw (min)",
                "vptree (min)",
                "paper total",
                "paper hnsw",
            ],
            rows,
            title="Table II — ANN_SIFT1B construction times",
        )
    )
    totals = [r[1] for r in rows]
    hnsws = [r[2] for r in rows]
    vps = [r[3] for r in rows]
    # HNSW phase must fall monotonically with more cores
    assert all(b < a for a, b in zip(hnsws, hnsws[1:]))
    # the VP phase must grow with P (deeper tree + at-scale collectives)
    assert vps[-1] > vps[0]
    # total construction must still improve from 256 to 8192 overall
    assert totals[-1] < totals[0]
    # magnitudes must be in the paper's regime (minutes, not ms or days)
    assert 1.0 < totals[0] < 120.0
