"""Ablation — VP vs KD partitioning quality as dimension grows.

The paper's reason for VP-trees (§III-B, citing Yianilos): they prune
better in high dimensions and are metric-agnostic, while KD pruning
collapses.  This bench holds everything fixed except the partitioning
geometry and measures the exact-routing fan-out — the number of
partitions a true-radius ball intersects — as dimension grows.
"""

import numpy as np

from repro.datasets import brute_force_knn, sample_queries
from repro.eval import format_table
from repro.kdtree import KDPartitionRouter, KDTree
from repro.vptree import PartitionRouter, VPTree


def exact_fanout(router, Q, gt_d):
    fan = []
    for qi in range(len(Q)):
        fan.append(len(router.route_exact(Q[qi], float(gt_d[qi][-1]) * (1 + 1e-9))))
    return float(np.mean(fan))


def test_vp_prunes_better_in_high_dim(run_once):
    dims = [4, 16, 64, 256]

    def experiment():
        rows = []
        rng = np.random.default_rng(53)
        for dim in dims:
            centers = rng.normal(0, 10, size=(8, dim))
            X = np.concatenate(
                [c + rng.normal(0, 1.0, size=(256, dim)) for c in centers]
            ).astype(np.float32)
            Q = sample_queries(X, 40, noise_scale=0.1, seed=dim)
            gt_d, _ = brute_force_knn(X, Q, 10)
            vp = PartitionRouter.from_vptree(VPTree(X, leaf_size=64, seed=1))
            kd = KDPartitionRouter.from_kdtree(KDTree(X, leaf_size=64))
            n_parts = vp.n_partitions
            rows.append(
                (dim, n_parts, exact_fanout(vp, Q, gt_d), exact_fanout(kd, Q, gt_d))
            )
        return rows

    rows = run_once(experiment)
    print()
    print(
        format_table(
            ["dim", "partitions", "VP exact fanout", "KD exact fanout"],
            rows,
            title="Ablation — exact-routing fanout vs dimension "
            "(lower = better pruning)",
        )
    )
    # in high dimension VP must visit no more partitions than KD
    hi = rows[-1]
    assert hi[2] <= hi[3] + 1e-9
    # and KD fan-out must have degraded substantially vs low dim
    kd_low, kd_hi = rows[0][3], rows[-1][3]
    assert kd_hi > 1.5 * kd_low
