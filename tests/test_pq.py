"""Unit tests for product quantization and the IVF-PQ index."""

import numpy as np
import pytest

from repro.datasets import brute_force_knn, sample_queries, sift_like
from repro.pq import IVFPQIndex, ProductQuantizer


@pytest.fixture(scope="module")
def corpus():
    X = sift_like(1200, dim=32, seed=2)
    Q = sample_queries(X, 25, noise_scale=0.05, seed=3)
    gt_d, gt_i = brute_force_knn(X, Q, 5)
    return X, Q, gt_d, gt_i


class TestProductQuantizer:
    def test_fit_encode_shapes(self, corpus):
        X, *_ = corpus
        pq = ProductQuantizer(n_subspaces=4, n_centroids=32, seed=1).fit(X)
        codes = pq.encode(X)
        assert codes.shape == (len(X), 4) and codes.dtype == np.uint8
        assert codes.max() < 32

    def test_decode_approximates_input(self, corpus):
        X, *_ = corpus
        pq = ProductQuantizer(n_subspaces=8, n_centroids=64, seed=1).fit(X)
        rec = pq.decode(pq.encode(X))
        rel_err = np.linalg.norm(X - rec) / np.linalg.norm(X)
        assert rel_err < 0.5

    def test_more_subspaces_less_error(self, corpus):
        X, *_ = corpus
        e2 = ProductQuantizer(2, 32, seed=1).fit(X).quantization_error(X)
        e8 = ProductQuantizer(8, 32, seed=1).fit(X).quantization_error(X)
        assert e8 < e2

    def test_adc_close_to_true_distance(self, corpus):
        X, Q, *_ = corpus
        pq = ProductQuantizer(8, 64, seed=1).fit(X)
        codes = pq.encode(X)
        est = pq.adc_distances(Q[0], codes)
        true = ((X.astype(np.float64) - Q[0].astype(np.float64)) ** 2).sum(1)
        # correlation must be strong even though values are biased
        corr = np.corrcoef(est, true)[0, 1]
        assert corr > 0.9

    def test_compression_ratio(self, corpus):
        X, *_ = corpus
        pq = ProductQuantizer(4, 64, seed=1).fit(X)
        assert pq.compression_ratio() == (32 * 4) / 4
        assert pq.bits_per_vector == 32

    def test_validation_errors(self, corpus):
        X, *_ = corpus
        with pytest.raises(ValueError, match="divisible"):
            ProductQuantizer(n_subspaces=5).fit(X)
        with pytest.raises(ValueError, match="<= 256"):
            ProductQuantizer(n_centroids=512)
        with pytest.raises(RuntimeError, match="fit"):
            ProductQuantizer().encode(X)


class TestIVFPQ:
    def test_search_recall_reasonable(self, corpus):
        X, Q, gt_d, gt_i = corpus
        idx = IVFPQIndex(n_cells=16, n_subspaces=8, n_centroids=64, seed=4, n_probe=8).fit(X)
        hits = 0
        for qi in range(len(Q)):
            _, ids = idx.knn_search(Q[qi], 5)
            hits += len(set(ids) & set(gt_i[qi]))
        assert hits / (len(Q) * 5) >= 0.5  # compressed: lossy but useful

    def test_recall_plateaus_below_perfect(self, corpus):
        """The paper's §V-F claim: compression caps recall below 1.0 even
        with exhaustive probing — the quantization error floors it."""
        X, Q, gt_d, gt_i = corpus
        # n_probe=8 probes every cell
        idx = IVFPQIndex(n_cells=8, n_subspaces=4, n_centroids=16, seed=4, n_probe=8).fit(X)
        hits = 0
        for qi in range(len(Q)):
            _, ids = idx.knn_search(Q[qi], 5)
            hits += len(set(ids) & set(gt_i[qi]))
        recall_exhaustive = hits / (len(Q) * 5)
        assert recall_exhaustive < 0.999

    def test_rerank_recovers_recall(self, corpus):
        X, Q, gt_d, gt_i = corpus

        def recall(rerank):
            idx = IVFPQIndex(
                n_cells=8, n_subspaces=4, n_centroids=16, keep_vectors=True,
                seed=4, n_probe=8, rerank=rerank,
            ).fit(X)
            hits = 0
            for qi in range(len(Q)):
                _, ids = idx.knn_search(Q[qi], 5)
                hits += len(set(ids) & set(gt_i[qi]))
            return hits / (len(Q) * 5)

        assert recall(rerank=50) > recall(rerank=0)

    def test_more_probes_never_hurt(self, corpus):
        X, Q, gt_d, gt_i = corpus

        def recall(n_probe):
            idx = IVFPQIndex(
                n_cells=16, n_subspaces=8, n_centroids=64, seed=4, n_probe=n_probe
            ).fit(X)
            hits = 0
            for qi in range(len(Q)):
                _, ids = idx.knn_search(Q[qi], 5)
                hits += len(set(ids) & set(gt_i[qi]))
            return hits

        assert recall(16) >= recall(1)

    def test_external_ids(self, corpus):
        X, *_ = corpus
        ids = np.arange(len(X)) + 7000
        idx = IVFPQIndex(n_cells=8, n_subspaces=4, n_centroids=16, seed=4, n_probe=8).fit(X, ids)
        _, res = idx.knn_search(X[0], 3)
        assert all(r >= 7000 for r in res)

    def test_rerank_without_vectors_raises(self, corpus):
        X, *_ = corpus
        idx = IVFPQIndex(n_cells=8, n_subspaces=4, n_centroids=16, seed=4, rerank=10).fit(X)
        with pytest.raises(ValueError, match="keep_vectors"):
            idx.knn_search(X[0], 3)

    def test_per_call_knobs_removed(self, corpus):
        """The deprecated per-call n_probe/rerank shim is gone: the knobs
        are constructor-only (the uniform Searcher surface), and passing
        them per call is a TypeError."""
        X, *_ = corpus
        idx = IVFPQIndex(n_cells=8, n_subspaces=4, n_centroids=16, seed=4, n_probe=1).fit(X)
        with pytest.raises(TypeError):
            idx.knn_search(X[0], 3, n_probe=8)
        with pytest.raises(TypeError):
            idx.knn_search(X[0], 3, rerank=5)
        wide = IVFPQIndex(n_cells=8, n_subspaces=4, n_centroids=16, seed=4, n_probe=8).fit(X)
        d_new, i_new = wide.knn_search(X[0], 3)
        assert len(i_new) == 3

    def test_len(self, corpus):
        X, *_ = corpus
        idx = IVFPQIndex(n_cells=8, n_subspaces=4, n_centroids=16, seed=4).fit(X)
        assert len(idx) == len(X)
