"""Credit-based flow-controlled dispatch (``repro.core.coordinator``).

``SystemConfig.dispatch_window`` caps tasks in flight per core: dispatch
charges a credit, a returned result (or one-sided credit ack) releases it,
and a dispatch whose target workgroup is out of credits blocks — consuming
in-flight results — until a credit comes home.  The contract
(docs/pipelining.md): window 0 is bit-identical to the eager dispatcher,
any finite window returns bit-identical results in every mode, in-flight
tasks never exceed ``window * n_cores``, and every charged credit is
reclaimed — including by failover when the worker holding it crashes.

These tests pin that contract, the config guard rails, the shared
timeout-derivation helpers, and the LoadTracker timeline downsampling.
"""

import hashlib

import numpy as np
import pytest

from repro.core import DistributedANN, SystemConfig
from repro.faults import FaultPolicy, FaultSpec, RankCrash
from repro.faults.spec import FaultPolicy as _FaultPolicy
from repro.hnsw import HnswParams
from repro.loadbalance import LoadTracker, derive_drain_timeout, derive_task_timeout
from repro.simmpi.errors import SimConfigError
from repro.simmpi.network import NetworkModel

HNSW = HnswParams(M=8, ef_construction=40)


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(600, 16)).astype(np.float32)
    Q = rng.normal(size=(24, 16)).astype(np.float32)
    return X, Q


def _run(corpus, **kw):
    X, Q = corpus
    cfg = SystemConfig(
        n_cores=8, cores_per_node=4, k=5, hnsw=HNSW, n_probe=3, seed=0, **kw
    )
    ann = DistributedANN(cfg)
    ann.fit(X)
    return ann.query(Q)


def _digest(D, I):
    return hashlib.sha256(D.tobytes() + I.tobytes()).hexdigest()[:16]


class TestEagerDegeneracy:
    """Window 0 *is* the pre-pipelining master: same frozen digest and
    makespan as the test_core_batching goldens."""

    def test_window_zero_matches_golden_digest(self, corpus):
        D, I, rep = _run(corpus, one_sided=True, dispatch_window=0)
        assert _digest(D, I) == "1f3ab48ae0dc047f"
        assert rep.total_seconds == 4.781760000000001e-05
        assert rep.tasks == 72 and rep.task_messages == 72

    def test_window_zero_report_has_no_flow_control_activity(self, corpus):
        _, _, rep = _run(corpus, one_sided=False, dispatch_window=0)
        assert rep.max_outstanding_tasks == 0
        assert rep.credit_stall_seconds == 0.0
        assert rep.credits_leaked == 0


class TestWindowedEquivalence:
    """A finite window reorders dispatch timing, never answers."""

    @pytest.mark.parametrize("one_sided", [True, False])
    @pytest.mark.parametrize("window", [1, 2, 4])
    def test_results_identical_to_eager(self, corpus, one_sided, window):
        D0, I0, rep0 = _run(
            corpus, one_sided=one_sided, replication_factor=2, dispatch_window=0
        )
        D1, I1, rep1 = _run(
            corpus, one_sided=one_sided, replication_factor=2, dispatch_window=window
        )
        np.testing.assert_array_equal(I0, I1)
        np.testing.assert_array_equal(D0, D1)
        assert rep1.tasks == rep0.tasks
        assert rep1.credits_leaked == 0
        assert 0 < rep1.max_outstanding_tasks <= window * 8

    def test_adaptive_routing_with_window(self, corpus):
        base = dict(one_sided=False, routing="adaptive")
        D0, I0, _ = _run(corpus, dispatch_window=0, **base)
        D1, I1, rep = _run(corpus, dispatch_window=2, **base)
        np.testing.assert_array_equal(I0, I1)
        np.testing.assert_array_equal(D0, D1)
        assert rep.credits_leaked == 0
        assert 0 < rep.max_outstanding_tasks <= 2 * 8

    def test_batched_dispatch_with_window(self, corpus):
        """A batch charges batch_size credits against one core."""
        D0, I0, rep0 = _run(corpus, one_sided=False, batch_size=4, dispatch_window=0)
        D1, I1, rep1 = _run(corpus, one_sided=False, batch_size=4, dispatch_window=4)
        np.testing.assert_array_equal(I0, I1)
        np.testing.assert_array_equal(D0, D1)
        assert rep1.task_messages == rep0.task_messages
        assert rep1.credits_leaked == 0

    def test_selectors_compose_with_window(self, corpus):
        D0, I0, _ = _run(corpus, replication_factor=2, dispatch_window=0)
        D1, I1, rep = _run(
            corpus,
            replication_factor=2,
            dispatch_window=2,
            replica_selector="least_loaded",
        )
        np.testing.assert_array_equal(I0, I1)
        np.testing.assert_array_equal(D0, D1)
        assert rep.credits_leaked == 0

    def test_tight_window_stalls_the_dispatcher(self, corpus):
        """W=1 with fan-out 3 must block dispatch at least once, and the
        stall time is accounted."""
        _, _, rep = _run(corpus, one_sided=False, dispatch_window=1)
        assert rep.credit_stall_seconds > 0.0
        assert rep.max_outstanding_tasks <= 8


class TestConfigValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(SimConfigError, match="dispatch_window"):
            SystemConfig(n_cores=4, cores_per_node=2, dispatch_window=-1)

    def test_window_requires_master_strategy(self):
        with pytest.raises(SimConfigError, match="owner_strategy='master'"):
            SystemConfig(
                n_cores=4, cores_per_node=2, dispatch_window=2, owner_strategy="multiple"
            )

    def test_batch_must_fit_window(self):
        with pytest.raises(SimConfigError, match="batch_size"):
            SystemConfig(n_cores=4, cores_per_node=2, batch_size=4, dispatch_window=2)

    def test_batch_equal_to_window_allowed(self):
        cfg = SystemConfig(n_cores=4, cores_per_node=2, batch_size=4, dispatch_window=4)
        assert cfg.dispatch_window == 4


class TestFaultTolerantWindow:
    """The fault harness and flow control share one credit ledger."""

    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((600, 12)).astype(np.float32)
        Q = rng.standard_normal((16, 12)).astype(np.float32)
        return X, Q

    def _run(self, data, **kw):
        X, Q = data
        cfg = SystemConfig(
            **{
                "n_cores": 4,
                "cores_per_node": 1,  # workgroups span nodes, so failover works
                "k": 5,
                "n_probe": 2,
                "replication_factor": 2,
                "one_sided": False,
                **kw,
            }
        )
        ann = DistributedANN(cfg)
        ann.fit(X)
        return ann.query(Q)

    @pytest.fixture(scope="class")
    def golden(self, data):
        return self._run(data)

    def test_fault_free_ft_window_matches_golden(self, data, golden):
        D0, I0, _ = golden
        D1, I1, rep = self._run(data, fault_policy=FaultPolicy(), dispatch_window=2)
        np.testing.assert_array_equal(I0, I1)
        np.testing.assert_array_equal(D0, D1)
        assert rep.retries == 0 and rep.failovers == 0
        assert rep.credits_leaked == 0
        assert 0 < rep.max_outstanding_tasks <= 2 * 4

    def test_crashed_worker_credits_reclaimed_by_failover(self, data, golden):
        """A rank crash while tasks are charged against its core must not
        leak the credits: failover releases them, re-charges the surviving
        replica, and the batch completes bit-identical to the golden run."""
        D0, I0, rep0 = golden
        t_crash = rep0.total_seconds * 0.3  # mid-batch: credits are in flight
        spec = FaultSpec(crashes=(RankCrash(node=1, at=t_crash),))
        D, I, rep = self._run(data, fault_spec=spec, dispatch_window=1)
        np.testing.assert_array_equal(I0, I)
        np.testing.assert_array_equal(D0, D)
        assert rep.failovers > 0  # the crash actually hit in-flight work
        assert np.all(rep.completeness == 1.0)
        assert rep.credits_leaked == 0
        assert rep.failed_tasks == 0

    def test_crash_without_replica_still_reclaims_credits(self, data):
        """Even abandoned tasks must hand their credits back."""
        _, _, rep0 = self._run(data)
        spec = FaultSpec(crashes=(RankCrash(node=1, at=rep0.total_seconds * 0.3),))
        _, _, rep = self._run(data, replication_factor=1, fault_spec=spec, dispatch_window=1)
        assert rep.failed_tasks > 0
        assert rep.credits_leaked == 0


class TestTimeoutDerivation:
    """One shared helper derives every fault-tolerance deadline; these pin
    the pre-refactor values so the dedup changed nothing."""

    NET = NetworkModel()  # rtt = 2 * (1.3e-6 + 0.3e-6) = 3.2e-6

    def test_task_timeout_pinned(self):
        p = _FaultPolicy()
        assert derive_task_timeout(p, 2e-3, self.NET) == pytest.approx(0.10016)
        assert derive_task_timeout(p, 0.0, self.NET) == pytest.approx(1.6e-4)

    def test_min_timeout_floor(self):
        p = _FaultPolicy(timeout_multiplier=1.0, min_timeout=0.5)
        assert derive_task_timeout(p, 1e-6, self.NET) == 0.5

    def test_explicit_task_timeout_wins(self):
        p = _FaultPolicy(task_timeout=7.5)
        assert derive_task_timeout(p, 100.0, self.NET) == 7.5

    def test_drain_timeout_pinned(self):
        p = _FaultPolicy()
        base = derive_task_timeout(p, 2e-3, self.NET)
        assert derive_drain_timeout(p, base, self.NET) == pytest.approx(0.10016)
        # floor: four round trips when the task deadline is tiny
        assert derive_drain_timeout(p, 1e-9, self.NET) == pytest.approx(1.28e-5)

    def test_explicit_drain_timeout_wins(self):
        p = _FaultPolicy(drain_timeout=3.0)
        assert derive_drain_timeout(p, 99.0, self.NET) == 3.0

    def test_ft_master_uses_the_shared_helper(self, corpus):
        """An explicit task_timeout must reach the dispatcher unchanged —
        a tiny one forces retries that the derived timeout never would."""
        X, Q = corpus
        cfg = SystemConfig(
            n_cores=4, cores_per_node=2, k=5, hnsw=HNSW, n_probe=2, seed=0,
            one_sided=False,
            fault_policy=FaultPolicy(task_timeout=1e-9, max_attempts=8),
        )
        ann = DistributedANN(cfg)
        ann.fit(X)
        _, _, rep = ann.query(Q)
        assert rep.retries > 0


class TestTimelineDownsampling:
    """The queue-depth timeline is bounded: at the sample cap the tracker
    halves its history and doubles its sampling stride."""

    def test_sample_count_is_bounded(self):
        t = LoadTracker(1, task_cost_hint=1.0, max_timeline_samples=8)
        for i in range(1000):
            t.record_dispatch(0, now=float(i))
        tl = t.timeline()
        assert len(tl) <= 8
        assert np.all(np.diff(tl[:, 0]) > 0)

    def test_downsampled_timeline_spans_the_run(self):
        t = LoadTracker(1, task_cost_hint=1.0, max_timeline_samples=8)
        for i in range(100):
            t.record_dispatch(0, now=float(i))
        tl = t.timeline()
        assert tl[0, 0] < 20.0  # early history survives decimation
        assert tl[-1, 0] >= 80.0  # recent history is still sampled

    def test_small_runs_keep_every_sample(self):
        t = LoadTracker(1, task_cost_hint=1.0)  # default cap 4096
        for i in range(600):
            t.record_dispatch(0, now=float(i))
        assert len(t.timeline()) == 600

    def test_uncapped_tracker_records_everything(self):
        t = LoadTracker(1, task_cost_hint=1.0, max_timeline_samples=None)
        for i in range(5000):
            t.record_dispatch(0, now=float(i))
        assert len(t.timeline()) == 5000

    def test_cap_must_be_at_least_two(self):
        with pytest.raises(SimConfigError, match="max_timeline_samples"):
            LoadTracker(1, 1.0, max_timeline_samples=1)

    def test_report_timeline_stays_bounded_end_to_end(self, corpus):
        X, Q = corpus
        cfg = SystemConfig(
            n_cores=8, cores_per_node=4, k=5, hnsw=HNSW, n_probe=3, seed=0
        )
        ann = DistributedANN(cfg)
        ann.fit(X)
        _, _, rep = ann.query(Q)
        assert rep.queue_depth_timeline is not None
        assert len(rep.queue_depth_timeline) <= 4096
