"""End-to-end fault tolerance: crash + failover through the full system.

The acceptance scenario for the fault subsystem: on a 4-node cluster
(one core per node, so workgroups span nodes), a single rank crash mid-run

- with replication r=2 is fully masked — every query completes with full
  results via failover to the surviving replica, bit-identical to the
  fault-free golden run;
- with r=1 yields flagged partial results (completeness < 1), never a
  hang or an unhandled exception, with the retry/failover activity
  visible in the span trace.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.engine import DistributedANN
from repro.eval import availability_stats, degraded_recall
from repro.faults import FaultPolicy, FaultSpec, LinkFault, RankCrash, SlowNode
from repro.simmpi.errors import SimConfigError


def make_data(n=600, dim=12, n_queries=16, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, dim)).astype(np.float32)
    Q = rng.standard_normal((n_queries, dim)).astype(np.float32)
    return X, Q


def run(X, Q, replication, fault_spec=None, fault_policy=None, **overrides):
    cfg = SystemConfig(
        n_cores=4,
        cores_per_node=1,  # workgroups must span nodes for failover
        k=5,
        n_probe=2,
        replication_factor=replication,
        one_sided=False,
        fault_spec=fault_spec,
        fault_policy=fault_policy,
        **overrides,
    )
    ann = DistributedANN(cfg)
    ann.fit(X)
    return ann.query(Q)


@pytest.fixture(scope="module")
def data():
    return make_data()


@pytest.fixture(scope="module")
def golden(data):
    X, Q = data
    return run(X, Q, replication=2)


class TestFaultFree:
    def test_ft_dispatcher_matches_plain_dispatch(self, data, golden):
        """With no faults injected the FT master must be a no-op wrapper."""
        X, Q = data
        D0, I0, rep0 = golden
        D1, I1, rep1 = run(X, Q, replication=2, fault_policy=FaultPolicy())
        assert np.array_equal(I0, I1)
        assert np.array_equal(D0, D1)
        assert rep1.retries == 0 and rep1.failovers == 0 and rep1.failed_tasks == 0
        assert rep1.availability == 1.0
        assert np.all(rep1.completeness == 1.0)

    def test_latencies_finite(self, data):
        X, Q = data
        _, _, rep = run(X, Q, replication=2, fault_policy=FaultPolicy())
        assert rep.query_latencies is not None
        assert np.all(np.isfinite(rep.query_latencies))


class TestCrashWithReplication:
    @pytest.fixture(scope="class")
    def crashed(self, data, golden):
        X, Q = data
        t_crash = golden[2].total_seconds * 0.3  # mid-batch
        spec = FaultSpec(crashes=(RankCrash(node=1, at=t_crash),))
        return run(X, Q, replication=2, fault_spec=spec)

    def test_results_identical_to_golden(self, golden, crashed):
        _, I0, _ = golden
        _, I2, _ = crashed
        assert np.array_equal(I0, I2)

    def test_all_queries_complete(self, crashed):
        rep = crashed[2]
        assert rep.availability == 1.0
        assert rep.failed_tasks == 0
        assert np.all(rep.completeness == 1.0)

    def test_failover_happened_and_is_traced(self, crashed):
        rep = crashed[2]
        assert rep.failovers > 0
        assert 1 in rep.suspected_dead_cores
        assert rep.phase_breakdown.get("failover", 0.0) > 0.0
        assert any(e.kind == "crash" for e in rep.fault_events)
        assert len(rep.crashed_pids) > 0

    def test_latencies_finite_under_crash(self, crashed):
        rep = crashed[2]
        assert np.all(np.isfinite(rep.query_latencies))


class TestCrashWithoutReplication:
    @pytest.fixture(scope="class")
    def crashed(self, data, golden):
        X, Q = data
        t_crash = golden[2].total_seconds * 0.3
        spec = FaultSpec(crashes=(RankCrash(node=1, at=t_crash),))
        return run(X, Q, replication=1, fault_spec=spec)

    def test_degrades_instead_of_hanging(self, crashed):
        rep = crashed[2]
        assert rep.failed_tasks > 0
        assert rep.availability < 1.0
        assert np.all(rep.completeness >= 0.0)
        assert np.any(rep.completeness < 1.0)

    def test_unaffected_queries_still_complete(self, crashed):
        rep = crashed[2]
        assert np.any(rep.completeness == 1.0)

    def test_retries_traced(self, crashed):
        rep = crashed[2]
        assert rep.retries > 0  # r=1: no replica to fail over to
        assert rep.phase_breakdown.get("retry", 0.0) > 0.0

    def test_latencies_finite_even_when_degraded(self, crashed):
        rep = crashed[2]
        assert np.all(np.isfinite(rep.query_latencies))


class TestOtherFaultKinds:
    def test_slow_node_is_absorbed(self, data, golden):
        """A straggler stretches time but must not change the answers."""
        X, Q = data
        spec = FaultSpec(slow_nodes=(SlowNode(node=2, factor=50.0),))
        D, I, rep = run(X, Q, replication=2, fault_spec=spec)
        assert np.array_equal(I, golden[1])
        assert rep.availability == 1.0

    def test_lossy_link_recovered_by_retries(self, data, golden):
        X, Q = data
        spec = FaultSpec(links=(LinkFault(drop_prob=0.15),), seed=5)
        # a 15% loss rate needs a deeper retry budget than the default 4
        D, I, rep = run(
            X, Q, replication=2, fault_spec=spec, fault_policy=FaultPolicy(max_attempts=8)
        )
        assert rep.availability == 1.0
        assert np.array_equal(I, golden[1])
        assert rep.retries + rep.failovers > 0

    def test_duplicating_link_deduped(self, data, golden):
        X, Q = data
        spec = FaultSpec(links=(LinkFault(dup_prob=1.0),))
        D, I, rep = run(X, Q, replication=2, fault_spec=spec)
        assert np.array_equal(I, golden[1])
        assert rep.duplicate_results > 0


class TestConfigValidation:
    def test_faults_require_two_sided(self):
        with pytest.raises(SimConfigError, match="two-sided"):
            SystemConfig(one_sided=True, fault_policy=FaultPolicy())

    def test_faults_require_master_strategy(self):
        with pytest.raises(SimConfigError, match="master"):
            SystemConfig(
                one_sided=False, owner_strategy="multiple", fault_policy=FaultPolicy()
            )

    def test_faults_require_approx_routing(self):
        with pytest.raises(SimConfigError, match="approx"):
            SystemConfig(one_sided=False, routing="adaptive", fault_policy=FaultPolicy())


class TestAvailabilityMetrics:
    def test_stats_without_completeness(self):
        s = availability_stats(None, 10)
        assert s.availability == 1.0 and s.n_degraded == 0

    def test_stats_with_degradation(self):
        c = np.array([1.0, 0.5, 1.0, 0.0])
        s = availability_stats(c, 4)
        assert s.n_complete == 2 and s.n_degraded == 2
        assert s.availability == pytest.approx(0.5)
        assert s.mean_completeness == pytest.approx(0.625)
        assert s.min_completeness == 0.0

    def test_stats_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            availability_stats(np.ones(3), 4)

    def test_degraded_recall_split(self):
        I = np.array([[0, 1], [2, 3], [4, 5]])
        gt = np.array([[0, 1], [2, 9], [8, 9]])
        c = np.array([1.0, 1.0, 0.5])
        split = degraded_recall(I, gt, c)
        assert split["complete"] == pytest.approx(0.75)  # (1.0 + 0.5) / 2
        assert split["degraded"] == pytest.approx(0.0)
        assert split["overall"] == pytest.approx(0.5)

    def test_degraded_recall_no_degraded_slice_is_nan(self):
        I = np.array([[0, 1]])
        gt = np.array([[0, 1]])
        split = degraded_recall(I, gt, None)
        assert np.isnan(split["degraded"]) and split["overall"] == 1.0
