"""Report invariants across all three query modes, and the golden
equivalence test protecting the ClusterRuntime refactor.

Every dispatch strategy must emit the same report shape: breakdown dicts
with exactly the {compute, send, recv, wait, poll, rma} keys, a
comm_fraction in [0, 1], per-query latencies only where they are
observable (two-sided master-worker), and a phase breakdown over the
uniform span vocabulary.  And for a fixed seed, (D, I) must be identical
across modes and runs, with virtual makespans reproduced exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DistributedANN, SystemConfig
from repro.runtime import (
    ClusterRuntime,
    MasterWorkerStrategy,
    MultipleOwnerStrategy,
    SearchReport,
    strategy_for,
)
from repro.simmpi.trace import PHASES

BREAKDOWN_KEYS = {"compute", "send", "recv", "wait", "poll", "rma"}

MODES = {
    "two_sided": dict(one_sided=False, owner_strategy="master"),
    "one_sided": dict(one_sided=True, owner_strategy="master"),
    "multiple_owner": dict(one_sided=False, owner_strategy="multiple"),
}


def _dataset(seed: int = 7, n: int = 400, dim: int = 12):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, dim)).astype("float32")
    Q = rng.normal(size=(12, dim)).astype("float32")
    return X, Q


def _run_mode(mode_kwargs, X, Q, k=5, seed=3):
    cfg = SystemConfig(n_cores=4, cores_per_node=2, seed=seed, **mode_kwargs)
    ann = DistributedANN(cfg)
    ann.fit(X)
    return ann.query(Q, k=k)


@pytest.fixture(scope="module")
def mode_runs():
    X, Q = _dataset()
    return {name: _run_mode(kwargs, X, Q) for name, kwargs in MODES.items()}


class TestReportInvariants:
    def test_comm_fraction_in_unit_interval(self, mode_runs):
        for name, (_, _, rep) in mode_runs.items():
            assert 0.0 <= rep.comm_fraction <= 1.0, name

    def test_breakdowns_have_exactly_the_standard_keys(self, mode_runs):
        for name, (_, _, rep) in mode_runs.items():
            assert set(rep.worker_breakdown) == BREAKDOWN_KEYS, name
            assert set(rep.master_breakdown) == BREAKDOWN_KEYS, name

    def test_query_latencies_present_iff_two_sided_master_worker(self, mode_runs):
        for name, (_, _, rep) in mode_runs.items():
            if name == "two_sided":
                assert rep.query_latencies is not None
                assert len(rep.query_latencies) == rep.n_queries
                assert np.all(np.isfinite(rep.query_latencies))
            else:
                assert rep.query_latencies is None, name

    def test_task_accounting_is_consistent(self, mode_runs):
        for name, (_, _, rep) in mode_runs.items():
            assert rep.dispatch_counts is not None, name
            assert rep.tasks == int(rep.dispatch_counts.sum()), name
            assert rep.mean_fanout > 0, name
            assert rep.throughput > 0, name

    def test_phase_breakdown_covers_standard_phases(self, mode_runs):
        for name, (_, _, rep) in mode_runs.items():
            assert set(PHASES) <= set(rep.phase_breakdown), name
            assert all(v >= 0.0 for v in rep.phase_breakdown.values()), name
            # every mode routes, searches, and reduces
            assert rep.phase_breakdown["route"] > 0, name
            assert rep.phase_breakdown["search"] > 0, name
            assert rep.phase_breakdown["reduce"] > 0, name


class TestGoldenEquivalence:
    """The refactor-protection contract: fixed seed => fixed answers/times."""

    def test_results_identical_across_modes(self, mode_runs):
        (D0, I0, _) = mode_runs["two_sided"]
        for name in ("one_sided", "multiple_owner"):
            D, I, _ = mode_runs[name]
            np.testing.assert_array_equal(I0, I, err_msg=name)
            np.testing.assert_allclose(D0, D, err_msg=name)

    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_repeat_run_reproduces_results_and_makespan(self, mode):
        X, Q = _dataset()
        D1, I1, rep1 = _run_mode(MODES[mode], X, Q)
        D2, I2, rep2 = _run_mode(MODES[mode], X, Q)
        np.testing.assert_array_equal(I1, I2)
        np.testing.assert_array_equal(D1, D2)
        assert rep1.total_seconds == rep2.total_seconds
        assert rep1.n_events == rep2.n_events
        assert rep1.worker_breakdown == rep2.worker_breakdown
        assert rep1.master_breakdown == rep2.master_breakdown
        assert rep1.phase_breakdown == rep2.phase_breakdown

    def test_facade_and_runtime_entrypoints_agree(self):
        """DistributedANN.query and a hand-built ClusterRuntime are the
        same code path — same results, same virtual makespan."""
        X, Q = _dataset()
        cfg = SystemConfig(n_cores=4, cores_per_node=2, one_sided=False, seed=3)
        ann = DistributedANN(cfg)
        ann.fit(X)
        D1, I1, rep1 = ann.query(Q, k=5)
        build = ann._build
        D2, I2, rep2 = ClusterRuntime(cfg).run_search(
            MasterWorkerStrategy(),
            build.router,
            build.workgroups,
            build.node_stores,
            ann._make_searcher(),
            Q,
            5,
        )
        np.testing.assert_array_equal(I1, I2)
        np.testing.assert_array_equal(D1, D2)
        assert rep1.total_seconds == rep2.total_seconds


class TestStrategySelection:
    def test_strategy_for_config(self):
        assert isinstance(strategy_for(SystemConfig()), MasterWorkerStrategy)
        assert isinstance(
            strategy_for(SystemConfig(owner_strategy="multiple")), MultipleOwnerStrategy
        )


class TestSearchReportDefaults:
    def test_throughput_zero_for_zero_makespan(self):
        rep = SearchReport(total_seconds=0.0, n_queries=5, tasks=0)
        assert rep.throughput == 0.0

    def test_dispatch_counts_defaults_to_none(self):
        rep = SearchReport(total_seconds=1.0, n_queries=5, tasks=0)
        assert rep.dispatch_counts is None

    def test_search_report_importable_from_core(self):
        from repro.core import SearchReport as CoreSearchReport

        assert CoreSearchReport is SearchReport

    def test_load_metrics_default_to_none(self):
        rep = SearchReport(total_seconds=1.0, n_queries=5, tasks=0)
        assert rep.core_busy_seconds is None
        assert rep.queue_depth_timeline is None
        assert rep.imbalance_factor == 1.0  # no data -> perfectly balanced

    def test_imbalance_factor_is_max_over_mean(self):
        rep = SearchReport(
            total_seconds=1.0, n_queries=5, tasks=0,
            core_busy_seconds=np.array([1.0, 2.0, 3.0]),
        )
        assert rep.imbalance_factor == pytest.approx(3.0 / 2.0)
        idle = SearchReport(
            total_seconds=1.0, n_queries=5, tasks=0,
            core_busy_seconds=np.zeros(3),
        )
        assert idle.imbalance_factor == 1.0


class TestLoadMetricsPopulated:
    def test_every_query_mode_reports_core_busy(self):
        X, Q = _dataset(seed=19, n=300)
        for kw in ({}, {"one_sided": False}, {"owner_strategy": "multiple"}):
            cfg = SystemConfig(n_cores=4, cores_per_node=2, seed=3, **kw)
            ann = DistributedANN(cfg)
            ann.fit(X)
            _, _, rep = ann.query(Q, k=5)
            assert rep.core_busy_seconds is not None, kw
            assert rep.core_busy_seconds.shape == (4,)
            assert rep.core_busy_seconds.sum() > 0
            assert np.isfinite(rep.imbalance_factor)


class TestAddPointsBatching:
    def test_batched_insert_matches_single_inserts(self):
        X, Q = _dataset(seed=11, n=300)
        extra = _dataset(seed=12, n=40)[0][:24]
        cfg = SystemConfig(n_cores=4, cores_per_node=2, seed=3)

        batched = DistributedANN(cfg)
        batched.fit(X)
        ids_b = batched.add_points(extra)

        loop = DistributedANN(cfg)
        loop.fit(X)
        ids_l = np.concatenate([loop.add_points(extra[i : i + 1]) for i in range(len(extra))])

        np.testing.assert_array_equal(ids_b, ids_l)
        for pid in batched.partitions:
            np.testing.assert_array_equal(
                batched.partitions[pid].ids, loop.partitions[pid].ids
            )
            np.testing.assert_array_equal(
                batched.partitions[pid].points, loop.partitions[pid].points
            )
        D1, I1, _ = batched.query(Q, k=5)
        D2, I2, _ = loop.query(Q, k=5)
        np.testing.assert_array_equal(I1, I2)
