"""Metric combinations across the distributed system.

The VP router demands a true metric; local HNSW accepts any dissimilarity.
These tests pin down which combinations the system supports and that the
documented route for angular search (unit-normalize + L2, since L2 order
equals cosine order on the sphere) actually achieves cosine-ground-truth
recall.
"""

import numpy as np
import pytest

from repro.core import DistributedANN, SystemConfig
from repro.datasets import brute_force_knn, deep_like, sample_queries
from repro.eval import recall_at_k
from repro.hnsw import HnswParams
from repro.metrics import get_metric


class TestAngularViaUnitNorm:
    def test_l2_system_matches_cosine_ground_truth_on_sphere(self):
        X = deep_like(1200, seed=5)  # rows are unit-norm by construction
        Q = sample_queries(X, 30, noise_scale=0.03, seed=6)
        Q = (Q / np.linalg.norm(Q, axis=1, keepdims=True)).astype(np.float32)
        gt_d, gt_i = brute_force_knn(X, Q, 5, metric="cosine")
        ann = DistributedANN(
            SystemConfig(
                n_cores=4, cores_per_node=2, k=5,
                hnsw=HnswParams(M=8, ef_construction=40, seed=5), n_probe=3, seed=5,
            )
        )
        ann.fit(X)
        D, I, _ = ann.query(Q, k=5)
        assert recall_at_k(I, gt_i) >= 0.95

    def test_order_equivalence_identity(self):
        """||a-b||^2 = 2 - 2 cos(a,b) on the unit sphere: the algebra the
        route above relies on."""
        rng = np.random.default_rng(0)
        a = rng.normal(size=16)
        b = rng.normal(size=16)
        a /= np.linalg.norm(a)
        b /= np.linalg.norm(b)
        l2 = get_metric("l2").pair(a, b)
        cos = get_metric("cosine").pair(a, b)
        assert l2**2 == pytest.approx(2 * cos, abs=1e-9)


class TestL1System:
    def test_l1_metric_end_to_end(self):
        """VP routing and exact local search both support L1 — the
        metric-agnostic selling point of VP-trees (§III-B)."""
        rng = np.random.default_rng(7)
        X = rng.normal(0, 3, size=(800, 12)).astype(np.float32)
        Q = (X[:15] + rng.normal(0, 0.2, (15, 12))).astype(np.float32)
        gt_d, gt_i = brute_force_knn(X, Q, 5, metric="l1")
        ann = DistributedANN(
            SystemConfig(
                n_cores=4, cores_per_node=2, k=5, metric="l1",
                hnsw=HnswParams(M=8, ef_construction=40, seed=7), n_probe=4, seed=7,
            )
        )
        ann.fit(X)
        D, I, _ = ann.query(Q, k=5)
        assert recall_at_k(I, gt_i, gt_d, D) >= 0.9


class TestRejectedCombinations:
    def test_non_metric_rejected_at_fit(self):
        X = np.random.default_rng(1).normal(size=(100, 8)).astype(np.float32)
        ann = DistributedANN(
            SystemConfig(n_cores=2, cores_per_node=2, metric="cosine", seed=1)
        )
        with pytest.raises(Exception, match="true metric"):
            ann.fit(X)
