"""Unit tests for one-sided RMA windows."""

import pytest

from repro.simmpi import Comm, Simulation, Window
from repro.simmpi.errors import SimError


def make_world(sim, programs):
    pids = [sim.add_proc(p, node=i, name=f"r{i}") for i, p in enumerate(programs)]
    return Comm(sim, pids), pids


class TestWindow:
    def test_accumulate_applies_combiner(self):
        sim = Simulation()
        slots = [0, 0, 0]
        win = Window(0, 0, slots, combine=lambda old, new: old + new)
        holder = {}

        def owner(ctx):
            yield from holder["comm"].barrier(ctx)

        def origin(ctx):
            yield from win.lock_shared(ctx)
            for i in range(3):
                yield from win.get_accumulate(ctx, i, 10)
            yield from win.unlock(ctx)
            yield from holder["comm"].barrier(ctx)

        comm, pids = make_world(sim, [owner, origin, origin])
        holder["comm"] = comm
        sim.run()
        assert slots == [20, 20, 20]
        assert win.accum_count == 6

    def test_get_part_returns_old_value(self):
        sim = Simulation()
        slots = {0: "initial"}
        win = Window(0, 0, slots, combine=lambda old, new: new)

        def origin(ctx):
            yield from win.lock_shared(ctx)
            old = yield from win.get_accumulate(ctx, 0, "updated")
            yield from win.unlock(ctx)
            return old

        pid = sim.add_proc(origin, node=1)
        out = sim.run()
        assert out.results[pid] == "initial"
        assert slots[0] == "updated"

    def test_accumulate_without_lock_raises(self):
        sim = Simulation()
        win = Window(0, 0, [None], combine=lambda o, n: n)

        def origin(ctx):
            yield from win.get_accumulate(ctx, 0, 1)

        sim.add_proc(origin)
        with pytest.raises(SimError, match="lock epoch"):
            sim.run()

    def test_double_lock_raises(self):
        sim = Simulation()
        win = Window(0, 0, [None], combine=lambda o, n: n)

        def origin(ctx):
            yield from win.lock_shared(ctx)
            yield from win.lock_shared(ctx)

        sim.add_proc(origin)
        with pytest.raises(SimError, match="already holds"):
            sim.run()

    def test_unlock_without_lock_raises(self):
        sim = Simulation()
        win = Window(0, 0, [None], combine=lambda o, n: n)

        def origin(ctx):
            yield from win.unlock(ctx)

        sim.add_proc(origin)
        with pytest.raises(SimError, match="does not hold"):
            sim.run()

    def test_owner_read_restricted_to_owner(self):
        sim = Simulation()
        win = Window(0, 0, [42], combine=lambda o, n: n)

        def owner_ok(ctx):
            yield from ctx.compute(0)
            return win.read(ctx, 0)

        def not_owner(ctx):
            yield from ctx.compute(0)
            win.read(ctx, 0)

        sim.add_proc(owner_ok)   # pid 0 == win owner
        sim.add_proc(not_owner)  # pid 1 must be rejected
        with pytest.raises(SimError, match="owner"):
            sim.run()

    def test_origin_charged_target_free(self):
        """The RMA origin pays time; the window owner's clock is untouched —
        the property that removes the master bottleneck (Fig. 2)."""
        sim = Simulation()
        win = Window(0, 0, [0] * 100, combine=lambda o, n: o + n)

        def owner(ctx):
            yield from ctx.compute(0.0)
            return ctx.now

        def origin(ctx):
            yield from win.lock_shared(ctx)
            for i in range(100):
                yield from win.get_accumulate(ctx, i, 1)
            yield from win.unlock(ctx)
            return ctx.now

        o = sim.add_proc(owner)
        g = sim.add_proc(origin, node=1)
        out = sim.run()
        assert out.results[o] == pytest.approx(0.0)
        assert out.results[g] > 100 * 1.8e-6  # >= 100 RMA round-trips
        assert out.stats[g].rma_ops == 100
