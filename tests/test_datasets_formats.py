"""Unit tests for the TEXMEX fvecs/ivecs/bvecs file formats."""

import numpy as np
import pytest

from repro.datasets import (
    read_bvecs,
    read_fvecs,
    read_ivecs,
    write_bvecs,
    write_fvecs,
    write_ivecs,
)


class TestRoundTrip:
    def test_fvecs(self, tmp_path):
        X = np.random.default_rng(0).normal(size=(50, 17)).astype(np.float32)
        p = tmp_path / "x.fvecs"
        write_fvecs(p, X)
        assert np.array_equal(read_fvecs(p), X)

    def test_ivecs(self, tmp_path):
        X = np.random.default_rng(1).integers(-1000, 1000, size=(20, 10)).astype(np.int32)
        p = tmp_path / "x.ivecs"
        write_ivecs(p, X)
        assert np.array_equal(read_ivecs(p), X)

    def test_bvecs(self, tmp_path):
        X = np.random.default_rng(2).integers(0, 256, size=(30, 128)).astype(np.uint8)
        p = tmp_path / "x.bvecs"
        write_bvecs(p, X)
        assert np.array_equal(read_bvecs(p), X)

    def test_limit_reads_prefix(self, tmp_path):
        X = np.arange(40, dtype=np.float32).reshape(10, 4)
        p = tmp_path / "x.fvecs"
        write_fvecs(p, X)
        assert np.array_equal(read_fvecs(p, limit=3), X[:3])

    def test_single_row(self, tmp_path):
        X = np.ones((1, 5), dtype=np.float32)
        p = tmp_path / "one.fvecs"
        write_fvecs(p, X)
        assert read_fvecs(p).shape == (1, 5)


class TestErrors:
    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.fvecs"
        p.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            read_fvecs(p)

    def test_truncated_file(self, tmp_path):
        X = np.ones((3, 4), dtype=np.float32)
        p = tmp_path / "x.fvecs"
        write_fvecs(p, X)
        raw = p.read_bytes()
        p.write_bytes(raw[:-3])
        with pytest.raises(ValueError, match="record size"):
            read_fvecs(p)

    def test_garbage_dimension(self, tmp_path):
        p = tmp_path / "bad.fvecs"
        p.write_bytes(np.array([-5], dtype="<i4").tobytes() + b"\0" * 16)
        with pytest.raises(ValueError, match="invalid leading dimension"):
            read_fvecs(p)

    def test_write_rejects_1d(self, tmp_path):
        with pytest.raises(ValueError, match="2-D"):
            write_fvecs(tmp_path / "x.fvecs", np.zeros(4, dtype=np.float32))

    def test_format_is_texmex_compatible(self, tmp_path):
        """The on-disk layout must be <int32 dim> then dim elements."""
        X = np.array([[1.5, 2.5]], dtype=np.float32)
        p = tmp_path / "x.fvecs"
        write_fvecs(p, X)
        raw = p.read_bytes()
        assert np.frombuffer(raw[:4], dtype="<i4")[0] == 2
        assert np.allclose(np.frombuffer(raw[4:], dtype="<f4"), [1.5, 2.5])
