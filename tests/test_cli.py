"""End-to-end tests for the command-line interface."""

import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import read_fvecs, read_ivecs


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    d = tmp_path_factory.mktemp("corpus")
    rc = main(
        [
            "gen",
            "SYN_1M",
            "--out",
            str(d),
            "--n-points",
            "600",
            "--n-queries",
            "20",
            "--k",
            "5",
            "--seed",
            "3",
        ]
    )
    assert rc == 0
    return d


@pytest.fixture(scope="module")
def index_dir(corpus_dir, tmp_path_factory):
    d = tmp_path_factory.mktemp("index")
    rc = main(
        [
            "build",
            str(corpus_dir / "base.fvecs"),
            "--out",
            str(d),
            "--cores",
            "4",
            "--cores-per-node",
            "2",
            "--M",
            "8",
            "--ef-construction",
            "30",
            "--seed",
            "3",
        ]
    )
    assert rc == 0
    return d


class TestGen:
    def test_files_written(self, corpus_dir):
        X = read_fvecs(corpus_dir / "base.fvecs")
        Q = read_fvecs(corpus_dir / "query.fvecs")
        gt = read_ivecs(corpus_dir / "groundtruth.ivecs")
        assert X.shape == (600, 512)
        assert Q.shape == (20, 512)
        assert gt.shape == (20, 5)


class TestBuild:
    def test_index_artifacts(self, index_dir):
        meta = json.loads((index_dir / "meta.json").read_text())
        assert meta["n_cores"] == 4
        assert os.path.exists(index_dir / "router.npz")
        for pid in range(4):
            assert os.path.exists(index_dir / f"partition{pid}.npz")
        assert sum(meta["partition_sizes"]) == 600


class TestQuery:
    def test_query_with_recall(self, corpus_dir, index_dir, tmp_path, capsys):
        out = tmp_path / "result.ivecs"
        rc = main(
            [
                "query",
                str(index_dir),
                str(corpus_dir / "query.fvecs"),
                "--out",
                str(out),
                "--groundtruth",
                str(corpus_dir / "groundtruth.ivecs"),
                "--k",
                "5",
                "--n-probe",
                "4",
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "recall@5" in printed
        recall = float(printed.rsplit("=", 1)[1])
        assert recall >= 0.9
        ids = read_ivecs(out)
        assert ids.shape == (20, 5)

    def test_windowed_query_matches_eager(self, corpus_dir, index_dir, tmp_path, capsys):
        """--dispatch-window reaches the engine and never changes answers."""
        eager = tmp_path / "eager.ivecs"
        windowed = tmp_path / "windowed.ivecs"
        base = [
            "query", str(index_dir), str(corpus_dir / "query.fvecs"),
            "--k", "5", "--n-probe", "4",
        ]
        assert main(base + ["--out", str(eager)]) == 0
        capsys.readouterr()
        assert main(base + ["--out", str(windowed), "--dispatch-window", "2"]) == 0
        printed = capsys.readouterr().out
        assert "pipeline: window 2/core" in printed
        assert "0 credits leaked" in printed
        assert np.array_equal(read_ivecs(eager), read_ivecs(windowed))

    def test_saved_index_matches_fresh_results(self, corpus_dir, index_dir, tmp_path):
        """Round-tripping the index through disk must not change answers."""
        from repro.core import DistributedANN, SystemConfig
        from repro.hnsw import HnswParams

        X = read_fvecs(corpus_dir / "base.fvecs")
        Q = read_fvecs(corpus_dir / "query.fvecs")
        fresh = DistributedANN(
            SystemConfig(
                n_cores=4, cores_per_node=2, k=5,
                hnsw=HnswParams(M=8, ef_construction=30, seed=3), n_probe=4, seed=3,
            )
        )
        fresh.fit(X)
        _, I_fresh, _ = fresh.query(Q, k=5)

        out = tmp_path / "cli.ivecs"
        main(
            [
                "query", str(index_dir), str(corpus_dir / "query.fvecs"),
                "--out", str(out), "--k", "5", "--n-probe", "4",
            ]
        )
        I_cli = read_ivecs(out).astype(np.int64)
        assert np.array_equal(I_fresh, I_cli)


class TestBench:
    def test_bench_runs(self, capsys):
        rc = main(
            [
                "bench", "--dataset", "SYN_1M", "--cores", "8", "16",
                "--n-points", "512", "--n-queries", "50",
            ]
        )
        assert rc == 0
        outp = capsys.readouterr().out
        assert "speedup" in outp

    def test_bench_skewed_with_selector(self, capsys):
        rc = main(
            [
                "bench", "--dataset", "SYN_1M", "--cores", "8",
                "--n-points", "512", "--n-queries", "50",
                "--replication", "2", "--replica-selector", "least_loaded",
                "--skew", "1.2",
            ]
        )
        assert rc == 0
        outp = capsys.readouterr().out
        assert "imbalance" in outp


class TestConfigDerivedFlags:
    """SystemConfig field metadata is the single source of truth for
    config-backed CLI knobs: every tagged field round-trips through the
    derived argparse flags on each subcommand it declares."""

    def _tagged_fields(self):
        import dataclasses

        from repro.core import SystemConfig

        return [
            (f, f.metadata["cli"])
            for f in dataclasses.fields(SystemConfig)
            if f.metadata.get("cli") is not None
        ]

    def test_loadbalance_knobs_are_tagged(self):
        names = {f.name for f, _ in self._tagged_fields()}
        assert {
            "batch_size",
            "replication_factor",
            "replica_selector",
            "skew",
            "dispatch_window",
        } <= names

    def test_every_tagged_flag_appears_in_help(self):
        """Audit against CLI drift: each tagged field's flag must show up
        in the --help text of every subcommand it declares."""
        from repro.cli import build_parser

        parser = build_parser()
        # the subparsers action is the only one with a choices dict
        sub = next(a for a in parser._actions if a.choices)
        for f, meta in self._tagged_fields():
            for command in meta["commands"]:
                help_text = sub.choices[command].format_help()
                assert meta["flag"] in help_text, (
                    f"{meta['flag']} (SystemConfig.{f.name}) missing from "
                    f"`repro {command} --help`"
                )

    def test_every_tagged_field_round_trips(self):
        import argparse

        from repro.cli import add_config_flags

        fields = self._tagged_fields()
        assert fields, "no CLI-tagged SystemConfig fields found"
        commands = {c for _, meta in fields for c in meta["commands"]}
        for command in sorted(commands):
            parser = argparse.ArgumentParser()
            add_config_flags(parser, command)
            on_this = [(f, m) for f, m in fields if command in m["commands"]]

            # defaults come from the dataclass
            args = parser.parse_args([])
            for f, _ in on_this:
                assert getattr(args, f.name) == f.default

            # explicit values parse back to the right dest and type
            argv, want = [], {}
            for f, meta in on_this:
                if meta["choices"] is not None:
                    value = [c for c in meta["choices"] if c != f.default][0]
                elif isinstance(f.default, bool):
                    continue
                elif f.default is None and meta["type"] is int:
                    # int-typed optional flags (e.g. --tenant) default to
                    # None; any integer literal exercises the parse
                    value = 7
                elif isinstance(f.default, float):
                    value = f.default + 0.5
                elif isinstance(f.default, int):
                    value = f.default + 1
                else:
                    value = "x"
                argv += [meta["flag"], str(value)]
                want[f.name] = value
            args = parser.parse_args(argv)
            for name, value in want.items():
                assert getattr(args, name) == value

    def test_unknown_choice_rejected(self):
        import argparse

        import pytest as _pytest

        from repro.cli import add_config_flags

        parser = argparse.ArgumentParser()
        add_config_flags(parser, "query")
        with _pytest.raises(SystemExit):
            parser.parse_args(["--replica-selector", "psychic"])
