"""Unit tests for the discrete-event engine: clocks, matching, blocking."""

import numpy as np
import pytest

from repro.simmpi import DeadlockError, ProcError, SimError, Simulation
from repro.simmpi.engine import ANY_SOURCE, ANY_TAG, Event, payload_nbytes


def run_single(program, *args, **kwargs):
    sim = Simulation()
    pid = sim.add_proc(program, *args, **kwargs)
    out = sim.run()
    return out, pid


class TestBasics:
    def test_compute_advances_clock(self):
        def p(ctx):
            yield from ctx.compute(1.5, kind="work")
            yield from ctx.compute(0.5, kind="other")
            return ctx.now

        out, pid = run_single(p)
        assert out.results[pid] == pytest.approx(2.0)
        assert out.stats[pid].compute == {"work": 1.5, "other": 0.5}

    def test_negative_compute_rejected(self):
        def p(ctx):
            yield from ctx.compute(-1.0)

        sim = Simulation()
        sim.add_proc(p)
        with pytest.raises(Exception, match="negative"):
            sim.run()

    def test_non_generator_program_rejected(self):
        sim = Simulation()
        with pytest.raises(Exception, match="generator"):
            sim.add_proc(lambda ctx: 42)

    def test_run_twice_rejected(self):
        def p(ctx):
            yield from ctx.compute(0.0)

        sim = Simulation()
        sim.add_proc(p)
        sim.run()
        with pytest.raises(Exception, match="once"):
            sim.run()

    def test_makespan_is_max_clock(self):
        sim = Simulation()

        def slow(ctx):
            yield from ctx.compute(3.0)

        def fast(ctx):
            yield from ctx.compute(1.0)

        sim.add_proc(slow)
        sim.add_proc(fast)
        assert sim.run().makespan == pytest.approx(3.0)


class TestMessaging:
    def test_send_recv_payload_and_timing(self):
        sim = Simulation()

        def sender(ctx):
            yield from ctx.compute(1.0)
            yield from ctx.send_to_mailbox(
                sim.mailbox_of(1), {"x": 1}, source=0, tag=5, nbytes=100, same_node=False
            )

        def receiver(ctx):
            req = yield from ctx.post_recv(ctx.mailbox, source=0, tag=5)
            payload = yield from ctx.wait(req)
            return payload, ctx.now

        sim.add_proc(sender, name="s")
        sim.add_proc(receiver, name="r")
        out = sim.run()
        payload, t = out.results[1]
        assert payload == {"x": 1}
        assert t > 1.0  # receiver resumed after the send time plus latency

    def test_tag_mismatch_blocks_until_match(self):
        sim = Simulation()

        def sender(ctx):
            yield from ctx.send_to_mailbox(
                sim.mailbox_of(1), "wrong", source=0, tag=1, nbytes=8, same_node=True
            )
            yield from ctx.compute(1.0)
            yield from ctx.send_to_mailbox(
                sim.mailbox_of(1), "right", source=0, tag=2, nbytes=8, same_node=True
            )

        def receiver(ctx):
            req = yield from ctx.post_recv(ctx.mailbox, tag=2)
            return (yield from ctx.wait(req))

        sim.add_proc(sender)
        sim.add_proc(receiver)
        out = sim.run()
        assert out.results[1] == "right"

    def test_any_source_any_tag(self):
        sim = Simulation()

        def sender(ctx, tag):
            yield from ctx.send_to_mailbox(
                sim.mailbox_of(2), tag, source=ctx.pid, tag=tag, nbytes=8, same_node=True
            )

        def receiver(ctx):
            got = []
            for _ in range(2):
                req = yield from ctx.post_recv(ctx.mailbox, source=ANY_SOURCE, tag=ANY_TAG)
                got.append((yield from ctx.wait(req)))
            return sorted(got)

        sim.add_proc(sender, 10)
        sim.add_proc(sender, 20)
        sim.add_proc(receiver)
        assert sim.run().results[2] == [10, 20]

    def test_earliest_arrival_matched_first(self):
        sim = Simulation()

        def sender(ctx):
            # sent in order; arrivals ordered the same (same route)
            for i in range(3):
                yield from ctx.send_to_mailbox(
                    sim.mailbox_of(1), i, source=0, tag=0, nbytes=8, same_node=True
                )

        def receiver(ctx):
            yield from ctx.compute(1.0)  # let everything queue up
            got = []
            for _ in range(3):
                req = yield from ctx.post_recv(ctx.mailbox)
                got.append((yield from ctx.wait(req)))
            return got

        sim.add_proc(sender)
        sim.add_proc(receiver)
        assert sim.run().results[1] == [0, 1, 2]

    def test_test_reports_completion(self):
        sim = Simulation()

        def sender(ctx):
            yield from ctx.send_to_mailbox(
                sim.mailbox_of(1), "hi", source=0, tag=0, nbytes=8, same_node=True
            )

        def receiver(ctx):
            req = yield from ctx.post_recv(ctx.mailbox)
            polls = 0
            while True:
                done = yield from ctx.test(req)
                polls += 1
                if done:
                    return polls, req.payload

        sim.add_proc(sender)
        sim.add_proc(receiver)
        polls, payload = sim.run().results[1]
        assert payload == "hi" and polls >= 1

    def test_cancel_removes_pending(self):
        sim = Simulation()

        def p(ctx):
            req = yield from ctx.post_recv(ctx.mailbox)
            yield from ctx.cancel(req)
            return req.cancelled

        out, pid = run_single(p)
        assert out.results[pid] is True

    def test_test_reports_false_after_cancel(self):
        def p(ctx):
            req = yield from ctx.post_recv(ctx.mailbox)
            yield from ctx.cancel(req)
            return (yield from ctx.test(req))

        out, pid = run_single(p)
        assert out.results[pid] is False

    def test_wait_on_cancelled_request_raises(self):
        def p(ctx):
            req = yield from ctx.post_recv(ctx.mailbox)
            yield from ctx.cancel(req)
            yield from ctx.wait(req)

        sim = Simulation()
        sim.add_proc(p)
        with pytest.raises(SimError, match="cancelled"):
            sim.run()

    def test_cancelled_recv_does_not_consume_message(self):
        """A message sent after cancel must land in the queue, not the
        withdrawn request — a later receive picks it up."""
        sim = Simulation()

        def p(ctx):
            first = yield from ctx.post_recv(ctx.mailbox, tag=7)
            yield from ctx.cancel(first)
            yield from ctx.compute(1.0)  # let the message arrive meanwhile
            second = yield from ctx.post_recv(ctx.mailbox, tag=7)
            payload = yield from ctx.wait(second)
            return first.payload, payload

        def sender(ctx):
            yield from ctx.compute(0.5)  # send strictly after the cancel
            yield from ctx.send_to_mailbox(
                sim.mailbox_of(0), "kept", source=1, tag=7, nbytes=8, same_node=True
            )

        pid = sim.add_proc(p)
        sim.add_proc(sender)
        out = sim.run()
        assert out.results[pid] == (None, "kept")

    def test_test_charges_poll_time(self):
        def p(ctx):
            req = yield from ctx.post_recv(ctx.mailbox)
            yield from ctx.test(req)
            yield from ctx.cancel(req)

        out, pid = run_single(p)
        assert out.stats[pid].poll_time > 0.0


class TestSharedMailbox:
    def test_threads_pull_from_shared_queue(self):
        """Two procs share a mailbox; each message is consumed exactly once."""
        sim = Simulation()
        shared = sim.new_mailbox("shared")

        def sender(ctx):
            for i in range(6):
                yield from ctx.send_to_mailbox(
                    shared, i, source=0, tag=0, nbytes=8, same_node=True
                )

        def worker(ctx):
            got = []
            for _ in range(3):
                req = yield from ctx.post_recv(shared)
                got.append((yield from ctx.wait(req)))
                yield from ctx.compute(0.01)
            return got

        sim.add_proc(sender)
        a = sim.add_proc(worker, mailbox=shared)
        b = sim.add_proc(worker, mailbox=shared)
        out = sim.run()
        all_got = sorted(out.results[a] + out.results[b])
        assert all_got == [0, 1, 2, 3, 4, 5]


class TestEvents:
    def test_wait_any_event_vs_message(self):
        sim = Simulation()
        ev = Event()

        def setter(ctx):
            yield from ctx.compute(2.0)
            yield from ctx.set_event(ev)

        def waiter(ctx):
            req = yield from ctx.post_recv(ctx.mailbox)
            idx, payload = yield from ctx.wait_any([req, ev])
            yield from ctx.cancel(req)
            return idx, ctx.now

        sim.add_proc(setter)
        sim.add_proc(waiter)
        idx, t = sim.run().results[1]
        assert idx == 1 and t == pytest.approx(2.0)

    def test_event_already_set_returns_immediately(self):
        sim = Simulation()
        ev = Event()

        def setter_then_waiter(ctx):
            yield from ctx.set_event(ev)
            idx, _ = yield from ctx.wait_any([ev])
            return idx

        out, pid = run_single_sim(sim, setter_then_waiter)
        assert out.results[pid] == 0

    def test_multiple_waiters_all_wake(self):
        sim = Simulation()
        ev = Event()

        def setter(ctx):
            yield from ctx.compute(1.0)
            yield from ctx.set_event(ev)

        def waiter(ctx):
            yield from ctx.wait_any([ev])
            return ctx.now

        sim.add_proc(setter)
        w = [sim.add_proc(waiter) for _ in range(3)]
        out = sim.run()
        assert all(out.results[pid] == pytest.approx(1.0) for pid in w)


def run_single_sim(sim, program, *args):
    pid = sim.add_proc(program, *args)
    return sim.run(), pid


class TestDeadlock:
    def test_unmatched_recv_raises_deadlock(self):
        sim = Simulation()

        def p(ctx):
            req = yield from ctx.post_recv(ctx.mailbox)
            yield from ctx.wait(req)

        sim.add_proc(p, name="stuck")
        with pytest.raises(DeadlockError, match="stuck"):
            sim.run()

    def test_deadlock_lists_blocked_count(self):
        sim = Simulation()

        def p(ctx):
            req = yield from ctx.post_recv(ctx.mailbox)
            yield from ctx.wait(req)

        sim.add_proc(p)
        sim.add_proc(p)
        with pytest.raises(DeadlockError, match="2 proc"):
            sim.run()


class TestProcError:
    def test_proc_exception_carries_typed_context(self):
        def p(ctx):
            yield from ctx.compute(2.5)
            raise ValueError("boom")

        sim = Simulation()
        sim.add_proc(p, node=3, name="exploder")
        with pytest.raises(ProcError) as exc_info:
            sim.run()
        err = exc_info.value
        assert err.proc_name == "exploder"
        assert err.pid == 0
        assert err.node == 3
        assert err.virtual_time == pytest.approx(2.5)
        assert "ValueError" in str(err) and "boom" in str(err)

    def test_proc_error_is_a_sim_error(self):
        assert issubclass(ProcError, SimError)

    def test_original_exception_chained(self):
        def p(ctx):
            yield from ctx.compute(0.1)
            raise KeyError("missing")

        sim = Simulation()
        sim.add_proc(p)
        with pytest.raises(ProcError) as exc_info:
            sim.run()
        assert isinstance(exc_info.value.__cause__, KeyError)


class TestPayloadNbytes:
    def test_numpy_array_true_size(self):
        x = np.zeros(100, dtype=np.float32)
        assert payload_nbytes(x) >= 400

    def test_containers_recurse(self):
        assert payload_nbytes([np.zeros(10), np.zeros(10)]) > 2 * 40

    def test_none_small(self):
        assert payload_nbytes(None) == 8
