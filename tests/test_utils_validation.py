"""Unit tests for argument validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_matrix,
    check_positive_int,
    check_probability,
    check_vector,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(5, "x") == 5

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(3), "x") == 3

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(ValueError):
            check_positive_int(-1, "x")

    def test_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")


class TestCheckMatrix:
    def test_coerces_dtype_and_contiguity(self):
        X = np.arange(12, dtype=np.float64).reshape(3, 4)[:, ::2]
        out = check_matrix(X, "X")
        assert out.dtype == np.float32 and out.flags.c_contiguous

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_matrix(np.zeros(3), "X")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_matrix(np.zeros((0, 4)), "X")

    def test_rejects_nan(self):
        X = np.zeros((2, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            check_matrix(X, "X")


class TestCheckVector:
    def test_dim_check(self):
        with pytest.raises(ValueError, match="dimension"):
            check_vector(np.zeros(3), "q", dim=4)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            check_vector(np.zeros((2, 2)), "q")

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_vector(np.array([1.0, np.inf]), "q")


class TestCheckProbability:
    def test_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")
